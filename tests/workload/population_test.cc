#include "workload/population.h"

#include <gtest/gtest.h>

#include <array>
#include <map>

namespace sqlb {
namespace {

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.num_consumers = 20;
  config.num_providers = 40;
  return config;
}

TEST(AssignLevelsTest, ExactCountsViaLargestRemainder) {
  Rng rng(1);
  const auto levels =
      AssignLevels(400, {0.10, 0.60, 0.30}, rng);
  std::map<Level, int> counts;
  for (Level l : levels) ++counts[l];
  EXPECT_EQ(counts[Level::kLow], 40);
  EXPECT_EQ(counts[Level::kMedium], 240);
  EXPECT_EQ(counts[Level::kHigh], 120);
}

TEST(AssignLevelsTest, HandlesNonDivisibleTotals) {
  Rng rng(2);
  const auto levels = AssignLevels(7, {0.10, 0.60, 0.30}, rng);
  EXPECT_EQ(levels.size(), 7u);
}

TEST(AssignLevelsDeathTest, FractionsMustSumToOne) {
  Rng rng(3);
  EXPECT_DEATH(AssignLevels(10, {0.5, 0.2, 0.2}, rng), "sum to 1");
}

TEST(PopulationTest, CapacityClassSpeedRatios) {
  // Section 6.1: high = 3x medium = 7x low, high performs a 130-unit query
  // in 1.3 s (capacity 100 units/s).
  Population population(PopulationConfig{}, 42);
  std::array<int, 3> counts{};
  for (const ProviderProfile& p : population.providers()) {
    ++counts[static_cast<std::size_t>(p.capacity_class)];
    switch (p.capacity_class) {
      case Level::kHigh:
        EXPECT_DOUBLE_EQ(p.capacity, 100.0);
        break;
      case Level::kMedium:
        EXPECT_DOUBLE_EQ(p.capacity, 100.0 / 3.0);
        break;
      case Level::kLow:
        EXPECT_DOUBLE_EQ(p.capacity, 100.0 / 7.0);
        break;
    }
  }
  EXPECT_EQ(counts[0], 40);   // 10% low
  EXPECT_EQ(counts[1], 240);  // 60% medium
  EXPECT_EQ(counts[2], 120);  // 30% high
}

TEST(PopulationTest, TotalCapacityIsAggregate) {
  Population population(PopulationConfig{}, 42);
  const double expected =
      40 * (100.0 / 7.0) + 240 * (100.0 / 3.0) + 120 * 100.0;
  EXPECT_NEAR(population.total_capacity(), expected, 1e-6);
}

TEST(PopulationTest, MeanQueryUnits) {
  Population population(PopulationConfig{}, 42);
  EXPECT_DOUBLE_EQ(population.mean_query_units(), 140.0);  // (130+150)/2
  EXPECT_DOUBLE_EQ(population.QueryUnits(0), 130.0);
  EXPECT_DOUBLE_EQ(population.QueryUnits(1), 150.0);
}

TEST(PopulationTest, ConsumerPreferencesRespectInterestClassRanges) {
  Population population(SmallConfig(), 7);
  for (std::uint32_t c = 0; c < 20; ++c) {
    for (std::uint32_t p = 0; p < 40; ++p) {
      const double pref =
          population.ConsumerPreference(ConsumerId(c), ProviderId(p));
      const Level level = population.provider(ProviderId(p)).interest_class;
      switch (level) {
        case Level::kHigh:
          EXPECT_GE(pref, 0.34);
          EXPECT_LE(pref, 1.0);
          break;
        case Level::kMedium:
          EXPECT_GE(pref, -0.54);
          EXPECT_LE(pref, 0.34);
          break;
        case Level::kLow:
          EXPECT_GE(pref, -1.0);
          EXPECT_LE(pref, -0.54);
          break;
      }
    }
  }
}

TEST(PopulationTest, ProviderPreferencesRespectAdaptationClassRanges) {
  Population population(SmallConfig(), 7);
  for (std::uint32_t p = 0; p < 40; ++p) {
    const Level level = population.provider(ProviderId(p)).adaptation_class;
    for (QueryId q = 0; q < 200; ++q) {
      const double pref = population.ProviderPreference(ProviderId(p), q);
      switch (level) {
        case Level::kHigh:
          ASSERT_GE(pref, -0.2);
          ASSERT_LE(pref, 1.0);
          break;
        case Level::kMedium:
          ASSERT_GE(pref, -0.6);
          ASSERT_LE(pref, 0.6);
          break;
        case Level::kLow:
          ASSERT_GE(pref, -1.0);
          ASSERT_LE(pref, 0.2);
          break;
      }
    }
  }
}

TEST(PopulationTest, ProviderPreferenceIsStableAcrossCalls) {
  Population population(SmallConfig(), 7);
  const double first = population.ProviderPreference(ProviderId(3), 17);
  (void)population.ProviderPreference(ProviderId(9), 99);
  EXPECT_EQ(population.ProviderPreference(ProviderId(3), 17), first);
}

TEST(PopulationTest, SameSeedSamePopulation) {
  Population a(SmallConfig(), 123), b(SmallConfig(), 123);
  for (std::uint32_t p = 0; p < 40; ++p) {
    EXPECT_EQ(a.provider(ProviderId(p)).capacity,
              b.provider(ProviderId(p)).capacity);
    EXPECT_EQ(a.provider(ProviderId(p)).interest_class,
              b.provider(ProviderId(p)).interest_class);
    EXPECT_EQ(a.ConsumerPreference(ConsumerId(1), ProviderId(p)),
              b.ConsumerPreference(ConsumerId(1), ProviderId(p)));
  }
}

TEST(PopulationTest, DifferentSeedsDiffer) {
  Population a(SmallConfig(), 1), b(SmallConfig(), 2);
  int identical = 0;
  for (std::uint32_t p = 0; p < 40; ++p) {
    if (a.ConsumerPreference(ConsumerId(0), ProviderId(p)) ==
        b.ConsumerPreference(ConsumerId(0), ProviderId(p))) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 3);
}

TEST(LevelNameTest, HumanReadable) {
  EXPECT_STREQ(LevelName(Level::kLow), "low");
  EXPECT_STREQ(LevelName(Level::kMedium), "medium");
  EXPECT_STREQ(LevelName(Level::kHigh), "high");
}

}  // namespace
}  // namespace sqlb
