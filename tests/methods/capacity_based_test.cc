#include "methods/capacity_based.h"

#include <gtest/gtest.h>

#include "model/query.h"

namespace sqlb {
namespace {

Query MakeQuery(std::uint32_t n) {
  Query q;
  q.id = 1;
  q.consumer = ConsumerId(0);
  q.n = n;
  q.units = 130.0;
  return q;
}

CandidateProvider Candidate(std::uint32_t id, double capacity,
                            double utilization) {
  CandidateProvider c;
  c.id = ProviderId(id);
  c.capacity = capacity;
  c.utilization = utilization;
  // Hostile intentions everywhere: Capacity based must ignore them.
  c.consumer_intention = -1.0;
  c.provider_intention = -1.0;
  return c;
}

TEST(CapacityBasedTest, DefaultPicksLeastUtilized) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 100.0, 0.9),
      Candidate(1, 33.3, 0.1),
      Candidate(2, 14.3, 0.0),
  };
  CapacityBasedMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(2));
}

TEST(CapacityBasedTest, MaxAvailableVariantWeighsAbsoluteCapacity) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 100.0, 0.9),  // available 10
      Candidate(1, 33.3, 0.1),   // available ~30
      Candidate(2, 14.3, 0.0),   // available 14.3
  };
  CapacityBasedMethod method(CapacityRanking::kMaxAvailableCapacity);
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(CapacityBasedTest, OverloadedProvidersRankLast) {
  Query q = MakeQuery(2);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 100.0, 1.5),  // overloaded
      Candidate(1, 14.3, 0.2),
      Candidate(2, 33.3, 0.5),
  };
  CapacityBasedMethod method(CapacityRanking::kMaxAvailableCapacity);
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 2u);
  for (std::size_t idx : decision.selected) {
    EXPECT_NE(request.candidates[idx].id, ProviderId(0));
  }
}

TEST(CapacityBasedTest, IntentionsDoNotMatter) {
  // The defining property of the baseline (Section 6.2.1): flipping all
  // intentions must not change the allocation.
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {Candidate(0, 50.0, 0.3), Candidate(1, 50.0, 0.1)};
  CapacityBasedMethod method;
  const auto before = method.Allocate(request);
  for (auto& c : request.candidates) {
    c.consumer_intention = 1.0;
    c.provider_intention = 1.0;
  }
  const auto after = method.Allocate(request);
  EXPECT_EQ(before.selected, after.selected);
}

TEST(CapacityBasedTest, NamesDistinguishVariants) {
  EXPECT_EQ(CapacityBasedMethod().name(), "CapacityBased");
  EXPECT_EQ(
      CapacityBasedMethod(CapacityRanking::kMaxAvailableCapacity).name(),
      "CapacityBased(max-available)");
}

}  // namespace
}  // namespace sqlb
