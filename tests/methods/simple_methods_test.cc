#include "methods/simple_methods.h"

#include <gtest/gtest.h>

#include <set>

#include "model/query.h"

namespace sqlb {
namespace {

Query MakeQuery(std::uint32_t n) {
  Query q;
  q.id = 1;
  q.consumer = ConsumerId(0);
  q.n = n;
  q.units = 130.0;
  return q;
}

AllocationRequest MakeRequest(const Query* q, std::size_t candidates) {
  AllocationRequest request;
  request.query = q;
  for (std::size_t i = 0; i < candidates; ++i) {
    CandidateProvider c;
    c.id = ProviderId(static_cast<std::uint32_t>(i));
    request.candidates.push_back(c);
  }
  return request;
}

TEST(RandomMethodTest, SelectionsAreDistinctAndInRange) {
  RandomMethod method(7);
  Query q = MakeQuery(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto request = MakeRequest(&q, 10);
    const auto decision = method.Allocate(request);
    ASSERT_EQ(decision.selected.size(), 3u);
    std::set<std::size_t> unique(decision.selected.begin(),
                                 decision.selected.end());
    ASSERT_EQ(unique.size(), 3u);
    for (std::size_t idx : decision.selected) ASSERT_LT(idx, 10u);
  }
}

TEST(RandomMethodTest, CoversAllCandidatesEventually) {
  RandomMethod method(11);
  Query q = MakeQuery(1);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 500; ++trial) {
    auto request = MakeRequest(&q, 8);
    seen.insert(method.Allocate(request).selected[0]);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomMethodTest, DeterministicForSeed) {
  Query q = MakeQuery(2);
  RandomMethod a(99), b(99);
  for (int trial = 0; trial < 20; ++trial) {
    auto request = MakeRequest(&q, 12);
    EXPECT_EQ(a.Allocate(request).selected, b.Allocate(request).selected);
  }
}

TEST(RoundRobinMethodTest, CyclesThroughCandidates) {
  RoundRobinMethod method;
  Query q = MakeQuery(1);
  auto request = MakeRequest(&q, 3);
  EXPECT_EQ(method.Allocate(request).selected[0], 0u);
  EXPECT_EQ(method.Allocate(request).selected[0], 1u);
  EXPECT_EQ(method.Allocate(request).selected[0], 2u);
  EXPECT_EQ(method.Allocate(request).selected[0], 0u);
}

TEST(RoundRobinMethodTest, MultiSelectionPicksConsecutiveDistinct) {
  RoundRobinMethod method;
  Query q = MakeQuery(3);
  auto request = MakeRequest(&q, 5);
  const auto decision = method.Allocate(request);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 1, 2}));
  const auto next = method.Allocate(request);
  EXPECT_EQ(next.selected, (std::vector<std::size_t>{3, 4, 0}));
}

TEST(RoundRobinMethodTest, EvenSpreadOverManyQueries) {
  RoundRobinMethod method;
  Query q = MakeQuery(1);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    auto request = MakeRequest(&q, 4);
    ++counts[method.Allocate(request).selected[0]];
  }
  for (int c : counts) EXPECT_EQ(c, 100);
}

}  // namespace
}  // namespace sqlb
