#include <gtest/gtest.h>

#include "methods/kn_best.h"
#include "methods/sqlb_economic.h"
#include "model/query.h"

namespace sqlb {
namespace {

Query MakeQuery(std::uint32_t n) {
  Query q;
  q.id = 1;
  q.consumer = ConsumerId(0);
  q.n = n;
  q.units = 130.0;
  return q;
}

CandidateProvider Candidate(std::uint32_t id, double pi, double ci,
                            double utilization, double bid_price = 0.5,
                            double backlog = 0.0) {
  CandidateProvider c;
  c.id = ProviderId(id);
  c.provider_intention = pi;
  c.consumer_intention = ci;
  c.utilization = utilization;
  c.bid_price = bid_price;
  c.backlog_seconds = backlog;
  return c;
}

TEST(KnBestTest, ShortlistBySatisfactionThenLeastUtilized) {
  // Three well-aligned providers and one poorly aligned; with a shortlist
  // of 3 the winner is the least utilized among the aligned ones, even
  // though a better-scored but busier provider exists.
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 0.9, 0.9, /*ut=*/0.8),
      Candidate(1, 0.8, 0.8, /*ut=*/0.1),
      Candidate(2, 0.7, 0.7, /*ut=*/0.5),
      Candidate(3, -0.9, -0.9, /*ut=*/0.0),  // idle but unaligned
  };
  KnBestOptions options;
  options.shortlist_fraction = 0.75;  // K = 3
  KnBestMethod method(options);
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 1u);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(KnBestTest, ShortlistNeverSmallerThanN) {
  Query q = MakeQuery(3);
  AllocationRequest request;
  request.query = &q;
  for (std::uint32_t i = 0; i < 4; ++i) {
    request.candidates.push_back(Candidate(i, 0.5, 0.5, 0.1 * i));
  }
  KnBestOptions options;
  options.shortlist_fraction = 0.01;  // would give K = 1 < n
  KnBestMethod method(options);
  const auto decision = method.Allocate(request);
  EXPECT_EQ(decision.selected.size(), 3u);
}

TEST(KnBestTest, NameIsStable) { EXPECT_EQ(KnBestMethod().name(), "KnBest"); }

TEST(SqlbEconomicTest, ZeroPriceWeightRecoversSqlbRanking) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 0.9, 0.9, 0.0, /*bid=*/1.0),
      Candidate(1, 0.5, 0.5, 0.0, /*bid=*/0.01),
  };
  SqlbEconomicOptions options;
  options.price_weight = 0.0;
  SqlbEconomicMethod method(options);
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(0));
}

TEST(SqlbEconomicTest, PriceBreaksNearTies) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 0.8, 0.8, 0.0, /*bid=*/1.0),   // expensive
      Candidate(1, 0.8, 0.8, 0.0, /*bid=*/0.05),  // same score, cheap
  };
  SqlbEconomicMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(SqlbEconomicTest, StrongIntentionCanOutbidCheapness) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 0.95, 0.95, 0.0, /*bid=*/1.0),    // aligned, expensive
      Candidate(1, -0.5, -0.5, 0.0, /*bid=*/0.01),   // unaligned, cheap
  };
  SqlbEconomicMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(0));
}

TEST(SqlbEconomicTest, LoadScalesEffectivePrice) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Candidate(0, 0.8, 0.8, 0.0, /*bid=*/0.2, /*backlog=*/20.0),
      Candidate(1, 0.8, 0.8, 0.0, /*bid=*/0.3, /*backlog=*/0.0),
  };
  SqlbEconomicMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(SqlbEconomicTest, NameIsStable) {
  EXPECT_EQ(SqlbEconomicMethod().name(), "SQLB-Economic");
}

}  // namespace
}  // namespace sqlb
