#include "methods/mariposa.h"

#include <gtest/gtest.h>

#include "model/query.h"

namespace sqlb {
namespace {

Query MakeQuery(std::uint32_t n) {
  Query q;
  q.id = 1;
  q.consumer = ConsumerId(0);
  q.n = n;
  q.units = 130.0;
  return q;
}

CandidateProvider Bidder(std::uint32_t id, double bid_price,
                         double backlog_seconds, double delay) {
  CandidateProvider c;
  c.id = ProviderId(id);
  c.bid_price = bid_price;
  c.backlog_seconds = backlog_seconds;
  c.estimated_delay = delay;
  return c;
}

TEST(MariposaAskingPriceTest, DecreasesWithPreference) {
  EXPECT_LT(MariposaAskingPrice(1.0), MariposaAskingPrice(0.0));
  EXPECT_LT(MariposaAskingPrice(0.0), MariposaAskingPrice(-1.0));
  EXPECT_DOUBLE_EQ(MariposaAskingPrice(1.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(MariposaAskingPrice(-1.0, 0.05), 1.05);
}

TEST(MariposaMethodTest, CheapestAcceptableBidWins) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Bidder(0, 0.50, 0.0, 2.0),
      Bidder(1, 0.10, 0.0, 2.0),  // cheapest
      Bidder(2, 0.30, 0.0, 2.0),
  };
  MariposaMethod method;
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 1u);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(MariposaMethodTest, LoadScalingImplementsBidTimesLoad) {
  // An eager but backlogged provider loses to a less eager idle one: the
  // paper's "crude form of load balancing".
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Bidder(0, 0.10, /*backlog=*/9.0, 2.0),  // effective 0.10 * 10 = 1.0
      Bidder(1, 0.40, /*backlog=*/0.0, 2.0),  // effective 0.40
  };
  MariposaOptions options;
  options.load_factor = 1.0;
  MariposaMethod method(options);
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
  EXPECT_DOUBLE_EQ(method.EffectivePrice(request.candidates[0]), 1.0);
}

TEST(MariposaMethodTest, DefaultFeedbackIsCrude) {
  // With the default (deliberately weak) feedback, an eager provider keeps
  // winning until its backlog reaches tens of seconds.
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Bidder(0, 0.10, /*backlog=*/9.0, 2.0),   // effective 0.19
      Bidder(1, 0.40, /*backlog=*/0.0, 2.0),   // effective 0.40
      Bidder(2, 0.10, /*backlog=*/40.0, 2.0),  // effective 0.50
  };
  MariposaMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(0));
}

TEST(MariposaMethodTest, BidCurveRejectsSlowExpensiveBids) {
  MariposaMethod method;  // max_price 2, max_delay 60
  EXPECT_TRUE(method.UnderBidCurve(0.5, 10.0));
  EXPECT_FALSE(method.UnderBidCurve(0.5, 60.0));   // at max delay
  EXPECT_FALSE(method.UnderBidCurve(1.9, 30.0));   // above the line
  EXPECT_TRUE(method.UnderBidCurve(0.99, 30.0));   // just under the line
}

TEST(MariposaMethodTest, FallsBackToCheapestWhenNothingAcceptable) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Bidder(0, 3.0, 0.0, 100.0),  // delay beyond the curve
      Bidder(1, 2.5, 0.0, 100.0),
  };
  MariposaMethod method;
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 1u);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
  EXPECT_EQ(method.unacceptable_queries(), 1u);
}

TEST(MariposaMethodTest, StrictBrokerLeavesQueryUntreated) {
  MariposaOptions options;
  options.allocate_when_no_acceptable_bid = false;
  MariposaMethod method(options);

  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {Bidder(0, 5.0, 0.0, 100.0)};
  const auto decision = method.Allocate(request);
  EXPECT_TRUE(decision.selected.empty());
  EXPECT_EQ(method.unacceptable_queries(), 1u);
}

TEST(MariposaMethodTest, SelectsNCheapest) {
  Query q = MakeQuery(2);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {
      Bidder(0, 0.50, 0.0, 2.0),
      Bidder(1, 0.10, 0.0, 2.0),
      Bidder(2, 0.30, 0.0, 2.0),
  };
  MariposaMethod method;
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 2u);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
  EXPECT_EQ(request.candidates[decision.selected[1]].id, ProviderId(2));
}

TEST(MariposaMethodDeathTest, ValidatesOptions) {
  MariposaOptions bad;
  bad.max_delay = 0.0;
  EXPECT_DEATH(MariposaMethod{bad}, "max_delay");
}

}  // namespace
}  // namespace sqlb
