#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "des/hw_topo.h"
#include "des/worker_pool.h"

/// \file
/// Host-topology detection (des/hw_topo.h) and the worker-pool modes built
/// on it: placement order validity (a permutation covering physical cores
/// before SMT siblings), graceful flat fallback, and the static
/// lane->thread schedule's correctness — every index runs exactly once, on
/// the thread its residue class names, identically across epochs.

namespace sqlb::des {
namespace {

TEST(HwTopologyTest, DetectCoversEveryLogicalCpu) {
  const HwTopology topo = HwTopology::Detect();
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  ASSERT_EQ(topo.cpus.size(), hardware);
  for (unsigned cpu = 0; cpu < hardware; ++cpu) {
    EXPECT_EQ(topo.cpus[cpu].cpu, cpu);
    EXPECT_LT(topo.cpus[cpu].socket, topo.num_sockets);
  }
  EXPECT_GE(topo.num_sockets, 1u);
}

TEST(HwTopologyTest, SmtRanksAreDenseWithinEachCore) {
  const HwTopology topo = HwTopology::Detect();
  // Siblings of one (socket, core) get ranks 0, 1, 2, ... in cpu order.
  std::set<std::tuple<unsigned, unsigned, unsigned>> seen;
  for (const CpuInfo& info : topo.cpus) {
    EXPECT_TRUE(
        seen.insert({info.socket, info.core_id, info.smt_rank}).second)
        << "duplicate (socket, core, smt_rank) for cpu " << info.cpu;
    if (info.smt_rank > 0) {
      EXPECT_TRUE(seen.count({info.socket, info.core_id, info.smt_rank - 1}))
          << "gap in smt ranks for cpu " << info.cpu;
    }
  }
}

TEST(HwTopologyTest, PlacementOrderIsAPermutation) {
  const HwTopology topo = HwTopology::Detect();
  const std::vector<unsigned> order = topo.PlacementOrder(/*skip_cpu0=*/false);
  ASSERT_EQ(order.size(), topo.cpus.size());
  std::set<unsigned> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());

  const std::vector<unsigned> skipped = topo.PlacementOrder(/*skip_cpu0=*/true);
  EXPECT_EQ(skipped.size(), order.size() - 1);
  EXPECT_EQ(std::count(skipped.begin(), skipped.end(), 0u), 0);
}

TEST(HwTopologyTest, PlacementUsesEveryPhysicalCoreBeforeAnySibling) {
  const HwTopology topo = HwTopology::Detect();
  const std::vector<unsigned> order = topo.PlacementOrder(/*skip_cpu0=*/false);
  // smt_rank must be non-decreasing along the placement: all rank-0 CPUs
  // (one per physical core) come before any rank-1 sibling.
  unsigned last_rank = 0;
  for (unsigned cpu : order) {
    const unsigned rank = topo.cpus[cpu].smt_rank;
    EXPECT_GE(rank, last_rank) << "cpu " << cpu;
    last_rank = rank;
  }
}

TEST(HwTopologyTest, SyntheticDualSocketSmtPlacement) {
  // 2 sockets x 2 cores x 2 SMT: cpus 0..3 are socket0/1 core0 thread0,
  // then the second threads — the common interleaved enumeration.
  HwTopology topo;
  topo.num_sockets = 2;
  topo.detected = true;
  // cpu, socket, core_id layout: hyperthread pairs (0,4), (1,5), (2,6), (3,7)
  topo.cpus = {{0, 0, 0, 0}, {1, 0, 1, 0}, {2, 1, 0, 0}, {3, 1, 1, 0},
               {4, 0, 0, 1}, {5, 0, 1, 1}, {6, 1, 0, 1}, {7, 1, 1, 1}};
  const std::vector<unsigned> order = topo.PlacementOrder(/*skip_cpu0=*/false);
  // Physical cores socket-by-socket first, then the SMT siblings.
  EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(topo.SocketOf(2), 1u);
  EXPECT_EQ(topo.SocketOf(5), 0u);
}

// ---------------------------------------------------------------------------
// WorkerPool static schedule.
// ---------------------------------------------------------------------------

TEST(WorkerPoolStaticScheduleTest, EveryIndexRunsExactlyOnce) {
  WorkerPoolOptions options;
  options.static_schedule = true;
  WorkerPool pool(4, options);
  const std::size_t n = 1003;  // not a multiple of the concurrency
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WorkerPoolStaticScheduleTest, IndexToThreadMappingIsStableAcrossEpochs) {
  WorkerPoolOptions options;
  options.static_schedule = true;
  WorkerPool pool(3, options);
  const std::size_t n = 64;

  auto run_epoch = [&] {
    std::vector<std::thread::id> owner(n);
    pool.ParallelFor(n, [&](std::size_t i) {
      owner[i] = std::this_thread::get_id();
    });
    return owner;
  };
  const std::vector<std::thread::id> first = run_epoch();
  for (int epoch = 0; epoch < 5; ++epoch) {
    EXPECT_EQ(run_epoch(), first) << "epoch " << epoch;
  }
  // Residue classes map to distinct threads, and index i's owner is
  // determined by i % concurrency alone.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(first[i], first[i % pool.concurrency()]) << i;
  }
}

TEST(WorkerPoolStaticScheduleTest, SingleThreadPoolRunsInline) {
  WorkerPoolOptions options;
  options.static_schedule = true;
  WorkerPool pool(1, options);
  int sum = 0;
  pool.ParallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(WorkerPoolTopologyTest, TopologyAwarePinningReportsSockets) {
  WorkerPoolOptions options;
  options.topology_aware = true;
  WorkerPool pool(3, options);
  // thread_sockets has one entry per pool thread; entry 0 is the caller.
  ASSERT_EQ(pool.thread_sockets().size(), pool.concurrency());
  const HwTopology topo = HwTopology::Detect();
  for (unsigned socket : pool.thread_sockets()) {
    EXPECT_LT(socket, topo.num_sockets);
  }
  // Pinning itself is best-effort (cpusets can refuse), but the pool still
  // runs jobs correctly either way.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace sqlb::des
