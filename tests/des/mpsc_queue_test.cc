#include "des/mpsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mem/page_pool.h"

namespace sqlb::des {
namespace {

struct Item {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
  std::string payload;  // non-trivial type: construction/destruction matter
};

struct Fixture {
  mem::PagePool pages;
  mem::SlabPool slab;
  explicit Fixture(std::size_t max_bytes = 0)
      : pages(mem::PagePool::kDefaultPageBytes, max_bytes),
        slab(&pages, MpscQueue<Item>::ChunkBytes()) {}
};

TEST(MpscQueueTest, SingleThreadFifo) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  EXPECT_TRUE(queue.Empty());
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(Item{0, i, "q" + std::to_string(i)}));
  }
  EXPECT_FALSE(queue.Empty());
  Item item;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.TryPop(&item));
    EXPECT_EQ(item.seq, i);
    EXPECT_EQ(item.payload, "q" + std::to_string(i));
  }
  EXPECT_FALSE(queue.TryPop(&item));
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.pushed(), 100u);
  EXPECT_EQ(queue.popped(), 100u);
}

TEST(MpscQueueTest, NodesRecycleThroughTheFreelist) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  Item item;
  // Alternating push/pop keeps at most 2 live nodes (stub + one): the whole
  // run must fit in the first chunk — every pop recycles its node.
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(queue.Push(Item{0, i, {}}));
    ASSERT_TRUE(queue.TryPop(&item));
    EXPECT_EQ(item.seq, i);
  }
  EXPECT_EQ(queue.chunks_allocated(), 1u);
}

TEST(MpscQueueTest, GrowsChunksUnderBacklog) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  const std::size_t n = MpscQueue<Item>::kNodesPerChunk * 10;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(queue.Push(Item{0, i, {}}));
  }
  EXPECT_GE(queue.chunks_allocated(), 10u);
  Item item;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(queue.TryPop(&item));
    EXPECT_EQ(item.seq, i);
  }
}

TEST(MpscQueueTest, MaxChunksBoundsLiveNodesAndCountsShed) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab, /*max_chunks=*/2);
  // 2 chunks = 16 nodes; one is the queue's stub, so 15 pushes fit.
  const std::size_t capacity = 2 * MpscQueue<Item>::kNodesPerChunk - 1;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(queue.Push(Item{0, i, {}})) << i;
  }
  EXPECT_FALSE(queue.Push(Item{0, 999, {}}));
  EXPECT_EQ(queue.shed(), 1u);
  // Backpressure is transient: popping frees a node and Push works again.
  Item item;
  ASSERT_TRUE(queue.TryPop(&item));
  EXPECT_TRUE(queue.Push(Item{0, 1000, {}}));
}

TEST(MpscQueueTest, DestructionDrainsUndeliveredPayloads) {
  Fixture f;
  auto queue = std::make_unique<MpscQueue<Item>>(&f.slab);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue->Push(Item{0, i, std::string(100, 'x')}));
  }
  queue.reset();  // must destroy the 50 strings and return chunks (ASan)
  EXPECT_EQ(f.slab.blocks_live(), 0u);
}

// The TSan-targeted test: real producer threads contend the tail exchange,
// the freelist CAS and chunk growth while the consumer drains concurrently.
// Correctness pins: nothing lost, nothing duplicated, per-producer FIFO.
TEST(MpscQueueTest, MultiProducerDeliversEverythingInPerProducerOrder) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!queue.Push(Item{p, i, {}})) {
          std::this_thread::yield();  // bounded queue: retry on backpressure
        }
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  Item item;
  while (received < kProducers * kPerProducer) {
    if (!queue.TryPop(&item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(item.producer, kProducers);
    // Per-producer FIFO: each producer's items arrive in push order.
    EXPECT_EQ(item.seq, next_seq[item.producer]);
    ++next_seq[item.producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.popped(), kProducers * kPerProducer);
}

TEST(MpscQueueTest, PushManyKeepsFifoWhenMixedWithPush) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  std::uint64_t seq = 0;
  std::vector<Item> batch;
  // Alternate singles and batches; consumption order must be the exact
  // presentation order regardless of which path enqueued an item.
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(queue.Push(Item{0, seq++, "single"}));
    batch.clear();
    for (int i = 0; i < 7; ++i) {
      batch.push_back(Item{0, seq++, "batch" + std::to_string(round)});
    }
    ASSERT_EQ(queue.PushMany(batch.data(), batch.size()), batch.size());
  }
  Item item;
  for (std::uint64_t expect = 0; expect < seq; ++expect) {
    ASSERT_TRUE(queue.TryPop(&item));
    EXPECT_EQ(item.seq, expect);
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.pushed(), seq);
}

TEST(MpscQueueTest, PushManyAcceptsThePrefixThatFitsAndShedsTheRest) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab, /*max_chunks=*/2);
  const std::size_t capacity = 2 * MpscQueue<Item>::kNodesPerChunk - 1;
  std::vector<Item> batch;
  for (std::uint64_t i = 0; i < capacity + 5; ++i) {
    batch.push_back(Item{0, i, {}});
  }
  // The chain reservation stops at the chunk cap: the accepted count is
  // exactly the capacity, the refused tail lands in shed().
  EXPECT_EQ(queue.PushMany(batch.data(), batch.size()), capacity);
  EXPECT_EQ(queue.shed(), 5u);
  Item item;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(queue.TryPop(&item));
    EXPECT_EQ(item.seq, i);
  }
  EXPECT_FALSE(queue.TryPop(&item));
  // A full-queue PushMany accepts nothing and sheds the whole batch.
  for (std::uint64_t i = 0; i < capacity; ++i) {
    ASSERT_TRUE(queue.Push(Item{0, i, {}}));
  }
  EXPECT_EQ(queue.PushMany(batch.data(), 3), 0u);
  EXPECT_EQ(queue.shed(), 8u);
}

// TSan target: concurrent PushMany producers contend the bulk freelist
// reservation (chain CAS) and the tail exchange while the consumer drains.
// Batches must stay contiguous per producer (one tail exchange publishes
// the whole chain), on top of nothing-lost/nothing-duplicated.
TEST(MpscQueueTest, ConcurrentPushManyKeepsBatchesContiguous) {
  Fixture f;
  MpscQueue<Item> queue(&f.slab);
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kBatches = 2'000;
  constexpr std::uint64_t kBatchSize = 8;

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      Item batch[kBatchSize];
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        for (std::uint64_t i = 0; i < kBatchSize; ++i) {
          batch[i] = Item{p, b * kBatchSize + i, {}};
        }
        std::uint64_t done = 0;
        while (done < kBatchSize) {
          done += queue.PushMany(batch + done, kBatchSize - done);
          if (done < kBatchSize) std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  Item item;
  while (received < kProducers * kBatches * kBatchSize) {
    if (!queue.TryPop(&item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(item.producer, kProducers);
    EXPECT_EQ(item.seq, next_seq[item.producer]);
    ++next_seq[item.producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace sqlb::des
