#include "des/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sqlb::des {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&order](Simulator&) { order.push_back(3); });
  sim.ScheduleAt(1.0, [&order](Simulator&) { order.push_back(1); });
  sim.ScheduleAt(2.0, [&order](Simulator&) { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1.0;
  sim.ScheduleAt(4.5, [&seen](Simulator& s) { seen = s.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 4.5);
  EXPECT_EQ(sim.Now(), 4.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime inner = -1.0;
  sim.ScheduleAt(2.0, [&inner](Simulator& s) {
    s.ScheduleAfter(3.0, [&inner](Simulator& s2) { inner = s2.Now(); });
  });
  sim.RunAll();
  EXPECT_EQ(inner, 5.0);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&fired](Simulator&) { ++fired; });
  sim.ScheduleAt(10.0, [&fired](Simulator&) { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventExactlyAtBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(5.0, [&fired](Simulator&) { fired = true; });
  sim.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id =
      sim.ScheduleAt(1.0, [&fired](Simulator&) { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(1.0, [](Simulator&) {});
  sim.RunAll();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&fired](Simulator&) { ++fired; });
  sim.ScheduleAt(2.0, [&fired](Simulator&) { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void(Simulator&)> recurse = [&](Simulator& s) {
    if (++depth < 100) s.ScheduleAfter(0.5, recurse);
  };
  sim.ScheduleAt(0.0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(sim.Now(), 49.5, 1e-9);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(5.0, [](Simulator&) {});
  sim.RunAll();
  EXPECT_DEATH(sim.ScheduleAt(1.0, [](Simulator&) {}), "past");
}

TEST(PeriodicTaskTest, FiresAtFixedInterval) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTask task;
  task.Start(sim, 10.0, 10.0, 50.0,
             [&fire_times](Simulator& s) { fire_times.push_back(s.Now()); });
  sim.RunAll();
  EXPECT_EQ(fire_times,
            (std::vector<SimTime>{10.0, 20.0, 30.0, 40.0, 50.0}));
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, CancelStopsFutureFirings) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task;
  task.Start(sim, 1.0, 1.0, 100.0, [&](Simulator& s) {
    if (++fired == 3) task.Cancel(s);
  });
  sim.RunAll();
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace sqlb::des
