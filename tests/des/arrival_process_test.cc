#include "des/arrival_process.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqlb::des {
namespace {

TEST(WorkloadProfileTest, ConstantIsFlat) {
  ConstantWorkload w(0.8);
  EXPECT_EQ(w.FractionAt(0.0), 0.8);
  EXPECT_EQ(w.FractionAt(1e6), 0.8);
  EXPECT_EQ(w.MaxFraction(123.0), 0.8);
}

TEST(WorkloadProfileTest, RampInterpolatesLinearly) {
  RampWorkload w(0.3, 1.0, 10000.0);
  EXPECT_DOUBLE_EQ(w.FractionAt(0.0), 0.3);
  EXPECT_DOUBLE_EQ(w.FractionAt(5000.0), 0.65);
  EXPECT_DOUBLE_EQ(w.FractionAt(10000.0), 1.0);
  EXPECT_DOUBLE_EQ(w.FractionAt(20000.0), 1.0);  // clamps past the end
  EXPECT_DOUBLE_EQ(w.FractionAt(-5.0), 0.3);
  EXPECT_DOUBLE_EQ(w.MaxFraction(10000.0), 1.0);
}

TEST(PoissonArrivalProcessTest, ConstantRateCountMatchesExpectation) {
  Simulator sim;
  Rng rng(42);
  const double rate = 5.0;
  const SimTime horizon = 2000.0;
  std::uint64_t count = 0;
  PoissonArrivalProcess process([rate](SimTime) { return rate; }, rate, rng);
  process.Start(sim, 0.0, horizon, [&count](Simulator&) { ++count; });
  sim.RunAll();
  const double expected = rate * horizon;
  // Poisson std is sqrt(lambda T) = 100; allow 4 sigma.
  EXPECT_NEAR(static_cast<double>(count), expected, 4.0 * std::sqrt(expected));
  EXPECT_EQ(process.arrivals(), count);
}

TEST(PoissonArrivalProcessTest, ThinnedRampMatchesIntegral) {
  Simulator sim;
  Rng rng(7);
  // rate(t) = t / 100 on [0, 1000]: integral = 5000 arrivals expected.
  PoissonArrivalProcess process([](SimTime t) { return t / 100.0; }, 10.0,
                                rng);
  std::uint64_t count = 0;
  process.Start(sim, 0.0, 1000.0, [&count](Simulator&) { ++count; });
  sim.RunAll();
  EXPECT_NEAR(static_cast<double>(count), 5000.0, 4.0 * std::sqrt(5000.0));
}

TEST(PoissonArrivalProcessTest, ArrivalsStayInsideHorizon) {
  Simulator sim;
  Rng rng(3);
  std::vector<SimTime> times;
  PoissonArrivalProcess process([](SimTime) { return 50.0; }, 50.0, rng);
  process.Start(sim, 10.0, 20.0,
                [&times](Simulator& s) { times.push_back(s.Now()); });
  sim.RunAll();
  ASSERT_FALSE(times.empty());
  for (SimTime t : times) {
    EXPECT_GT(t, 10.0);
    EXPECT_LT(t, 20.0);
  }
}

TEST(PoissonArrivalProcessTest, StopHaltsGeneration) {
  Simulator sim;
  Rng rng(9);
  std::uint64_t count = 0;
  PoissonArrivalProcess process([](SimTime) { return 100.0; }, 100.0, rng);
  process.Start(sim, 0.0, 1000.0, [&](Simulator&) {
    if (++count == 5) process.Stop();
  });
  sim.RunAll();
  EXPECT_EQ(count, 5u);
}

TEST(PoissonArrivalProcessTest, DeterministicForFixedSeed) {
  auto run = [] {
    Simulator sim;
    Rng rng(1234);
    std::vector<SimTime> times;
    PoissonArrivalProcess process([](SimTime) { return 2.0; }, 2.0, rng);
    process.Start(sim, 0.0, 100.0,
                  [&times](Simulator& s) { times.push_back(s.Now()); });
    sim.RunAll();
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST(PoissonArrivalProcessDeathTest, RateAboveMaxAborts) {
  Simulator sim;
  Rng rng(5);
  PoissonArrivalProcess process([](SimTime) { return 20.0; }, 10.0, rng);
  process.Start(sim, 0.0, 100.0, [](Simulator&) {});
  EXPECT_DEATH(sim.RunAll(), "max_rate");
}

}  // namespace
}  // namespace sqlb::des
