#include "des/time_series.h"

#include <gtest/gtest.h>

namespace sqlb::des {
namespace {

TEST(TimeSeriesTest, MeanOverRange) {
  TimeSeries s;
  s.Add(0.0, 1.0);
  s.Add(10.0, 2.0);
  s.Add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(s.MeanOver(0.0, 20.0), 2.0);
  EXPECT_DOUBLE_EQ(s.MeanOver(5.0, 20.0), 2.5);
  EXPECT_DOUBLE_EQ(s.MeanOver(100.0, 200.0), 0.0);
}

TEST(TimeSeriesTest, ValueAtUsesStepInterpolation) {
  TimeSeries s;
  s.Add(10.0, 1.0);
  s.Add(20.0, 2.0);
  EXPECT_EQ(s.ValueAt(5.0, -1.0), -1.0);
  EXPECT_EQ(s.ValueAt(10.0), 1.0);
  EXPECT_EQ(s.ValueAt(15.0), 1.0);
  EXPECT_EQ(s.ValueAt(25.0), 2.0);
}

TEST(TimeSeriesTest, MaxIgnoresNothing) {
  TimeSeries s;
  s.Add(0.0, 1.0);
  s.Add(1.0, 5.0);
  s.Add(2.0, 3.0);
  EXPECT_EQ(s.Max(), 5.0);
  EXPECT_EQ(TimeSeries{}.Max(), 0.0);
}

TEST(SeriesSetTest, GetCreatesNamedSeries) {
  SeriesSet set;
  EXPECT_TRUE(set.empty());
  set.Add("a", 0.0, 1.0);
  set.Add("b", 0.0, 2.0);
  set.Add("a", 10.0, 3.0);
  EXPECT_EQ(set.Get("a").size(), 2u);
  EXPECT_EQ(set.Get("b").size(), 1u);
  EXPECT_EQ(set.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(set.Find("a"), nullptr);
  EXPECT_EQ(set.Find("zzz"), nullptr);
}

TEST(SeriesSetTest, CsvUsesUnionOfTimesWithStepFill) {
  SeriesSet set;
  set.Add("x", 0.0, 1.0);
  set.Add("x", 20.0, 2.0);
  set.Add("y", 10.0, 5.0);
  const std::string csv = set.ToCsv().ToString();
  EXPECT_EQ(csv,
            "time,x,y\n"
            "0,1,\n"
            "10,1,5\n"
            "20,2,5\n");
}

}  // namespace
}  // namespace sqlb::des
