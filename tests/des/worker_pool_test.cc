#include "des/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "des/seqlock.h"
#include "des/simulator.h"

namespace sqlb::des {
namespace {

TEST(WorkerPoolTest, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> hits(16, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossJobs) {
  WorkerPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (63 * 64 / 2));
}

TEST(WorkerPoolTest, EmptyAndTinyJobsAreSafe) {
  WorkerPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPoolTest, CoreAffinityIsOptInAndDegradesGracefully) {
  // Off by default: no worker is pinned.
  WorkerPool unpinned(4);
  EXPECT_EQ(unpinned.pinned_workers(), 0u);

  WorkerPoolOptions options;
  options.pin_threads = true;
  WorkerPool pinned(4, options);
  // At most the 3 spawned workers can pin; the exact count depends on the
  // host (single core, cpuset-restricted container, non-Linux platform all
  // legitimately degrade to fewer — construction must never fail).
  EXPECT_LE(pinned.pinned_workers(), 3u);
  if (std::thread::hardware_concurrency() <= 1) {
    EXPECT_EQ(pinned.pinned_workers(), 0u);
  }

  // Pinned or not, the pool still runs every index exactly once.
  std::vector<std::atomic<int>> hits(256);
  pinned.ParallelFor(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SeqLockTableTest, GuardsSerializeCriticalSections) {
  // Hammer two slots from a pool; the per-slot counters must never tear
  // (every increment inside the lock is published to the next acquirer).
  SeqLockTable locks(2);
  long counters[2] = {0, 0};
  WorkerPool pool(4);
  constexpr int kRounds = 2000;
  pool.ParallelFor(4 * kRounds, [&](std::size_t i) {
    const std::size_t slot = i % 2;
    const SeqLockTable::Guard guard = locks.Acquire(slot);
    ++counters[slot];
  });
  EXPECT_EQ(counters[0] + counters[1], 4L * kRounds);
  // Sequence counters: two increments per completed critical section.
  EXPECT_EQ(locks.SequenceOf(0) + locks.SequenceOf(1),
            2u * 4u * kRounds);
}

TEST(SeqLockTableTest, DefaultGuardIsANoOp) {
  SeqLockTable::Guard guard;
  EXPECT_FALSE(guard.holds_lock());

  SeqLockTable locks(1);
  {
    SeqLockTable::Guard held = locks.Acquire(0);
    EXPECT_TRUE(held.holds_lock());
    // Move transfers ownership; the source must not double-release.
    SeqLockTable::Guard moved = std::move(held);
    EXPECT_TRUE(moved.holds_lock());
    EXPECT_FALSE(held.holds_lock());
  }
  EXPECT_EQ(locks.SequenceOf(0), 2u);
}

TEST(LaneGroupTest, SyncDrainsEveryLaneToTheBarrier) {
  Simulator a, b;
  std::vector<double> fired;
  a.ScheduleAt(1.0, [&](Simulator&) { fired.push_back(1.0); });
  a.ScheduleAt(5.0, [&](Simulator&) { fired.push_back(5.0); });
  b.ScheduleAt(2.0, [&](Simulator&) { fired.push_back(2.0); });
  b.ScheduleAt(9.0, [&](Simulator&) { fired.push_back(9.0); });

  WorkerPool pool(1);  // deterministic interleaving for the test
  std::vector<SimTime> merges;
  std::vector<BarrierKind> kinds;
  LaneGroup group({&a, &b}, &pool, [&](SimTime t, BarrierKind kind) {
    merges.push_back(t);
    kinds.push_back(kind);
  });

  group.SyncTo(4.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(a.Now(), 4.0);
  EXPECT_EQ(b.Now(), 4.0);

  group.DrainAll();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 5.0, 9.0}));
  ASSERT_EQ(merges.size(), 2u);
  EXPECT_EQ(merges[0], 4.0);
  EXPECT_EQ(kinds, (std::vector<BarrierKind>{BarrierKind::kEpoch,
                                             BarrierKind::kEpoch}));
  EXPECT_EQ(group.epoch_syncs(), 2u);
  EXPECT_EQ(group.rebalance_syncs(), 0u);
}

TEST(LaneGroupTest, RebalanceBarriersReportTheirKindToTheMergeHook) {
  Simulator coordinator, lane;
  std::vector<std::string> order;
  lane.ScheduleAt(2.0, [&](Simulator&) { order.push_back("lane@2"); });
  lane.ScheduleAt(4.0, [&](Simulator&) { order.push_back("lane@4"); });
  coordinator.ScheduleBarrierAt(
      3.0, [&](Simulator&) { order.push_back("rebalance@3"); },
      BarrierKind::kRebalance);

  WorkerPool pool(1);
  std::vector<BarrierKind> kinds;
  LaneGroup group({&lane}, &pool,
                  [&](SimTime, BarrierKind kind) { kinds.push_back(kind); });
  coordinator.RunUntilParallel(5.0, group);

  // The rebalance barrier at 3 drains the lane first (lane@2 fires), and
  // the merge hook learns it may re-partition; the closing sync at 5 is a
  // plain epoch.
  EXPECT_EQ(order,
            (std::vector<std::string>{"lane@2", "rebalance@3", "lane@4"}));
  EXPECT_EQ(kinds, (std::vector<BarrierKind>{BarrierKind::kRebalance,
                                             BarrierKind::kEpoch}));
  EXPECT_EQ(group.rebalance_syncs(), 1u);
  EXPECT_EQ(group.epoch_syncs(), 1u);
}

TEST(RunUntilParallelTest, BarriersSyncLanesBeforeFiring) {
  Simulator coordinator, lane;
  std::vector<std::string> order;
  lane.ScheduleAt(3.0, [&](Simulator&) { order.push_back("lane@3"); });
  lane.ScheduleAt(7.0, [&](Simulator&) { order.push_back("lane@7"); });
  coordinator.ScheduleAt(
      5.0, [&](Simulator&) { order.push_back("barrier@5"); },
      /*barrier=*/true);
  coordinator.ScheduleAt(6.0,
                         [&](Simulator&) { order.push_back("plain@6"); });

  WorkerPool pool(1);
  LaneGroup group({&lane}, &pool, nullptr);
  coordinator.RunUntilParallel(10.0, group);

  // The barrier at 5 sees the lane drained to 5 (lane@3 fired); the plain
  // event at 6 does not sync, so lane@7 only fires at the closing sync.
  EXPECT_EQ(order, (std::vector<std::string>{"lane@3", "barrier@5", "plain@6",
                                             "lane@7"}));
  EXPECT_EQ(coordinator.Now(), 10.0);
  EXPECT_EQ(lane.Now(), 10.0);
}

}  // namespace
}  // namespace sqlb::des
