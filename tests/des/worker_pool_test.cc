#include "des/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "des/simulator.h"

namespace sqlb::des {
namespace {

TEST(WorkerPoolTest, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> hits(16, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPoolTest, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossJobs) {
  WorkerPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (63 * 64 / 2));
}

TEST(WorkerPoolTest, EmptyAndTinyJobsAreSafe) {
  WorkerPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(LaneGroupTest, SyncDrainsEveryLaneToTheBarrier) {
  Simulator a, b;
  std::vector<double> fired;
  a.ScheduleAt(1.0, [&](Simulator&) { fired.push_back(1.0); });
  a.ScheduleAt(5.0, [&](Simulator&) { fired.push_back(5.0); });
  b.ScheduleAt(2.0, [&](Simulator&) { fired.push_back(2.0); });
  b.ScheduleAt(9.0, [&](Simulator&) { fired.push_back(9.0); });

  WorkerPool pool(1);  // deterministic interleaving for the test
  std::vector<SimTime> merges;
  LaneGroup group({&a, &b}, &pool, [&](SimTime t) { merges.push_back(t); });

  group.SyncTo(4.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(a.Now(), 4.0);
  EXPECT_EQ(b.Now(), 4.0);

  group.DrainAll();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 5.0, 9.0}));
  ASSERT_EQ(merges.size(), 2u);
  EXPECT_EQ(merges[0], 4.0);
}

TEST(RunUntilParallelTest, BarriersSyncLanesBeforeFiring) {
  Simulator coordinator, lane;
  std::vector<std::string> order;
  lane.ScheduleAt(3.0, [&](Simulator&) { order.push_back("lane@3"); });
  lane.ScheduleAt(7.0, [&](Simulator&) { order.push_back("lane@7"); });
  coordinator.ScheduleAt(
      5.0, [&](Simulator&) { order.push_back("barrier@5"); },
      /*barrier=*/true);
  coordinator.ScheduleAt(6.0,
                         [&](Simulator&) { order.push_back("plain@6"); });

  WorkerPool pool(1);
  LaneGroup group({&lane}, &pool, nullptr);
  coordinator.RunUntilParallel(10.0, group);

  // The barrier at 5 sees the lane drained to 5 (lane@3 fired); the plain
  // event at 6 does not sync, so lane@7 only fires at the closing sync.
  EXPECT_EQ(order, (std::vector<std::string>{"lane@3", "barrier@5", "plain@6",
                                             "lane@7"}));
  EXPECT_EQ(coordinator.Now(), 10.0);
  EXPECT_EQ(lane.Now(), 10.0);
}

}  // namespace
}  // namespace sqlb::des
