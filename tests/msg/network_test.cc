#include "msg/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace sqlb::msg {
namespace {

/// Records everything it receives.
class RecordingNode final : public Node {
 public:
  void OnMessage(Network&, const Message& message) override {
    received.push_back(message);
  }
  std::vector<Message> received;
};

/// Echoes every message back to its sender with kind + 1.
class EchoNode final : public Node {
 public:
  void OnMessage(Network& network, const Message& message) override {
    Message reply;
    reply.from = message.to;
    reply.to = message.from;
    reply.kind = message.kind + 1;
    reply.correlation = message.correlation;
    network.Send(std::move(reply));
  }
};

TEST(NetworkTest, RegisterAssignsDistinctAddresses) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);
  EXPECT_NE(ida, idb);
  EXPECT_EQ(network.node_count(), 2u);
}

TEST(NetworkTest, DeliversToDestination) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);

  Message m;
  m.from = ida;
  m.to = idb;
  m.kind = 42;
  m.payload = std::string("hello");
  network.Send(std::move(m));
  sim.RunAll();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].kind, 42u);
  EXPECT_EQ(std::any_cast<std::string>(b.received[0].payload), "hello");
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(network.delivered_messages(), 1u);
}

TEST(NetworkTest, LatencyDelaysDelivery) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.25, 0.0}, Rng(1));
  RecordingNode a;
  const NodeId id = network.Register(&a);

  Message m;
  m.from = id;
  m.to = id;
  network.Send(std::move(m));
  sim.RunUntil(0.2);
  EXPECT_TRUE(a.received.empty());
  sim.RunAll();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.25);
}

TEST(NetworkTest, JitterStaysWithinBounds) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.1, 0.05}, Rng(7));
  RecordingNode a;
  const NodeId id = network.Register(&a);
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.from = id;
    m.to = id;
    network.Send(std::move(m));
  }
  sim.RunAll();
  EXPECT_EQ(a.received.size(), 200u);
  EXPECT_LE(sim.Now(), 0.15 + 1e-9);
}

TEST(NetworkTest, MessagesToDepartedNodesAreDropped) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.1, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);

  Message m;
  m.from = ida;
  m.to = idb;
  network.Send(std::move(m));
  network.Unregister(idb);  // departs while the message is in flight
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.dropped_messages(), 1u);
  EXPECT_EQ(network.delivered_messages(), 0u);
}

TEST(NetworkTest, RequestReplyRoundTrip) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.01, 0.0}, Rng(1));
  RecordingNode caller;
  EchoNode echo;
  const NodeId caller_id = network.Register(&caller);
  const NodeId echo_id = network.Register(&echo);

  Message m;
  m.from = caller_id;
  m.to = echo_id;
  m.kind = 10;
  m.correlation = 99;
  network.Send(std::move(m));
  sim.RunAll();

  ASSERT_EQ(caller.received.size(), 1u);
  EXPECT_EQ(caller.received[0].kind, 11u);
  EXPECT_EQ(caller.received[0].correlation, 99u);
  EXPECT_NEAR(sim.Now(), 0.02, 1e-9);  // two hops
}

TEST(NetworkDeathTest, SendNeedsDestination) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  Message m;  // no destination
  EXPECT_DEATH(network.Send(std::move(m)), "destination");
}

// ---------------------------------------------------------------------------
// Deterministic fault injection (FaultPolicy).
// ---------------------------------------------------------------------------

/// Records delivery times alongside the messages.
class TimedRecordingNode final : public Node {
 public:
  void OnMessage(Network& network, const Message& message) override {
    received.push_back(message);
    times.push_back(network.sim().Now());
  }
  std::vector<Message> received;
  std::vector<SimTime> times;
};

/// Sends `count` self-addressed messages and returns (delivery times,
/// injected drop count).
std::pair<std::vector<SimTime>, std::uint64_t> RunFaultedBatch(
    const FaultPolicy* policy, int count, std::uint64_t latency_seed = 5) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.01, 0.02}, Rng(latency_seed));
  if (policy != nullptr) network.SetFaultPolicy(*policy);
  TimedRecordingNode node;
  const NodeId id = network.Register(&node);
  for (int i = 0; i < count; ++i) {
    Message m;
    m.from = id;
    m.to = id;
    m.kind = static_cast<std::uint32_t>(i);
    network.Send(std::move(m));
  }
  sim.RunAll();
  return {node.times, network.injected_drops()};
}

TEST(NetworkFaultTest, DropsAreSeededAndCounted) {
  FaultPolicy policy;
  policy.drop_probability = 0.5;
  policy.seed = 11;

  const auto [times_a, drops_a] = RunFaultedBatch(&policy, 200);
  const auto [times_b, drops_b] = RunFaultedBatch(&policy, 200);

  // Roughly half die, and the same seed kills the same messages.
  EXPECT_GT(drops_a, 50u);
  EXPECT_LT(drops_a, 150u);
  EXPECT_EQ(drops_a, drops_b);
  ASSERT_EQ(times_a.size(), times_b.size());
  EXPECT_EQ(times_a, times_b);
  EXPECT_EQ(times_a.size() + drops_a, 200u);
}

TEST(NetworkFaultTest, AccountingIdentityHoldsUnderDrops) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.01, 0.0}, Rng(3));
  FaultPolicy policy;
  policy.drop_probability = 0.3;
  network.SetFaultPolicy(policy);
  TimedRecordingNode node;
  const NodeId id = network.Register(&node);
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.from = id;
    m.to = id;
    network.Send(std::move(m));
  }
  sim.RunAll();
  EXPECT_EQ(network.sent_messages(), 100u);
  EXPECT_EQ(network.sent_messages(),
            network.delivered_messages() + network.dropped_messages());
  EXPECT_EQ(network.dropped_messages(), network.injected_drops());
}

TEST(NetworkFaultTest, InjectedDelayAddsToLatency) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.01, 0.0}, Rng(3));
  FaultPolicy policy;
  policy.delay_probability = 1.0;
  policy.extra_delay_min = 0.5;
  policy.extra_delay_max = 0.5;
  network.SetFaultPolicy(policy);
  TimedRecordingNode node;
  const NodeId id = network.Register(&node);
  Message m;
  m.from = id;
  m.to = id;
  network.Send(std::move(m));
  sim.RunAll();
  ASSERT_EQ(node.times.size(), 1u);
  EXPECT_DOUBLE_EQ(node.times[0], 0.51);
  EXPECT_EQ(network.injected_delays(), 1u);
  EXPECT_EQ(network.dropped_messages(), 0u);
}

TEST(NetworkFaultTest, ZeroPolicyIsBitIdenticalToNoPolicy) {
  // Installing an all-zero policy consumes no randomness: delivery times
  // are bit-identical to a network that never saw SetFaultPolicy.
  const FaultPolicy zero;
  const auto [plain_times, plain_drops] = RunFaultedBatch(nullptr, 100);
  const auto [zero_times, zero_drops] = RunFaultedBatch(&zero, 100);
  EXPECT_EQ(plain_drops, 0u);
  EXPECT_EQ(zero_drops, 0u);
  ASSERT_EQ(plain_times.size(), zero_times.size());
  EXPECT_EQ(plain_times, zero_times);
}

TEST(NetworkFaultTest, DropConsumesNoLatencyRandomness) {
  // The fault stream is independent of the latency stream: the surviving
  // messages of a faulted run draw exactly the latency samples they would
  // have drawn in order — drops never shift the jitter sequence of the
  // messages that follow them within the same Send order.
  FaultPolicy policy;
  policy.drop_probability = 0.5;
  policy.seed = 11;
  const auto [faulted_times, drops] = RunFaultedBatch(&policy, 50);
  ASSERT_GT(drops, 0u);
  const auto [plain_times, plain_drops] = RunFaultedBatch(nullptr, 50);
  ASSERT_EQ(plain_drops, 0u);
  // Every surviving delivery time appears in the fault-free run's
  // delivery-time multiset (same latency stream, fewer consumers of it
  // would break this if drops consumed jitter draws).
  std::vector<SimTime> plain_sorted = plain_times;
  std::sort(plain_sorted.begin(), plain_sorted.end());
  for (SimTime t : faulted_times) {
    EXPECT_TRUE(std::binary_search(plain_sorted.begin(), plain_sorted.end(),
                                   t))
        << t;
  }
}

TEST(NetworkFaultDeathTest, PolicyProbabilitiesAreValidated) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  FaultPolicy bad;
  bad.drop_probability = 1.5;
  EXPECT_DEATH(network.SetFaultPolicy(bad), "probability");
  FaultPolicy unordered;
  unordered.extra_delay_min = 0.5;
  unordered.extra_delay_max = 0.1;
  EXPECT_DEATH(network.SetFaultPolicy(unordered), "delay");
}

}  // namespace
}  // namespace sqlb::msg
