#include "msg/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sqlb::msg {
namespace {

/// Records everything it receives.
class RecordingNode final : public Node {
 public:
  void OnMessage(Network&, const Message& message) override {
    received.push_back(message);
  }
  std::vector<Message> received;
};

/// Echoes every message back to its sender with kind + 1.
class EchoNode final : public Node {
 public:
  void OnMessage(Network& network, const Message& message) override {
    Message reply;
    reply.from = message.to;
    reply.to = message.from;
    reply.kind = message.kind + 1;
    reply.correlation = message.correlation;
    network.Send(std::move(reply));
  }
};

TEST(NetworkTest, RegisterAssignsDistinctAddresses) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);
  EXPECT_NE(ida, idb);
  EXPECT_EQ(network.node_count(), 2u);
}

TEST(NetworkTest, DeliversToDestination) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);

  Message m;
  m.from = ida;
  m.to = idb;
  m.kind = 42;
  m.payload = std::string("hello");
  network.Send(std::move(m));
  sim.RunAll();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].kind, 42u);
  EXPECT_EQ(std::any_cast<std::string>(b.received[0].payload), "hello");
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(network.delivered_messages(), 1u);
}

TEST(NetworkTest, LatencyDelaysDelivery) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.25, 0.0}, Rng(1));
  RecordingNode a;
  const NodeId id = network.Register(&a);

  Message m;
  m.from = id;
  m.to = id;
  network.Send(std::move(m));
  sim.RunUntil(0.2);
  EXPECT_TRUE(a.received.empty());
  sim.RunAll();
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.25);
}

TEST(NetworkTest, JitterStaysWithinBounds) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.1, 0.05}, Rng(7));
  RecordingNode a;
  const NodeId id = network.Register(&a);
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.from = id;
    m.to = id;
    network.Send(std::move(m));
  }
  sim.RunAll();
  EXPECT_EQ(a.received.size(), 200u);
  EXPECT_LE(sim.Now(), 0.15 + 1e-9);
}

TEST(NetworkTest, MessagesToDepartedNodesAreDropped) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.1, 0.0}, Rng(1));
  RecordingNode a, b;
  const NodeId ida = network.Register(&a);
  const NodeId idb = network.Register(&b);

  Message m;
  m.from = ida;
  m.to = idb;
  network.Send(std::move(m));
  network.Unregister(idb);  // departs while the message is in flight
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.dropped_messages(), 1u);
  EXPECT_EQ(network.delivered_messages(), 0u);
}

TEST(NetworkTest, RequestReplyRoundTrip) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.01, 0.0}, Rng(1));
  RecordingNode caller;
  EchoNode echo;
  const NodeId caller_id = network.Register(&caller);
  const NodeId echo_id = network.Register(&echo);

  Message m;
  m.from = caller_id;
  m.to = echo_id;
  m.kind = 10;
  m.correlation = 99;
  network.Send(std::move(m));
  sim.RunAll();

  ASSERT_EQ(caller.received.size(), 1u);
  EXPECT_EQ(caller.received[0].kind, 11u);
  EXPECT_EQ(caller.received[0].correlation, 99u);
  EXPECT_NEAR(sim.Now(), 0.02, 1e-9);  // two hops
}

TEST(NetworkDeathTest, SendNeedsDestination) {
  des::Simulator sim;
  Network network(sim, LatencyModel{0.0, 0.0}, Rng(1));
  Message m;  // no destination
  EXPECT_DEATH(network.Send(std::move(m)), "destination");
}

}  // namespace
}  // namespace sqlb::msg
