#include "common/types.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace sqlb {
namespace {

TEST(TypedIdTest, DefaultIsInvalid) {
  ProviderId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value, ProviderId::kInvalidValue);
}

TEST(TypedIdTest, ExplicitConstructionIsValid) {
  ProviderId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.index(), 7u);
}

TEST(TypedIdTest, ComparisonOperators) {
  EXPECT_EQ(ProviderId(3), ProviderId(3));
  EXPECT_NE(ProviderId(3), ProviderId(4));
  EXPECT_LT(ProviderId(3), ProviderId(4));
}

TEST(TypedIdTest, DistinctTagsDoNotConvert) {
  // ConsumerId and ProviderId are different types even with equal values.
  static_assert(!std::is_convertible_v<ConsumerId, ProviderId>);
  static_assert(!std::is_convertible_v<ProviderId, ConsumerId>);
  static_assert(!std::is_convertible_v<std::uint32_t, ProviderId>);
}

TEST(TypedIdTest, HashableInUnorderedContainers) {
  std::unordered_set<ProviderId> set;
  set.insert(ProviderId(1));
  set.insert(ProviderId(2));
  set.insert(ProviderId(1));  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(ProviderId(2)));
  EXPECT_FALSE(set.count(ProviderId(3)));
}

TEST(SimTimeTest, InfinityConstant) {
  EXPECT_GT(kSimTimeInfinity, 1e300);
  SimTime t = 5.0;
  EXPECT_LT(t, kSimTimeInfinity);
}

TEST(QueryIdTest, InvalidSentinel) {
  EXPECT_EQ(kInvalidQueryId, std::numeric_limits<QueryId>::max());
}

}  // namespace
}  // namespace sqlb
