#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqlb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MomentsMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 50 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(WindowedSumTest, SumsWithinWindow) {
  WindowedSum w(10.0);
  w.Add(0.0, 5.0);
  w.Add(4.0, 3.0);
  EXPECT_DOUBLE_EQ(w.SumAt(5.0), 8.0);
}

TEST(WindowedSumTest, EvictsExpiredEvents) {
  WindowedSum w(10.0);
  w.Add(0.0, 5.0);
  w.Add(4.0, 3.0);
  // At t = 10, the event at t = 0 is exactly on the boundary and expires.
  EXPECT_DOUBLE_EQ(w.SumAt(10.0), 3.0);
  EXPECT_DOUBLE_EQ(w.SumAt(14.1), 0.0);
  EXPECT_EQ(w.pending_events(), 0u);
}

TEST(WindowedSumTest, RateIsSumOverWidth) {
  WindowedSum w(60.0);
  w.Add(0.0, 120.0);
  w.Add(10.0, 120.0);
  EXPECT_DOUBLE_EQ(w.RateAt(10.0), 4.0);
}

TEST(WindowedSumTest, SteadyStreamGivesSteadyRate) {
  // Mirrors the utilization definition: allocating `u` units every second
  // to a provider of capacity c gives Ut = u / c regardless of the window.
  WindowedSum w(60.0);
  for (int t = 0; t <= 600; ++t) {
    w.Add(static_cast<double>(t), 80.0);
  }
  // 60 events of 80 units inside (540, 600].
  EXPECT_NEAR(w.SumAt(600.0) / (100.0 * 60.0), 0.8, 0.01);
}

TEST(WindowedSumTest, ClearResets) {
  WindowedSum w(5.0);
  w.Add(1.0, 2.0);
  w.Clear();
  EXPECT_DOUBLE_EQ(w.SumAt(1.0), 0.0);
  w.Add(0.5, 1.0);  // times may restart after Clear
  EXPECT_DOUBLE_EQ(w.SumAt(0.5), 1.0);
}

TEST(WindowedSumDeathTest, RejectsTimeTravel) {
  WindowedSum w(5.0);
  w.Add(2.0, 1.0);
  EXPECT_DEATH(w.Add(1.0, 1.0), "non-decreasing");
}

TEST(WindowedMeanTest, MeanOfRetainedValues) {
  WindowedMean m(3);
  EXPECT_EQ(m.Mean(-1.0), -1.0);
  m.Add(1.0);
  m.Add(2.0);
  EXPECT_DOUBLE_EQ(m.Mean(), 1.5);
  m.Add(3.0);
  m.Add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.75), 7.5);
}

}  // namespace
}  // namespace sqlb
