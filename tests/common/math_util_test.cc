#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sqlb {
namespace {

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-2.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(9.0, 0.0, 1.0), 1.0);
}

TEST(MathUtilTest, ClampIntentionMapsToNominalRange) {
  EXPECT_EQ(ClampIntention(-2.5), -1.0);  // Def. 8 overshoot (Figure 2)
  EXPECT_EQ(ClampIntention(0.3), 0.3);
  EXPECT_EQ(ClampIntention(1.7), 1.0);
}

TEST(MathUtilTest, BoundedPowMatchesStdPow) {
  for (double x : {0.0, 0.1, 0.5, 0.9, 1.0, 2.2}) {
    for (double e : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      EXPECT_NEAR(BoundedPow(x, e), std::pow(x, e), 1e-12)
          << "x=" << x << " e=" << e;
    }
  }
}

TEST(MathUtilTest, BoundedPowShortCircuits) {
  EXPECT_EQ(BoundedPow(0.37, 0.0), 1.0);
  EXPECT_EQ(BoundedPow(0.37, 1.0), 0.37);
}

TEST(MathUtilTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(ApproxEqual(1.0, 1.0001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.01, 0.1));
}

TEST(MathUtilTest, Lerp) {
  EXPECT_DOUBLE_EQ(Lerp(0.3, 1.0, 0.0), 0.3);
  EXPECT_DOUBLE_EQ(Lerp(0.3, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Lerp(0.3, 1.0, 0.5), 0.65);
}

TEST(MathUtilTest, IntentionToUnit) {
  EXPECT_DOUBLE_EQ(IntentionToUnit(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(IntentionToUnit(0.0), 0.5);
  EXPECT_DOUBLE_EQ(IntentionToUnit(1.0), 1.0);
  // Out-of-range intentions are clamped before mapping.
  EXPECT_DOUBLE_EQ(IntentionToUnit(-2.5), 0.0);
  EXPECT_DOUBLE_EQ(IntentionToUnit(3.0), 1.0);
}

}  // namespace
}  // namespace sqlb
