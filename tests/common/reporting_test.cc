#include "common/reporting.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace sqlb {
namespace {

TEST(FormatNumberTest, TrimsAndRounds) {
  EXPECT_EQ(FormatNumber(0.5), "0.5");
  EXPECT_EQ(FormatNumber(1.0), "1");
  EXPECT_EQ(FormatNumber(12000.0), "12000");
  EXPECT_EQ(FormatNumber(1.0 / 3.0, 3), "0.333");
}

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv({"time", "value"});
  csv.BeginRow();
  csv.AddCell(std::string("0"));
  csv.AddCell(0.5);
  csv.BeginRow();
  csv.AddCell(std::string("50"));
  csv.AddCell(std::size_t{42});
  EXPECT_EQ(csv.row_count(), 2u);
  EXPECT_EQ(csv.ToString(), "time,value\n0,0.5\n50,42\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"name"});
  csv.BeginRow();
  csv.AddCell(std::string("a,b"));
  csv.BeginRow();
  csv.AddCell(std::string("say \"hi\""));
  EXPECT_EQ(csv.ToString(), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, WritesFileCreatingDirectories) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sqlb_csv_test").string();
  std::filesystem::remove_all(dir);
  CsvWriter csv({"x"});
  csv.BeginRow();
  csv.AddCell(1.0);
  const std::string path = dir + "/nested/out.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n1\n");
  std::filesystem::remove_all(dir);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"method", "rt"});
  table.AddRow({"SQLB", "1.4"});
  table.AddRow({"Mariposa-like", "3"});
  const std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("SQLB"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Numeric cells are right-aligned: "1.4" is preceded by a space pad.
  EXPECT_NE(out.find(" 1.4"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW({ const std::string out = table.ToString(); });
}

TEST(EnsureOutputPathTest, CreatesDirectory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sqlb_out_test").string();
  std::filesystem::remove_all(dir);
  auto result = EnsureOutputPath(dir, "file.csv");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), dir + "/file.csv");
  EXPECT_TRUE(std::filesystem::exists(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sqlb
