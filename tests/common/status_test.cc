#include "common/status.h"

#include <gtest/gtest.h>

namespace sqlb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::NotFound("no such provider");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such provider");
  EXPECT_EQ(s.ToString(), "NotFound: no such provider");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::TimedOut("intention collection"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(CheckTest, PassingConditionDoesNotAbort) {
  SQLB_CHECK(1 + 1 == 2, "arithmetic works");
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(SQLB_CHECK(false, "intentional failure"),
               "intentional failure");
}

}  // namespace
}  // namespace sqlb
