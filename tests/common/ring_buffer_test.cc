#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <string>

namespace sqlb {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> buffer(3);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.full());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.capacity(), 3u);
}

TEST(RingBufferTest, PushWithoutEviction) {
  RingBuffer<int> buffer(3);
  EXPECT_FALSE(buffer.Push(1));
  EXPECT_FALSE(buffer.Push(2));
  EXPECT_FALSE(buffer.Push(3));
  EXPECT_TRUE(buffer.full());
  EXPECT_EQ(buffer.oldest(), 1);
  EXPECT_EQ(buffer.newest(), 3);
}

TEST(RingBufferTest, EvictsOldestWhenFull) {
  RingBuffer<int> buffer(3);
  buffer.Push(1);
  buffer.Push(2);
  buffer.Push(3);
  int evicted = 0;
  EXPECT_TRUE(buffer.Push(4, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(buffer.oldest(), 2);
  EXPECT_EQ(buffer.newest(), 4);
  EXPECT_EQ(buffer.size(), 3u);
}

TEST(RingBufferTest, AtIsOldestFirst) {
  RingBuffer<int> buffer(3);
  for (int i = 1; i <= 5; ++i) buffer.Push(i);
  EXPECT_EQ(buffer.at(0), 3);
  EXPECT_EQ(buffer.at(1), 4);
  EXPECT_EQ(buffer.at(2), 5);
}

TEST(RingBufferTest, ForEachVisitsInOrder) {
  RingBuffer<int> buffer(4);
  for (int i = 0; i < 10; ++i) buffer.Push(i);
  std::vector<int> seen;
  buffer.ForEach([&seen](const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{6, 7, 8, 9}));
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> buffer(2);
  buffer.Push(1);
  buffer.Push(2);
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  buffer.Push(9);
  EXPECT_EQ(buffer.oldest(), 9);
}

TEST(RingBufferTest, CapacityOneAlwaysKeepsNewest) {
  RingBuffer<std::string> buffer(1);
  buffer.Push("a");
  std::string evicted;
  EXPECT_TRUE(buffer.Push("b", &evicted));
  EXPECT_EQ(evicted, "a");
  EXPECT_EQ(buffer.newest(), "b");
  EXPECT_EQ(buffer.oldest(), "b");
}

TEST(RingBufferTest, LongWraparoundKeepsWindowSemantics) {
  // Mirrors the "k last interactions" use: after many pushes the buffer
  // holds exactly the last k values.
  const std::size_t k = 7;
  RingBuffer<int> buffer(k);
  for (int i = 0; i < 1000; ++i) buffer.Push(i);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_EQ(buffer.at(j), static_cast<int>(1000 - k + j));
  }
}

TEST(RingBufferDeathTest, OutOfRangeAccessAborts) {
  RingBuffer<int> buffer(2);
  buffer.Push(1);
  EXPECT_DEATH(buffer.at(1), "out of range");
  EXPECT_DEATH(RingBuffer<int>(0), "capacity");
}

}  // namespace
}  // namespace sqlb
