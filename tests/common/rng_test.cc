#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sqlb {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-0.54, 0.34);
    ASSERT_GE(x, -0.54);
    ASSERT_LT(x, 0.34);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.34, 1.0);
  EXPECT_NEAR(sum / n, 0.67, 0.005);
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> histogram(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 10, 500);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.Exponential(0.5), 0.0);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(CounterRngTest, OrderIndependent) {
  CounterRng rng(99);
  const double ab = rng.Double(5, 10);
  // Interleave other draws; the keyed draw must not change.
  (void)rng.Double(1, 1);
  (void)rng.Double(2, 2);
  EXPECT_EQ(rng.Double(5, 10), ab);
}

TEST(CounterRngTest, DistinctKeysDiffer) {
  CounterRng rng(99);
  EXPECT_NE(rng.Uint64(1, 2), rng.Uint64(2, 1));
  EXPECT_NE(rng.Uint64(0, 0), rng.Uint64(0, 1));
}

TEST(CounterRngTest, UniformRangeAndDeterminism) {
  CounterRng a(7), b(7);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double x = a.Uniform(-1.0, 0.2, k, k * 3);
    ASSERT_GE(x, -1.0);
    ASSERT_LT(x, 0.2);
    ASSERT_EQ(x, b.Uniform(-1.0, 0.2, k, k * 3));
  }
}

TEST(CounterRngTest, MeanIsCentered) {
  CounterRng rng(131);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Double(static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace sqlb
