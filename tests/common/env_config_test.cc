#include "common/env_config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sqlb {
namespace {

class EnvConfigTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, /*overwrite=*/1);
    touched_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : touched_) ::unsetenv(name);
  }
  std::vector<const char*> touched_;
};

TEST_F(EnvConfigTest, StringFallback) {
  EXPECT_EQ(GetEnvString("SQLB_TEST_UNSET", "dflt"), "dflt");
  SetEnv("SQLB_TEST_STR", "hello");
  EXPECT_EQ(GetEnvString("SQLB_TEST_STR", "dflt"), "hello");
}

TEST_F(EnvConfigTest, Uint64ParsesOrFallsBack) {
  EXPECT_EQ(GetEnvUint64("SQLB_TEST_UNSET", 7), 7u);
  SetEnv("SQLB_TEST_U64", "123");
  EXPECT_EQ(GetEnvUint64("SQLB_TEST_U64", 7), 123u);
  SetEnv("SQLB_TEST_U64", "not-a-number");
  EXPECT_EQ(GetEnvUint64("SQLB_TEST_U64", 7), 7u);
  SetEnv("SQLB_TEST_U64", "12abc");
  EXPECT_EQ(GetEnvUint64("SQLB_TEST_U64", 7), 7u);
}

TEST_F(EnvConfigTest, DoubleParsesOrFallsBack) {
  EXPECT_EQ(GetEnvDouble("SQLB_TEST_UNSET", 0.8), 0.8);
  SetEnv("SQLB_TEST_DBL", "0.35");
  EXPECT_DOUBLE_EQ(GetEnvDouble("SQLB_TEST_DBL", 0.8), 0.35);
  SetEnv("SQLB_TEST_DBL", "oops");
  EXPECT_EQ(GetEnvDouble("SQLB_TEST_DBL", 0.8), 0.8);
}

TEST_F(EnvConfigTest, BoolRecognizesCommonSpellings) {
  EXPECT_FALSE(GetEnvBool("SQLB_TEST_UNSET", false));
  EXPECT_TRUE(GetEnvBool("SQLB_TEST_UNSET", true));
  for (const char* yes : {"1", "true", "TRUE", "yes", "on"}) {
    SetEnv("SQLB_TEST_BOOL", yes);
    EXPECT_TRUE(GetEnvBool("SQLB_TEST_BOOL", false)) << yes;
  }
  for (const char* no : {"0", "false", "no", "OFF"}) {
    SetEnv("SQLB_TEST_BOOL", no);
    EXPECT_FALSE(GetEnvBool("SQLB_TEST_BOOL", true)) << no;
  }
  SetEnv("SQLB_TEST_BOOL", "maybe");
  EXPECT_TRUE(GetEnvBool("SQLB_TEST_BOOL", true));
}

TEST_F(EnvConfigTest, BenchHelpers) {
  SetEnv("SQLB_REPEAT", "5");
  EXPECT_EQ(BenchRepetitions(2), 5u);
  SetEnv("SQLB_SEED", "99");
  EXPECT_EQ(BenchSeed(42), 99u);
  SetEnv("SQLB_FAST", "1");
  EXPECT_TRUE(FastBenchMode());
  SetEnv("SQLB_RESULTS", "/tmp/sqlb_results");
  EXPECT_EQ(ResultsDirectory(), "/tmp/sqlb_results");
}

}  // namespace
}  // namespace sqlb
