// Integration tests pinning the *qualitative* findings of Section 6 on a
// reduced configuration: who wins, in which metric, and in which regime.
// Absolute values differ from the paper (different substrate, smaller
// population); the orderings must not.

#include <gtest/gtest.h>

#include <cmath>

#include "experiments/experiments.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using experiments::MethodKind;
using runtime::MediationSystem;

/// Reduced Table 2 with the paper's provider-to-traffic sparsity.
runtime::SystemConfig ShapeConfig(std::uint64_t seed) {
  runtime::SystemConfig config;
  config.population.num_consumers = 50;
  config.population.num_providers = 100;
  config.provider.window.capacity = 150;
  config.consumer.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(0.7);
  config.duration = 1000.0;
  config.stats_warmup = 200.0;
  config.seed = seed;
  return config;
}

double SeriesMean(const runtime::RunResult& result, const char* key) {
  return result.series.Find(key)->MeanOver(200.0, 1000.0);
}

class PaperShapesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const runtime::SystemConfig config = ShapeConfig(1234);
    sqlb_ = new runtime::RunResult(experiments::RunMethod(MethodKind::kSqlb, config));
    mariposa_ = new runtime::RunResult(experiments::RunMethod(MethodKind::kMariposa, config));
    capacity_ =
        new runtime::RunResult(experiments::RunMethod(MethodKind::kCapacityBased, config));
  }
  static void TearDownTestSuite() {
    delete sqlb_;
    delete mariposa_;
    delete capacity_;
    sqlb_ = mariposa_ = capacity_ = nullptr;
  }

  static runtime::RunResult* sqlb_;
  static runtime::RunResult* mariposa_;
  static runtime::RunResult* capacity_;
};

runtime::RunResult* PaperShapesTest::sqlb_ = nullptr;
runtime::RunResult* PaperShapesTest::mariposa_ = nullptr;
runtime::RunResult* PaperShapesTest::capacity_ = nullptr;

TEST_F(PaperShapesTest, ProviderIntentionSatisfactionOrdering) {
  // Figure 4(a): SQLB satisfies providers' intentions best.
  const double sqlb =
      SeriesMean(*sqlb_, MediationSystem::kSeriesProvSatIntMean);
  const double capacity =
      SeriesMean(*capacity_, MediationSystem::kSeriesProvSatIntMean);
  EXPECT_GT(sqlb, capacity + 0.03);
}

TEST_F(PaperShapesTest, PreferenceSatisfactionSqlbMatchesMariposa) {
  // Figure 4(b): on raw preferences SQLB ~ Mariposa-like, both above
  // Capacity based.
  const double sqlb =
      SeriesMean(*sqlb_, MediationSystem::kSeriesProvSatPrefMean);
  const double mariposa =
      SeriesMean(*mariposa_, MediationSystem::kSeriesProvSatPrefMean);
  const double capacity =
      SeriesMean(*capacity_, MediationSystem::kSeriesProvSatPrefMean);
  EXPECT_GT(sqlb, capacity + 0.03);
  EXPECT_GT(mariposa, capacity + 0.03);
  EXPECT_NEAR(sqlb, mariposa, 0.15);
}

TEST_F(PaperShapesTest, OnlySqlbSatisfiesConsumers) {
  // Figure 4(e): mu(das, C) > 1 only under SQLB.
  const double sqlb =
      SeriesMean(*sqlb_, MediationSystem::kSeriesConsAllocSatMean);
  const double mariposa =
      SeriesMean(*mariposa_, MediationSystem::kSeriesConsAllocSatMean);
  const double capacity =
      SeriesMean(*capacity_, MediationSystem::kSeriesConsAllocSatMean);
  EXPECT_GT(sqlb, 1.1);
  EXPECT_NEAR(mariposa, 1.0, 0.1);
  EXPECT_NEAR(capacity, 1.0, 0.1);
}

TEST_F(PaperShapesTest, CapacityBasedBalancesBest) {
  // Figures 4(g)-(h): Capacity based has the fairest utilization by a
  // clear margin. (SQLB and Mariposa-like trade places along the ramp in
  // the paper too — SQLB is the least fair under 40% load and catches up
  // as the workload grows — so no strict ordering is asserted between
  // them at a single workload.)
  const double sqlb = SeriesMean(*sqlb_, MediationSystem::kSeriesUtFair);
  const double mariposa =
      SeriesMean(*mariposa_, MediationSystem::kSeriesUtFair);
  const double capacity =
      SeriesMean(*capacity_, MediationSystem::kSeriesUtFair);
  EXPECT_GT(capacity, sqlb + 0.05);
  EXPECT_GT(capacity, mariposa + 0.05);
}

TEST_F(PaperShapesTest, ResponseTimeOrderingAndFactors) {
  // Figure 4(i): Capacity based fastest; SQLB a small factor above;
  // Mariposa-like the slowest by a clear margin.
  const double sqlb = sqlb_->response_time.mean();
  const double mariposa = mariposa_->response_time.mean();
  const double capacity = capacity_->response_time.mean();
  EXPECT_LT(capacity, sqlb);
  EXPECT_LT(sqlb, mariposa);
  EXPECT_LT(sqlb / capacity, 3.0);   // paper: ~1.4
  EXPECT_GT(mariposa / capacity, 1.8);  // paper: ~3
}

TEST(PaperShapesAutonomyTest, SqlbRetainsParticipants) {
  // Figures 5(c) and 6 at one workload: SQLB loses the fewest providers
  // and no consumers; the baselines lose far more providers and some
  // consumers.
  runtime::SystemConfig config = ShapeConfig(99);
  config.workload = runtime::WorkloadSpec::Constant(0.8);
  config.duration = 1500.0;
  config.departures = runtime::DepartureConfig::AllEnabled();
  config.departures.grace_period = 400.0;
  config.departures.check_interval = 300.0;

  const runtime::RunResult sqlb = experiments::RunMethod(MethodKind::kSqlb, config);
  const runtime::RunResult mariposa = experiments::RunMethod(MethodKind::kMariposa, config);
  const runtime::RunResult capacity =
      experiments::RunMethod(MethodKind::kCapacityBased, config);

  EXPECT_EQ(sqlb.ConsumerDeparturePercent(), 0.0);
  EXPECT_LT(sqlb.ProviderDeparturePercent() + 10.0,
            capacity.ProviderDeparturePercent());
  EXPECT_LT(sqlb.ProviderDeparturePercent() + 10.0,
            mariposa.ProviderDeparturePercent());
  // Capacity based loses providers primarily by dissatisfaction first
  // (Table 3's signature).
  EXPECT_GT(capacity.tally.ByReason(
                runtime::DepartureReason::kDissatisfaction),
            0u);
  // The Mariposa-like method loses providers by overutilization.
  EXPECT_GT(mariposa.tally.ByReason(
                runtime::DepartureReason::kOverutilization),
            0u);
}

}  // namespace
}  // namespace sqlb
