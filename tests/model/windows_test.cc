#include "model/windows.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sqlb {
namespace {

WindowConfig SmallWindow(std::size_t k) {
  WindowConfig config;
  config.capacity = k;
  config.prior = 0.5;
  config.satisfaction_prior_weight = 1.0;
  return config;
}

TEST(ConsumerWindowTest, StartsAtPrior) {
  ConsumerWindow w(SmallWindow(10));
  EXPECT_DOUBLE_EQ(w.Adequation(), 0.5);
  EXPECT_DOUBLE_EQ(w.Satisfaction(), 0.5);
  EXPECT_DOUBLE_EQ(w.AllocationSatisfactionValue(), 1.0);
  EXPECT_EQ(w.recorded(), 0u);
}

TEST(ConsumerWindowTest, PriorWashesOutAsWindowFills) {
  ConsumerWindow w(SmallWindow(4));
  w.Record(1.0, 1.0);
  // (1 + 3 * 0.5) / 4 = 0.625: one observation pulls the blend up a bit.
  EXPECT_DOUBLE_EQ(w.Satisfaction(), 0.625);
  w.Record(1.0, 1.0);
  w.Record(1.0, 1.0);
  w.Record(1.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Satisfaction(), 1.0);  // full window, no prior left
}

TEST(ConsumerWindowTest, EvictionDropsOldEvidence) {
  ConsumerWindow w(SmallWindow(2));
  w.Record(0.0, 0.0);
  w.Record(0.0, 0.0);
  EXPECT_DOUBLE_EQ(w.Satisfaction(), 0.0);
  w.Record(1.0, 1.0);
  w.Record(1.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Satisfaction(), 1.0);
  EXPECT_DOUBLE_EQ(w.Adequation(), 1.0);
  EXPECT_EQ(w.recorded(), 4u);
  EXPECT_EQ(w.size(), 2u);
}

TEST(ConsumerWindowTest, RawValuesMatchDefinitions) {
  ConsumerWindow w(SmallWindow(10));
  EXPECT_DOUBLE_EQ(w.RawAdequation(), 0.0);  // empty, as Defs. 1-2 imply
  w.Record(0.8, 0.4);
  w.Record(0.6, 0.2);
  EXPECT_DOUBLE_EQ(w.RawAdequation(), 0.7);
  EXPECT_DOUBLE_EQ(w.RawSatisfaction(), 0.3);
}

TEST(ConsumerWindowTest, AllocationSatisfactionAboveOneWhenServedWell) {
  ConsumerWindow w(SmallWindow(4));
  for (int i = 0; i < 4; ++i) w.Record(0.6, 0.9);
  EXPECT_NEAR(w.AllocationSatisfactionValue(), 1.5, 1e-12);
}

TEST(ConsumerWindowDeathTest, RejectsOutOfRangeValues) {
  ConsumerWindow w(SmallWindow(4));
  EXPECT_DEATH(w.Record(1.5, 0.5), "adequation");
  EXPECT_DEATH(w.Record(0.5, -0.1), "satisfaction");
}

TEST(ProviderWindowTest, StartsAtPrior) {
  ProviderWindow w(SmallWindow(10));
  EXPECT_DOUBLE_EQ(w.Adequation(ProviderWindow::Channel::kIntention), 0.5);
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 0.5);
  EXPECT_DOUBLE_EQ(
      w.AllocationSatisfactionValue(ProviderWindow::Channel::kIntention),
      1.0);
}

TEST(ProviderWindowTest, AdequationAveragesAllProposals) {
  ProviderWindow w(SmallWindow(2));
  w.Record(1.0, 0.5, false);
  w.Record(0.0, -0.5, false);
  // Intention channel: mean((1+1)/2, (0+1)/2) = 0.75.
  EXPECT_DOUBLE_EQ(w.Adequation(ProviderWindow::Channel::kIntention), 0.75);
  // Preference channel: mean(0.75, 0.25) = 0.5.
  EXPECT_DOUBLE_EQ(w.Adequation(ProviderWindow::Channel::kPreference), 0.5);
}

TEST(ProviderWindowTest, SatisfactionOnlyCountsPerformedQueries) {
  ProviderWindow w(SmallWindow(4));
  w.Record(1.0, 1.0, false);   // proposed, not performed
  w.Record(-1.0, -1.0, true);  // performed an unwanted query
  // Performed subset = {intention -1}: raw Def. 5 value is 0.
  EXPECT_DOUBLE_EQ(w.RawSatisfaction(ProviderWindow::Channel::kIntention),
                   0.0);
  // Blended with the 0.5 prior (pseudo-count 1): (0 + 0.5) / 2 = 0.25.
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention),
                   0.25);
}

TEST(ProviderWindowTest, RawSatisfactionZeroWhenNothingPerformed) {
  ProviderWindow w(SmallWindow(4));
  w.Record(0.8, 0.8, false);
  EXPECT_DOUBLE_EQ(w.RawSatisfaction(ProviderWindow::Channel::kIntention),
                   0.0);  // Definition 5's "0 otherwise"
  // The blended value stays at the prior instead.
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 0.5);
}

TEST(ProviderWindowTest, EvictionUpdatesPerformedSubset) {
  ProviderWindow w(SmallWindow(2));
  w.Record(1.0, 1.0, true);
  w.Record(0.5, 0.5, false);
  EXPECT_EQ(w.performed_in_window(), 1u);
  w.Record(-1.0, -1.0, true);  // evicts the performed (1.0) entry
  EXPECT_EQ(w.performed_in_window(), 1u);
  EXPECT_DOUBLE_EQ(w.RawSatisfaction(ProviderWindow::Channel::kIntention),
                   0.0);
  EXPECT_EQ(w.performed(), 2u);  // lifetime counter unaffected by eviction
  EXPECT_EQ(w.proposed(), 3u);
}

TEST(ProviderWindowTest, ClampsOvershootingIntentions) {
  ProviderWindow w(SmallWindow(2));
  w.Record(-2.5, 0.0, true);  // Def. 8 overshoot
  EXPECT_DOUBLE_EQ(w.RawAdequation(ProviderWindow::Channel::kIntention),
                   0.0);
}

TEST(ProviderWindowTest, SatisfactionIsStickyWhenSubsetEmpties) {
  // Strict Def. 5 (prior weight 0): the satisfaction holds its last known
  // value while the performed subset is empty, instead of snapping to the
  // literal 0 (DESIGN.md fidelity decision; WindowConfig doc).
  WindowConfig config;
  config.capacity = 2;
  config.satisfaction_prior_weight = 0.0;
  ProviderWindow w(config);
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention),
                   0.5);  // initial prior
  w.Record(0.8, 0.8, true);  // performed: unit value 0.9
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 0.9);
  // Two non-performed proposals evict the performed entry.
  w.Record(0.0, 0.0, false);
  w.Record(0.0, 0.0, false);
  EXPECT_EQ(w.performed_in_window(), 0u);
  EXPECT_DOUBLE_EQ(w.RawSatisfaction(ProviderWindow::Channel::kIntention),
                   0.0);  // literal Definition 5
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention),
                   0.9);  // sticky
  // New evidence replaces the held value.
  w.Record(-1.0, -1.0, true);
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 0.0);
}

TEST(ProviderWindowTest, StickinessIsPerChannel) {
  WindowConfig config;
  config.capacity = 1;
  config.satisfaction_prior_weight = 0.0;
  ProviderWindow w(config);
  w.Record(1.0, -1.0, true);  // intention unit 1, preference unit 0
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 1.0);
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kPreference),
                   0.0);
  w.Record(0.0, 0.0, false);  // evicts; both channels hold their values
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kIntention), 1.0);
  EXPECT_DOUBLE_EQ(w.Satisfaction(ProviderWindow::Channel::kPreference),
                   0.0);
}

TEST(ProviderWindowTest, TwoChannelsAreIndependent) {
  ProviderWindow w(SmallWindow(3));
  // Shown intention positive while private preference negative (a loaded
  // but satisfied provider accepting unwanted work).
  w.Record(0.8, -0.6, true);
  EXPECT_GT(w.Satisfaction(ProviderWindow::Channel::kIntention),
            w.Satisfaction(ProviderWindow::Channel::kPreference));
}

// Property sweep: all window outputs stay in range under random streams.
class WindowRangeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowRangeTest, BoundedOutputs) {
  Rng rng(GetParam());
  ProviderWindow pw(SmallWindow(1 + rng.NextBounded(20)));
  ConsumerWindow cw(SmallWindow(1 + rng.NextBounded(20)));
  for (int i = 0; i < 500; ++i) {
    pw.Record(rng.Uniform(-3.0, 1.5), rng.Uniform(-1.0, 1.0),
              rng.Bernoulli(0.3));
    cw.Record(rng.NextDouble(), rng.NextDouble());
    for (auto channel : {ProviderWindow::Channel::kIntention,
                         ProviderWindow::Channel::kPreference}) {
      ASSERT_GE(pw.Adequation(channel), 0.0);
      ASSERT_LE(pw.Adequation(channel), 1.0);
      ASSERT_GE(pw.Satisfaction(channel), 0.0);
      ASSERT_LE(pw.Satisfaction(channel), 1.0);
      ASSERT_GE(pw.AllocationSatisfactionValue(channel), 0.0);
    }
    ASSERT_GE(cw.Satisfaction(), 0.0);
    ASSERT_LE(cw.Satisfaction(), 1.0);
    ASSERT_GE(cw.Adequation(), 0.0);
    ASSERT_LE(cw.Adequation(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, WindowRangeTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace sqlb
