#include "model/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sqlb {
namespace {

TEST(MeanTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(Mean({0.2, 1.0, 0.6}), 0.6);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({0.7}), 0.7);
}

TEST(JainFairnessTest, PaperSensitivityExample) {
  // Section 4's two-mediator example: the paper reports f = 0.77 for m and
  // 0.97 for m' (exact values 0.7715 and 0.9797; the paper rounds).
  EXPECT_NEAR(JainFairness({0.2, 1.0, 0.6}), 0.7715, 0.001);
  EXPECT_NEAR(JainFairness({1.0, 0.7, 0.9}), 0.9797, 0.001);
}

TEST(JainFairnessTest, EqualValuesAreMaximallyFair) {
  EXPECT_DOUBLE_EQ(JainFairness({0.5, 0.5, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairness({2.0, 2.0}), 1.0);
}

TEST(JainFairnessTest, SingleNonZeroIsMinimallyFair) {
  // One participant holding everything: f = 1 / |S|.
  EXPECT_DOUBLE_EQ(JainFairness({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainFairnessTest, DegenerateSetsAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(JainFairness({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairness({0.0, 0.0}), 1.0);
}

TEST(JainFairnessTest, ScaleInvariance) {
  const std::vector<double> v{0.1, 0.4, 0.9, 0.3};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(x * 7.3);
  EXPECT_NEAR(JainFairness(v), JainFairness(scaled), 1e-12);
}

TEST(MinMaxRatioTest, Basics) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({0.5, 0.5}, 0.1), 1.0);
  EXPECT_NEAR(MinMaxRatio({0.0, 1.0}, 0.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(MinMaxRatio({}, 0.1), 1.0);
}

TEST(MinMaxRatioTest, DetectsPunishedEntity) {
  // A punished participant (near-zero g among high values) drives sigma
  // towards c0 / (max + c0).
  const double sigma = MinMaxRatio({0.9, 0.85, 0.92, 0.01}, 0.1);
  EXPECT_LT(sigma, 0.12);
}

TEST(MinMaxRatioDeathTest, RequiresPositiveC0) {
  EXPECT_DEATH(MinMaxRatio({1.0}, 0.0), "c0");
}

TEST(SummarizeTest, AllThreeMetricsAtOnce) {
  const MetricSummary s = Summarize({0.2, 1.0, 0.6}, 0.1);
  EXPECT_DOUBLE_EQ(s.mean, 0.6);
  EXPECT_NEAR(s.fairness, 0.77, 0.005);
  EXPECT_NEAR(s.min_max, 0.3 / 1.1, 1e-12);
  EXPECT_EQ(s.count, 3u);
}

TEST(SummarizeByTest, AccessorDriven) {
  const std::vector<double> values{0.3, 0.9, 0.6};
  const MetricSummary s = SummarizeBy(
      values.size(), [&values](std::size_t i) { return values[i]; });
  EXPECT_DOUBLE_EQ(s.mean, 0.6);
  EXPECT_EQ(s.count, 3u);
}

// Property sweep: fairness bounds 1/|S| <= f <= 1 for non-negative inputs.
class FairnessBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairnessBoundsTest, WithinTheoreticalBounds) {
  Rng rng(GetParam());
  const std::size_t n = 1 + static_cast<std::size_t>(rng.NextBounded(50));
  std::vector<double> values;
  bool any_positive = false;
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.Uniform(0.0, 5.0));
    any_positive = any_positive || values.back() > 0.0;
  }
  const double f = JainFairness(values);
  EXPECT_LE(f, 1.0 + 1e-12);
  if (any_positive) {
    EXPECT_GE(f, 1.0 / static_cast<double>(n) - 1e-12);
  }
  const double sigma = MinMaxRatio(values);
  EXPECT_GT(sigma, 0.0);
  EXPECT_LE(sigma, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, FairnessBoundsTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace sqlb
