#include "model/characterization.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sqlb {
namespace {

TEST(QueryAdequationTest, AverageMappedToUnitInterval) {
  // Eq. 1: delta_a(c, q) = (mean(CI) + 1) / 2.
  EXPECT_DOUBLE_EQ(QueryAdequation({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(QueryAdequation({-1.0, -1.0}), 0.0);
  EXPECT_DOUBLE_EQ(QueryAdequation({0.0}), 0.5);
  EXPECT_DOUBLE_EQ(QueryAdequation({1.0, -1.0}), 0.5);
  EXPECT_DOUBLE_EQ(QueryAdequation({0.5, 0.1, -0.3}), (0.1 + 1.0) / 2.0);
}

TEST(QueryAdequationTest, ClampsOvershootingIntentions) {
  // Def. 8 with epsilon = 1 can emit intentions below -1 (Figure 2); the
  // satisfaction scale clamps them.
  EXPECT_DOUBLE_EQ(QueryAdequation({-2.5}), 0.0);
}

TEST(QueryAdequationTest, MotivatingExampleEWine) {
  // Table 1 with binary intentions: eWine intends to deal with p2, p4, p5
  // (+1) but not p1, p3 (-1): adequation = ((1/5)(1) + 1) / 2 = 0.6.
  EXPECT_DOUBLE_EQ(QueryAdequation({-1.0, 1.0, -1.0, 1.0, 1.0}), 0.6);
}

TEST(QuerySatisfactionTest, DividesByDesiredN) {
  // Eq. 2 divides by q.n, not by |selected|: getting one of two desired
  // results with intention 1 yields 0.75, not 1.
  EXPECT_DOUBLE_EQ(QuerySatisfaction({1.0}, 2), 0.75);
  EXPECT_DOUBLE_EQ(QuerySatisfaction({1.0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(QuerySatisfaction({1.0, 1.0}, 2), 1.0);
}

TEST(QuerySatisfactionTest, EmptySelectionIsNeutralHalf) {
  // No provider selected: sum 0 -> (0 + 1)/2 = 0.5.
  EXPECT_DOUBLE_EQ(QuerySatisfaction({}, 1), 0.5);
}

TEST(QuerySatisfactionTest, NegativeIntentionsHurt) {
  EXPECT_DOUBLE_EQ(QuerySatisfaction({-1.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(QuerySatisfaction({-0.5}, 1), 0.25);
}

TEST(QuerySatisfactionTest, AllocationToUnwantedProvidersScoresLow) {
  // The paper's scenario: allocating eWine's query to p1 (intention -1)
  // instead of p2 (+1).
  EXPECT_LT(QuerySatisfaction({-1.0}, 1), QuerySatisfaction({1.0}, 1));
}

TEST(AllocationSatisfactionTest, RatioSemantics) {
  EXPECT_DOUBLE_EQ(AllocationSatisfaction(0.9, 0.6), 1.5);   // works well
  EXPECT_DOUBLE_EQ(AllocationSatisfaction(0.3, 0.6), 0.5);   // punished
  EXPECT_DOUBLE_EQ(AllocationSatisfaction(0.6, 0.6), 1.0);   // neutral
}

TEST(AllocationSatisfactionTest, ZeroOverZeroIsNeutral) {
  EXPECT_DOUBLE_EQ(AllocationSatisfaction(0.0, 0.0), 1.0);
}

TEST(AllocationSatisfactionTest, PositiveOverZeroIsLargeButFinite) {
  const double v = AllocationSatisfaction(0.5, 0.0);
  EXPECT_GT(v, 1.0);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(QueryAdequationDeathTest, RejectsEmptyProviderSet) {
  EXPECT_DEATH(QueryAdequation({}), "non-empty");
}

TEST(QuerySatisfactionDeathTest, RejectsZeroN) {
  EXPECT_DEATH(QuerySatisfaction({1.0}, 0), "q.n");
}

// Property sweep: Eq. 1 and Eq. 2 always land in [0, 1].
class CharacterizationRangeTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CharacterizationRangeTest, OutputsStayInUnitInterval) {
  Rng rng(GetParam());
  const std::size_t n_providers =
      1 + static_cast<std::size_t>(rng.NextBounded(40));
  std::vector<double> intentions;
  for (std::size_t i = 0; i < n_providers; ++i) {
    intentions.push_back(rng.Uniform(-3.0, 1.5));  // includes overshoots
  }
  const double adq = QueryAdequation(intentions);
  EXPECT_GE(adq, 0.0);
  EXPECT_LE(adq, 1.0);

  const std::size_t n = 1 + static_cast<std::size_t>(rng.NextBounded(5));
  std::vector<double> selected(
      intentions.begin(),
      intentions.begin() +
          static_cast<std::ptrdiff_t>(std::min(n, intentions.size())));
  const double sat = QuerySatisfaction(selected, n);
  EXPECT_GE(sat, 0.0);
  EXPECT_LE(sat, 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, CharacterizationRangeTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace sqlb
