#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"
#include "sqlb/service.h"

/// \file
/// The sqlb::Service facade (src/sqlb/service.h): the unified
/// Config::Validate() path — actionable errors instead of scattered
/// asserts — and facade/driver parity: running a scenario through the
/// facade must be bit-identical to constructing the driver directly.

namespace sqlb {
namespace {

runtime::SystemConfig SmallScenario() {
  runtime::SystemConfig config;
  config.population.num_consumers = 10;
  config.population.num_providers = 20;
  config.duration = 200.0;
  config.stats_warmup = 20.0;
  config.seed = 11;
  return config;
}

Service::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

// --- Config::Validate -------------------------------------------------------

TEST(ServiceConfigTest, DefaultConfigIsValid) {
  Config config;
  config.scenario() = SmallScenario();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ServiceConfigTest, RejectsNonPositiveDuration) {
  Config config;
  config.scenario() = SmallScenario();
  config.scenario().duration = 0.0;
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duration"), std::string::npos);
}

TEST(ServiceConfigTest, RejectsAdaptiveBatchingWithZeroWindowBounds) {
  Config config;
  config.mode = Mode::kSharded;
  config.scenario() = SmallScenario();
  config.sharded.adaptive_batch.enabled = true;
  config.sharded.adaptive_batch.max_window = 0.0;
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message must say which knob and what to do about it.
  EXPECT_NE(status.message().find("max_window"), std::string::npos);
}

TEST(ServiceConfigTest, RejectsInvertedAdaptiveWindowBounds) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = SmallScenario();
  config.serving.adaptive_batch.enabled = true;
  config.serving.adaptive_batch.min_window = 1.0;
  config.serving.adaptive_batch.max_window = 0.5;
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("min_window"), std::string::npos);
}

TEST(ServiceConfigTest, RejectsServingWithDepartures) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = SmallScenario();
  config.scenario().departures = runtime::DepartureConfig::AllEnabled();
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("departure"), std::string::npos);
}

TEST(ServiceConfigTest, RejectsServingWithScriptedChurn) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = SmallScenario();
  runtime::ProviderChurnEvent event;
  event.time = 10.0;
  config.scenario().provider_churn.events.push_back(event);
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceConfigTest, RejectsServingWithNonPositiveTimeScale) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = SmallScenario();
  config.serving.time_scale = 0.0;
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("time_scale"), std::string::npos);
}

TEST(ServiceConfigTest, RejectsChurnWithNonPositiveRetryInterval) {
  Config config;
  config.scenario() = SmallScenario();
  runtime::ProviderChurnEvent event;
  event.time = 10.0;
  config.scenario().provider_churn.events.push_back(event);
  config.scenario().churn_retry_interval = 0.0;
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("churn_retry_interval"), std::string::npos);
}

TEST(ServiceConfigTest, CreateSurfacesValidationErrorsThroughStatus) {
  Config config;
  config.scenario() = SmallScenario();
  config.scenario().query_n = 0;
  Status status;
  std::unique_ptr<Service> service =
      Service::Create(config, SqlbFactory(), &status);
  EXPECT_EQ(service, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("query_n"), std::string::npos);
}

// --- Facade parity ----------------------------------------------------------

TEST(ServiceParityTest, MonoRunMatchesDirectDriverBitForBit) {
  const runtime::SystemConfig scenario = SmallScenario();
  SqlbMethod method;
  const runtime::RunResult direct = runtime::RunScenario(scenario, &method);

  Config config;
  config.mode = Mode::kMono;
  config.scenario() = scenario;
  const shard::ShardedRunResult facade =
      Service::Create(config, SqlbFactory())->Run();

  EXPECT_EQ(facade.run.queries_issued, direct.queries_issued);
  EXPECT_EQ(facade.run.queries_completed, direct.queries_completed);
  EXPECT_EQ(facade.run.queries_infeasible, direct.queries_infeasible);
  EXPECT_EQ(facade.run.response_time.mean(), direct.response_time.mean());
  EXPECT_EQ(facade.run.method_name, direct.method_name);
  // The synthetic shard entry mirrors the mono run.
  ASSERT_EQ(facade.shards.size(), 1u);
  EXPECT_EQ(facade.shards[0].routed, direct.queries_issued);
}

TEST(ServiceParityTest, ShardedRunMatchesDirectDriverBitForBit) {
  shard::ShardedSystemConfig sharded;
  sharded.base = SmallScenario();
  sharded.router.num_shards = 4;
  const shard::ShardedRunResult direct =
      shard::RunShardedScenario(sharded, SqlbFactory());

  Config config;
  config.mode = Mode::kSharded;
  config.sharded = sharded;
  const shard::ShardedRunResult facade =
      Service::Create(config, SqlbFactory())->Run();

  EXPECT_EQ(facade.run.queries_issued, direct.run.queries_issued);
  EXPECT_EQ(facade.run.queries_completed, direct.run.queries_completed);
  EXPECT_EQ(facade.run.response_time.mean(),
            direct.run.response_time.mean());
  ASSERT_EQ(facade.shards.size(), direct.shards.size());
  for (std::size_t s = 0; s < facade.shards.size(); ++s) {
    EXPECT_EQ(facade.shards[s].routed, direct.shards[s].routed);
    EXPECT_EQ(facade.shards[s].allocated, direct.shards[s].allocated);
  }
}

TEST(ServiceParityTest, ServingLifecycleWorksThroughTheFacade) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = SmallScenario();
  config.serving.time_scale = 200.0;
  std::unique_ptr<Service> service = Service::Create(config, SqlbFactory());

  runtime::ServingProducer* producer = service->RegisterProducer();
  service->Start();
  const std::size_t accepted =
      service->SubmitBatch(producer, /*consumer_index=*/0,
                           /*class_index=*/0, /*count=*/50);
  EXPECT_EQ(accepted, 50u);
  service->Drain();
  const runtime::ServingReport report = service->Stop();
  EXPECT_EQ(report.served, 50u);
  EXPECT_EQ(report.run.queries_completed + report.run.queries_infeasible,
            report.run.queries_issued);

  // The facade replay drives the same oracle as ReplayServingTrace.
  const runtime::ServingReplayResult replay = service->Replay();
  std::string diff;
  EXPECT_TRUE(service->trace().decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
}

}  // namespace
}  // namespace sqlb
