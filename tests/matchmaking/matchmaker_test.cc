#include "matchmaking/matchmaker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace sqlb {
namespace {

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const auto a = dict.Intern("shipping");
  const auto b = dict.Intern("wine");
  EXPECT_EQ(dict.Intern("shipping"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "shipping");
  EXPECT_EQ(dict.Lookup("wine"), b);
  EXPECT_EQ(dict.Lookup("missing"), TermDictionary::kNotFoundId);
}

TEST(CapabilityTest, CoversAndContains) {
  Capability cap({3, 1, 2, 1});
  EXPECT_TRUE(cap.Contains(1));
  EXPECT_FALSE(cap.Contains(9));
  EXPECT_TRUE(cap.Covers({1, 3}));
  EXPECT_TRUE(cap.Covers({}));
  EXPECT_FALSE(cap.Covers({1, 9}));
  EXPECT_EQ(cap.terms(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(AcceptAllMatchmakerTest, ReturnsAllRegisteredSorted) {
  AcceptAllMatchmaker mm;
  mm.Register(ProviderId(5), Capability{});
  mm.Register(ProviderId(1), Capability{});
  mm.Register(ProviderId(3), Capability{});
  Query q;
  const auto match = mm.Match(q);
  EXPECT_EQ(match,
            (std::vector<ProviderId>{ProviderId(1), ProviderId(3),
                                     ProviderId(5)}));
}

TEST(AcceptAllMatchmakerTest, UnregisterRemoves) {
  AcceptAllMatchmaker mm;
  mm.Register(ProviderId(1), Capability{});
  mm.Register(ProviderId(2), Capability{});
  mm.Unregister(ProviderId(1));
  mm.Unregister(ProviderId(42));  // no-op
  Query q;
  EXPECT_EQ(mm.Match(q), (std::vector<ProviderId>{ProviderId(2)}));
  EXPECT_EQ(mm.registered_count(), 1u);
}

TEST(AcceptAllMatchmakerTest, ReregistrationIsIdempotent) {
  AcceptAllMatchmaker mm;
  mm.Register(ProviderId(1), Capability{});
  mm.Register(ProviderId(1), Capability{});
  EXPECT_EQ(mm.registered_count(), 1u);
}

TEST(TermIndexMatchmakerTest, MatchesCoveringProvidersOnly) {
  TermIndexMatchmaker mm;
  mm.Register(ProviderId(1), Capability({1, 2}));      // shipping + wine
  mm.Register(ProviderId(2), Capability({1}));         // shipping only
  mm.Register(ProviderId(3), Capability({1, 2, 3}));   // everything

  Query q;
  q.required_terms = {1, 2};
  const auto match = mm.Match(q);
  EXPECT_EQ(match, (std::vector<ProviderId>{ProviderId(1), ProviderId(3)}));
}

TEST(TermIndexMatchmakerTest, UnknownTermMatchesNothing) {
  TermIndexMatchmaker mm;
  mm.Register(ProviderId(1), Capability({1}));
  Query q;
  q.required_terms = {99};
  EXPECT_TRUE(mm.Match(q).empty());
}

TEST(TermIndexMatchmakerTest, EmptyRequirementsMatchEveryone) {
  TermIndexMatchmaker mm;
  mm.Register(ProviderId(2), Capability({1}));
  mm.Register(ProviderId(1), Capability({7}));
  Query q;
  EXPECT_EQ(mm.Match(q),
            (std::vector<ProviderId>{ProviderId(1), ProviderId(2)}));
}

TEST(TermIndexMatchmakerTest, ReRegistrationReplacesCapability) {
  TermIndexMatchmaker mm;
  mm.Register(ProviderId(1), Capability({1}));
  mm.Register(ProviderId(1), Capability({2}));
  Query q1;
  q1.required_terms = {1};
  EXPECT_TRUE(mm.Match(q1).empty());
  Query q2;
  q2.required_terms = {2};
  EXPECT_EQ(mm.Match(q2), (std::vector<ProviderId>{ProviderId(1)}));
}

TEST(TermIndexMatchmakerTest, UnregisterPurgesPostings) {
  TermIndexMatchmaker mm;
  mm.Register(ProviderId(1), Capability({1, 2}));
  mm.Unregister(ProviderId(1));
  Query q;
  q.required_terms = {1};
  EXPECT_TRUE(mm.Match(q).empty());
  EXPECT_EQ(mm.registered_count(), 0u);
}

// Property test: the inverted-index matchmaker is sound and complete
// w.r.t. the brute-force definition (the Section 2 assumption).
class MatchmakerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MatchmakerPropertyTest, SoundAndCompleteVsBruteForce) {
  Rng rng(GetParam());
  TermIndexMatchmaker mm;
  const std::size_t providers = 2 + rng.NextBounded(40);
  const std::uint32_t vocabulary = 8;
  std::vector<Capability> caps;
  for (std::size_t p = 0; p < providers; ++p) {
    std::vector<std::uint32_t> terms;
    for (std::uint32_t t = 0; t < vocabulary; ++t) {
      if (rng.Bernoulli(0.4)) terms.push_back(t);
    }
    caps.emplace_back(terms);
    mm.Register(ProviderId(static_cast<std::uint32_t>(p)), caps.back());
  }

  for (int trial = 0; trial < 20; ++trial) {
    Query q;
    for (std::uint32_t t = 0; t < vocabulary; ++t) {
      if (rng.Bernoulli(0.25)) q.required_terms.push_back(t);
    }
    const auto fast = mm.Match(q);
    std::vector<ProviderId> brute;
    for (std::size_t p = 0; p < providers; ++p) {
      if (caps[p].Covers(q.required_terms)) {
        brute.push_back(ProviderId(static_cast<std::uint32_t>(p)));
      }
    }
    ASSERT_EQ(fast, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCatalogues, MatchmakerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace sqlb
