// Cross-method contract tests: every AllocationMethod implementation must
// honour the Section 2 allocation semantics — min(q.n, N) distinct
// selections (strict economic brokers may select fewer, never more), with
// scores aligned to the candidate vector.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "core/allocation.h"
#include "experiments/experiments.h"

namespace sqlb {
namespace {

using experiments::MakeMethod;
using experiments::MethodKind;

TEST(SelectionCountTest, MinOfNAndCandidates) {
  Query q;
  q.n = 3;
  AllocationRequest request;
  request.query = &q;
  request.candidates.resize(5);
  EXPECT_EQ(SelectionCount(request), 3u);
  request.candidates.resize(2);
  EXPECT_EQ(SelectionCount(request), 2u);
  q.n = 1;
  EXPECT_EQ(SelectionCount(request), 1u);
}

TEST(SelectionCountDeathTest, RequiresQuery) {
  AllocationRequest request;  // no query attached
  EXPECT_DEATH(SelectionCount(request), "query");
}

class AllocationContractTest
    : public ::testing::TestWithParam<MethodKind> {};

TEST_P(AllocationContractTest, SelectionsAreDistinctBoundedAndAligned) {
  auto method = MakeMethod(GetParam(), /*seed=*/99);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

  for (int trial = 0; trial < 50; ++trial) {
    Query q;
    q.id = static_cast<QueryId>(trial);
    q.consumer = ConsumerId(0);
    q.n = 1 + static_cast<std::uint32_t>(rng.NextBounded(6));
    q.units = 130.0;

    AllocationRequest request;
    request.query = &q;
    request.consumer_satisfaction = rng.NextDouble();
    const std::size_t n_candidates = 1 + rng.NextBounded(40);
    for (std::size_t i = 0; i < n_candidates; ++i) {
      CandidateProvider c;
      c.id = ProviderId(static_cast<std::uint32_t>(i));
      c.consumer_intention = rng.Uniform(-1.0, 1.0);
      c.provider_intention = rng.Uniform(-2.0, 1.0);
      c.provider_satisfaction = rng.NextDouble();
      c.utilization = rng.Uniform(0.0, 2.0);
      c.capacity = rng.Uniform(14.0, 100.0);
      c.backlog_seconds = rng.Uniform(0.0, 60.0);
      c.bid_price = rng.Uniform(0.05, 1.05);
      c.estimated_delay = c.backlog_seconds + q.units / c.capacity;
      request.candidates.push_back(c);
    }

    const AllocationDecision decision = method->Allocate(request);
    ASSERT_LE(decision.selected.size(), SelectionCount(request));
    ASSERT_EQ(decision.scores.size(), n_candidates);
    std::set<std::size_t> unique(decision.selected.begin(),
                                 decision.selected.end());
    ASSERT_EQ(unique.size(), decision.selected.size())
        << "duplicate selection";
    for (std::size_t idx : decision.selected) {
      ASSERT_LT(idx, n_candidates);
    }
  }
}

/// The columnar entry point must decide bit-for-bit like the AoS one —
/// whether a method overrides AllocateColumns with an SoA kernel (SQLB,
/// capacity-based, Mariposa) or inherits the materializing adapter. Note:
/// stateful methods (round-robin cursor, random stream) must see the same
/// request sequence on both sides, so each trial runs two freshly seeded
/// twins.
TEST_P(AllocationContractTest, ColumnarDecisionMatchesAoSBitForBit) {
  auto aos_method = MakeMethod(GetParam(), /*seed=*/123);
  auto col_method = MakeMethod(GetParam(), /*seed=*/123);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);

  for (int trial = 0; trial < 40; ++trial) {
    Query q;
    q.id = static_cast<QueryId>(trial);
    q.consumer = ConsumerId(0);
    q.n = 1 + static_cast<std::uint32_t>(rng.NextBounded(5));
    q.units = 130.0;

    AllocationRequest request;
    request.query = &q;
    request.consumer_satisfaction = rng.NextDouble();
    CandidateColumns columns;
    const std::size_t n_candidates = 1 + rng.NextBounded(40);
    for (std::size_t i = 0; i < n_candidates; ++i) {
      CandidateProvider c;
      c.id = ProviderId(static_cast<std::uint32_t>(i));
      c.consumer_intention = rng.Uniform(-1.0, 1.0);
      c.provider_intention = rng.Uniform(-2.0, 1.0);
      c.provider_satisfaction = rng.NextDouble();
      c.utilization = rng.Uniform(0.0, 2.0);
      c.capacity = rng.Uniform(14.0, 100.0);
      c.backlog_seconds = rng.Uniform(0.0, 60.0);
      c.bid_price = rng.Uniform(0.05, 1.05);
      c.estimated_delay = c.backlog_seconds + q.units / c.capacity;
      request.candidates.push_back(c);
      columns.Push(c);
    }
    ColumnarRequest columnar;
    columnar.query = &q;
    columnar.consumer_satisfaction = request.consumer_satisfaction;
    columnar.candidates = &columns;

    const AllocationDecision aos = aos_method->Allocate(request);
    const AllocationDecision col = col_method->AllocateColumns(columnar);
    ASSERT_EQ(aos.selected, col.selected) << "trial " << trial;
    ASSERT_EQ(aos.scores.size(), col.scores.size());
    for (std::size_t i = 0; i < aos.scores.size(); ++i) {
      ASSERT_EQ(aos.scores[i], col.scores[i]) << "trial " << trial
                                              << " score " << i;
    }
  }
}

TEST(CandidateColumnsTest, AtGathersTheExactPushedCandidate) {
  CandidateColumns columns;
  CandidateProvider c;
  c.id = ProviderId(7);
  c.consumer_intention = 0.25;
  c.provider_intention = -1.5;
  c.provider_satisfaction = 0.625;
  c.utilization = 1.125;
  c.capacity = 33.0;
  c.backlog_seconds = 12.5;
  c.bid_price = 0.55;
  c.estimated_delay = 16.4;
  columns.Push(c);
  ASSERT_EQ(columns.size(), 1u);
  const CandidateProvider back = columns.At(0);
  EXPECT_EQ(back.id, c.id);
  EXPECT_EQ(back.consumer_intention, c.consumer_intention);
  EXPECT_EQ(back.provider_intention, c.provider_intention);
  EXPECT_EQ(back.provider_satisfaction, c.provider_satisfaction);
  EXPECT_EQ(back.utilization, c.utilization);
  EXPECT_EQ(back.capacity, c.capacity);
  EXPECT_EQ(back.backlog_seconds, c.backlog_seconds);
  EXPECT_EQ(back.bid_price, c.bid_price);
  EXPECT_EQ(back.estimated_delay, c.estimated_delay);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, AllocationContractTest,
    ::testing::Values(MethodKind::kSqlb, MethodKind::kCapacityBased,
                      MethodKind::kCapacityMaxAvailable,
                      MethodKind::kMariposa, MethodKind::kRandom,
                      MethodKind::kRoundRobin, MethodKind::kKnBest,
                      MethodKind::kSqlbEconomic),
    [](const ::testing::TestParamInfo<MethodKind>& info) {
      std::string name = experiments::MethodName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

}  // namespace
}  // namespace sqlb
