#include "core/intention.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sqlb {
namespace {

ConsumerIntentionParams Formula(double upsilon, double epsilon = 1.0) {
  ConsumerIntentionParams params;
  params.upsilon = upsilon;
  params.epsilon = epsilon;
  params.mode = ConsumerIntentionMode::kFormula;
  return params;
}

TEST(ConsumerIntentionTest, PreferenceOnlyModeIsIdentity) {
  ConsumerIntentionParams params;
  params.mode = ConsumerIntentionMode::kPreferenceOnly;
  for (double prf : {-1.0, -0.54, 0.0, 0.34, 1.0}) {
    EXPECT_DOUBLE_EQ(ConsumerIntention(prf, 0.9, params), prf);
    EXPECT_DOUBLE_EQ(ConsumerIntention(prf, -0.9, params), prf);
  }
}

TEST(ConsumerIntentionTest, PositiveBranchGeometricBalance) {
  // Definition 7, both positive: prf^u * rep^(1-u).
  EXPECT_NEAR(ConsumerIntention(0.64, 0.25, Formula(0.5)),
              std::sqrt(0.64 * 0.25), 1e-12);
  EXPECT_NEAR(ConsumerIntention(0.36, 0.9, Formula(1.0)), 0.36, 1e-12);
  EXPECT_NEAR(ConsumerIntention(0.36, 0.9, Formula(0.0)), 0.9, 1e-12);
}

TEST(ConsumerIntentionTest, NegativeBranchFormula) {
  // prf = -0.5, rep = 0.5, u = 0.5, eps = 1:
  // -( (1 + 0.5 + 1)^0.5 * (1 - 0.5 + 1)^0.5 ) = -sqrt(2.5 * 1.5).
  EXPECT_NEAR(ConsumerIntention(-0.5, 0.5, Formula(0.5)),
              -std::sqrt(2.5 * 1.5), 1e-12);
}

TEST(ConsumerIntentionTest, NonPositiveReputationForcesNegativeBranch) {
  const double v = ConsumerIntention(0.8, 0.0, Formula(0.5));
  EXPECT_LT(v, 0.0);
}

TEST(ConsumerIntentionTest, EpsilonKeepsRefusalAwayFromZero) {
  // With preference = 1 the (1 - prf) factor vanishes without epsilon.
  const double v = ConsumerIntention(1.0, -1.0, Formula(0.5, 1.0));
  EXPECT_LT(v, 0.0);
  EXPECT_GT(std::fabs(v), 0.5);
}

TEST(ConsumerIntentionTest, MonotoneInPreferenceAndReputation) {
  const auto params = Formula(0.6);
  double prev = -10.0;
  for (double prf = 0.05; prf <= 1.0; prf += 0.05) {
    const double v = ConsumerIntention(prf, 0.5, params);
    EXPECT_GT(v, prev);
    prev = v;
  }
  prev = -10.0;
  for (double rep = 0.05; rep <= 1.0; rep += 0.05) {
    const double v = ConsumerIntention(0.5, rep, params);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ConsumerIntentionTest, InputsAreClamped) {
  EXPECT_DOUBLE_EQ(
      ConsumerIntention(2.0, 2.0, Formula(1.0)),
      ConsumerIntention(1.0, 1.0, Formula(1.0)));
}

TEST(ConsumerIntentionDeathTest, ValidatesParameters) {
  EXPECT_DEATH(ConsumerIntention(0.5, 0.5, Formula(0.5, 0.0)), "epsilon");
  EXPECT_DEATH(ConsumerIntention(0.5, 0.5, Formula(1.5)), "upsilon");
}

ProviderIntentionParams SelfBalancing(double epsilon = 1.0) {
  ProviderIntentionParams params;
  params.epsilon = epsilon;
  params.mode = ProviderIntentionMode::kSelfBalancing;
  return params;
}

TEST(ProviderIntentionTest, PositiveBranchGeometricBalance) {
  // Definition 8: prf^(1-s) * (1-Ut)^s.
  EXPECT_NEAR(ProviderIntention(0.64, 0.19, 0.5, SelfBalancing()),
              std::sqrt(0.64 * 0.81), 1e-12);
}

TEST(ProviderIntentionTest, DissatisfiedProviderFollowsPreference) {
  // s = 0: intention = preference, utilization ignored (Section 5.2: a
  // dissatisfied provider focuses on its preferences).
  EXPECT_DOUBLE_EQ(ProviderIntention(0.7, 0.9, 0.0, SelfBalancing()), 0.7);
}

TEST(ProviderIntentionTest, SatisfiedProviderFollowsUtilization) {
  // s = 1: intention = 1 - Ut; a satisfied provider accepts queries it does
  // not want while it has capacity.
  EXPECT_DOUBLE_EQ(ProviderIntention(0.1, 0.25, 1.0, SelfBalancing()), 0.75);
}

TEST(ProviderIntentionTest, OverloadForcesNegativeBranch) {
  // Ut >= 1: -( (1 - prf + eps)^(1-s) * (Ut + eps)^s ).
  EXPECT_NEAR(ProviderIntention(0.5, 1.2, 0.5, SelfBalancing()),
              -std::sqrt(1.5 * 2.2), 1e-12);
  // Figure 2's observation: intentions are positive only when the provider
  // wants the query AND is not overutilized.
  EXPECT_LT(ProviderIntention(0.9, 1.0, 0.5, SelfBalancing()), 0.0);
}

TEST(ProviderIntentionTest, UnwantedQueryForcesNegativeBranch) {
  EXPECT_LT(ProviderIntention(-0.1, 0.0, 0.5, SelfBalancing()), 0.0);
  EXPECT_LT(ProviderIntention(0.0, 0.0, 0.5, SelfBalancing()), 0.0);
}

TEST(ProviderIntentionTest, CanOvershootMinusOne) {
  // The Figure 2 surface reaches -2.5: the nominal [-1, 1] range does not
  // bound the negative branch with epsilon = 1 (DESIGN.md decision 2).
  const double v = ProviderIntention(-1.0, 2.0, 0.5, SelfBalancing());
  EXPECT_LT(v, -2.0);
}

TEST(ProviderIntentionTest, MoreLoadNeverRaisesIntention) {
  for (double s : {0.1, 0.5, 0.9}) {
    double prev = 10.0;
    for (double ut = 0.0; ut <= 2.0; ut += 0.1) {
      const double v = ProviderIntention(0.6, ut, s, SelfBalancing());
      EXPECT_LE(v, prev + 1e-12) << "ut=" << ut << " s=" << s;
      prev = v;
    }
  }
}

TEST(ProviderIntentionTest, AblationModes) {
  ProviderIntentionParams pref_only;
  pref_only.mode = ProviderIntentionMode::kPreferenceOnly;
  EXPECT_DOUBLE_EQ(ProviderIntention(-0.3, 5.0, 0.9, pref_only), -0.3);

  ProviderIntentionParams ut_only;
  ut_only.mode = ProviderIntentionMode::kUtilizationOnly;
  EXPECT_DOUBLE_EQ(ProviderIntention(0.9, 0.0, 0.1, ut_only), 1.0);
  EXPECT_DOUBLE_EQ(ProviderIntention(0.9, 0.5, 0.1, ut_only), 0.0);
  EXPECT_DOUBLE_EQ(ProviderIntention(0.9, 2.0, 0.1, ut_only), -1.0);
}

// Property sweep over the (preference, utilization, satisfaction) cube.
struct IntentionCase {
  double preference;
  double utilization;
  double satisfaction;
};

class ProviderIntentionPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProviderIntentionPropertyTest, SignMatchesDefinitionBranches) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double prf = rng.Uniform(-1.0, 1.0);
    const double ut = rng.Uniform(0.0, 2.5);
    const double sat = rng.NextDouble();
    const double v = ProviderIntention(prf, ut, sat, SelfBalancing());
    ASSERT_TRUE(std::isfinite(v));
    if (prf > 0.0 && ut < 1.0) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    } else {
      ASSERT_LT(v, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCube, ProviderIntentionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace sqlb
