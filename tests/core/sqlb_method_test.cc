#include "core/sqlb_method.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/scoring.h"
#include "model/query.h"

namespace sqlb {
namespace {

Query MakeQuery(std::uint32_t n) {
  Query q;
  q.id = 1;
  q.consumer = ConsumerId(0);
  q.n = n;
  q.units = 130.0;
  return q;
}

CandidateProvider MakeCandidate(std::uint32_t id, double pi, double ci,
                                double provider_sat = 0.5) {
  CandidateProvider c;
  c.id = ProviderId(id);
  c.provider_intention = pi;
  c.consumer_intention = ci;
  c.provider_satisfaction = provider_sat;
  return c;
}

TEST(SqlbMethodTest, NameIsStable) {
  SqlbMethod method;
  EXPECT_EQ(method.name(), "SQLB");
}

TEST(SqlbMethodTest, MotivatingExamplePicksTheMutuallyWillingProvider) {
  // Table 1 with binary intentions: only p5 has both sides positive; it
  // must rank first even though it is the overloaded one — exactly the
  // dilemma the paper's Section 1.1 sets up.
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.consumer_satisfaction = 0.5;
  request.candidates = {
      MakeCandidate(1, 1.0, -1.0),  // p1: provider yes, consumer no
      MakeCandidate(2, -1.0, 1.0),  // p2: provider no, consumer yes
      MakeCandidate(3, 1.0, -1.0),  // p3
      MakeCandidate(4, -1.0, 1.0),  // p4
      MakeCandidate(5, 1.0, 1.0),   // p5: both yes
  };
  SqlbMethod method;
  const auto decision = method.Allocate(request);
  ASSERT_EQ(decision.selected.size(), 1u);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(5));
  EXPECT_GT(decision.scores[4], 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(decision.scores[i], 0.0);
}

TEST(SqlbMethodTest, SelectsExactlyMinOfNAndCandidates) {
  Query q = MakeQuery(3);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {MakeCandidate(0, 0.5, 0.5),
                        MakeCandidate(1, 0.6, 0.6)};
  SqlbMethod method;
  const auto decision = method.Allocate(request);
  EXPECT_EQ(decision.selected.size(), 2u);  // min(q.n = 3, N = 2)
}

TEST(SqlbMethodTest, AdaptiveOmegaFavoursTheLessSatisfiedSide) {
  // Two providers with mirrored intentions. When the provider is much less
  // satisfied than the consumer, omega -> 1 and the provider's intention
  // dominates: the provider-preferred candidate must win; with a highly
  // satisfied provider the consumer's preference wins.
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.consumer_satisfaction = 0.95;
  request.candidates = {
      MakeCandidate(0, /*pi=*/0.9, /*ci=*/0.3, /*provider_sat=*/0.05),
      MakeCandidate(1, /*pi=*/0.3, /*ci=*/0.9, /*provider_sat=*/0.05),
  };
  SqlbMethod method;
  auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(0));

  request.consumer_satisfaction = 0.05;
  request.candidates[0].provider_satisfaction = 0.95;
  request.candidates[1].provider_satisfaction = 0.95;
  decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(SqlbMethodTest, FixedOmegaZeroRanksByConsumerIntention) {
  // Section 5.3: cooperative providers, omega = 0 -> consumer-only ranking.
  SqlbOptions options;
  options.fixed_omega = 0.0;
  SqlbMethod method(options);

  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {MakeCandidate(0, 0.99, 0.2),
                        MakeCandidate(1, 0.01, 0.8)};
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(1));
}

TEST(SqlbMethodTest, FixedOmegaOneRanksByProviderIntention) {
  SqlbOptions options;
  options.fixed_omega = 1.0;
  SqlbMethod method(options);

  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.candidates = {MakeCandidate(0, 0.99, 0.2),
                        MakeCandidate(1, 0.01, 0.8)};
  const auto decision = method.Allocate(request);
  EXPECT_EQ(request.candidates[decision.selected[0]].id, ProviderId(0));
}

TEST(SqlbMethodTest, ScoresMatchDefinition9) {
  Query q = MakeQuery(1);
  AllocationRequest request;
  request.query = &q;
  request.consumer_satisfaction = 0.7;
  request.candidates = {MakeCandidate(0, 0.5, 0.6, /*provider_sat=*/0.3)};
  SqlbMethod method;
  const auto decision = method.Allocate(request);
  const double omega = OmegaBalance(0.7, 0.3);
  EXPECT_DOUBLE_EQ(decision.scores[0], ProviderScore(0.5, 0.6, omega, 1.0));
}

TEST(SqlbMethodDeathTest, ValidatesOptions) {
  SqlbOptions bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_DEATH(SqlbMethod{bad_eps}, "epsilon");
  SqlbOptions bad_omega;
  bad_omega.fixed_omega = 1.5;
  EXPECT_DEATH(SqlbMethod{bad_omega}, "omega");
}

// Property sweep: selections are distinct, within range, and score-ordered.
class SqlbSelectionPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SqlbSelectionPropertyTest, SelectionInvariants) {
  Rng rng(GetParam());
  SqlbMethod method;
  for (int trial = 0; trial < 30; ++trial) {
    Query q = MakeQuery(1 + static_cast<std::uint32_t>(rng.NextBounded(5)));
    AllocationRequest request;
    request.query = &q;
    request.consumer_satisfaction = rng.NextDouble();
    const std::size_t n = 1 + rng.NextBounded(30);
    for (std::size_t i = 0; i < n; ++i) {
      request.candidates.push_back(MakeCandidate(
          static_cast<std::uint32_t>(i), rng.Uniform(-2.0, 1.0),
          rng.Uniform(-1.0, 1.0), rng.NextDouble()));
    }
    const auto decision = method.Allocate(request);
    ASSERT_EQ(decision.selected.size(),
              std::min<std::size_t>(q.n, n));
    ASSERT_EQ(decision.scores.size(), n);
    std::vector<bool> seen(n, false);
    double prev = 1e9;
    for (std::size_t idx : decision.selected) {
      ASSERT_LT(idx, n);
      ASSERT_FALSE(seen[idx]);
      seen[idx] = true;
      ASSERT_LE(decision.scores[idx], prev + 1e-12);  // best-first order
      prev = decision.scores[idx];
    }
    // No unselected candidate strictly beats a selected one.
    double worst_selected = prev;
    for (std::size_t i = 0; i < n; ++i) {
      if (!seen[i]) {
        ASSERT_LE(decision.scores[i], worst_selected + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRequests, SqlbSelectionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace sqlb
