#include "core/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sqlb {
namespace {

TEST(OmegaBalanceTest, Equation6) {
  // omega = ((sat_c - sat_p) + 1) / 2.
  EXPECT_DOUBLE_EQ(OmegaBalance(0.9, 0.3), 0.8);
  EXPECT_DOUBLE_EQ(OmegaBalance(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(OmegaBalance(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(OmegaBalance(1.0, 0.0), 1.0);
}

TEST(OmegaBalanceTest, LessSatisfiedSideGetsMoreWeight) {
  // Consumer far more satisfied than provider -> omega towards 1 (the
  // provider's intention dominates the score), and vice versa.
  EXPECT_GT(OmegaBalance(0.9, 0.2), 0.5);
  EXPECT_LT(OmegaBalance(0.2, 0.9), 0.5);
}

TEST(OmegaBalanceTest, ClampsInputs) {
  EXPECT_DOUBLE_EQ(OmegaBalance(2.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(OmegaBalance(-3.0, 7.0), 0.0);
}

TEST(ProviderScoreTest, PositiveBranchGeometricBalance) {
  EXPECT_NEAR(ProviderScore(0.64, 0.25, 0.5), std::sqrt(0.64 * 0.25),
              1e-12);
  EXPECT_DOUBLE_EQ(ProviderScore(0.7, 0.2, 1.0), 0.7);  // provider only
  EXPECT_DOUBLE_EQ(ProviderScore(0.7, 0.2, 0.0), 0.2);  // consumer only
}

TEST(ProviderScoreTest, NegativeBranchFormula) {
  // PI = -1.8 (overloaded provider), CI = 0.7, omega = 0.5, eps = 1:
  // -( (1 + 1.8 + 1)^0.5 * (1 - 0.7 + 1)^0.5 ) = -sqrt(3.8 * 1.3).
  EXPECT_NEAR(ProviderScore(-1.8, 0.7, 0.5), -std::sqrt(3.8 * 1.3), 1e-12);
}

TEST(ProviderScoreTest, MutualDesireBeatsOneSidedDesire) {
  const double mutual = ProviderScore(0.8, 0.8, 0.5);
  const double one_sided = ProviderScore(0.8, -0.2, 0.5);
  EXPECT_GT(mutual, 0.0);
  EXPECT_LT(one_sided, 0.0);
}

TEST(ProviderScoreTest, OverloadedDesiredLosesToIdleUndesired) {
  // The SQLB redistribution property (Section 6.3.1, Figure 4(h)): a
  // heavily overloaded provider the consumer likes (PI deep negative)
  // scores worse than an idle provider the consumer dislikes (PI positive,
  // CI negative but mild).
  const double overloaded_liked = ProviderScore(-1.8, 0.7, 0.5);
  const double idle_disliked = ProviderScore(0.7, -0.7, 0.5);
  EXPECT_GT(idle_disliked, overloaded_liked);
}

TEST(ProviderScoreTest, MonotoneInBothIntentions) {
  // Within each branch, raising either intention never lowers the score.
  for (double omega : {0.2, 0.5, 0.8}) {
    double prev = -100.0;
    for (double pi = -2.0; pi <= 1.0; pi += 0.05) {
      const double v = ProviderScore(pi, 0.6, omega);
      EXPECT_GE(v, prev - 1e-12) << "pi=" << pi << " omega=" << omega;
      prev = v;
    }
    prev = -100.0;
    for (double ci = -1.0; ci <= 1.0; ci += 0.05) {
      const double v = ProviderScore(0.6, ci, omega);
      EXPECT_GE(v, prev - 1e-12) << "ci=" << ci << " omega=" << omega;
      prev = v;
    }
  }
}

TEST(ProviderScoreTest, PositiveBranchAlwaysBeatsNegativeBranch) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double positive = ProviderScore(
        rng.Uniform(1e-6, 1.0), rng.Uniform(1e-6, 1.0), rng.NextDouble());
    const double pi = rng.Uniform(-2.5, 1.0);
    const double ci = rng.Uniform(-1.0, 0.0);  // forces negative branch
    const double negative = ProviderScore(pi, ci, rng.NextDouble());
    ASSERT_GT(positive, 0.0);
    ASSERT_LT(negative, 0.0);
  }
}

TEST(ProviderScoreDeathTest, RequiresPositiveEpsilon) {
  EXPECT_DEATH(ProviderScore(0.5, 0.5, 0.5, 0.0), "epsilon");
}

TEST(RankByScoreTest, DescendingWithStableTies) {
  const std::vector<double> scores{0.3, 0.9, 0.3, 1.0};
  const auto order = RankByScore(scores);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 0, 2}));
}

TEST(SelectTopNTest, PrefixOfRanking) {
  const std::vector<double> scores{0.3, 0.9, 0.3, 1.0};
  EXPECT_EQ(SelectTopN(scores, 2), (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(SelectTopN(scores, 0), (std::vector<std::size_t>{}));
}

TEST(SelectTopNTest, NLargerThanSetTakesAll) {
  const std::vector<double> scores{0.1, 0.2};
  EXPECT_EQ(SelectTopN(scores, 10), (std::vector<std::size_t>{1, 0}));
}

TEST(SelectTopNTest, AgreesWithFullRanking) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> scores;
    const std::size_t n = 1 + rng.NextBounded(60);
    for (std::size_t i = 0; i < n; ++i) {
      scores.push_back(rng.Uniform(-3.0, 1.0));
    }
    const auto full = RankByScore(scores);
    const std::size_t take = 1 + rng.NextBounded(n);
    const auto top = SelectTopN(scores, take);
    ASSERT_EQ(top.size(), take);
    for (std::size_t i = 0; i < take; ++i) {
      ASSERT_EQ(scores[top[i]], scores[full[i]]) << "rank " << i;
    }
  }
}

}  // namespace
}  // namespace sqlb
