#include "experiments/experiments.h"

#include <gtest/gtest.h>

namespace sqlb::experiments {
namespace {

/// Tiny configuration so harness tests run in tens of milliseconds.
runtime::SystemConfig TinyConfig() {
  runtime::SystemConfig config = PaperConfig(/*seed=*/42);
  config.population.num_consumers = 10;
  config.population.num_providers = 20;
  config.consumer.window.capacity = 20;
  config.provider.window.capacity = 40;
  config.duration = 120.0;
  config.sample_interval = 10.0;
  config.stats_warmup = 20.0;
  return config;
}

TEST(MethodFactoryTest, EveryKindInstantiatesWithItsName) {
  const MethodKind kinds[] = {
      MethodKind::kSqlb,          MethodKind::kCapacityBased,
      MethodKind::kCapacityMaxAvailable, MethodKind::kMariposa,
      MethodKind::kRandom,        MethodKind::kRoundRobin,
      MethodKind::kKnBest,        MethodKind::kSqlbEconomic,
  };
  for (MethodKind kind : kinds) {
    auto method = MakeMethod(kind, 1);
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method->name(), MethodName(kind));
  }
}

TEST(MethodFactoryTest, PaperTrioOrder) {
  const auto trio = PaperTrio();
  ASSERT_EQ(trio.size(), 3u);
  EXPECT_EQ(trio[0], MethodKind::kSqlb);
  EXPECT_EQ(trio[1], MethodKind::kMariposa);
  EXPECT_EQ(trio[2], MethodKind::kCapacityBased);
}

TEST(PaperConfigTest, MirrorsTable2) {
  const runtime::SystemConfig config = PaperConfig(7);
  EXPECT_EQ(config.population.num_consumers, 200u);
  EXPECT_EQ(config.population.num_providers, 400u);
  EXPECT_EQ(config.consumer.window.capacity, 200u);
  EXPECT_EQ(config.provider.window.capacity, 500u);
  EXPECT_DOUBLE_EQ(config.consumer.window.prior, 0.5);
  EXPECT_DOUBLE_EQ(config.duration, 10000.0);
  EXPECT_EQ(config.query_n, 1u);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.workload.kind, runtime::WorkloadSpec::Kind::kRamp);
}

TEST(FastModeTest, ShrinksPopulationAndDuration) {
  runtime::SystemConfig config = PaperConfig(7);
  ApplyFastMode(config);
  EXPECT_EQ(config.population.num_consumers, 50u);
  EXPECT_EQ(config.population.num_providers, 100u);
  EXPECT_DOUBLE_EQ(config.duration, 2500.0);
}

TEST(QualityRampTest, OneResultPerMethodWithSeries) {
  const auto results =
      RunQualityRamp(TinyConfig(), {MethodKind::kSqlb,
                                    MethodKind::kCapacityBased});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].method, MethodKind::kSqlb);
  EXPECT_GT(results[0].run.queries_issued, 0u);
  EXPECT_FALSE(results[0].run.series.empty());
  EXPECT_NE(results[0].run.series.Find(
                runtime::MediationSystem::kSeriesProvSatIntMean),
            nullptr);
}

TEST(WorkloadSweepTest, PointsMatchRequestedGrid) {
  SweepOptions options;
  options.workloads = {0.4, 0.8};
  options.duration = 120.0;
  options.warmup = 20.0;
  options.repetitions = 1;
  options.seed = 3;
  const auto sweeps =
      RunWorkloadSweep(TinyConfig(), options, {MethodKind::kSqlb});
  ASSERT_EQ(sweeps.size(), 1u);
  ASSERT_EQ(sweeps[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(sweeps[0].points[0].workload_fraction, 0.4);
  EXPECT_DOUBLE_EQ(sweeps[0].points[1].workload_fraction, 0.8);
  // More workload, more queries.
  EXPECT_GT(sweeps[0].points[1].queries_issued,
            sweeps[0].points[0].queries_issued);
  EXPECT_GT(sweeps[0].points[0].mean_response_time, 0.0);
}

TEST(WorkloadSweepTest, RepetitionsAverage) {
  SweepOptions options;
  options.workloads = {0.6};
  options.duration = 120.0;
  options.warmup = 20.0;
  options.repetitions = 3;
  options.seed = 3;
  const auto sweeps =
      RunWorkloadSweep(TinyConfig(), options, {MethodKind::kSqlb});
  // Averaged issue counts over 3 repetitions are not a multiple of one
  // run; just assert sane bounds.
  EXPECT_GT(sweeps[0].points[0].queries_issued, 0u);
  EXPECT_GT(sweeps[0].points[0].mean_provider_satisfaction, 0.0);
  EXPECT_LE(sweeps[0].points[0].mean_provider_satisfaction, 1.0);
}

TEST(DepartureBreakdownTest, PercentagesAreConsistent) {
  BreakdownOptions options;
  options.workload = 0.8;
  options.duration = 300.0;
  options.grace_period = 60.0;
  options.check_interval = 60.0;
  options.repetitions = 1;
  options.seed = 3;
  const auto breakdowns = RunDepartureBreakdown(
      TinyConfig(), options, {MethodKind::kCapacityBased});
  ASSERT_EQ(breakdowns.size(), 1u);
  const DepartureBreakdown& b = breakdowns[0];
  for (int r = 0; r < 3; ++r) {
    for (int d = 0; d < 3; ++d) {
      double sum = 0.0;
      for (int l = 0; l < 3; ++l) sum += b.percent[r][d][l];
      // Every dimension decomposes the same per-reason total.
      EXPECT_NEAR(sum, b.total[r], 1e-9);
    }
    EXPECT_GE(b.total[r], 0.0);
    EXPECT_LE(b.total[r], 100.0);
  }
}

}  // namespace
}  // namespace sqlb::experiments
