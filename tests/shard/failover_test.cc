#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// Pins the mediator crash / failover / recovery contracts
/// (runtime/faults.h, the failover protocol in
/// shard/sharded_mediation_system.cc):
///
///  - the zero-lost-completions accounting identity — completed +
///    infeasible + declared-reissued == issued, exactly — holds under
///    single kills, kill-everything schedules, random chaos schedules,
///    batched intake, and message loss;
///  - a strict-parity parallel run with a kill schedule is bit-identical
///    to its serial twin at any thread count, failover counters included;
///  - kills interleaved with churn-driven handoffs (a crash mid-drain)
///    cancel the affected handoffs and conserve the accounting;
///  - the gossip protocol stays safe under injected message loss: dropped
///    ring announcements are re-sent until acknowledged, and the run's
///    invariants are unchanged;
///  - the M = 1 sharded tier under kills reproduces the mono-mediator's
///    crash-and-restart semantics bit-for-bit.

namespace sqlb::shard {
namespace {

using runtime::ChurnSchedule;
using runtime::FaultSchedule;
using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

ShardedSystemConfig StrictFaultConfig(const SystemConfig& base,
                                      std::size_t shards) {
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = RoutingPolicy::kLocality;  // strict-parity shape
  config.rerouting_enabled = false;
  config.rebalance_enabled = true;
  config.rebalance_interval = 40.0;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

/// The tentpole invariant: every issued query is accounted exactly once —
/// completed, infeasible, or declared re-issued — under any kill schedule.
void ExpectZeroLostCompletions(const RunResult& run) {
  EXPECT_EQ(run.queries_issued, run.queries_completed +
                                    run.queries_infeasible +
                                    run.queries_reissued);
}

/// Bitwise comparison (EXPECT_EQ on doubles is deliberate: the contract is
/// bit-identity, not closeness).
void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);
  EXPECT_EQ(a.queries_reissued, b.queries_reissued);
  EXPECT_EQ(a.provider_joins, b.provider_joins);

  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time_all.count(), b.response_time_all.count());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());

  EXPECT_EQ(a.initial_providers, b.initial_providers);
  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_EQ(a.departures[i].time, b.departures[i].time) << i;
    EXPECT_EQ(a.departures[i].participant_index,
              b.departures[i].participant_index)
        << i;
  }

  const std::vector<std::string> names = a.series.Names();
  for (const std::string& name : names) {
    const des::TimeSeries* sa = a.series.Find(name);
    const des::TimeSeries* sb = b.series.Find(name);
    ASSERT_NE(sa, nullptr) << name;
    ASSERT_NE(sb, nullptr) << name;
    ASSERT_EQ(sa->samples.size(), sb->samples.size()) << name;
    for (std::size_t i = 0; i < sa->samples.size(); ++i) {
      EXPECT_EQ(sa->samples[i].first, sb->samples[i].first)
          << name << " sample " << i;
      EXPECT_EQ(sa->samples[i].second, sb->samples[i].second)
          << name << " sample " << i;
    }
  }
}

void ExpectIdenticalShardedRuns(const ShardedRunResult& a,
                                const ShardedRunResult& b) {
  ASSERT_EQ(a.run.series.Names(), b.run.series.Names());
  ExpectIdenticalRuns(a.run, b.run);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].routed, b.shards[s].routed) << s;
    EXPECT_EQ(a.shards[s].allocated, b.shards[s].allocated) << s;
    EXPECT_EQ(a.shards[s].joined, b.shards[s].joined) << s;
    EXPECT_EQ(a.shards[s].providers_in, b.shards[s].providers_in) << s;
    EXPECT_EQ(a.shards[s].providers_out, b.shards[s].providers_out) << s;
    EXPECT_EQ(a.shards[s].remaining_providers, b.shards[s].remaining_providers)
        << s;
  }
  EXPECT_EQ(a.ring_epoch, b.ring_epoch);
  EXPECT_EQ(a.ring_rebalances, b.ring_rebalances);
  EXPECT_EQ(a.handoffs_started, b.handoffs_started);
  EXPECT_EQ(a.handoffs_completed, b.handoffs_completed);
  EXPECT_EQ(a.handoffs_cancelled, b.handoffs_cancelled);
  EXPECT_EQ(a.ownership_digests, b.ownership_digests);
  // The failover protocol itself must replay identically: same crashes,
  // same adoptions, same re-issues, same suppressed completions.
  EXPECT_EQ(a.shard_crashes, b.shard_crashes);
  EXPECT_EQ(a.reissued_queries, b.reissued_queries);
  EXPECT_EQ(a.restored_providers, b.restored_providers);
  EXPECT_EQ(a.orphaned_providers, b.orphaned_providers);
  EXPECT_EQ(a.failover_drain_ticks, b.failover_drain_ticks);
  EXPECT_EQ(a.dropped_completions, b.dropped_completions);
  EXPECT_EQ(a.snapshots_taken, b.snapshots_taken);
}

// ---------------------------------------------------------------------------
// FaultSchedule semantics (pure data).
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, KillAtBuildsOneEvent) {
  const FaultSchedule schedule = FaultSchedule::KillAt(150.0, 2);
  ASSERT_EQ(schedule.events.size(), 1u);
  EXPECT_EQ(schedule.events[0].time, 150.0);
  EXPECT_EQ(schedule.events[0].shard, 2u);
  EXPECT_FALSE(schedule.empty());
}

TEST(FaultScheduleTest, RandomKillsAreDeterministicAndInRange) {
  const FaultSchedule a =
      FaultSchedule::RandomKills(50.0, 250.0, /*kills_per_1000s=*/40.0,
                                 /*num_shards=*/8, /*seed=*/7);
  const FaultSchedule b =
      FaultSchedule::RandomKills(50.0, 250.0, 40.0, 8, 7);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time) << i;
    EXPECT_EQ(a.events[i].shard, b.events[i].shard) << i;
    EXPECT_GE(a.events[i].time, 50.0) << i;
    EXPECT_LE(a.events[i].time, 250.0) << i;
    EXPECT_LT(a.events[i].shard, 8u) << i;
    if (i > 0) {
      EXPECT_GE(a.events[i].time, a.events[i - 1].time) << i;
    }
  }
  // A different seed moves the kill times.
  const FaultSchedule c =
      FaultSchedule::RandomKills(50.0, 250.0, 40.0, 8, 8);
  bool any_different = c.events.size() != a.events.size();
  for (std::size_t i = 0; !any_different && i < a.events.size(); ++i) {
    any_different = a.events[i].time != c.events[i].time ||
                    a.events[i].shard != c.events[i].shard;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultScheduleTest, AppendConcatenatesAndKeepsReceiverCadence) {
  FaultSchedule a = FaultSchedule::KillAt(100.0, 0);
  a.snapshot_interval = 25.0;
  a.drain_retry_interval = 2.0;
  FaultSchedule b = FaultSchedule::KillAt(200.0, 1);
  b.snapshot_interval = 99.0;
  a.Append(b);
  ASSERT_EQ(a.events.size(), 2u);
  EXPECT_EQ(a.events[1].time, 200.0);
  EXPECT_EQ(a.events[1].shard, 1u);
  EXPECT_EQ(a.snapshot_interval, 25.0);
  EXPECT_EQ(a.drain_retry_interval, 2.0);
}

// ---------------------------------------------------------------------------
// Zero-lost-completions accounting under kill schedules.
// ---------------------------------------------------------------------------

TEST(FailoverAccountingTest, SingleKillConservesAccounting) {
  // Saturating load so the killed shard holds in-flight work mid-run.
  SystemConfig base = SmallConfig(1.2, 17);
  base.shard_faults = FaultSchedule::KillAt(150.0, 1);

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_EQ(result.shard_crashes, 1u);
  // The crash caught live work: decisions were lost and re-issued, and the
  // dead incarnation's completions were suppressed, not double-counted.
  EXPECT_GT(result.reissued_queries, 0u);
  EXPECT_EQ(result.reissued_queries, result.run.queries_reissued);
  EXPECT_GT(result.dropped_completions, 0u);
  ExpectZeroLostCompletions(result.run);
  // Snapshots were taken on cadence, and the dead shard's members all
  // found a new home: restored from the last snapshot or re-admitted
  // fresh — providers are participants, not mediator state.
  EXPECT_GT(result.snapshots_taken, 0u);
  EXPECT_GT(result.restored_providers + result.orphaned_providers, 0u);
  EXPECT_EQ(result.run.remaining_providers, 40u);
  // Dispatches on the dead incarnation completed nowhere.
  std::uint64_t allocated = 0;
  for (const ShardStats& s : result.shards) allocated += s.allocated;
  EXPECT_GE(allocated, result.run.queries_completed);
}

TEST(FailoverAccountingTest, KillEveryShardFallsBackToRestart) {
  SystemConfig base = SmallConfig(1.0, 19);
  base.shard_faults = FaultSchedule::KillAt(100.0, 0);
  base.shard_faults.Append(FaultSchedule::KillAt(130.0, 1))
      .Append(FaultSchedule::KillAt(160.0, 2))
      .Append(FaultSchedule::KillAt(190.0, 3));

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  // Three failovers, then the last live shard restarts in place instead of
  // being killed outright — the tier can never extinguish itself.
  EXPECT_EQ(result.shard_crashes, 4u);
  ExpectZeroLostCompletions(result.run);
  EXPECT_GT(result.run.queries_completed, 0u);
  EXPECT_EQ(result.run.remaining_providers, 40u);
}

TEST(FailoverAccountingTest, RepeatKillOfDeadShardIsNoOp) {
  SystemConfig base = SmallConfig(1.0, 23);
  base.shard_faults = FaultSchedule::KillAt(100.0, 2);
  base.shard_faults.Append(FaultSchedule::KillAt(140.0, 2));  // already dead

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_EQ(result.shard_crashes, 1u);
  ExpectZeroLostCompletions(result.run);
}

TEST(FailoverAccountingTest, RandomChaosScheduleKeepsInvariant) {
  SystemConfig base = SmallConfig(1.1, 29);
  base.shard_faults = FaultSchedule::RandomKills(
      50.0, 250.0, /*kills_per_1000s=*/20.0, /*num_shards=*/8, /*seed=*/3);
  ASSERT_GT(base.shard_faults.events.size(), 0u);

  ShardedSystemConfig config = StrictFaultConfig(base, 8);
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_GE(result.shard_crashes, 1u);
  ExpectZeroLostCompletions(result.run);
  // Late kills can leave providers still draining their dead lane's queue
  // at the horizon; those wait in the adoption queue and are simply not
  // members of any core when the run ends — never lost, never duplicated.
  EXPECT_LE(result.run.remaining_providers, 40u);
  EXPECT_GT(result.run.remaining_providers, 0u);
}

TEST(FailoverAccountingTest, BatchedIntakeReissuesBufferedQueries) {
  // A wide coalescing window keeps queries sitting in the intake buffer,
  // so a kill catches routed-but-unmediated work too.
  SystemConfig base = SmallConfig(1.2, 31);
  base.shard_faults = FaultSchedule::KillAt(150.0, 0);
  base.shard_faults.Append(FaultSchedule::KillAt(200.0, 2));

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  config.batch_window = 2.0;
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  ExpectZeroLostCompletions(result.run);
  EXPECT_GT(result.reissued_queries, 0u);
  // Both loss modes are distinguished in the per-reason counters, and the
  // split sums to the total.
  const std::uint64_t in_flight =
      result.run.metrics.CounterValue("failover.reissued.in_flight");
  const std::uint64_t intake =
      result.run.metrics.CounterValue("failover.reissued.intake");
  EXPECT_EQ(in_flight + intake, result.reissued_queries);
  EXPECT_GT(intake, 0u);
  // The availability penalty is charged: every re-issue recorded its
  // crash-to-reissue delay.
  const obs::Histogram* delay =
      result.run.metrics.FindHistogram(obs::kMetricReissueDelay);
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), result.reissued_queries);
  EXPECT_GT(delay->max(), 0.0);
}

// ---------------------------------------------------------------------------
// Strict-parity failover: bit-identical to the serial twin.
// ---------------------------------------------------------------------------

class FailoverParityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(FailoverParityTest, ParallelKillScheduleIsBitIdenticalToSerial) {
  const std::size_t shards = std::get<0>(GetParam());
  const std::size_t threads = std::get<1>(GetParam());

  SystemConfig base = SmallConfig(1.1, 13);
  base.shard_faults = FaultSchedule::KillAt(110.0, 1);
  base.shard_faults.Append(
      FaultSchedule::KillAt(190.0, shards == 4 ? 3 : 6));

  ShardedSystemConfig serial = StrictFaultConfig(base, shards);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());
  // The kills must actually bite in the pinned run.
  ASSERT_EQ(serial_result.shard_crashes, 2u);
  ASSERT_GT(serial_result.reissued_queries, 0u);
  ASSERT_GT(serial_result.restored_providers + serial_result.orphaned_providers,
            0u);
  ExpectZeroLostCompletions(serial_result.run);

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = threads;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndThreads, FailoverParityTest,
    ::testing::Values(
        std::make_tuple(std::size_t{4}, std::size_t{1}),
        std::make_tuple(std::size_t{4}, std::size_t{2}),
        std::make_tuple(std::size_t{8}, std::size_t{1}),
        std::make_tuple(std::size_t{8}, std::size_t{2}),
        std::make_tuple(std::size_t{8},
                        std::size_t{std::max(
                            2u, std::thread::hardware_concurrency())})));

// ---------------------------------------------------------------------------
// Faults interleaved with churn: a crash mid-handoff.
// ---------------------------------------------------------------------------

TEST(FailoverChurnTest, KillDuringChurnDrivenHandoffsConservesAccounting) {
  SystemConfig base = SmallConfig(1.0, 37);
  // Gut shard 0's membership to force rebalancing handoffs, then kill a
  // shard while the ring is still re-converging (the first rebalance tick
  // after the mass leave is at t = 120; the kill lands right after it).
  base.provider_churn = ShardChurnSchedule(
      StrictFaultConfig(base, 4).router, /*shard=*/0,
      base.population.num_providers, /*leave_at=*/base.duration / 3.0,
      /*rejoin_at=*/2.0 * base.duration / 3.0);
  ASSERT_GT(base.provider_churn.events.size(), 0u);
  base.shard_faults = FaultSchedule::KillAt(125.0, 1);
  base.shard_faults.Append(FaultSchedule::KillAt(245.0, 2));

  ShardedSystemConfig serial = StrictFaultConfig(base, 4);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  EXPECT_EQ(serial_result.shard_crashes, 2u);
  ExpectZeroLostCompletions(serial_result.run);
  ASSERT_GT(serial_result.run.provider_joins, 0u);
  // Handoff accounting still closes: every seal transferred, cancelled, or
  // still draining at the horizon.
  EXPECT_GE(serial_result.handoffs_started,
            serial_result.handoffs_completed +
                serial_result.handoffs_cancelled);

  // And the interleaving replays bit-identically in parallel.
  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 2;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());
  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

// ---------------------------------------------------------------------------
// Message loss: the gossip protocol is safe under injected drops/delays.
// ---------------------------------------------------------------------------

TEST(NetworkFaultTest, GossipSurvivesInjectedLossAndDelay) {
  SystemConfig base = SmallConfig(1.0, 41);
  base.shard_faults = FaultSchedule::KillAt(150.0, 1);

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  config.network_faults.drop_probability = 0.3;
  config.network_faults.delay_probability = 0.3;
  config.network_faults.extra_delay_min = 0.01;
  config.network_faults.extra_delay_max = 0.05;
  config.network_faults.seed = 99;

  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  // The faults actually fired and were accounted.
  EXPECT_GT(result.net_injected_drops, 0u);
  EXPECT_GT(result.net_injected_delays, 0u);
  EXPECT_GE(result.net_dropped, result.net_injected_drops);
  EXPECT_EQ(result.net_sent,
            result.net_delivered + result.net_dropped);
  // Nothing the scenario accounts for was lost to the lossy network: load
  // reports age into the staleness fallback and ring announcements are
  // re-sent until acknowledged.
  ExpectZeroLostCompletions(result.run);
  EXPECT_EQ(result.shard_crashes, 1u);
  EXPECT_EQ(result.run.remaining_providers, 40u);
}

TEST(NetworkFaultTest, DroppedRingAnnouncementsAreRetried) {
  SystemConfig base = SmallConfig(1.0, 43);
  // Several epoch bumps (kills + churn-driven rebalances) under heavy
  // loss: some RingUpdate announcements must die and be re-sent.
  base.provider_churn = ChurnSchedule::LeaveAndRejoin(60.0, 180.0, 0, 10);
  base.shard_faults = FaultSchedule::KillAt(120.0, 2);

  ShardedSystemConfig config = StrictFaultConfig(base, 4);
  config.network_faults.drop_probability = 0.5;
  config.network_faults.seed = 7;

  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_GT(result.net_injected_drops, 0u);
  EXPECT_GT(result.gossip_ring_retries, 0u);
  ExpectZeroLostCompletions(result.run);
}

TEST(NetworkFaultTest, ZeroPolicyIsBitIdenticalToNoPolicy) {
  SystemConfig base = SmallConfig(1.0, 47);
  base.shard_faults = FaultSchedule::KillAt(150.0, 1);

  ShardedSystemConfig baseline = StrictFaultConfig(base, 4);
  const ShardedRunResult a = RunShardedScenario(baseline, SqlbFactory());

  ShardedSystemConfig zeroed = StrictFaultConfig(base, 4);
  zeroed.network_faults = msg::FaultPolicy{};  // all-zero probabilities
  const ShardedRunResult b = RunShardedScenario(zeroed, SqlbFactory());

  ExpectIdenticalShardedRuns(a, b);
  EXPECT_EQ(a.net_injected_drops, 0u);
  EXPECT_EQ(a.net_injected_delays, 0u);
}

// ---------------------------------------------------------------------------
// Mono crash-and-restart == M = 1 sharded under the same kill schedule.
// ---------------------------------------------------------------------------

TEST(MonoFailoverTest, MonoRestartMatchesSingleShardExactly) {
  SystemConfig base = SmallConfig(1.1, 53);
  base.shard_faults = FaultSchedule::KillAt(120.0, 0);
  base.shard_faults.Append(FaultSchedule::KillAt(220.0, 0));

  SqlbMethod mono_method;
  runtime::MediationSystem mono(base, &mono_method);
  const RunResult mono_result = mono.Run();

  ExpectZeroLostCompletions(mono_result);
  EXPECT_GT(mono_result.queries_reissued, 0u);
  EXPECT_EQ(mono_result.metrics.CounterValue(obs::kMetricShardCrashes), 2u);
  EXPECT_GT(mono_result.metrics.CounterValue(obs::kMetricSnapshots), 0u);

  ShardedSystemConfig sharded = StrictFaultConfig(base, 1);
  const ShardedRunResult sharded_result =
      RunShardedScenario(sharded, SqlbFactory());

  ExpectIdenticalRuns(mono_result, sharded_result.run);
  // The failover accounting is part of the parity surface too.
  for (const char* name :
       {obs::kMetricShardCrashes, obs::kMetricReissuedQueries,
        obs::kMetricRestoredProviders, obs::kMetricOrphanedProviders,
        obs::kMetricDroppedCompletions, obs::kMetricSnapshots}) {
    EXPECT_EQ(mono_result.metrics.CounterValue(name),
              sharded_result.run.metrics.CounterValue(name))
        << name;
  }
}

TEST(MonoFailoverTest, CrashPenaltyShowsUpInResponseTime) {
  SystemConfig calm = SmallConfig(1.1, 59);
  SystemConfig faulted = calm;
  faulted.shard_faults = FaultSchedule::KillAt(120.0, 0);
  faulted.shard_faults.snapshot_interval = 100.0;  // coarse: big loss window

  SqlbMethod m1, m2;
  runtime::MediationSystem calm_system(calm, &m1);
  const RunResult calm_result = calm_system.Run();
  runtime::MediationSystem faulted_system(faulted, &m2);
  const RunResult faulted_result = faulted_system.Run();

  ExpectZeroLostCompletions(faulted_result);
  ASSERT_GT(faulted_result.queries_reissued, 0u);
  // Re-issued queries keep their original issue times, so the crash is an
  // availability penalty the response-time statistics must show.
  EXPECT_GT(faulted_result.response_time_all.max(),
            calm_result.response_time_all.max());
}

}  // namespace
}  // namespace sqlb::shard
