#include "shard/sharded_mediation_system.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/sqlb_method.h"
#include "methods/capacity_based.h"
#include "runtime/mediation_system.h"
#include "shard/shard_router.h"

namespace sqlb::shard {
namespace {

using runtime::MediationSystem;
using runtime::RunResult;
using runtime::SystemConfig;

/// A scaled-down Table 2 setup that runs in milliseconds.
SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

ShardedSystemConfig Sharded(const SystemConfig& base, std::size_t shards,
                            RoutingPolicy policy = RoutingPolicy::kHash) {
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = policy;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

double FinalValue(const RunResult& result, const char* key) {
  const des::TimeSeries* series = result.series.Find(key);
  EXPECT_NE(series, nullptr) << key;
  return series->samples.back().second;
}

// ---------------------------------------------------------------------------
// M = 1 parity: the sharded tier with one shard IS the mono-mediator.
// ---------------------------------------------------------------------------

TEST(ShardedMediationTest, SingleShardReproducesMonoMediatorExactly) {
  const SystemConfig base = SmallConfig(0.7);

  SqlbMethod mono_method;
  runtime::MediationSystem mono(base, &mono_method);
  const RunResult mono_result = mono.Run();

  const ShardedRunResult sharded =
      RunShardedScenario(Sharded(base, 1), SqlbFactory());

  // Same RNG streams + same pipeline code = the same run, not a similar
  // one. Counters must match exactly, response-time moments bit-for-bit.
  EXPECT_EQ(sharded.run.queries_issued, mono_result.queries_issued);
  EXPECT_EQ(sharded.run.queries_completed, mono_result.queries_completed);
  EXPECT_EQ(sharded.run.queries_infeasible, mono_result.queries_infeasible);
  EXPECT_DOUBLE_EQ(sharded.run.response_time.mean(),
                   mono_result.response_time.mean());
  EXPECT_DOUBLE_EQ(sharded.run.response_time_all.mean(),
                   mono_result.response_time_all.mean());
  EXPECT_DOUBLE_EQ(sharded.run.response_time.max(),
                   mono_result.response_time.max());

  // Quality metrics (the Figure 4 series) agree sample for sample.
  for (const char* key :
       {MediationSystem::kSeriesProvSatIntMean,
        MediationSystem::kSeriesConsAllocSatMean,
        MediationSystem::kSeriesUtMean, MediationSystem::kSeriesUtFair,
        MediationSystem::kSeriesResponseTime}) {
    EXPECT_DOUBLE_EQ(FinalValue(sharded.run, key),
                     FinalValue(mono_result, key))
        << key;
    EXPECT_NEAR(sharded.run.series.Find(key)->MeanOver(0.0, base.duration),
                mono_result.series.Find(key)->MeanOver(0.0, base.duration),
                1e-12)
        << key;
  }

  // No shard-tier machinery fired behind the mono system's back.
  EXPECT_EQ(sharded.run.departures.size(), mono_result.departures.size());
  EXPECT_EQ(sharded.reroutes, 0u);
  EXPECT_EQ(sharded.reroute_rescues, 0u);
}

TEST(ShardedMediationTest, SingleShardParityHoldsUnderDepartures) {
  SystemConfig base = SmallConfig(0.9, 7);
  base.departures = runtime::DepartureConfig::AllEnabled();
  base.departures.grace_period = 60.0;
  base.departures.check_interval = 60.0;

  auto mono_method = std::make_unique<SqlbMethod>();
  const RunResult mono_result =
      runtime::RunScenario(base, mono_method.get());

  const ShardedRunResult sharded =
      RunShardedScenario(Sharded(base, 1), SqlbFactory());

  EXPECT_EQ(sharded.run.queries_issued, mono_result.queries_issued);
  EXPECT_EQ(sharded.run.departures.size(), mono_result.departures.size());
  EXPECT_EQ(sharded.run.remaining_providers,
            mono_result.remaining_providers);
  EXPECT_EQ(sharded.run.remaining_consumers,
            mono_result.remaining_consumers);
  EXPECT_EQ(sharded.run.tally.providers_total(),
            mono_result.tally.providers_total());
  EXPECT_EQ(sharded.run.tally.consumers_total(),
            mono_result.tally.consumers_total());
}

// ---------------------------------------------------------------------------
// Multi-shard behavior.
// ---------------------------------------------------------------------------

TEST(ShardedMediationTest, MultiShardRunServesTheWholeWorkload) {
  const ShardedRunResult result =
      RunShardedScenario(Sharded(SmallConfig(0.6), 4), SqlbFactory());

  EXPECT_GT(result.run.queries_issued, 500u);
  // Captive population, every shard holds providers: nothing is lost.
  EXPECT_EQ(result.run.queries_infeasible, 0u);
  EXPECT_EQ(result.run.queries_completed, result.run.queries_issued);

  // Per-shard accounting covers the whole population and workload.
  ASSERT_EQ(result.shards.size(), 4u);
  std::size_t providers = 0;
  std::uint64_t routed = 0, allocated = 0;
  for (const ShardStats& shard : result.shards) {
    EXPECT_GT(shard.initial_providers, 0u);
    providers += shard.initial_providers;
    routed += shard.routed;
    allocated += shard.allocated;
  }
  EXPECT_EQ(providers, 40u);
  EXPECT_EQ(routed, result.run.queries_issued);
  EXPECT_EQ(allocated, result.run.queries_completed);
}

TEST(ShardedMediationTest, AggregatedSeriesCoverAllShards) {
  const ShardedRunResult result =
      RunShardedScenario(Sharded(SmallConfig(0.6), 4), SqlbFactory());

  // The aggregate active-provider series counts every shard's members.
  EXPECT_DOUBLE_EQ(
      FinalValue(result.run, MediationSystem::kSeriesActiveProviders), 40.0);
  // Per-shard utilization series exist and sit near the configured load.
  for (std::size_t s = 0; s < 4; ++s) {
    const auto* series = result.run.series.Find(
        ShardedMediationSystem::kSeriesShardUtPrefix + std::to_string(s));
    ASSERT_NE(series, nullptr);
    EXPECT_GT(series->MeanOver(100.0, 300.0), 0.1);
    EXPECT_LT(series->MeanOver(100.0, 300.0), 2.0);
  }
}

TEST(ShardedMediationTest, GossipDeliversLoadReports) {
  ShardedSystemConfig config = Sharded(SmallConfig(0.6), 4);
  config.gossip_interval = 5.0;
  const ShardedRunResult result =
      RunShardedScenario(config, SqlbFactory());

  // 4 shards * (300 / 5) rounds, minus edge effects.
  EXPECT_GT(result.gossip_sent, 200u);
  EXPECT_EQ(result.gossip_delivered, result.gossip_sent);
}

TEST(ShardedMediationTest, LeastLoadedPolicyRunsOnGossipAndFallsBackWhenOff) {
  ShardedSystemConfig with_gossip =
      Sharded(SmallConfig(0.8), 4, RoutingPolicy::kLeastLoaded);
  const ShardedRunResult on = RunShardedScenario(with_gossip, SqlbFactory());
  // After the first gossip round the load view stays fresh: only the
  // arrivals before the first reports land take the fallback path.
  EXPECT_GT(on.run.queries_issued, 1000u);
  EXPECT_LT(on.stale_fallbacks, on.run.queries_issued / 10);
  EXPECT_EQ(on.run.queries_completed, on.run.queries_issued);

  ShardedSystemConfig no_gossip = with_gossip;
  no_gossip.gossip_enabled = false;
  const ShardedRunResult off = RunShardedScenario(no_gossip, SqlbFactory());
  // Without gossip every least-loaded decision times out its (absent) load
  // view and degrades to hash routing — the system still serves.
  EXPECT_EQ(off.stale_fallbacks, off.run.queries_issued);
  EXPECT_EQ(off.run.queries_completed, off.run.queries_issued);
  EXPECT_EQ(off.gossip_sent, 0u);
}

TEST(ShardedMediationTest, ReroutingRescuesQueriesFromEmptyShards) {
  // 3 providers on 8 shards: most shards hold no provider at all, so hash
  // routing keeps steering queries at empty shards.
  SystemConfig base = SmallConfig(0.3);
  base.population.num_providers = 3;
  base.population.num_consumers = 5;

  ShardedSystemConfig config = Sharded(base, 8);
  config.max_route_attempts = 8;
  const ShardedRunResult with = RunShardedScenario(config, SqlbFactory());

  EXPECT_GT(with.reroutes, 0u);
  EXPECT_GT(with.reroute_rescues, 0u);
  // Every query eventually found a provider-bearing shard.
  EXPECT_EQ(with.run.queries_infeasible, 0u);
  EXPECT_EQ(with.run.queries_completed, with.run.queries_issued);

  ShardedSystemConfig without = config;
  without.rerouting_enabled = false;
  const ShardedRunResult off = RunShardedScenario(without, SqlbFactory());
  // Without rebalance those same queries die at their empty home shard.
  EXPECT_GT(off.run.queries_infeasible, 0u);
}

TEST(ShardedMediationTest, SaturationBounceNeverDropsQueries) {
  // An aggressive saturation bound forces constant bouncing; the final
  // attempt must still mediate, so the workload is fully served.
  ShardedSystemConfig config = Sharded(SmallConfig(0.9), 4);
  config.saturation_backlog_seconds = 0.05;
  config.max_route_attempts = 3;
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_GT(result.reroutes, 0u);
  EXPECT_EQ(result.run.queries_infeasible, 0u);
  EXPECT_EQ(result.run.queries_completed, result.run.queries_issued);
}

TEST(ShardedMediationTest, RouteImbalanceStaysBoundedUnderHashPolicy) {
  const ShardedRunResult result =
      RunShardedScenario(Sharded(SmallConfig(0.6), 8), SqlbFactory());
  // 8-way hash spread over ~1400 queries: no shard should see more than
  // twice its fair share.
  EXPECT_LT(result.RouteImbalance(), 2.0);
  EXPECT_GE(result.RouteImbalance(), 1.0);
}

TEST(ShardedMediationTest, PerShardDepartureRulesFire) {
  // Heavy sustained overload with departures on: overutilized providers
  // leave their shard, and the per-shard remaining counts reflect it.
  SystemConfig base = SmallConfig(1.2, 11);
  base.departures.provider_overutilization = true;
  base.departures.grace_period = 60.0;
  base.departures.check_interval = 30.0;
  base.departures.overutilization_fraction = 1.1;

  const ShardedRunResult result =
      RunShardedScenario(Sharded(base, 4), SqlbFactory());

  EXPECT_GT(result.run.tally.providers_total(), 0u);
  std::size_t remaining = 0;
  for (const ShardStats& shard : result.shards) {
    EXPECT_LE(shard.remaining_providers, shard.initial_providers);
    remaining += shard.remaining_providers;
  }
  EXPECT_EQ(remaining, result.run.remaining_providers);
  EXPECT_EQ(result.run.initial_providers - remaining,
            result.run.tally.providers_total());
}

}  // namespace
}  // namespace sqlb::shard
