#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The characterization-cache bit-identity contract: a run with
/// SystemConfig::characterization_cache on is bit-for-bit the run with it
/// off — same counters, same response-time statistics, same series, same
/// ownership digests — across every intake and membership path the cache
/// interacts with: single-query Allocate, batched AllocateBatch,
/// re-routing, provider churn with rebalancing handoffs, and the
/// Section 6.3.2 departure rules. The cache may only change *when* provider
/// state is read, never what any read returns, and these tests are the
/// enforcement.

namespace sqlb::shard {
namespace {

using runtime::ChurnSchedule;
using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 240.0;
  config.sample_interval = 20.0;
  config.stats_warmup = 40.0;
  config.seed = seed;
  return config;
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);
  EXPECT_EQ(a.provider_joins, b.provider_joins);
  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());
  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_EQ(a.departures[i].time, b.departures[i].time) << i;
    EXPECT_EQ(a.departures[i].participant_index,
              b.departures[i].participant_index)
        << i;
  }
  const std::vector<std::string> names = a.series.Names();
  ASSERT_EQ(names, b.series.Names());
  for (const std::string& name : names) {
    const des::TimeSeries* sa = a.series.Find(name);
    const des::TimeSeries* sb = b.series.Find(name);
    ASSERT_EQ(sa->samples.size(), sb->samples.size()) << name;
    for (std::size_t i = 0; i < sa->samples.size(); ++i) {
      EXPECT_EQ(sa->samples[i].second, sb->samples[i].second)
          << name << " sample " << i;
    }
  }
}

void ExpectIdenticalShardedRuns(const ShardedRunResult& a,
                                const ShardedRunResult& b) {
  ExpectIdenticalRuns(a.run, b.run);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].routed, b.shards[s].routed) << s;
    EXPECT_EQ(a.shards[s].allocated, b.shards[s].allocated) << s;
    EXPECT_EQ(a.shards[s].providers_in, b.shards[s].providers_in) << s;
    EXPECT_EQ(a.shards[s].providers_out, b.shards[s].providers_out) << s;
  }
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.ring_epoch, b.ring_epoch);
  EXPECT_EQ(a.handoffs_completed, b.handoffs_completed);
  EXPECT_EQ(a.batch_flushes, b.batch_flushes);
  EXPECT_EQ(a.batched_queries, b.batched_queries);
  // The ownership sequence pins the re-partitioning protocol itself.
  EXPECT_EQ(a.ownership_digests, b.ownership_digests);
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

TEST(CacheParityTest, MonoRunIsBitIdenticalWithCacheOff) {
  SystemConfig cached = SmallConfig(0.9, 17);
  cached.departures = runtime::DepartureConfig::AllEnabled();
  cached.departures.grace_period = 60.0;
  cached.departures.check_interval = 30.0;
  SystemConfig uncached = cached;
  uncached.characterization_cache = false;

  SqlbMethod m1, m2;
  runtime::MediationSystem a(cached, &m1);
  runtime::MediationSystem b(uncached, &m2);
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  ASSERT_GT(ra.queries_completed, 0u);
  ExpectIdenticalRuns(ra, rb);
}

/// Randomized configuration sweep: each trial draws an interleaving of the
/// cache's interaction surfaces — batched vs inline intake, routing policy,
/// rerouting + saturation bounces, churn with rebalancing handoffs,
/// departure rules — and pins cache-on == cache-off bit-for-bit.
TEST(CacheParityTest, RandomizedScenariosAreBitIdenticalWithCacheOff) {
  Rng rng(0xcafe5eedULL);
  for (int trial = 0; trial < 6; ++trial) {
    const double workload = 0.7 + 0.1 * static_cast<double>(rng.NextBounded(5));
    SystemConfig base = SmallConfig(workload, 100 + trial);

    const bool with_departures = rng.NextBounded(2) == 0;
    if (with_departures) {
      base.departures = runtime::DepartureConfig::AllEnabled();
      base.departures.grace_period = 60.0;
      base.departures.check_interval = 30.0;
    }
    const bool with_churn = rng.NextBounded(2) == 0;
    if (with_churn) {
      base.provider_churn = ChurnSchedule::LeaveAndRejoin(
          base.duration / 3.0, 2.0 * base.duration / 3.0, /*first=*/0,
          /*count=*/base.population.num_providers / 4);
    }

    ShardedSystemConfig config;
    config.base = base;
    config.router.num_shards = 1 + rng.NextBounded(4) * 2;  // 1, 3, 5, 7
    config.router.policy = static_cast<RoutingPolicy>(rng.NextBounded(3));
    config.rerouting_enabled = rng.NextBounded(2) == 0;
    config.saturation_backlog_seconds =
        config.rerouting_enabled ? 5.0 * static_cast<double>(rng.NextBounded(3))
                                 : 0.0;
    config.batch_window = rng.NextBounded(2) == 0 ? 0.5 : 0.0;
    config.rebalance_enabled = with_churn;

    SCOPED_TRACE("trial " + std::to_string(trial) + " shards " +
                 std::to_string(config.router.num_shards) + " policy " +
                 RoutingPolicyName(config.router.policy) + " batch " +
                 std::to_string(config.batch_window) + " churn " +
                 std::to_string(with_churn) + " departures " +
                 std::to_string(with_departures));

    ShardedSystemConfig uncached = config;
    uncached.base.characterization_cache = false;

    const ShardedRunResult cached_run =
        RunShardedScenario(config, SqlbFactory());
    const ShardedRunResult uncached_run =
        RunShardedScenario(uncached, SqlbFactory());
    ASSERT_GT(cached_run.run.queries_completed, 0u);
    ExpectIdenticalShardedRuns(cached_run, uncached_run);
  }
}

/// Adaptive windows compose with the cache: cache-on == cache-off under the
/// per-shard controller, and the adaptive run actually batches.
TEST(CacheParityTest, AdaptiveBatchingIsBitIdenticalWithCacheOff) {
  SystemConfig base = SmallConfig(1.0, 51);
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = 4;
  config.router.policy = RoutingPolicy::kLeastLoaded;
  config.adaptive_batch.enabled = true;
  config.adaptive_batch.max_window = 1.5;

  ShardedSystemConfig uncached = config;
  uncached.base.characterization_cache = false;

  const ShardedRunResult cached_run = RunShardedScenario(config, SqlbFactory());
  const ShardedRunResult uncached_run =
      RunShardedScenario(uncached, SqlbFactory());
  EXPECT_GT(cached_run.batch_flushes, 0u);
  ExpectIdenticalShardedRuns(cached_run, uncached_run);
}

}  // namespace
}  // namespace sqlb::shard
