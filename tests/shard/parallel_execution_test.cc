#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_core.h"
#include "runtime/mediation_system.h"
#include "shard/shard_router.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// Pins the epoch-parallel execution and batched-intake contracts:
///
///  - a parallel sharded run (any worker count) is bit-identical to the
///    serial sharded run for a fixed seed — counters, response-time
///    moments, departures, and every collected series sample;
///  - MediationCore::AllocateBatch with a burst of one reproduces
///    Allocate bit-for-bit;
///  - serial and parallel batched runs agree with each other.

namespace sqlb::shard {
namespace {

using runtime::MediationCore;
using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

/// A config the parallel mode accepts: consumer-affine routing, no
/// rerouting (the state-disjointness contract).
ShardedSystemConfig ParallelizableConfig(const SystemConfig& base,
                                         std::size_t shards) {
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = RoutingPolicy::kLocality;
  config.rerouting_enabled = false;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

/// Bitwise comparison of everything a run produces. EXPECT_EQ on doubles is
/// deliberate: the contract is bit-identity, not closeness.
void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);

  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time.min(), b.response_time.min());
  EXPECT_EQ(a.response_time.max(), b.response_time.max());
  EXPECT_EQ(a.response_time_all.count(), b.response_time_all.count());
  EXPECT_EQ(a.response_time_all.mean(), b.response_time_all.mean());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());

  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_EQ(a.departures[i].time, b.departures[i].time) << i;
    EXPECT_EQ(a.departures[i].is_provider, b.departures[i].is_provider) << i;
    EXPECT_EQ(a.departures[i].participant_index,
              b.departures[i].participant_index)
        << i;
    EXPECT_EQ(static_cast<int>(a.departures[i].reason),
              static_cast<int>(b.departures[i].reason))
        << i;
  }

  // Every series `a` collected must exist in `b` with identical samples
  // (`b` may carry extra keys: the sharded tier adds shard.* series the
  // mono-mediator does not have).
  const std::vector<std::string> names = a.series.Names();
  for (const std::string& name : names) {
    const des::TimeSeries* sa = a.series.Find(name);
    const des::TimeSeries* sb = b.series.Find(name);
    ASSERT_NE(sa, nullptr) << name;
    ASSERT_NE(sb, nullptr) << name;
    ASSERT_EQ(sa->samples.size(), sb->samples.size()) << name;
    for (std::size_t i = 0; i < sa->samples.size(); ++i) {
      EXPECT_EQ(sa->samples[i].first, sb->samples[i].first)
          << name << " sample " << i;
      EXPECT_EQ(sa->samples[i].second, sb->samples[i].second)
          << name << " sample " << i;
    }
  }
}

void ExpectIdenticalShardedRuns(const ShardedRunResult& a,
                                const ShardedRunResult& b) {
  ASSERT_EQ(a.run.series.Names(), b.run.series.Names());
  ExpectIdenticalRuns(a.run, b.run);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].routed, b.shards[s].routed) << s;
    EXPECT_EQ(a.shards[s].allocated, b.shards[s].allocated) << s;
    EXPECT_EQ(a.shards[s].remaining_providers, b.shards[s].remaining_providers)
        << s;
  }
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.gossip_sent, b.gossip_sent);
  EXPECT_EQ(a.gossip_delivered, b.gossip_delivered);
  EXPECT_EQ(a.stale_fallbacks, b.stale_fallbacks);
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial bit-identity, across shard and thread counts.
// ---------------------------------------------------------------------------

class ParallelParityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ParallelParityTest, ParallelRunIsBitIdenticalToSerial) {
  const std::size_t shards = std::get<0>(GetParam());
  const std::size_t threads = std::get<1>(GetParam());

  ShardedSystemConfig serial =
      ParallelizableConfig(SmallConfig(0.8), shards);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = threads;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndThreads, ParallelParityTest,
    ::testing::Values(
        std::make_tuple(std::size_t{1}, std::size_t{1}),
        std::make_tuple(std::size_t{1}, std::size_t{2}),
        std::make_tuple(std::size_t{4}, std::size_t{1}),
        std::make_tuple(std::size_t{4}, std::size_t{2}),
        std::make_tuple(std::size_t{4},
                        std::size_t{std::max(2u,
                                             std::thread::hardware_concurrency())}),
        std::make_tuple(std::size_t{8}, std::size_t{1}),
        std::make_tuple(std::size_t{8}, std::size_t{2}),
        std::make_tuple(std::size_t{8},
                        std::size_t{std::max(2u,
                                             std::thread::hardware_concurrency())})));

TEST(ParallelExecutionTest, ParityHoldsUnderDepartures) {
  SystemConfig base = SmallConfig(1.1, 7);
  base.departures = runtime::DepartureConfig::AllEnabled();
  base.departures.grace_period = 60.0;
  base.departures.check_interval = 30.0;

  ShardedSystemConfig serial = ParallelizableConfig(base, 4);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());
  // Departures must actually fire for this pin to mean anything.
  ASSERT_GT(serial_result.run.departures.size(), 0u);

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 2;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

TEST(ParallelExecutionTest, ParallelRunsAreDeterministicAcrossRepeats) {
  const ShardedSystemConfig config = [&] {
    ShardedSystemConfig c = ParallelizableConfig(SmallConfig(0.9, 5), 8);
    c.worker_threads = std::max(2u, std::thread::hardware_concurrency());
    return c;
  }();
  const ShardedRunResult first = RunShardedScenario(config, SqlbFactory());
  const ShardedRunResult second = RunShardedScenario(config, SqlbFactory());
  ExpectIdenticalShardedRuns(first, second);
}

TEST(ParallelExecutionTest, M1ParallelStillMatchesMonoMediator) {
  const SystemConfig base = SmallConfig(0.7);

  SqlbMethod mono_method;
  runtime::MediationSystem mono(base, &mono_method);
  const RunResult mono_result = mono.Run();

  ShardedSystemConfig parallel = ParallelizableConfig(base, 1);
  parallel.worker_threads = 2;
  const ShardedRunResult sharded =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalRuns(mono_result, sharded.run);
}

// ---------------------------------------------------------------------------
// Relaxed parity: load-aware routing on worker threads, bounded divergence.
// ---------------------------------------------------------------------------

/// The divergence bound the relaxed mode promises (shard/parity.h): load
/// totals are conserved exactly; only same-epoch same-consumer mediation
/// order may differ from serial, so the response-time and satisfaction
/// aggregates may drift within these tolerances (measured headroom is
/// ~5x: the observed drift is ~2% under hash routing and ~0 under
/// least-loaded, whose stale load table keeps within-epoch routing
/// constant).
constexpr double kRelaxedRtTolerance = 0.10;        // relative, mean RT
constexpr double kRelaxedAllocSatTolerance = 0.05;  // relative, final sample

void ExpectRelaxedWithinBound(const ShardedRunResult& serial,
                              const ShardedRunResult& relaxed) {
  // Conserved exactly: the arrival stream is drawn on the coordinator from
  // the same RNG stream, and every completion/infeasibility still merges
  // deterministically from the per-lane effect logs.
  EXPECT_EQ(relaxed.run.queries_issued, serial.run.queries_issued);
  EXPECT_EQ(relaxed.run.queries_completed, relaxed.run.queries_issued);
  EXPECT_EQ(serial.run.queries_completed, serial.run.queries_issued);
  EXPECT_EQ(relaxed.run.queries_infeasible, 0u);
  EXPECT_EQ(relaxed.run.remaining_providers, serial.run.remaining_providers);
  EXPECT_EQ(relaxed.run.remaining_consumers, serial.run.remaining_consumers);
  EXPECT_EQ(relaxed.run.response_time_all.count(),
            serial.run.response_time_all.count());

  // Bounded drift: aggregate quality within the documented tolerance.
  const double rt_serial = serial.run.response_time.mean();
  const double rt_relaxed = relaxed.run.response_time.mean();
  EXPECT_NEAR(rt_relaxed, rt_serial, kRelaxedRtTolerance * rt_serial);

  const auto* sat_serial = serial.run.series.Find(
      runtime::MediationSystem::kSeriesConsAllocSatMean);
  const auto* sat_relaxed = relaxed.run.series.Find(
      runtime::MediationSystem::kSeriesConsAllocSatMean);
  ASSERT_NE(sat_serial, nullptr);
  ASSERT_NE(sat_relaxed, nullptr);
  const double allocsat_serial = sat_serial->samples.back().second;
  const double allocsat_relaxed = sat_relaxed->samples.back().second;
  EXPECT_NEAR(allocsat_relaxed, allocsat_serial,
              kRelaxedAllocSatTolerance * allocsat_serial);
}

/// A relaxed-parity parallel config over a load-aware routing policy —
/// exactly what strict mode rejects.
ShardedSystemConfig RelaxedConfig(const SystemConfig& base, std::size_t shards,
                                  RoutingPolicy policy,
                                  std::size_t threads) {
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = policy;
  config.rerouting_enabled = false;
  config.worker_threads = threads;
  config.parity = ParityMode::kRelaxed;
  return config;
}

TEST(RelaxedParityTest, LeastLoadedRoutingRunsOnWorkerThreadsWithinBound) {
  ShardedSystemConfig serial =
      RelaxedConfig(SmallConfig(0.8), 4, RoutingPolicy::kLeastLoaded, 0);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig relaxed = serial;
  relaxed.worker_threads = 2;
  const ShardedRunResult relaxed_result =
      RunShardedScenario(relaxed, SqlbFactory());

  ExpectRelaxedWithinBound(serial_result, relaxed_result);
}

TEST(RelaxedParityTest, HashRoutingSpreadsConsumersAcrossLanesWithinBound) {
  // Hash routing is the adversarial case for relaxed parity: one
  // consumer's queries land on many shards inside one epoch, so the
  // per-consumer sequence locks are genuinely contended.
  ShardedSystemConfig serial =
      RelaxedConfig(SmallConfig(0.8), 4, RoutingPolicy::kHash, 0);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig relaxed = serial;
  relaxed.worker_threads = std::max(2u, std::thread::hardware_concurrency());
  const ShardedRunResult relaxed_result =
      RunShardedScenario(relaxed, SqlbFactory());

  ExpectRelaxedWithinBound(serial_result, relaxed_result);
}

TEST(RelaxedParityTest, RelaxedAffineRunStaysBitIdentical) {
  // Under consumer-affine routing the sequence locks are semantically
  // inert: a relaxed run must then reproduce the serial run bit for bit,
  // which pins that the locks themselves change no result.
  ShardedSystemConfig serial =
      ParallelizableConfig(SmallConfig(0.8), 4);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig relaxed = serial;
  relaxed.worker_threads = 2;
  relaxed.parity = ParityMode::kRelaxed;
  const ShardedRunResult relaxed_result =
      RunShardedScenario(relaxed, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, relaxed_result);
}

TEST(RelaxedParityDeathTest, StrictModeStillRejectsLoadAwareParallelRuns) {
  ShardedSystemConfig config =
      RelaxedConfig(SmallConfig(0.8), 4, RoutingPolicy::kLeastLoaded, 2);
  config.parity = ParityMode::kStrict;
  EXPECT_DEATH(RunShardedScenario(config, SqlbFactory()),
               "consumer-affine");
}

// ---------------------------------------------------------------------------
// Batched intake.
// ---------------------------------------------------------------------------

TEST(BatchedIntakeTest, SerialAndParallelBatchedRunsAgree) {
  SystemConfig base = SmallConfig(0.9, 3);
  ShardedSystemConfig serial = ParallelizableConfig(base, 4);
  serial.batch_window = 0.25;
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 2;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

TEST(BatchedIntakeTest, BatchedRunServesTheWholeWorkload) {
  SystemConfig base = SmallConfig(0.8, 9);
  ShardedSystemConfig config = ParallelizableConfig(base, 4);
  config.batch_window = 0.5;
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_GT(result.run.queries_issued, 500u);
  EXPECT_EQ(result.run.queries_infeasible, 0u);
  EXPECT_EQ(result.run.queries_completed, result.run.queries_issued);

  // The coalescing delay is bounded by the batch window: mean response time
  // may grow by at most ~batch_window over the unbatched run.
  ShardedSystemConfig unbatched = config;
  unbatched.batch_window = 0.0;
  const ShardedRunResult baseline =
      RunShardedScenario(unbatched, SqlbFactory());
  EXPECT_EQ(baseline.run.queries_issued, result.run.queries_issued);
  EXPECT_LE(result.run.response_time_all.mean(),
            baseline.run.response_time_all.mean() + config.batch_window + 1.0);
}

TEST(BatchedIntakeTest, BatchedReroutingStillRescuesBouncedQueries) {
  // 3 providers on 8 shards: most shards are empty, so batched bursts
  // bounce and the serial walk must still rescue them.
  SystemConfig base = SmallConfig(0.3);
  base.population.num_providers = 3;
  base.population.num_consumers = 5;

  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = 8;
  config.max_route_attempts = 8;
  config.batch_window = 0.5;
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_GT(result.reroutes, 0u);
  EXPECT_GT(result.reroute_rescues, 0u);
  EXPECT_EQ(result.run.queries_infeasible, 0u);
  EXPECT_EQ(result.run.queries_completed, result.run.queries_issued);
}

/// Twin single-core universes fed the same queries: one mediates per query
/// (Allocate), the other through one-query bursts (AllocateBatch). The
/// burst-of-one contract is bit-for-bit equality.
TEST(BatchedIntakeTest, BatchOfOneReproducesAllocateBitForBit) {
  SystemConfig config = SmallConfig(0.8);

  struct Universe {
    explicit Universe(const SystemConfig& config)
        : population(config.population, config.seed),
          reputation(config.population.num_providers, 0.0, 0.1),
          response_window(500) {
      for (const ProviderProfile& profile : population.providers()) {
        providers.emplace_back(profile, config.provider);
        members.push_back(profile.id.index());
      }
      for (std::size_t c = 0; c < population.num_consumers(); ++c) {
        consumers.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                               config.consumer);
      }
      MediationCore::Shared shared;
      shared.config = &config;
      shared.population = &population;
      shared.providers = &providers;
      shared.consumers = &consumers;
      shared.reputation = &reputation;
      shared.result = &result;
      shared.response_window = &response_window;
      core.emplace(shared, &method, members);
    }

    Population population;
    std::vector<runtime::ProviderAgent> providers;
    std::vector<runtime::ConsumerAgent> consumers;
    std::vector<std::uint32_t> members;
    runtime::ReputationRegistry reputation;
    RunResult result;
    WindowedMean response_window;
    SqlbMethod method;
    des::Simulator sim;
    std::optional<MediationCore> core;
  };

  Universe single(config);
  Universe batched(config);

  std::vector<MediationCore::Outcome> outcomes;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const SimTime t = 0.37 * static_cast<double>(i);
    Query query;
    query.id = i;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(
        i % config.population.num_consumers));
    query.n = config.query_n;
    query.class_index = static_cast<std::uint32_t>(
        i % config.population.query_class_units.size());
    query.units = config.population.query_class_units[query.class_index];
    query.issue_time = t;

    single.sim.RunUntil(t);
    batched.sim.RunUntil(t);
    const MediationCore::Outcome a = single.core->Allocate(single.sim, query);
    batched.core->AllocateBatch(batched.sim, {query}, 0.0, &outcomes);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(static_cast<int>(a), static_cast<int>(outcomes[0])) << i;
  }
  single.sim.RunAll();
  batched.sim.RunAll();

  EXPECT_EQ(single.core->allocated_queries(), batched.core->allocated_queries());
  EXPECT_EQ(single.result.queries_completed, batched.result.queries_completed);
  EXPECT_EQ(single.result.response_time_all.count(),
            batched.result.response_time_all.count());
  EXPECT_EQ(single.result.response_time_all.mean(),
            batched.result.response_time_all.mean());
  EXPECT_EQ(single.result.response_time_all.variance(),
            batched.result.response_time_all.variance());
  EXPECT_EQ(single.result.response_time.mean(),
            batched.result.response_time.mean());

  // Agent state diverging would eventually skew allocations; pin it too.
  for (std::size_t p = 0; p < single.providers.size(); ++p) {
    EXPECT_EQ(single.providers[p].SatisfactionOnIntentions(),
              batched.providers[p].SatisfactionOnIntentions())
        << p;
    EXPECT_EQ(single.providers[p].SatisfactionOnPreferences(),
              batched.providers[p].SatisfactionOnPreferences())
        << p;
    EXPECT_EQ(single.providers[p].performed_count(),
              batched.providers[p].performed_count())
        << p;
  }
  for (std::size_t c = 0; c < single.consumers.size(); ++c) {
    EXPECT_EQ(single.consumers[c].Satisfaction(),
              batched.consumers[c].Satisfaction())
        << c;
    EXPECT_EQ(single.consumers[c].Adequation(),
              batched.consumers[c].Adequation())
        << c;
  }
}

TEST(BatchedIntakeTest, MultiQueryBurstSharesOneSnapshot) {
  // A burst against an idle shard: every query sees utilization-0 provider
  // state, so all of them must allocate, and the providers' proposal
  // windows must record one entry per burst query.
  SystemConfig config = SmallConfig(0.8);
  config.population.num_providers = 8;
  config.population.num_consumers = 4;

  struct Fixture {
    explicit Fixture(const SystemConfig& config)
        : population(config.population, config.seed),
          reputation(config.population.num_providers, 0.0, 0.1),
          response_window(500) {
      for (const ProviderProfile& profile : population.providers()) {
        providers.emplace_back(profile, config.provider);
        members.push_back(profile.id.index());
      }
      for (std::size_t c = 0; c < population.num_consumers(); ++c) {
        consumers.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                               config.consumer);
      }
      MediationCore::Shared shared;
      shared.config = &config;
      shared.population = &population;
      shared.providers = &providers;
      shared.consumers = &consumers;
      shared.reputation = &reputation;
      shared.result = &result;
      shared.response_window = &response_window;
      core.emplace(shared, &method, members);
    }
    Population population;
    std::vector<runtime::ProviderAgent> providers;
    std::vector<runtime::ConsumerAgent> consumers;
    std::vector<std::uint32_t> members;
    runtime::ReputationRegistry reputation;
    RunResult result;
    WindowedMean response_window;
    SqlbMethod method;
    des::Simulator sim;
    std::optional<MediationCore> core;
  };

  Fixture fx(config);
  std::vector<Query> burst;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Query query;
    query.id = i;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(i % 4));
    query.n = 1;
    query.class_index = 0;
    query.units = config.population.query_class_units[0];
    query.issue_time = 0.0;
    burst.push_back(query);
  }

  std::vector<MediationCore::Outcome> outcomes;
  fx.core->AllocateBatch(fx.sim, burst, 0.0, &outcomes);
  ASSERT_EQ(outcomes.size(), burst.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(outcomes[i]),
              static_cast<int>(MediationCore::Outcome::kAllocated))
        << i;
  }
  EXPECT_EQ(fx.core->allocated_queries(), burst.size());
  for (const auto& provider : fx.providers) {
    EXPECT_EQ(provider.window().proposed(), burst.size());
  }
  fx.sim.RunAll();
  EXPECT_EQ(fx.result.queries_completed, burst.size());
}

}  // namespace
}  // namespace sqlb::shard
