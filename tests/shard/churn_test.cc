#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// Pins the runtime re-partitioning contracts under provider churn:
///
///  - a strict-parity parallel run with a provider join/leave schedule (and
///    rebalancing on) is bit-identical to its serial twin at any thread
///    count, ownership sequence included;
///  - the M = 1 sharded run with churn reproduces the mono-mediator with
///    the same schedule exactly;
///  - a provider leaving mid-window loses no completed-query counts: every
///    query it was serving still completes and is counted once;
///  - mass departure triggers ring rebalances and seal -> drain -> transfer
///    handoffs that conserve the workload accounting.

namespace sqlb::shard {
namespace {

using runtime::ChurnSchedule;
using runtime::DepartureReason;
using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

/// One flap of churn: a quarter of the population leaves a third into the
/// run and rejoins at two thirds.
ChurnSchedule QuarterFlap(const SystemConfig& config) {
  const auto count =
      static_cast<std::uint32_t>(config.population.num_providers / 4);
  return ChurnSchedule::LeaveAndRejoin(config.duration / 3.0,
                                       2.0 * config.duration / 3.0,
                                       /*first=*/0, count);
}

/// Churn that provably forces re-partitioning: every initial member of
/// shard 0 (previewed off the same router geometry the system will build)
/// leaves a third into the run and rejoins at two thirds — by which time
/// the ring has moved, so the rejoiners land wherever the *current* epoch
/// puts them.
ChurnSchedule GutShardZero(const SystemConfig& base,
                           const RouterConfig& router) {
  return ShardChurnSchedule(router, /*shard=*/0,
                            base.population.num_providers,
                            /*leave_at=*/base.duration / 3.0,
                            /*rejoin_at=*/2.0 * base.duration / 3.0);
}

ShardedSystemConfig StrictChurnConfig(const SystemConfig& base,
                                      std::size_t shards) {
  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = RoutingPolicy::kLocality;  // strict-parity shape
  config.rerouting_enabled = false;
  config.rebalance_enabled = true;
  config.rebalance_interval = 40.0;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

/// Bitwise comparison (EXPECT_EQ on doubles is deliberate: the contract is
/// bit-identity, not closeness).
void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);
  EXPECT_EQ(a.provider_joins, b.provider_joins);

  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time_all.count(), b.response_time_all.count());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());

  EXPECT_EQ(a.initial_providers, b.initial_providers);
  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_EQ(a.departures[i].time, b.departures[i].time) << i;
    EXPECT_EQ(a.departures[i].participant_index,
              b.departures[i].participant_index)
        << i;
    EXPECT_EQ(static_cast<int>(a.departures[i].reason),
              static_cast<int>(b.departures[i].reason))
        << i;
  }

  const std::vector<std::string> names = a.series.Names();
  for (const std::string& name : names) {
    const des::TimeSeries* sa = a.series.Find(name);
    const des::TimeSeries* sb = b.series.Find(name);
    ASSERT_NE(sa, nullptr) << name;
    ASSERT_NE(sb, nullptr) << name;
    ASSERT_EQ(sa->samples.size(), sb->samples.size()) << name;
    for (std::size_t i = 0; i < sa->samples.size(); ++i) {
      EXPECT_EQ(sa->samples[i].first, sb->samples[i].first)
          << name << " sample " << i;
      EXPECT_EQ(sa->samples[i].second, sb->samples[i].second)
          << name << " sample " << i;
    }
  }
}

void ExpectIdenticalShardedRuns(const ShardedRunResult& a,
                                const ShardedRunResult& b) {
  ASSERT_EQ(a.run.series.Names(), b.run.series.Names());
  ExpectIdenticalRuns(a.run, b.run);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].routed, b.shards[s].routed) << s;
    EXPECT_EQ(a.shards[s].allocated, b.shards[s].allocated) << s;
    EXPECT_EQ(a.shards[s].joined, b.shards[s].joined) << s;
    EXPECT_EQ(a.shards[s].providers_in, b.shards[s].providers_in) << s;
    EXPECT_EQ(a.shards[s].providers_out, b.shards[s].providers_out) << s;
    EXPECT_EQ(a.shards[s].remaining_providers, b.shards[s].remaining_providers)
        << s;
  }
  EXPECT_EQ(a.ring_epoch, b.ring_epoch);
  EXPECT_EQ(a.ring_rebalances, b.ring_rebalances);
  EXPECT_EQ(a.handoffs_started, b.handoffs_started);
  EXPECT_EQ(a.handoffs_completed, b.handoffs_completed);
  EXPECT_EQ(a.handoffs_cancelled, b.handoffs_cancelled);
  // The ownership sequence is the re-partitioning determinism pin.
  EXPECT_EQ(a.ownership_digests, b.ownership_digests);
}

// ---------------------------------------------------------------------------
// Schedule semantics on the mono-mediator (shared engine path).
// ---------------------------------------------------------------------------

TEST(ChurnScheduleTest, HoldoutsAreProvidersWhoseFirstEventIsAJoin) {
  ChurnSchedule schedule;
  schedule.events.push_back({100.0, /*join=*/true, 3});   // held out
  schedule.events.push_back({50.0, /*join=*/false, 5});   // starts active
  schedule.events.push_back({120.0, /*join=*/true, 5});   // rejoin, not held
  const std::vector<std::uint32_t> holdouts = schedule.InitialHoldouts(10);
  EXPECT_EQ(holdouts, (std::vector<std::uint32_t>{3}));
}

TEST(ChurnScheduleTest, MonoSystemAppliesJoinsAndScheduledLeaves) {
  SystemConfig config = SmallConfig(0.8);
  // 4 late joiners, 4 scheduled leavers (disjoint ranges).
  config.provider_churn = ChurnSchedule::FlashJoin(100.0, /*first=*/0, 4);
  config.provider_churn.Append(
      ChurnSchedule::MassDeparture(150.0, /*first=*/10, 4));

  SqlbMethod method;
  runtime::MediationSystem system(config, &method);
  const RunResult result = system.Run();

  EXPECT_EQ(result.initial_providers, 36u);  // 40 minus 4 holdouts
  EXPECT_EQ(result.provider_joins, 4u);
  EXPECT_EQ(result.tally.ByReason(DepartureReason::kChurn), 4u);
  // Joiners replace leavers one for one.
  EXPECT_EQ(result.remaining_providers, 36u);
  EXPECT_EQ(result.queries_issued,
            result.queries_completed + result.queries_infeasible);
}

TEST(ChurnScheduleTest, SingleShardChurnReproducesMonoExactly) {
  SystemConfig base = SmallConfig(0.9, 11);
  base.provider_churn = QuarterFlap(base);

  SqlbMethod mono_method;
  runtime::MediationSystem mono(base, &mono_method);
  const RunResult mono_result = mono.Run();

  ShardedSystemConfig sharded = StrictChurnConfig(base, 1);
  const ShardedRunResult sharded_result =
      RunShardedScenario(sharded, SqlbFactory());

  ExpectIdenticalRuns(mono_result, sharded_result.run);
}

// ---------------------------------------------------------------------------
// Strict-parity parallel churn: bit-identical to the serial twin.
// ---------------------------------------------------------------------------

class ChurnParityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ChurnParityTest, ParallelChurnRunIsBitIdenticalToSerial) {
  const std::size_t shards = std::get<0>(GetParam());
  const std::size_t threads = std::get<1>(GetParam());

  SystemConfig base = SmallConfig(0.9, 13);
  ShardedSystemConfig serial = StrictChurnConfig(base, shards);
  serial.base.provider_churn = GutShardZero(base, serial.router);

  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());
  // Churn must actually bite — joins, scheduled leaves, ring reweights and
  // completed migrations all happen in the pinned run.
  ASSERT_GT(serial_result.run.provider_joins, 0u);
  ASSERT_GT(serial_result.run.tally.ByReason(DepartureReason::kChurn), 0u);
  ASSERT_GT(serial_result.ring_rebalances, 0u);
  ASSERT_GT(serial_result.handoffs_completed, 0u);

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = threads;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndThreads, ChurnParityTest,
    ::testing::Values(
        std::make_tuple(std::size_t{4}, std::size_t{1}),
        std::make_tuple(std::size_t{4}, std::size_t{2}),
        std::make_tuple(std::size_t{8}, std::size_t{2}),
        std::make_tuple(std::size_t{8},
                        std::size_t{std::max(
                            2u, std::thread::hardware_concurrency())})));

TEST(ChurnParityTest, ChurnPlusDepartureRulesStayBitIdentical) {
  SystemConfig base = SmallConfig(1.1, 7);
  base.departures = runtime::DepartureConfig::AllEnabled();
  base.departures.grace_period = 60.0;
  base.departures.check_interval = 30.0;
  base.provider_churn = QuarterFlap(base);

  ShardedSystemConfig serial = StrictChurnConfig(base, 4);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());
  ASSERT_GT(serial_result.run.departures.size(), 0u);

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 2;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  ExpectIdenticalShardedRuns(serial_result, parallel_result);
}

// ---------------------------------------------------------------------------
// Conservation: leaves lose no completed work; handoffs lose no accounting.
// ---------------------------------------------------------------------------

TEST(ChurnConservationTest, LeaveMidWindowLosesNoCompletedQueryCounts) {
  // Saturating load so the leavers hold queued work when the leave fires.
  SystemConfig base = SmallConfig(1.2, 17);
  base.provider_churn =
      ChurnSchedule::MassDeparture(base.duration / 2.0, /*first=*/0, 10);

  ShardedSystemConfig config = StrictChurnConfig(base, 4);
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_EQ(result.run.tally.ByReason(DepartureReason::kChurn), 10u);
  // Every issued query is accounted exactly once — the leavers' in-flight
  // queue drains to completion instead of vanishing with them.
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible);
  // And every allocation some shard made completed.
  std::uint64_t allocated = 0;
  for (const ShardStats& s : result.shards) allocated += s.allocated;
  EXPECT_EQ(allocated, result.run.queries_completed);
  EXPECT_EQ(result.run.remaining_providers, 30u);
}

TEST(ChurnConservationTest, MassDepartureTriggersRebalanceAndHandoffs) {
  SystemConfig base = SmallConfig(0.9, 23);

  // Depart every initial member of shard 0, scheduled off the same router
  // geometry the system will build (same shard count, vnodes, seed).
  ShardedSystemConfig config = StrictChurnConfig(base, 4);
  const ChurnSchedule schedule = ShardChurnSchedule(
      config.router, /*shard=*/0, base.population.num_providers,
      /*leave_at=*/base.duration / 3.0);
  ASSERT_GT(schedule.events.size(), 0u);
  config.base.provider_churn = schedule;

  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  // The gutted shard forces the ring past the imbalance threshold: the
  // partition reweights and providers migrate into shard 0.
  EXPECT_GT(result.ring_rebalances, 0u);
  EXPECT_GT(result.ring_epoch, 0u);
  EXPECT_GT(result.handoffs_started, 0u);
  EXPECT_GT(result.handoffs_completed, 0u);
  EXPECT_GT(result.shards[0].providers_in, 0u);
  // Every seal either transferred, was cancelled, or is still draining at
  // the horizon — none double-resolve.
  EXPECT_GE(result.handoffs_started,
            result.handoffs_completed + result.handoffs_cancelled);
  // One digest per rebalance tick; reweights are a subset of ticks.
  EXPECT_GE(result.ownership_digests.size(), result.ring_rebalances);

  // Accounting survives the migrations.
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible);
  std::uint64_t allocated = 0;
  for (const ShardStats& s : result.shards) allocated += s.allocated;
  EXPECT_EQ(allocated, result.run.queries_completed);
}

TEST(ChurnConservationTest, FlappingScheduleKeepsCountersConserved) {
  SystemConfig base = SmallConfig(1.0, 29);
  // Two flaps of the same provider block: leave, rejoin, leave, rejoin.
  base.provider_churn = ChurnSchedule::LeaveAndRejoin(60.0, 120.0, 0, 8);
  base.provider_churn.Append(
      ChurnSchedule::LeaveAndRejoin(180.0, 240.0, 0, 8));

  ShardedSystemConfig config = StrictChurnConfig(base, 4);
  config.rebalance_interval = 25.0;
  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());

  EXPECT_EQ(result.run.provider_joins, 16u);
  EXPECT_EQ(result.run.tally.ByReason(DepartureReason::kChurn), 16u);
  EXPECT_EQ(result.run.remaining_providers, 40u);
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible);
}

}  // namespace
}  // namespace sqlb::shard
