#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sqlb_method.h"
#include "shard/sharded_mediation_system.h"
#include "workload/population.h"

namespace sqlb::shard {
namespace {

std::vector<ProviderProfile> MakeProviders(std::size_t count) {
  std::vector<ProviderProfile> providers(count);
  for (std::size_t i = 0; i < count; ++i) {
    providers[i].id = ProviderId(static_cast<std::uint32_t>(i));
  }
  return providers;
}

RouterConfig Config(std::size_t shards, RoutingPolicy policy,
                    std::uint64_t seed = 42) {
  RouterConfig config;
  config.num_shards = shards;
  config.policy = policy;
  config.seed = seed;
  return config;
}

Query MakeQuery(QueryId id, std::uint32_t consumer) {
  Query query;
  query.id = id;
  query.consumer = ConsumerId(consumer);
  return query;
}

TEST(ShardRouterTest, PartitionCoversEveryProviderOnce) {
  ShardRouter router(Config(8, RoutingPolicy::kHash));
  const auto providers = MakeProviders(400);
  const auto partition = router.PartitionProviders(providers);
  ASSERT_EQ(partition.size(), 8u);

  std::vector<int> seen(providers.size(), 0);
  for (std::uint32_t shard = 0; shard < partition.size(); ++shard) {
    for (std::uint32_t index : partition[shard]) {
      ASSERT_LT(index, seen.size());
      ++seen[index];
      EXPECT_EQ(router.ShardOfProvider(ProviderId(index)), shard);
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardRouterTest, PartitionIsRoughlyBalanced) {
  ShardRouter router(Config(8, RoutingPolicy::kHash));
  const auto partition = router.PartitionProviders(MakeProviders(400));
  for (const auto& members : partition) {
    // 400/8 = 50 expected; virtual nodes keep every shard well away from
    // empty and from hogging the population.
    EXPECT_GT(members.size(), 10u);
    EXPECT_LT(members.size(), 150u);
  }
}

TEST(ShardRouterTest, ConsistentHashAssignmentIsStable) {
  // Growing the fleet from 4 to 5 shards must not reshuffle the world:
  // providers either stay put or move to (only) the new shard.
  ShardRouter four(Config(4, RoutingPolicy::kHash));
  ShardRouter five(Config(5, RoutingPolicy::kHash));

  std::size_t moved = 0;
  const std::size_t total = 400;
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint32_t before = four.ShardOfProvider(ProviderId(i));
    const std::uint32_t after = five.ShardOfProvider(ProviderId(i));
    if (before != after) {
      ++moved;
      // A provider that moves may only move to the shard that joined.
      EXPECT_EQ(after, 4u);
    }
  }
  // Expected movement is ~1/5 of the population; naive modulo hashing
  // would move ~4/5.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, total / 2);
}

TEST(ShardRouterTest, RoutingIsDeterministic) {
  ShardRouter a(Config(8, RoutingPolicy::kHash));
  ShardRouter b(Config(8, RoutingPolicy::kHash));
  for (QueryId id = 0; id < 200; ++id) {
    Query query = MakeQuery(id, static_cast<std::uint32_t>(id % 7));
    EXPECT_EQ(a.Route(query, 0.0), b.Route(query, 0.0));
  }
}

TEST(ShardRouterTest, HashPolicySpreadsQueries) {
  ShardRouter router(Config(8, RoutingPolicy::kHash));
  std::vector<std::size_t> hits(8, 0);
  for (QueryId id = 0; id < 4000; ++id) {
    ++hits[router.Route(MakeQuery(id, 0), 0.0)];
  }
  for (std::size_t count : hits) {
    EXPECT_GT(count, 100u);  // 500 expected per shard
  }
}

TEST(ShardRouterTest, LocalityPolicyPinsConsumersToOneShard) {
  ShardRouter router(Config(8, RoutingPolicy::kLocality));
  for (std::uint32_t consumer = 0; consumer < 50; ++consumer) {
    const std::uint32_t home =
        router.Route(MakeQuery(0, consumer), 0.0);
    for (QueryId id = 1; id < 20; ++id) {
      EXPECT_EQ(router.Route(MakeQuery(id, consumer), 0.0), home)
          << "consumer " << consumer << " changed shard";
    }
  }
}

TEST(ShardRouterTest, LeastLoadedFollowsFreshReports) {
  ShardRouter router(Config(4, RoutingPolicy::kLeastLoaded));
  router.ReportLoad(0, 0.9, 10, 10.0);
  router.ReportLoad(1, 0.2, 10, 10.0);
  router.ReportLoad(2, 0.5, 10, 10.0);
  router.ReportLoad(3, 0.7, 10, 10.0);
  EXPECT_EQ(router.Route(MakeQuery(1, 0), 11.0), 1u);

  // Shard 1 heats up; the next decision follows the newer report.
  router.ReportLoad(1, 1.4, 10, 12.0);
  EXPECT_EQ(router.Route(MakeQuery(2, 0), 13.0), 2u);
  EXPECT_EQ(router.stale_fallbacks(), 0u);
}

TEST(ShardRouterTest, LeastLoadedIgnoresOutOfOrderStaleDelivery) {
  ShardRouter router(Config(2, RoutingPolicy::kLeastLoaded));
  router.ReportLoad(0, 1.0, 10, 20.0);
  router.ReportLoad(1, 0.5, 10, 20.0);
  // A delayed, older measurement for shard 1 arrives after the newer one;
  // the router must keep the newest view.
  router.ReportLoad(1, 0.0, 10, 5.0);
  EXPECT_DOUBLE_EQ(router.LoadOf(1), 0.5);
}

TEST(ShardRouterTest, LeastLoadedFallsBackToHashWhenReportsExpire) {
  RouterConfig config = Config(4, RoutingPolicy::kLeastLoaded);
  config.report_staleness = 30.0;
  ShardRouter router(config);

  // No reports at all: every decision takes the timeout path.
  EXPECT_EQ(router.stale_fallbacks(), 0u);
  router.Route(MakeQuery(1, 0), 100.0);
  EXPECT_EQ(router.stale_fallbacks(), 1u);

  // A fresh report revives load-aware routing...
  router.ReportLoad(2, 0.1, 10, 100.0);
  EXPECT_EQ(router.Route(MakeQuery(2, 0), 101.0), 2u);
  EXPECT_EQ(router.stale_fallbacks(), 1u);

  // ...until it ages past the staleness bound.
  router.Route(MakeQuery(3, 0), 200.0);
  EXPECT_EQ(router.stale_fallbacks(), 2u);
  EXPECT_FALSE(router.HasFreshReport(2, 200.0));
}

TEST(ShardRouterTest, LoadAwareRoutingSkipsProviderlessShards) {
  ShardRouter router(Config(3, RoutingPolicy::kLeastLoaded));
  // Shard 0 looks idle but has no providers left: it cannot serve.
  router.ReportLoad(0, 0.0, 0, 10.0);
  router.ReportLoad(1, 0.8, 10, 10.0);
  router.ReportLoad(2, 0.6, 10, 10.0);
  EXPECT_EQ(router.Route(MakeQuery(1, 0), 11.0), 2u);
  EXPECT_EQ(router.NextShard(2, 11.0), 1u);
}

TEST(ShardRouterTest, NextShardAvoidsTheBouncingShard) {
  ShardRouter router(Config(4, RoutingPolicy::kLeastLoaded));
  router.ReportLoad(0, 0.1, 10, 10.0);
  router.ReportLoad(1, 0.2, 10, 10.0);
  router.ReportLoad(2, 0.3, 10, 10.0);
  router.ReportLoad(3, 0.4, 10, 10.0);
  // Shard 0 is least loaded, but it is the one that bounced the query:
  // the rebalance target must be the least-loaded *other* shard.
  EXPECT_EQ(router.NextShard(0, 11.0), 1u);
  EXPECT_EQ(router.NextShard(1, 11.0), 0u);
}

TEST(ShardRouterTest, NextShardWithoutLoadViewWalksTheRing) {
  ShardRouter router(Config(3, RoutingPolicy::kHash));
  EXPECT_EQ(router.NextShard(0, 0.0), 1u);
  EXPECT_EQ(router.NextShard(2, 0.0), 0u);

  ShardRouter single(Config(1, RoutingPolicy::kHash));
  EXPECT_EQ(single.NextShard(0, 0.0), 0u);
}

TEST(ShardRouterTest, StaleTableRerouteWalksTheRingNotTheLoadView) {
  // Every report has expired by decision time, and the bouncing shard's
  // candidates are saturated: the re-route walk must ignore the stale load
  // view (however tempting its numbers) and take the ring-order path,
  // honoring the tried set.
  RouterConfig config = Config(4, RoutingPolicy::kLeastLoaded);
  config.report_staleness = 30.0;
  ShardRouter router(config);
  router.ReportLoad(0, 0.9, 10, 10.0);
  router.ReportLoad(1, 0.1, 10, 10.0);  // stale "idle" bait by t = 100
  router.ReportLoad(2, 0.5, 10, 10.0);
  router.ReportLoad(3, 0.7, 10, 10.0);

  // Fresh view at t = 11: shard 0 bounces, least-loaded target is 1.
  EXPECT_EQ(router.NextShard(0, 11.0), 1u);

  // Stale view at t = 100: the walk falls back to ring order (0 -> 1),
  // not to the expired "shard 1 is idle" report — same answer here, so
  // pin the distinction where ring order and load order disagree.
  EXPECT_EQ(router.NextShard(2, 100.0), 3u);  // ring next, not stale-least 1
  std::vector<bool> tried(4, false);
  tried[2] = true;
  tried[3] = true;
  EXPECT_EQ(router.NextShard(2, 100.0, tried), 0u);  // skips tried 3
}

TEST(ShardRouterTest, StaleGossipAndSaturationInteractInOneRun) {
  // A full sharded run exercising both fallback paths at once: gossip is
  // disabled, so least-loaded routing never sees a fresh report and every
  // first-choice decision takes the hash fallback; a tiny saturation bound
  // under near-capacity load bounces queries, so the re-route walk runs on
  // the same stale table. The system must still serve the whole workload.
  runtime::SystemConfig base;
  base.population.num_consumers = 20;
  base.population.num_providers = 40;
  base.consumer.window.capacity = 50;
  base.provider.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(0.95);
  base.duration = 300.0;
  base.sample_interval = 50.0;
  base.stats_warmup = 50.0;
  base.seed = 42;

  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = 4;
  config.router.policy = RoutingPolicy::kLeastLoaded;
  config.router.report_staleness = 30.0;
  config.gossip_enabled = false;  // the load table stays empty forever
  config.rerouting_enabled = true;
  config.max_route_attempts = 4;
  config.saturation_backlog_seconds = 0.5;  // near-capacity load trips this

  const ShardedRunResult result = RunShardedScenario(
      config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });

  // Both interaction partners actually fired.
  EXPECT_GT(result.stale_fallbacks, 0u);
  EXPECT_GT(result.reroutes, 0u);
  EXPECT_EQ(result.gossip_delivered, 0u);
  // Every routing decision ran on an expired view: first choices at least.
  EXPECT_GE(result.stale_fallbacks, result.run.queries_issued);

  // Degraded routing must not drop work: the final attempt mediates even
  // when saturated, so everything issued completes.
  EXPECT_GT(result.run.queries_issued, 500u);
  EXPECT_EQ(result.run.queries_infeasible, 0u);
  EXPECT_EQ(result.run.queries_completed, result.run.queries_issued);

  // The hash fallback still spreads first-choice routes across shards.
  for (const ShardStats& shard : result.shards) {
    EXPECT_GT(shard.routed, 0u);
  }
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero) {
  ShardRouter router(Config(1, RoutingPolicy::kLeastLoaded));
  for (QueryId id = 0; id < 50; ++id) {
    EXPECT_EQ(router.Route(MakeQuery(id, static_cast<std::uint32_t>(id)),
                           0.0),
              0u);
  }
}

// ---------------------------------------------------------------------------
// Ring versioning: mutable partition ring, frozen routing ring.
// ---------------------------------------------------------------------------

TEST(RingVersioningTest, SetShardVnodesBumpsTheEpochDeterministically) {
  ShardRouter a(Config(4, RoutingPolicy::kHash));
  ShardRouter b(Config(4, RoutingPolicy::kHash));
  EXPECT_EQ(a.ring_epoch(), 0u);

  // The same update sequence applied to two routers with the same seed
  // yields the same ownership map after every epoch.
  const std::vector<std::vector<std::size_t>> updates = {
      {64, 64, 128, 64}, {32, 64, 128, 200}, {64, 64, 64, 64}};
  const auto providers = MakeProviders(400);
  for (std::size_t u = 0; u < updates.size(); ++u) {
    a.SetShardVnodes(updates[u]);
    b.SetShardVnodes(updates[u]);
    EXPECT_EQ(a.ring_epoch(), u + 1);
    EXPECT_EQ(b.ring_epoch(), u + 1);
    for (const ProviderProfile& p : providers) {
      ASSERT_EQ(a.ShardOfProvider(p.id), b.ShardOfProvider(p.id))
          << "epoch " << u + 1 << " provider " << p.id.index();
    }
  }

  // Restoring the original allocation restores the original partition:
  // point hashes are a pure function of (seed, shard, vnode).
  ShardRouter pristine(Config(4, RoutingPolicy::kHash));
  for (const ProviderProfile& p : providers) {
    EXPECT_EQ(a.ShardOfProvider(p.id), pristine.ShardOfProvider(p.id));
  }
}

TEST(RingVersioningTest, ZeroVnodeShardOwnsNoProviders) {
  ShardRouter router(Config(4, RoutingPolicy::kHash));
  router.SetShardVnodes({64, 0, 64, 64});
  const auto partition = router.PartitionProviders(MakeProviders(400));
  EXPECT_TRUE(partition[1].empty());
  EXPECT_EQ(partition[0].size() + partition[2].size() + partition[3].size(),
            400u);
}

TEST(RingVersioningTest, RoutingRingStaysFrozenAcrossRebalances) {
  ShardRouter router(Config(8, RoutingPolicy::kLocality));
  std::vector<std::uint32_t> before;
  for (std::uint32_t c = 0; c < 50; ++c) {
    before.push_back(router.Route(MakeQuery(0, c), 0.0));
  }
  router.SetShardVnodes({1, 1, 1, 1, 500, 500, 500, 500});
  for (std::uint32_t c = 0; c < 50; ++c) {
    // Consumer affinity must not migrate with the partition: that is the
    // strict-parity contract (one lane owns each consumer's state).
    EXPECT_EQ(router.Route(MakeQuery(0, c), 0.0), before[c]) << c;
  }
}

TEST(RingVersioningTest, RebalancedVnodesLeavesBalancedCountsAlone) {
  ShardRouter router(Config(4, RoutingPolicy::kHash));
  const std::vector<std::size_t> balanced = {100, 95, 105, 100};
  EXPECT_EQ(router.RebalancedVnodes(balanced), router.shard_vnodes());
  // All-zero counts (everyone departed): nothing to balance.
  EXPECT_EQ(router.RebalancedVnodes({0, 0, 0, 0}), router.shard_vnodes());
}

TEST(RingVersioningTest, RebalancedVnodesGrowsDepletedShards) {
  ShardRouter router(Config(4, RoutingPolicy::kHash));
  // Shard 2 lost nearly everything: it must gain keyspace to pull members
  // back in; the overfull shards shrink.
  const std::vector<std::size_t> counts = {130, 130, 10, 130};
  const std::vector<std::size_t> corrected = router.RebalancedVnodes(counts);
  ASSERT_NE(corrected, router.shard_vnodes());
  EXPECT_GT(corrected[2], router.shard_vnodes()[2]);
  EXPECT_LT(corrected[0], router.shard_vnodes()[0]);
  for (std::size_t v : corrected) EXPECT_GE(v, 1u);
}

TEST(RingVersioningTest, RebalancedVnodesCapsThePerTickStep) {
  // A gutted shard's multiplicative correction would jump its keyspace by
  // ~2 orders of magnitude in one tick; the step cap bounds the jump to
  // rebalance_max_vnode_step per tick so the partition converges in
  // measured strides instead of overshooting and oscillating back.
  RouterConfig config = Config(4, RoutingPolicy::kHash);
  config.rebalance_max_vnode_step = 4.0;
  ShardRouter router(config);
  const std::size_t initial = router.shard_vnodes()[2];

  const std::vector<std::size_t> counts = {130, 130, 1, 130};
  const std::vector<std::size_t> corrected = router.RebalancedVnodes(counts);
  EXPECT_GT(corrected[2], initial);
  EXPECT_LE(corrected[2], initial * 4);
  // The overfull shards shrink by at most the same factor.
  for (std::size_t s : {0u, 1u, 3u}) {
    EXPECT_GE(corrected[s] * 4, initial);
  }
}

TEST(RingVersioningTest, StepCapDisabledReproducesUncappedCorrection) {
  RouterConfig capped = Config(4, RoutingPolicy::kHash);
  capped.rebalance_max_vnode_step = 1.0;  // <= 1 disables the cap
  RouterConfig uncapped = capped;
  uncapped.rebalance_max_vnode_step = 1e9;  // cap far beyond any correction
  ShardRouter a(capped), b(uncapped);
  const std::vector<std::size_t> counts = {130, 130, 10, 130};
  EXPECT_EQ(a.RebalancedVnodes(counts), b.RebalancedVnodes(counts));
}

TEST(RingVersioningTest, HysteresisSuppressesSingleTickImbalance) {
  // End-to-end damping: with hysteresis at k ticks, a mass departure's
  // imbalance must persist before the ring reweights, and after each
  // reweigh the streak restarts — the bench's 8-churn arm counts the
  // resulting drop in reweighs/handoffs, this pins the mechanism.
  runtime::SystemConfig base;
  base.population.num_consumers = 16;
  base.population.num_providers = 40;
  base.workload = runtime::WorkloadSpec::Constant(0.8);
  base.duration = 300.0;
  base.stats_warmup = 50.0;

  ShardedSystemConfig damped;
  damped.base = base;
  damped.router.num_shards = 4;
  damped.router.policy = RoutingPolicy::kLocality;
  damped.rerouting_enabled = false;
  damped.rebalance_enabled = true;
  damped.rebalance_interval = 30.0;
  damped.router.rebalance_hysteresis_ticks = 3;
  damped.base.provider_churn = ShardChurnSchedule(
      damped.router, /*shard=*/0, base.population.num_providers,
      /*leave_at=*/100.0);

  ShardedSystemConfig eager = damped;
  eager.router.rebalance_hysteresis_ticks = 1;

  const auto factory = [] {
    return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
  };
  const ShardedRunResult damped_result =
      RunShardedScenario(damped, factory());
  const ShardedRunResult eager_result = RunShardedScenario(eager, factory());

  // Both still rebalance (the imbalance is persistent), but the damped run
  // waited: its first reweigh fires at least two ticks later, which the
  // suppressed-tick counter records.
  EXPECT_GT(eager_result.ring_rebalances, 0u);
  EXPECT_GT(damped_result.ring_rebalances, 0u);
  EXPECT_GT(damped_result.rebalances_damped, 0u);
  EXPECT_LE(damped_result.ring_rebalances, eager_result.ring_rebalances);
  // Damping must not leak workload: both runs account every query.
  EXPECT_EQ(damped_result.run.queries_issued,
            damped_result.run.queries_completed +
                damped_result.run.queries_infeasible);
}

TEST(RingVersioningTest, EpochLaggedReportsAreExcludedFromLoadRouting) {
  RouterConfig config = Config(3, RoutingPolicy::kLeastLoaded);
  ShardRouter router(config);
  router.ReportLoad(0, 0.9, 10, 1.0, /*ring_epoch=*/0);
  router.ReportLoad(1, 0.1, 10, 1.0, /*ring_epoch=*/0);
  router.ReportLoad(2, 0.5, 10, 1.0, /*ring_epoch=*/0);
  EXPECT_EQ(router.Route(MakeQuery(1, 1), 2.0), 1u);

  // A rebalance supersedes every epoch-0 report: least-loaded degrades to
  // the hash fallback until current-epoch reports arrive.
  router.SetShardVnodes({64, 64, 200});
  const std::uint64_t fallbacks_before = router.stale_fallbacks();
  router.Route(MakeQuery(2, 2), 2.0);
  EXPECT_EQ(router.stale_fallbacks(), fallbacks_before + 1);

  // A delayed epoch-0 report delivered after the rebalance is counted as
  // lagged and does not resurrect its shard for load routing.
  router.ReportLoad(1, 0.05, 10, 2.5, /*ring_epoch=*/0);
  EXPECT_EQ(router.epoch_lagged_reports(), 1u);

  // Shard 0 acknowledges epoch 1 and reports again: load routing resumes
  // on the shards with a current view (shard 1's lower-utilization view is
  // still epoch-stale, so busier-but-current shard 0 wins).
  router.ReportLoad(0, 0.9, 10, 3.0, /*ring_epoch=*/1);
  EXPECT_EQ(router.Route(MakeQuery(3, 3), 4.0), 0u);
}

// ---------------------------------------------------------------------------
// Ring-update determinism through the full system (the satellite pin: one
// churn schedule + seed => one ownership sequence at any thread count, and
// a provider leaving mid-window loses no completed-query counts).
// ---------------------------------------------------------------------------

TEST(RingVersioningTest, ChurnOwnershipSequenceIsThreadCountInvariant) {
  runtime::SystemConfig base;
  base.population.num_consumers = 16;
  base.population.num_providers = 32;
  base.consumer.window.capacity = 50;
  base.provider.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(1.2);  // queues stay busy
  base.duration = 240.0;
  base.sample_interval = 30.0;
  base.stats_warmup = 40.0;
  base.seed = 31;

  ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = 4;
  config.router.policy = RoutingPolicy::kLocality;
  config.rerouting_enabled = false;
  config.rebalance_enabled = true;
  config.rebalance_interval = 30.0;

  // Gut shard 0 mid-window (its members leave while dragging queued work),
  // scheduled off the same router geometry the system builds.
  config.base.provider_churn = ShardChurnSchedule(
      config.router, /*shard=*/0, base.population.num_providers,
      /*leave_at=*/base.duration / 2.0);
  ASSERT_FALSE(config.base.provider_churn.events.empty());

  auto factory = [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };

  std::vector<std::vector<std::uint64_t>> sequences;
  std::vector<std::uint64_t> completed;
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ShardedSystemConfig run_config = config;
    run_config.worker_threads = threads;
    const ShardedRunResult result = RunShardedScenario(run_config, factory);
    sequences.push_back(result.ownership_digests);
    completed.push_back(result.run.queries_completed);

    // The mid-window leave loses no completed-query counts: every query a
    // leaver was still serving completes and is counted exactly once.
    EXPECT_EQ(result.run.queries_issued,
              result.run.queries_completed + result.run.queries_infeasible)
        << threads << " threads";
    std::uint64_t allocated = 0;
    for (const ShardStats& s : result.shards) allocated += s.allocated;
    EXPECT_EQ(allocated, result.run.queries_completed) << threads;
  }

  // Same schedule + seed => same ownership sequence, serial or parallel.
  ASSERT_FALSE(sequences[0].empty());
  EXPECT_EQ(sequences[0], sequences[1]);
  EXPECT_EQ(sequences[0], sequences[2]);
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(completed[0], completed[2]);
}

}  // namespace
}  // namespace sqlb::shard
