#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/gossip_topology.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The gossip dissemination topologies (shard/gossip_topology.h): the k-ary
/// tree math, the O(M log M) per-round message bound the CI perf gate
/// enforces, the hierarchical topology's end-to-end behaviour (reports
/// reach the router despite multi-hop relays; staleness from hop latency is
/// recorded; serial == parallel bit-for-bit), and the relay's self-healing
/// around dead shards.

namespace sqlb::shard {
namespace {

using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed) {
  SystemConfig config;
  config.population.num_consumers = 24;
  config.population.num_providers = 48;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 240.0;
  config.sample_interval = 20.0;
  config.stats_warmup = 40.0;
  config.seed = seed;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

// ---------------------------------------------------------------------------
// Tree math (pure functions).
// ---------------------------------------------------------------------------

TEST(GossipTreeMathTest, ParentRankFollowsHeapLayout) {
  // Fanout 4: children of rank 0 are 1..4, of rank 1 are 5..8, ...
  EXPECT_EQ(GossipParentRank(1, 4), 0u);
  EXPECT_EQ(GossipParentRank(4, 4), 0u);
  EXPECT_EQ(GossipParentRank(5, 4), 1u);
  EXPECT_EQ(GossipParentRank(8, 4), 1u);
  EXPECT_EQ(GossipParentRank(9, 4), 2u);
  // Binary tree degenerates to the classic heap parent.
  for (std::size_t r = 1; r < 64; ++r) {
    EXPECT_EQ(GossipParentRank(r, 2), (r - 1) / 2) << r;
  }
}

TEST(GossipTreeMathTest, DepthIsMonotoneAndLogarithmic) {
  EXPECT_EQ(GossipDepthOfRank(0, 4), 0u);
  for (std::size_t r = 1; r < 256; ++r) {
    EXPECT_EQ(GossipDepthOfRank(r, 4),
              GossipDepthOfRank(GossipParentRank(r, 4), 4) + 1)
        << r;
  }
  // Depth of the last rank of a full k-ary tree is ceil(log_k(...)) —
  // bounded by log2 for any fanout >= 2.
  for (std::size_t m : {8u, 64u, 256u, 1024u}) {
    EXPECT_LE(GossipDepthOfRank(m - 1, 4),
              static_cast<std::size_t>(std::ceil(std::log2(m))))
        << m;
  }
}

TEST(GossipTreeMathTest, HierarchicalRoundCostIsSumOfDepthsPlusLive) {
  for (std::size_t live : {1u, 2u, 8u, 64u, 256u}) {
    std::size_t expected = 0;
    for (std::size_t r = 0; r < live; ++r) {
      expected += GossipDepthOfRank(r, 4) + 1;
    }
    EXPECT_EQ(HierarchicalMessagesPerRound(live, 4), expected) << live;
  }
  // The documented M = 64, k = 4 data point.
  EXPECT_EQ(HierarchicalMessagesPerRound(64, 4), 229u);
}

/// The CI gate's premise: hierarchical rounds stay under M * ceil(log2 M)
/// while all-to-all is quadratic. (Below M = 4 the +1 router hop dominates
/// and the budget is vacuous — the gate runs at M = 64.)
TEST(GossipTreeMathTest, HierarchicalStaysUnderMLogMBudget) {
  for (std::size_t m : {4u, 8u, 16u, 64u, 256u, 1024u}) {
    const std::size_t budget =
        m * static_cast<std::size_t>(std::ceil(std::log2(m)));
    EXPECT_LE(HierarchicalMessagesPerRound(m, 4), budget) << m;
    EXPECT_EQ(AllToAllMessagesPerRound(m), m * m) << m;
  }
}

TEST(GossipTreeMathTest, LiveRanksSkipDeadShards) {
  const std::vector<std::uint8_t> dead = {0, 1, 0, 0, 1, 0};
  const std::vector<std::uint32_t> live = LiveGossipRanks(6, dead);
  EXPECT_EQ(live, (std::vector<std::uint32_t>{0, 2, 3, 5}));
}

// ---------------------------------------------------------------------------
// End-to-end topology behaviour.
// ---------------------------------------------------------------------------

ShardedSystemConfig TopologyConfig(GossipTopologyKind kind,
                                   std::size_t shards,
                                   std::uint64_t seed) {
  ShardedSystemConfig config;
  config.base = SmallConfig(1.0, seed);
  config.router.num_shards = shards;
  // Least-loaded routing actually consumes the gossiped load view, so a
  // broken dissemination path would change allocations, not just counters.
  config.router.policy = RoutingPolicy::kLeastLoaded;
  config.gossip_topology = kind;
  config.gossip_fanout = 4;
  return config;
}

TEST(GossipTopologyRunTest, HierarchicalReportsReachRouterViaRelays) {
  const ShardedRunResult result =
      RunShardedScenario(TopologyConfig(GossipTopologyKind::kHierarchical, 8,
                                        71),
                         SqlbFactory());
  ASSERT_GT(result.run.queries_completed, 0u);
  // Interior shards forwarded reports (depth > 0 exists at M = 8, k = 4),
  // none were dropped (no deaths), and the counter audit holds: every
  // report costs depth + 1 messages of which depth are forwards.
  EXPECT_GT(result.gossip_relay_forwards, 0u);
  EXPECT_EQ(result.gossip_relay_drops, 0u);
  EXPECT_GT(result.gossip_load_messages, 0u);
  EXPECT_GT(result.gossip_load_messages, result.gossip_relay_forwards);
}

TEST(GossipTopologyRunTest, PerRoundMessageCountsMatchTheClosedForm) {
  // No churn/faults: the live set is all M shards every round. Sends are
  // counted at send time, so the direct and all-to-all totals are exact
  // multiples of the closed forms; hierarchical forwards are counted at
  // delivery time, so the final round's relays may be in flight when the
  // run ends — bound that one above and below instead.
  const std::size_t shards = 8;
  const ShardedRunResult direct = RunShardedScenario(
      TopologyConfig(GossipTopologyKind::kDirect, shards, 73), SqlbFactory());
  ASSERT_GT(direct.gossip_load_messages, 0u);
  ASSERT_EQ(direct.gossip_load_messages % shards, 0u);
  const std::size_t rounds = direct.gossip_load_messages / shards;

  const ShardedRunResult mesh = RunShardedScenario(
      TopologyConfig(GossipTopologyKind::kAllToAll, shards, 73),
      SqlbFactory());
  EXPECT_EQ(mesh.gossip_load_messages,
            rounds * AllToAllMessagesPerRound(shards));

  const ShardedRunResult hier = RunShardedScenario(
      TopologyConfig(GossipTopologyKind::kHierarchical, shards, 73),
      SqlbFactory());
  const std::size_t per_round = HierarchicalMessagesPerRound(shards, 4);
  EXPECT_LE(hier.gossip_load_messages, rounds * per_round);
  EXPECT_GE(hier.gossip_load_messages, (rounds - 1) * per_round + shards);
  // The audit identity: every counted message is a first-hop send or a
  // relay forward.
  EXPECT_EQ(hier.gossip_load_messages,
            rounds * shards + hier.gossip_relay_forwards);
}

/// Hop latency is visible as staleness: the hierarchical view the router
/// acts on is older than the direct view, never fresher.
TEST(GossipTopologyRunTest, RelayHopsAgeTheRoutersLoadView) {
  ShardedSystemConfig direct =
      TopologyConfig(GossipTopologyKind::kDirect, 8, 77);
  ShardedSystemConfig hier = direct;
  hier.gossip_topology = GossipTopologyKind::kHierarchical;
  // A fat hop latency makes the depth difference unambiguous.
  direct.gossip_latency = msg::LatencyModel{0.5, 0.0};
  hier.gossip_latency = msg::LatencyModel{0.5, 0.0};

  const ShardedRunResult rd = RunShardedScenario(direct, SqlbFactory());
  const ShardedRunResult rh = RunShardedScenario(hier, SqlbFactory());
  ASSERT_GT(rd.run.queries_completed, 0u);
  ASSERT_GT(rh.run.queries_completed, 0u);
  // Same number of rounds, more messages per round under the tree.
  EXPECT_GT(rh.gossip_load_messages, rd.gossip_load_messages);
}

/// Strict parity extends to the new topology: a parallel hierarchical run
/// is bit-identical to its serial twin, relay counters included.
TEST(GossipTopologyRunTest, HierarchicalSerialEqualsParallel) {
  ShardedSystemConfig serial =
      TopologyConfig(GossipTopologyKind::kHierarchical, 8, 79);
  serial.router.policy = RoutingPolicy::kLocality;  // strict-parity shape
  serial.rerouting_enabled = false;
  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 4;

  const ShardedRunResult rs = RunShardedScenario(serial, SqlbFactory());
  const ShardedRunResult rp = RunShardedScenario(parallel, SqlbFactory());
  ASSERT_GT(rs.run.queries_completed, 0u);
  EXPECT_EQ(rs.run.queries_completed, rp.run.queries_completed);
  EXPECT_EQ(rs.run.response_time.mean(), rp.run.response_time.mean());
  EXPECT_EQ(rs.run.response_time.variance(), rp.run.response_time.variance());
  EXPECT_EQ(rs.gossip_load_messages, rp.gossip_load_messages);
  EXPECT_EQ(rs.gossip_relay_forwards, rp.gossip_relay_forwards);
  EXPECT_EQ(rs.gossip_relay_drops, rp.gossip_relay_drops);
  EXPECT_EQ(rs.ownership_digests, rp.ownership_digests);
}

/// A mid-run crash kills a relay: in-flight reports toward the corpse are
/// dropped and counted, the tree rebuilds around it next round, and the
/// run's accounting identity survives.
TEST(GossipTopologyRunTest, DeadRelayIsDroppedAndRoutedAround) {
  ShardedSystemConfig config =
      TopologyConfig(GossipTopologyKind::kHierarchical, 8, 83);
  config.router.policy = RoutingPolicy::kLocality;
  config.rebalance_enabled = true;
  // Kill rank 1 — an interior relay at M = 8, k = 4.
  config.base.shard_faults = runtime::FaultSchedule::KillAt(120.0, 1);

  const ShardedRunResult result = RunShardedScenario(config, SqlbFactory());
  EXPECT_EQ(result.shard_crashes, 1u);
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible +
                result.run.queries_reissued);
  // Reports kept flowing after the crash (forwards continue among the
  // surviving 7 shards, whose tree still has interior nodes).
  EXPECT_GT(result.gossip_relay_forwards, 0u);
}

}  // namespace
}  // namespace sqlb::shard
