#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/shard_router.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The pooled agent-state bit-identity contract (runtime/agent_store.h,
/// mem/): a run with SystemConfig::agent_pool.enabled is bit-for-bit the
/// run with the legacy eager heap layout — same counters, same
/// response-time statistics, same series, same ownership digests — across
/// every path that moves agent state between containers: single-query and
/// batched intake, churn-driven rebalancing handoffs (resident chunks
/// migrate across arenas and drain to their origin), mediator crashes with
/// snapshot-restore failover, and the Section 6.3.2 departure rules. The
/// pool may only change *where* queue and window storage lives, never a
/// single arithmetic result, and this suite is the enforcement — the
/// pooled twin of tests/shard/cache_parity_test.cc.

namespace sqlb::shard {
namespace {

using runtime::ChurnSchedule;
using runtime::FaultSchedule;
using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);
  EXPECT_EQ(a.queries_reissued, b.queries_reissued);
  EXPECT_EQ(a.provider_joins, b.provider_joins);
  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time_all.count(), b.response_time_all.count());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());
  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
  ASSERT_EQ(a.departures.size(), b.departures.size());
  for (std::size_t i = 0; i < a.departures.size(); ++i) {
    EXPECT_EQ(a.departures[i].time, b.departures[i].time) << i;
    EXPECT_EQ(a.departures[i].participant_index,
              b.departures[i].participant_index)
        << i;
  }
  const std::vector<std::string> names = a.series.Names();
  ASSERT_EQ(names, b.series.Names());
  for (const std::string& name : names) {
    const des::TimeSeries* sa = a.series.Find(name);
    const des::TimeSeries* sb = b.series.Find(name);
    ASSERT_EQ(sa->samples.size(), sb->samples.size()) << name;
    for (std::size_t i = 0; i < sa->samples.size(); ++i) {
      EXPECT_EQ(sa->samples[i].first, sb->samples[i].first)
          << name << " sample " << i;
      EXPECT_EQ(sa->samples[i].second, sb->samples[i].second)
          << name << " sample " << i;
    }
  }
}

void ExpectIdenticalShardedRuns(const ShardedRunResult& a,
                                const ShardedRunResult& b) {
  ExpectIdenticalRuns(a.run, b.run);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].routed, b.shards[s].routed) << s;
    EXPECT_EQ(a.shards[s].allocated, b.shards[s].allocated) << s;
    EXPECT_EQ(a.shards[s].providers_in, b.shards[s].providers_in) << s;
    EXPECT_EQ(a.shards[s].providers_out, b.shards[s].providers_out) << s;
    EXPECT_EQ(a.shards[s].remaining_providers, b.shards[s].remaining_providers)
        << s;
  }
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.ring_epoch, b.ring_epoch);
  EXPECT_EQ(a.handoffs_started, b.handoffs_started);
  EXPECT_EQ(a.handoffs_completed, b.handoffs_completed);
  EXPECT_EQ(a.handoffs_cancelled, b.handoffs_cancelled);
  EXPECT_EQ(a.ownership_digests, b.ownership_digests);
  EXPECT_EQ(a.shard_crashes, b.shard_crashes);
  EXPECT_EQ(a.reissued_queries, b.reissued_queries);
  EXPECT_EQ(a.restored_providers, b.restored_providers);
  EXPECT_EQ(a.dropped_completions, b.dropped_completions);
  EXPECT_EQ(a.batch_flushes, b.batch_flushes);
  EXPECT_EQ(a.batched_queries, b.batched_queries);
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

TEST(AgentPoolParityTest, MonoRunIsBitIdenticalWithPoolOn) {
  SystemConfig heap = SmallConfig(0.9, 23);
  heap.departures = runtime::DepartureConfig::AllEnabled();
  heap.departures.grace_period = 60.0;
  heap.departures.check_interval = 30.0;
  SystemConfig pooled = heap;
  pooled.agent_pool.enabled = true;

  SqlbMethod m1, m2;
  runtime::MediationSystem a(heap, &m1);
  runtime::MediationSystem b(pooled, &m2);
  const RunResult ra = a.Run();
  const RunResult rb = b.Run();
  ASSERT_GT(ra.queries_completed, 0u);
  ExpectIdenticalRuns(ra, rb);
}

/// Churn handoffs migrate live providers — with their resident pooled
/// chunks — between shards (and arenas). Pooled on/off must still match
/// bit-for-bit, and so must pooled serial vs pooled parallel.
TEST(AgentPoolParityTest, ChurnWithRebalancingIsBitIdenticalWithPoolOn) {
  SystemConfig base = SmallConfig(1.0, 31);

  ShardedSystemConfig heap;
  heap.base = base;
  heap.router.num_shards = 4;
  heap.router.policy = RoutingPolicy::kLocality;
  heap.rerouting_enabled = false;
  heap.rebalance_enabled = true;
  heap.rebalance_interval = 40.0;
  // Gut shard 0: its entire initial membership leaves and later rejoins,
  // which provably moves ownership and drives seal->drain->transfer
  // handoffs — the path that migrates resident chunks between arenas.
  heap.base.provider_churn = ShardChurnSchedule(
      heap.router, /*shard=*/0, base.population.num_providers,
      /*leave_at=*/base.duration / 3.0,
      /*rejoin_at=*/2.0 * base.duration / 3.0);

  ShardedSystemConfig pooled = heap;
  pooled.base.agent_pool.enabled = true;

  const ShardedRunResult heap_run = RunShardedScenario(heap, SqlbFactory());
  const ShardedRunResult pooled_run = RunShardedScenario(pooled, SqlbFactory());
  ASSERT_GT(heap_run.run.queries_completed, 0u);
  ASSERT_GT(heap_run.handoffs_completed, 0u);  // chunks actually migrated
  ExpectIdenticalShardedRuns(heap_run, pooled_run);

  ShardedSystemConfig pooled_parallel = pooled;
  pooled_parallel.worker_threads = 4;
  const ShardedRunResult parallel_run =
      RunShardedScenario(pooled_parallel, SqlbFactory());
  ExpectIdenticalShardedRuns(pooled_run, parallel_run);
}

/// A mediator crash frees the dead shard's member slots and restores
/// providers from snapshots on the adopting shards; the freelist recycling
/// must leave no arithmetic trace.
TEST(AgentPoolParityTest, FailoverIsBitIdenticalWithPoolOn) {
  SystemConfig base = SmallConfig(1.2, 47);
  base.shard_faults = FaultSchedule::KillAt(150.0, 1);

  ShardedSystemConfig heap;
  heap.base = base;
  heap.router.num_shards = 4;
  heap.router.policy = RoutingPolicy::kLocality;
  heap.rerouting_enabled = false;
  heap.rebalance_enabled = true;
  heap.rebalance_interval = 40.0;

  ShardedSystemConfig pooled = heap;
  pooled.base.agent_pool.enabled = true;

  const ShardedRunResult heap_run = RunShardedScenario(heap, SqlbFactory());
  const ShardedRunResult pooled_run = RunShardedScenario(pooled, SqlbFactory());
  EXPECT_EQ(heap_run.shard_crashes, 1u);
  ExpectIdenticalShardedRuns(heap_run, pooled_run);

  ShardedSystemConfig pooled_parallel = pooled;
  pooled_parallel.worker_threads = 3;
  const ShardedRunResult parallel_run =
      RunShardedScenario(pooled_parallel, SqlbFactory());
  ExpectIdenticalShardedRuns(pooled_run, parallel_run);
}

/// Batched intake composes with the pool (burst-mode scoring reads provider
/// state through the same store columns).
TEST(AgentPoolParityTest, BatchedIntakeIsBitIdenticalWithPoolOn) {
  ShardedSystemConfig heap;
  heap.base = SmallConfig(1.0, 59);
  heap.router.num_shards = 4;
  heap.router.policy = RoutingPolicy::kLocality;
  heap.batch_window = 0.5;

  ShardedSystemConfig pooled = heap;
  pooled.base.agent_pool.enabled = true;

  const ShardedRunResult heap_run = RunShardedScenario(heap, SqlbFactory());
  const ShardedRunResult pooled_run = RunShardedScenario(pooled, SqlbFactory());
  EXPECT_GT(heap_run.batch_flushes, 0u);
  ExpectIdenticalShardedRuns(heap_run, pooled_run);
}

/// The pooled mode must actually pool: with the pool on, the engine's
/// arenas hold the queue/window chunks that the heap mode kept in
/// per-agent containers.
TEST(AgentPoolParityTest, PooledRunReservesArenaPages) {
  SystemConfig pooled = SmallConfig(1.0, 61);
  pooled.agent_pool.enabled = true;
  SqlbMethod method;
  runtime::MediationSystem system(pooled, &method);
  const RunResult result = system.Run();
  ASSERT_GT(result.queries_completed, 0u);
  EXPECT_GT(system.engine().agent_store().arena_bytes_reserved(), 0u);
}

}  // namespace
}  // namespace sqlb::shard
