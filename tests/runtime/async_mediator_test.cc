#include "runtime/async_mediator.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/sqlb_method.h"

namespace sqlb::runtime {
namespace {

/// A fully wired miniature distributed system: one mediator, `consumers`
/// consumer nodes, `providers` provider nodes, all over one simulated
/// network.
class AsyncHarness {
 public:
  AsyncHarness(std::size_t consumers, std::size_t providers,
               SimTime latency = 0.005)
      : population_(MakeConfig(consumers, providers), /*seed=*/17),
        reputation_(providers),
        network_(sim_, msg::LatencyModel{latency, 0.0}, Rng(5)),
        mediator_(AsyncMediatorConfig{}, &method_, &matchmaker_) {
    mediator_.set_address(network_.Register(&mediator_));
    for (std::size_t c = 0; c < consumers; ++c) {
      auto node = std::make_unique<AsyncConsumerNode>(
          ConsumerId(static_cast<std::uint32_t>(c)), ConsumerAgentConfig{},
          &population_, &reputation_);
      node->set_address(network_.Register(node.get()));
      mediator_.RegisterConsumer(ConsumerId(static_cast<std::uint32_t>(c)),
                                 node->address());
      consumers_.push_back(std::move(node));
    }
    for (const ProviderProfile& profile : population_.providers()) {
      auto node = std::make_unique<AsyncProviderNode>(
          profile, ProviderAgentConfig{}, &population_);
      node->set_address(network_.Register(node.get()));
      node->SetConsumerDirectory(&mediator_.consumer_directory());
      mediator_.RegisterProvider(profile.id, node->address());
      matchmaker_.Register(profile.id, Capability{});
      providers_.push_back(std::move(node));
    }
  }

  Query MakeQuery(QueryId id, std::uint32_t consumer) {
    Query q;
    q.id = id;
    q.consumer = ConsumerId(consumer);
    q.n = 1;
    q.units = 130.0;
    q.issue_time = sim_.Now();
    return q;
  }

  static PopulationConfig MakeConfig(std::size_t consumers,
                                     std::size_t providers) {
    PopulationConfig config;
    config.num_consumers = consumers;
    config.num_providers = providers;
    return config;
  }

  des::Simulator sim_;
  Population population_;
  ReputationRegistry reputation_;
  msg::Network network_;
  SqlbMethod method_;
  AcceptAllMatchmaker matchmaker_;
  AsyncMediator mediator_;
  std::vector<std::unique_ptr<AsyncConsumerNode>> consumers_;
  std::vector<std::unique_ptr<AsyncProviderNode>> providers_;
};

TEST(AsyncMediatorTest, FullMediationRoundDeliversResponse) {
  AsyncHarness h(2, 5);
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.mediations_started(), 1u);
  EXPECT_EQ(h.mediator_.mediations_completed(), 1u);
  EXPECT_EQ(h.mediator_.timeouts(), 0u);
  EXPECT_EQ(h.consumers_[0]->responses_received(), 1u);
  EXPECT_EQ(h.consumers_[0]->agent().issued(), 1u);
}

TEST(AsyncMediatorTest, EveryProviderLearnsTheMediationResult) {
  // Section 5.4: the mediator informs P_q \ selected as well.
  AsyncHarness h(1, 6);
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  std::size_t performed = 0;
  for (const auto& provider : h.providers_) {
    EXPECT_EQ(provider->agent().window().proposed(), 1u);
    performed += provider->agent().window().performed();
  }
  EXPECT_EQ(performed, 1u);  // exactly q.n = 1 provider performed it
}

TEST(AsyncMediatorTest, ManyQueriesAllComplete) {
  AsyncHarness h(3, 10);
  for (QueryId id = 0; id < 50; ++id) {
    const auto consumer = static_cast<std::uint32_t>(id % 3);
    h.sim_.ScheduleAt(
        static_cast<SimTime>(id) * 0.5,
        [&h, id, consumer](des::Simulator&) {
          h.consumers_[consumer]->Submit(h.network_, h.mediator_.address(),
                                         h.MakeQuery(id, consumer));
        });
  }
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.mediations_completed(), 50u);
  std::uint64_t responses = 0;
  for (const auto& c : h.consumers_) responses += c->responses_received();
  EXPECT_EQ(responses, 50u);
}

TEST(AsyncMediatorTest, MutedProvidersTriggerTimeoutButMediationProceeds) {
  AsyncHarness h(1, 4);
  for (auto& provider : h.providers_) provider->set_mute(true);
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.timeouts(), 1u);
  EXPECT_EQ(h.mediator_.mediations_completed(), 1u);
  // Missing intentions default to indifference (0), the allocation still
  // happens and the consumer still gets a response.
  EXPECT_EQ(h.consumers_[0]->responses_received(), 1u);
}

TEST(AsyncMediatorTest, PartialResponsesUseWhatArrived) {
  AsyncHarness h(1, 4);
  h.providers_[0]->set_mute(true);  // one silent provider
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.timeouts(), 1u);
  EXPECT_EQ(h.mediator_.mediations_completed(), 1u);
  EXPECT_EQ(h.consumers_[0]->responses_received(), 1u);
}

TEST(AsyncMediatorTest, UnregisteredProviderIsSkipped) {
  AsyncHarness h(1, 3);
  h.mediator_.UnregisterProvider(ProviderId(0));
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.mediations_completed(), 1u);
  EXPECT_EQ(h.providers_[0]->agent().window().proposed(), 0u);
}

TEST(AsyncMediatorTest, NetworkCountsTraffic) {
  AsyncHarness h(1, 5);
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  // 1 submit + 1 consumer req + 5 provider reqs + 1 consumer rep +
  // 5 provider reps + 5 mediation results + 1 grant + 1 notice +
  // 1 response = 21.
  EXPECT_EQ(h.network_.sent_messages(), 21u);
  EXPECT_EQ(h.network_.delivered_messages(), 21u);
  EXPECT_EQ(h.network_.dropped_messages(), 0u);
}

TEST(AsyncMediatorTest, LatencyDelaysButDoesNotBreakMediation) {
  AsyncHarness h(1, 5, /*latency=*/0.05);
  h.consumers_[0]->Submit(h.network_, h.mediator_.address(),
                          h.MakeQuery(1, 0));
  h.sim_.RunAll();
  EXPECT_EQ(h.mediator_.timeouts(), 0u);  // 0.05 < 0.25 timeout
  EXPECT_EQ(h.consumers_[0]->responses_received(), 1u);
  // The response cannot arrive before 4 hops of latency + 1.3 s service.
  EXPECT_GE(h.sim_.Now(), 1.3 + 4 * 0.05);
}

}  // namespace
}  // namespace sqlb::runtime
