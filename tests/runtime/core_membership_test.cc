#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_core.h"
#include "runtime/mediation_system.h"

/// \file
/// Unit pins for the MediationCore membership lifecycle and its crash /
/// snapshot / restore machinery (runtime/mediation_core.h): the
/// ExportMember/ImportMember preconditions the handoff and failover
/// protocols rest on (exporting a non-member or non-idle member dies;
/// importing an existing member dies), crash-consistent snapshot
/// round-trips, completion suppression across a crash epoch, and the
/// churn-schedule edge cases (Append ordering, deferred-join annulment)
/// that previously had no direct negative tests.

namespace sqlb::runtime {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n_providers = 16) {
    config.population.num_consumers = 4;
    config.population.num_providers = n_providers;
    config.workload = WorkloadSpec::Constant(0.8);
    config.duration = 1000.0;
    config.record_series = false;
    population.emplace(config.population, config.seed);
    reputation.emplace(config.population.num_providers, 0.0, 0.1);
    response_window.emplace(500);
    for (const ProviderProfile& profile : population->providers()) {
      providers.emplace_back(profile, config.provider);
      members.push_back(profile.id.index());
    }
    for (std::size_t c = 0; c < population->num_consumers(); ++c) {
      consumers.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                             config.consumer);
    }
    MediationCore::Shared shared;
    shared.config = &config;
    shared.population = &*population;
    shared.providers = &providers;
    shared.consumers = &consumers;
    shared.reputation = &*reputation;
    shared.result = &result;
    shared.response_window = &*response_window;
    core.emplace(shared, &method, members);
  }

  MediationCore::Outcome AllocateAt(SimTime t, QueryId id) {
    sim.RunUntil(t);
    Query query;
    query.id = id;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(id % 4));
    query.n = 1;
    query.class_index = 0;
    query.units = config.population.query_class_units[0];
    query.issue_time = t;
    return core->Allocate(sim, query);
  }

  /// Index of some member whose agent holds unfinished work, or -1.
  int BusyMember() const {
    for (std::uint32_t index : core->active_providers()) {
      if (!providers[index].Idle()) return static_cast<int>(index);
    }
    return -1;
  }

  SystemConfig config;
  std::optional<Population> population;
  std::vector<ProviderAgent> providers;
  std::vector<ConsumerAgent> consumers;
  std::vector<std::uint32_t> members;
  std::optional<ReputationRegistry> reputation;
  RunResult result;
  std::optional<WindowedMean> response_window;
  SqlbMethod method;
  des::Simulator sim;
  std::optional<MediationCore> core;
};

// ---------------------------------------------------------------------------
// Export / import preconditions — the contracts handoff and failover obey.
// ---------------------------------------------------------------------------

TEST(MembershipEdgeTest, ExportOfIdleMemberRoundTrips) {
  Fixture fx;
  const std::uint32_t p = fx.members.front();
  ASSERT_TRUE(fx.core->IsMember(p));
  ASSERT_TRUE(fx.providers[p].Idle());

  // Seal first — the handoff order — then export and re-import.
  fx.core->SealMember(p);
  const MediationCore::ProviderHandoff handoff = fx.core->ExportMember(p);
  EXPECT_EQ(handoff.provider_index, p);
  EXPECT_FALSE(fx.core->IsMember(p));
  fx.core->ImportMember(handoff);
  EXPECT_TRUE(fx.core->IsMember(p));
}

TEST(MembershipEdgeDeathTest, ExportOfNonMemberDies) {
  Fixture fx;
  const std::uint32_t p = fx.members.front();
  fx.core->SealMember(p);
  fx.core->ExportMember(p);
  EXPECT_DEATH(fx.core->ExportMember(p), "member");
}

TEST(MembershipEdgeDeathTest, ExportOfBusyMemberDies) {
  Fixture fx;
  ASSERT_EQ(fx.AllocateAt(10.0, 0), MediationCore::Outcome::kAllocated);
  const int busy = fx.BusyMember();
  ASSERT_GE(busy, 0);  // the allocation landed work on some member
  EXPECT_DEATH(fx.core->ExportMember(static_cast<std::uint32_t>(busy)),
               "[Ii]dle");
}

TEST(MembershipEdgeDeathTest, DoubleImportDies) {
  Fixture fx;
  const std::uint32_t p = fx.members.front();
  fx.core->SealMember(p);
  const MediationCore::ProviderHandoff handoff = fx.core->ExportMember(p);
  fx.core->ImportMember(handoff);
  EXPECT_DEATH(fx.core->ImportMember(handoff), "member");
}

TEST(MembershipEdgeDeathTest, ImportOutOfRangeDies) {
  Fixture fx;
  MediationCore::ProviderHandoff bogus;
  bogus.provider_index = 10000;
  EXPECT_DEATH(fx.core->ImportMember(bogus), "");
}

TEST(MembershipEdgeDeathTest, SealOfNonMemberDies) {
  Fixture fx;
  const std::uint32_t p = fx.members.front();
  fx.core->SealMember(p);
  fx.core->ExportMember(p);
  EXPECT_DEATH(fx.core->SealMember(p), "member");
}

// ---------------------------------------------------------------------------
// Crash / snapshot / restore mechanics.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, SnapshotCapturesSortedMemberBaselines) {
  Fixture fx;
  const MediationCore::CoreSnapshot snapshot = fx.core->ExportSnapshot(25.0);
  EXPECT_EQ(snapshot.taken_at, 25.0);
  ASSERT_EQ(snapshot.members.size(), fx.members.size());
  EXPECT_TRUE(std::is_sorted(
      snapshot.members.begin(), snapshot.members.end(),
      [](const MediationCore::ProviderHandoff& a,
         const MediationCore::ProviderHandoff& b) {
        return a.provider_index < b.provider_index;
      }));
}

TEST(CrashRecoveryTest, CrashReportsMembersAndSortedLostQueries) {
  Fixture fx;
  ASSERT_EQ(fx.AllocateAt(10.0, 7), MediationCore::Outcome::kAllocated);
  ASSERT_EQ(fx.AllocateAt(10.0, 3), MediationCore::Outcome::kAllocated);

  const MediationCore::CrashReport report = fx.core->Crash();
  EXPECT_EQ(report.members.size(), fx.members.size());
  EXPECT_TRUE(std::is_sorted(report.members.begin(), report.members.end()));
  ASSERT_EQ(report.lost_queries.size(), 2u);
  EXPECT_EQ(report.lost_queries[0].id, 3u);
  EXPECT_EQ(report.lost_queries[1].id, 7u);
  EXPECT_EQ(fx.core->active_provider_count(), 0u);
  EXPECT_EQ(fx.core->crash_count(), 1u);
}

TEST(CrashRecoveryTest, CompletionsOfDeadIncarnationAreSuppressed) {
  Fixture fx;
  ASSERT_EQ(fx.AllocateAt(10.0, 0), MediationCore::Outcome::kAllocated);
  fx.core->Crash();

  // The dispatched service events still fire — the provider agent drains —
  // but the completion must not reach consumer accounting.
  fx.sim.RunAll();
  EXPECT_GT(fx.core->dropped_completions(), 0u);
  EXPECT_EQ(fx.result.queries_completed, 0u);
  for (std::uint32_t p : fx.members) {
    EXPECT_TRUE(fx.providers[p].Idle()) << p;
  }
}

TEST(CrashRecoveryTest, RestoreReinstallsSnapshotMembers) {
  Fixture fx;
  const MediationCore::CoreSnapshot snapshot = fx.core->ExportSnapshot(20.0);
  fx.core->Crash();
  ASSERT_EQ(fx.core->active_provider_count(), 0u);

  const std::size_t restored = fx.core->RestoreSnapshot(snapshot);
  EXPECT_EQ(restored, fx.members.size());
  EXPECT_EQ(fx.core->active_provider_count(), fx.members.size());
  for (std::uint32_t p : fx.members) {
    EXPECT_TRUE(fx.core->IsMember(p)) << p;
  }
}

TEST(CrashRecoveryTest, RestoreSkipsMembersWhoDepartedSinceSnapshot) {
  Fixture fx;
  const MediationCore::CoreSnapshot snapshot = fx.core->ExportSnapshot(20.0);
  // One member exercises its autonomy between the snapshot and the crash.
  const std::uint32_t leaver = fx.members.front();
  fx.core->DepartMemberForChurn(leaver, 30.0);
  fx.core->Crash();

  const std::size_t restored = fx.core->RestoreSnapshot(snapshot);
  EXPECT_EQ(restored, fx.members.size() - 1);
  EXPECT_FALSE(fx.core->IsMember(leaver));
}

TEST(CrashRecoveryDeathTest, RestoreOverLiveMembershipDies) {
  Fixture fx;
  const MediationCore::CoreSnapshot snapshot = fx.core->ExportSnapshot(20.0);
  EXPECT_DEATH(fx.core->RestoreSnapshot(snapshot), "live membership");
}

// ---------------------------------------------------------------------------
// Churn-schedule edge cases (runtime/departures.h + the engine's deferred
// join machinery).
// ---------------------------------------------------------------------------

TEST(ChurnScheduleEdgeTest, AppendConcatenatesInOrder) {
  ChurnSchedule a = ChurnSchedule::FlashJoin(100.0, /*first=*/0, 2);
  const ChurnSchedule b = ChurnSchedule::MassDeparture(50.0, /*first=*/5, 2);
  a.Append(b);
  ASSERT_EQ(a.events.size(), 4u);
  // Append preserves list order; the engine sorts stably by time at run
  // construction, so same-time events keep their append order.
  EXPECT_EQ(a.events[0].time, 100.0);
  EXPECT_TRUE(a.events[0].join);
  EXPECT_EQ(a.events[2].time, 50.0);
  EXPECT_FALSE(a.events[2].join);
}

TEST(ChurnScheduleEdgeTest, HoldoutsIgnoreLaterRejoins) {
  ChurnSchedule schedule;
  schedule.events.push_back({80.0, /*join=*/false, 2});
  schedule.events.push_back({160.0, /*join=*/true, 2});  // rejoin: not held
  schedule.events.push_back({40.0, /*join=*/true, 7});   // first event: held
  const std::vector<std::uint32_t> holdouts = schedule.InitialHoldouts(10);
  EXPECT_EQ(holdouts, (std::vector<std::uint32_t>{7}));
}

TEST(ChurnScheduleEdgeTest, ScheduledLeaveAnnulsDeferredRejoin) {
  // Saturating load so the leaver holds queued work when its leave fires:
  // the immediate rejoin finds it still draining and defers; the second
  // leave then annuls the waiting join instead of firing.
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.workload = WorkloadSpec::Constant(1.3);
  config.duration = 300.0;
  config.stats_warmup = 50.0;
  config.seed = 17;
  config.provider_churn.events.push_back({150.0, /*join=*/false, 0});
  config.provider_churn.events.push_back({150.5, /*join=*/true, 0});
  config.provider_churn.events.push_back({151.0, /*join=*/false, 0});

  SqlbMethod method;
  MediationSystem system(config, &method);
  const RunResult result = system.Run();

  // The join never applied: the annulment erased it while the provider was
  // still draining, and the second leave itself was a no-op on a
  // non-member.
  EXPECT_EQ(result.provider_joins, 0u);
  EXPECT_EQ(result.tally.ByReason(DepartureReason::kChurn), 1u);
  EXPECT_EQ(result.remaining_providers, 39u);
  EXPECT_FALSE(system.core().IsMember(0));
  // Nothing double-counts: the drained work still completed.
  EXPECT_EQ(result.queries_issued,
            result.queries_completed + result.queries_infeasible);
}

TEST(ChurnScheduleEdgeTest, DeferredRejoinAppliesOnceDrained) {
  // Same shape, but no annulment: the rejoin retries until the drain
  // completes and then applies.
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.workload = WorkloadSpec::Constant(1.3);
  config.duration = 300.0;
  config.stats_warmup = 50.0;
  config.seed = 17;
  config.provider_churn.events.push_back({150.0, /*join=*/false, 0});
  config.provider_churn.events.push_back({150.5, /*join=*/true, 0});

  SqlbMethod method;
  MediationSystem system(config, &method);
  const RunResult result = system.Run();

  EXPECT_EQ(result.provider_joins, 1u);
  EXPECT_EQ(result.remaining_providers, 40u);
  EXPECT_TRUE(system.core().IsMember(0));
}

}  // namespace
}  // namespace sqlb::runtime
