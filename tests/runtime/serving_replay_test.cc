#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/serving_mediator.h"

/// \file
/// The replay oracle of the wall-clock serving tier
/// (runtime/serving_mediator.h): a multi-threaded serving run records every
/// served query, burst and allocation decision; replaying the recorded
/// bursts through the DES with an identically-built system must reproduce
/// the decision log bit-for-bit, and the conservation identity
/// completed + infeasible == issued must hold on both sides. Wall-clock
/// timing varies run to run — the pins here are exactly the invariants that
/// must NOT vary with it.

namespace sqlb::runtime {
namespace {

SystemConfig SmallScenario() {
  SystemConfig config;
  config.population.num_consumers = 12;
  config.population.num_providers = 24;
  config.seed = 7;
  config.record_series = false;
  return config;
}

ServingMediator::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

/// Runs `producers` threads x `per_producer` submissions against a serving
/// mediator and returns (report, trace) after a full drain.
struct ServedRun {
  ServingReport report;
  ServingTrace trace;
};

ServedRun Serve(const SystemConfig& scenario, const ServingConfig& serving,
                std::uint32_t producers, std::uint64_t per_producer,
                bool closed_loop = false) {
  ServingMediator mediator(scenario, serving, SqlbFactory());
  std::vector<ServingProducer*> handles;
  for (std::uint32_t p = 0; p < producers; ++p) {
    handles.push_back(mediator.RegisterProducer());
  }
  mediator.Start();
  std::vector<std::thread> threads;
  const std::uint32_t consumers =
      static_cast<std::uint32_t>(scenario.population.num_consumers);
  const std::uint32_t classes = static_cast<std::uint32_t>(
      scenario.population.query_class_units.size());
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      ServingProducer* producer = handles[p];
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint32_t consumer =
            static_cast<std::uint32_t>((p + producers * i) % consumers);
        while (!mediator.Submit(producer, consumer,
                                static_cast<std::uint32_t>(i % classes))) {
          std::this_thread::yield();
        }
        if (closed_loop) producer->AwaitMediated(producer->submitted());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  mediator.Drain();
  ServedRun run;
  run.report = mediator.Stop();
  run.trace = mediator.trace();
  return run;
}

TEST(ServingReplayTest, ReplayReproducesEveryDecisionBitForBit) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 2;
  serving.time_scale = 200.0;  // plenty of simulated capacity per wall second
  const ServedRun served = Serve(scenario, serving, /*producers=*/4,
                                 /*per_producer=*/500);

  ASSERT_EQ(served.report.served, 4u * 500u);
  ASSERT_EQ(served.trace.queries.size(), served.report.served);
  ASSERT_EQ(served.trace.decisions.size(), served.report.served);

  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), served.trace);
  std::string diff;
  EXPECT_TRUE(served.trace.decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
  // The replay issues exactly the recorded queries, so the headline
  // counters must agree too.
  EXPECT_EQ(replay.run.queries_issued, served.report.run.queries_issued);
  EXPECT_EQ(replay.run.queries_infeasible,
            served.report.run.queries_infeasible);
}

TEST(ServingReplayTest, ConservationHoldsOnBothSidesOfTheOracle) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 4;
  serving.time_scale = 100.0;
  serving.max_burst = 8;
  const ServedRun served = Serve(scenario, serving, /*producers=*/3,
                                 /*per_producer=*/400);

  const RunResult& live = served.report.run;
  EXPECT_EQ(live.queries_completed + live.queries_infeasible,
            live.queries_issued);
  EXPECT_EQ(live.queries_issued, served.report.served);

  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), served.trace);
  EXPECT_EQ(replay.run.queries_completed + replay.run.queries_infeasible,
            replay.run.queries_issued);
  EXPECT_EQ(replay.run.queries_completed, live.queries_completed);
}

TEST(ServingReplayTest, ClosedLoopProducersSeeEveryQueryMediated) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.time_scale = 200.0;
  const ServedRun served = Serve(scenario, serving, /*producers=*/2,
                                 /*per_producer=*/100, /*closed_loop=*/true);
  EXPECT_EQ(served.report.served, 200u);
  EXPECT_EQ(served.report.shed, 0u);
  // Closed-loop: each producer has at most one query outstanding, so a
  // burst carries at most one query per producer.
  EXPECT_GE(served.report.bursts, 100u);
  EXPECT_LE(served.report.bursts, 200u);
  // The merged wall-latency histogram saw exactly one sample per query.
  EXPECT_EQ(served.report.intake_wall.count(), 200u);
}

TEST(ServingReplayTest, BoundedIntakeShedsInsteadOfGrowingWithoutLimit) {
  SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.max_queued_per_shard = 64;
  serving.shards = 1;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  ServingProducer* producer = mediator.RegisterProducer();
  // Flood before Start: nothing drains, so the bounded queue must fill and
  // then shed deterministically.
  for (int i = 0; i < 5000; ++i) {
    mediator.Submit(producer, /*consumer_index=*/0, /*class_index=*/0);
  }
  EXPECT_GT(producer->shed(), 0u);
  // The per-shard reservation counter enforces the bound exactly — not
  // rounded up to the queue's chunk granularity.
  EXPECT_EQ(producer->submitted(), serving.max_queued_per_shard);
  mediator.Start();
  mediator.Drain();  // everything accepted must still be served
  const ServingReport report = mediator.Stop();
  EXPECT_EQ(report.submitted + report.shed, 5000u);
  EXPECT_EQ(report.served, report.submitted);
}

TEST(ServingReplayTest, ServingMetricsCarryTheIntakeHistogram) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.time_scale = 200.0;
  const ServedRun served = Serve(scenario, serving, /*producers=*/2,
                                 /*per_producer=*/150);
  const obs::Histogram* merged = served.report.run.metrics.FindHistogram(
      obs::kMetricServingIntakeWall);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), served.report.served);
  // Merged quantiles equal the report's histogram (same fold).
  EXPECT_DOUBLE_EQ(merged->Quantile(0.99),
                   served.report.intake_wall.Quantile(0.99));
}

/// Checks the structural invariants of a merged multi-group trace: the
/// spans cover the query/burst/decision streams as disjoint contiguous
/// ranges in group order, every burst stays inside its span's shard range,
/// and query ids are globally unique with the per-group residue.
void CheckGroupSpans(const ServingTrace& trace, std::size_t mediator_threads,
                     std::size_t shards) {
  ASSERT_EQ(trace.groups.size(), mediator_threads);
  const std::size_t shards_per_group = shards / mediator_threads;
  std::size_t query_cursor = 0;
  std::size_t burst_cursor = 0;
  std::size_t decision_cursor = 0;
  std::set<QueryId> seen_ids;
  for (std::size_t g = 0; g < trace.groups.size(); ++g) {
    const ServingGroupSpan& span = trace.groups[g];
    EXPECT_EQ(span.first_shard, g * shards_per_group);
    EXPECT_EQ(span.shard_count, shards_per_group);
    EXPECT_EQ(span.query_begin, query_cursor);
    EXPECT_EQ(span.burst_begin, burst_cursor);
    EXPECT_EQ(span.decision_begin, decision_cursor);
    query_cursor = span.query_end;
    burst_cursor = span.burst_end;
    decision_cursor = span.decision_end;
    for (std::size_t b = span.burst_begin; b < span.burst_end; ++b) {
      const ServingBurst& burst = trace.bursts[b];
      EXPECT_GE(burst.shard, span.first_shard);
      EXPECT_LT(burst.shard, span.first_shard + span.shard_count);
      EXPECT_GE(burst.first, span.query_begin);
      EXPECT_LE(burst.first + burst.count, span.query_end);
    }
    for (std::size_t q = span.query_begin; q < span.query_end; ++q) {
      EXPECT_EQ(trace.queries[q].id % mediator_threads, g);
      EXPECT_TRUE(seen_ids.insert(trace.queries[q].id).second)
          << "duplicate query id " << trace.queries[q].id;
    }
  }
  EXPECT_EQ(query_cursor, trace.queries.size());
  EXPECT_EQ(burst_cursor, trace.bursts.size());
  EXPECT_EQ(decision_cursor, trace.decisions.size());
}

TEST(ServingReplayTest, MultiGroupRunReplaysEveryGroupBitForBit) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 4;
  serving.mediator_threads = 2;
  serving.time_scale = 100.0;
  const ServedRun served = Serve(scenario, serving, /*producers=*/4,
                                 /*per_producer=*/300);

  ASSERT_EQ(served.report.served, 4u * 300u);
  CheckGroupSpans(served.trace, serving.mediator_threads, serving.shards);

  const RunResult& live = served.report.run;
  EXPECT_EQ(live.queries_completed + live.queries_infeasible,
            live.queries_issued);

  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), served.trace);
  std::string diff;
  EXPECT_TRUE(served.trace.decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
  EXPECT_EQ(replay.run.queries_completed + replay.run.queries_infeasible,
            replay.run.queries_issued);
  EXPECT_EQ(replay.run.queries_completed, live.queries_completed);
}

TEST(ServingReplayTest, OneThreadPerShardReplaysExactly) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 4;
  serving.mediator_threads = 4;
  serving.time_scale = 100.0;
  serving.max_burst = 8;
  const ServedRun served = Serve(scenario, serving, /*producers=*/3,
                                 /*per_producer=*/200);

  ASSERT_EQ(served.report.served, 3u * 200u);
  CheckGroupSpans(served.trace, serving.mediator_threads, serving.shards);
  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), served.trace);
  std::string diff;
  EXPECT_TRUE(served.trace.decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
}

TEST(ServingReplayTest, SingleThreadTraceHasOneGroupAndDenseSequentialIds) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 2;
  serving.time_scale = 200.0;
  const ServedRun served = Serve(scenario, serving, /*producers=*/2,
                                 /*per_producer=*/200);

  // mediator_threads defaults to 1: the trace carries exactly one span over
  // every shard, and the id sequence is the single-thread tier's plain
  // 0,1,2,... (sorted, since flush order across shards interleaves).
  ASSERT_EQ(served.trace.groups.size(), 1u);
  EXPECT_EQ(served.trace.groups[0].first_shard, 0u);
  EXPECT_EQ(served.trace.groups[0].shard_count, serving.shards);
  std::vector<QueryId> ids;
  for (const Query& query : served.trace.queries) ids.push_back(query.id);
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 400u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<QueryId>(i));
  }
}

TEST(ServingReplayTest, SubmitManyDrivenRunReplaysExactly) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 4;
  serving.mediator_threads = 2;
  serving.time_scale = 100.0;
  constexpr std::uint32_t kProducers = 3;
  constexpr std::size_t kPerProducer = 600;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  std::vector<ServingProducer*> handles;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    handles.push_back(mediator.RegisterProducer());
  }
  mediator.Start();
  std::vector<std::thread> threads;
  const std::uint32_t consumers =
      static_cast<std::uint32_t>(scenario.population.num_consumers);
  const std::uint32_t classes = static_cast<std::uint32_t>(
      scenario.population.query_class_units.size());
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<ServingRequest> requests(kPerProducer);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].consumer =
            static_cast<std::uint32_t>((p + kProducers * i) % consumers);
        requests[i].class_index = static_cast<std::uint32_t>(i % classes);
      }
      // Accepted prefix contract: retry the unaccepted suffix only.
      std::size_t done = 0;
      while (done < requests.size()) {
        const std::size_t got = mediator.SubmitMany(
            handles[p], requests.data() + done, requests.size() - done);
        done += got;
        if (got == 0) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  mediator.Drain();
  const ServingReport report = mediator.Stop();

  EXPECT_EQ(report.submitted, kProducers * kPerProducer);
  EXPECT_EQ(report.served, report.submitted);
  EXPECT_EQ(report.run.queries_completed + report.run.queries_infeasible,
            report.run.queries_issued);
  CheckGroupSpans(mediator.trace(), serving.mediator_threads, serving.shards);
  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), mediator.trace());
  std::string diff;
  EXPECT_TRUE(
      mediator.trace().decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
}

TEST(ServingReplayTest, AdaptiveBatchingStillReplaysExactly) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 2;
  serving.time_scale = 50.0;
  serving.adaptive_batch.enabled = true;
  serving.adaptive_batch.min_window = 0.0;
  serving.adaptive_batch.max_window = 0.05;
  const ServedRun served = Serve(scenario, serving, /*producers=*/4,
                                 /*per_producer=*/250);
  ASSERT_EQ(served.report.served, 1000u);
  const ServingReplayResult replay = ReplayServingTrace(
      scenario, serving.shards, SqlbFactory(), served.trace);
  std::string diff;
  EXPECT_TRUE(served.trace.decisions.IdenticalTo(replay.decisions, &diff))
      << diff;
}

}  // namespace
}  // namespace sqlb::runtime
