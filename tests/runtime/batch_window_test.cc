#include <gtest/gtest.h>

#include <memory>

#include "core/sqlb_method.h"
#include "runtime/batch_window.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The adaptive batch-window controller (runtime/batch_window.h): the
/// rate-matched window, the queue-debt gate, the [min, max] bounds, and the
/// end-to-end contracts of the adaptive intake — counters conserved, bursts
/// actually formed, strict-parity parallel runs bit-identical to serial.

namespace sqlb::runtime {
namespace {

AdaptiveBatchConfig Config(double min_window = 0.0, double max_window = 2.0) {
  AdaptiveBatchConfig config;
  config.enabled = true;
  config.min_window = min_window;
  config.max_window = max_window;
  config.target_burst = 8.0;
  config.ewma_tau = 5.0;
  config.backlog_ref = 5.0;
  return config;
}

TEST(BatchWindowControllerTest, StartsAtMinWindowUntilRateIsKnown) {
  BatchWindowController controller(Config(0.1, 2.0));
  EXPECT_DOUBLE_EQ(controller.Window(), 0.1);
  controller.OnArrival(1.0);  // first arrival: still no interval
  EXPECT_DOUBLE_EQ(controller.Window(), 0.1);
}

TEST(BatchWindowControllerTest, IdleShardStaysAtMinWindow) {
  // Steady arrivals but an empty queue: there is nothing to amortize, so
  // coalescing would be pure added latency — the debt gate holds the
  // window at the floor.
  BatchWindowController controller(Config(0.0, 2.0));
  for (int i = 0; i < 100; ++i) {
    controller.OnArrival(0.1 * static_cast<double>(i));
  }
  controller.OnBacklogSample(0.0);
  EXPECT_DOUBLE_EQ(controller.Window(), 0.0);
}

TEST(BatchWindowControllerTest, QueueDebtOpensTheRateMatchedWindow) {
  BatchWindowController controller(Config(0.0, 2.0));
  // ~10 arrivals/second.
  for (int i = 0; i < 200; ++i) {
    controller.OnArrival(0.1 * static_cast<double>(i));
  }
  EXPECT_NEAR(controller.arrival_rate(), 10.0, 1.0);

  controller.OnBacklogSample(10.0);  // deep queue: fully open
  // target_burst / rate = 8 / 10 = 0.8 seconds.
  EXPECT_NEAR(controller.Window(), 0.8, 0.1);

  controller.OnBacklogSample(2.5);  // half the reference debt: half open
  EXPECT_NEAR(controller.Window(), 0.4, 0.1);
}

TEST(BatchWindowControllerTest, HerdingSpikeShrinksTheWindow) {
  // The stale-gossip herding case: a shard that was receiving 2/second
  // suddenly receives the whole system's arrivals (50/second). The
  // rate-matched window must shrink roughly with the rate so bursts stay
  // near the target length instead of swallowing the entire spike.
  BatchWindowController controller(Config(0.0, 2.0));
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.5;
    controller.OnArrival(t);
  }
  controller.OnBacklogSample(100.0);
  const double slow_window = controller.Window();
  EXPECT_NEAR(slow_window, 2.0, 0.2);  // 8/2 = 4s, clamped to max 2

  for (int i = 0; i < 1000; ++i) {
    t += 0.02;
    controller.OnArrival(t);
  }
  const double spike_window = controller.Window();
  EXPECT_LT(spike_window, 0.5 * slow_window);
  EXPECT_NEAR(spike_window, 8.0 / 50.0, 0.1);
}

TEST(BatchWindowControllerTest, WindowRespectsBounds) {
  BatchWindowController controller(Config(0.05, 0.5));
  // Very slow arrivals: rate-matched window would be huge — clamped.
  controller.OnArrival(0.0);
  controller.OnArrival(100.0);
  controller.OnBacklogSample(1000.0);
  EXPECT_LE(controller.Window(), 0.5);
  EXPECT_GE(controller.Window(), 0.05);
}

// ---------------------------------------------------------------------------
// End-to-end adaptive intake.
// ---------------------------------------------------------------------------

SystemConfig SmallConfig(double workload, std::uint64_t seed) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

shard::ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

TEST(AdaptiveBatchingTest, ConservesCountersAndFormsBursts) {
  shard::ShardedSystemConfig config;
  config.base = SmallConfig(1.0, 21);
  config.router.num_shards = 4;
  config.router.policy = shard::RoutingPolicy::kLeastLoaded;
  config.adaptive_batch.enabled = true;
  config.adaptive_batch.max_window = 1.0;

  const shard::ShardedRunResult result =
      shard::RunShardedScenario(config, SqlbFactory());
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible);
  EXPECT_GT(result.batch_flushes, 0u);
  // Every issued query went through exactly one flush (re-route walks
  // replay bounced queries after their burst already consumed them).
  EXPECT_EQ(result.batched_queries, result.run.queries_issued);
  // Under saturating load the debt gate must open far enough to coalesce
  // more than one query per flush on average.
  EXPECT_GT(static_cast<double>(result.batched_queries) /
                static_cast<double>(result.batch_flushes),
            1.0);
}

TEST(AdaptiveBatchingTest, StrictParallelAdaptiveRunIsBitIdenticalToSerial) {
  shard::ShardedSystemConfig serial;
  serial.base = SmallConfig(0.9, 33);
  serial.router.num_shards = 4;
  serial.router.policy = shard::RoutingPolicy::kLocality;  // strict shape
  serial.rerouting_enabled = false;
  serial.adaptive_batch.enabled = true;
  serial.adaptive_batch.max_window = 1.0;

  const shard::ShardedRunResult serial_result =
      shard::RunShardedScenario(serial, SqlbFactory());
  ASSERT_GT(serial_result.batch_flushes, 0u);

  shard::ShardedSystemConfig parallel = serial;
  parallel.worker_threads = 2;
  const shard::ShardedRunResult parallel_result =
      shard::RunShardedScenario(parallel, SqlbFactory());

  EXPECT_EQ(serial_result.run.queries_issued,
            parallel_result.run.queries_issued);
  EXPECT_EQ(serial_result.run.queries_completed,
            parallel_result.run.queries_completed);
  EXPECT_EQ(serial_result.run.response_time.mean(),
            parallel_result.run.response_time.mean());
  EXPECT_EQ(serial_result.run.response_time_all.sum(),
            parallel_result.run.response_time_all.sum());
  EXPECT_EQ(serial_result.batch_flushes, parallel_result.batch_flushes);
  EXPECT_EQ(serial_result.batched_queries, parallel_result.batched_queries);
}

TEST(AdaptiveBatchingTest, AdaptiveWorksWithGossipDisabled) {
  // Without gossip the controllers get their queue-debt signal from the
  // dedicated sampling task; routing falls back to hashing, but the intake
  // must still batch and conserve the workload.
  shard::ShardedSystemConfig config;
  config.base = SmallConfig(1.0, 44);
  config.router.num_shards = 4;
  config.router.policy = shard::RoutingPolicy::kHash;
  config.gossip_enabled = false;
  config.adaptive_batch.enabled = true;
  config.adaptive_batch.max_window = 1.0;

  const shard::ShardedRunResult result =
      shard::RunShardedScenario(config, SqlbFactory());
  EXPECT_EQ(result.run.queries_issued,
            result.run.queries_completed + result.run.queries_infeasible);
  EXPECT_GT(result.batch_flushes, 0u);
}

}  // namespace
}  // namespace sqlb::runtime
