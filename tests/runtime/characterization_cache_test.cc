#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/sqlb_method.h"
#include "runtime/mediation_core.h"
#include "runtime/mediation_system.h"

/// \file
/// Unit pins for the event-driven characterization cache
/// (runtime/mediation_core.h): lazy refresh under repeated and advancing
/// `now` values, exact decay-driven refresh when the utilization window
/// slides, and invalidation by reads on *other* paths (metric probes,
/// departure checks) whose windowed-sum evictions would otherwise leave a
/// cached utilization silently stale. The cross-run bit-identity contract
/// lives in tests/shard/cache_parity_test.cc; these tests pin the refresh
/// *mechanics* the contract rests on.

namespace sqlb::runtime {
namespace {

struct Fixture {
  explicit Fixture(bool cache_enabled, std::size_t n_providers = 16) {
    config.population.num_consumers = 4;
    config.population.num_providers = n_providers;
    config.workload = WorkloadSpec::Constant(0.8);
    config.duration = 1000.0;
    config.record_series = false;
    config.characterization_cache = cache_enabled;
    population.emplace(config.population, config.seed);
    reputation.emplace(config.population.num_providers, 0.0, 0.1);
    response_window.emplace(500);
    for (const ProviderProfile& profile : population->providers()) {
      providers.emplace_back(profile, config.provider);
      members.push_back(profile.id.index());
    }
    for (std::size_t c = 0; c < population->num_consumers(); ++c) {
      consumers.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                             config.consumer);
    }
    MediationCore::Shared shared;
    shared.config = &config;
    shared.population = &*population;
    shared.providers = &providers;
    shared.consumers = &consumers;
    shared.reputation = &*reputation;
    shared.result = &result;
    shared.response_window = &*response_window;
    core.emplace(shared, &method, members);
  }

  MediationCore::Outcome AllocateAt(SimTime t, QueryId id) {
    sim.RunUntil(t);
    Query query;
    query.id = id;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(id % 4));
    query.n = 1;
    query.class_index = 0;
    query.units = config.population.query_class_units[0];
    query.issue_time = t;
    return core->Allocate(sim, query);
  }

  SystemConfig config;
  std::optional<Population> population;
  std::vector<ProviderAgent> providers;
  std::vector<ConsumerAgent> consumers;
  std::vector<std::uint32_t> members;
  std::optional<ReputationRegistry> reputation;
  RunResult result;
  std::optional<WindowedMean> response_window;
  SqlbMethod method;
  des::Simulator sim;
  std::optional<MediationCore> core;
};

TEST(CharacterizationCacheTest, RepeatedNowRefreshesOnlyEventTouchedMembers) {
  Fixture fx(/*cache_enabled=*/true);
  const std::size_t n = fx.members.size();

  ASSERT_EQ(fx.AllocateAt(10.0, 0), MediationCore::Outcome::kAllocated);
  const auto after_first = fx.core->cache_stats();
  // Cold start: every member characterized from scratch.
  EXPECT_EQ(after_first.lookups, n);
  EXPECT_EQ(after_first.utilization_refreshes, n);
  EXPECT_EQ(after_first.satisfaction_refreshes, n);

  // Second query at the very same time: the only members whose state an
  // event touched are the selected provider (Enqueue bumped its load and
  // utilization stamps, OnProposed its performed subset); every other
  // member is a pure hit — no refresh of any kind.
  ASSERT_EQ(fx.AllocateAt(10.0, 1), MediationCore::Outcome::kAllocated);
  const auto after_second = fx.core->cache_stats();
  EXPECT_EQ(after_second.lookups, 2 * n);
  EXPECT_LE(after_second.utilization_refreshes,
            after_first.utilization_refreshes + 2);
  EXPECT_LE(after_second.satisfaction_refreshes,
            after_first.satisfaction_refreshes + 2);
  EXPECT_LE(after_second.backlog_refreshes, after_first.backlog_refreshes + 2);
}

TEST(CharacterizationCacheTest, AdvancingNowWithoutDecayStaysCached) {
  Fixture fx(/*cache_enabled=*/true);
  ASSERT_EQ(fx.AllocateAt(10.0, 0), MediationCore::Outcome::kAllocated);
  const auto before = fx.core->cache_stats();

  // 1 second later — far inside the 60-second utilization window, so no
  // allocation can have decayed out: time alone must not refresh anything
  // beyond the members the first query's events touched.
  ASSERT_EQ(fx.AllocateAt(11.0, 1), MediationCore::Outcome::kAllocated);
  const auto after = fx.core->cache_stats();
  EXPECT_LE(after.utilization_refreshes, before.utilization_refreshes + 2);
}

TEST(CharacterizationCacheTest, UtilizationDecayForcesExactRefresh) {
  Fixture fx(/*cache_enabled=*/true);
  // Two queries at t = 10 land work on (at most) two providers; their
  // allocations decay out of the 60-second utilization window at t = 70.
  ASSERT_EQ(fx.AllocateAt(10.0, 0), MediationCore::Outcome::kAllocated);
  ASSERT_EQ(fx.AllocateAt(10.0, 1), MediationCore::Outcome::kAllocated);

  // Just before the decay horizon: no refresh storm.
  fx.AllocateAt(69.9, 2);
  const auto before = fx.core->cache_stats();

  // Past it: exactly the providers holding decayed allocations refresh
  // (the rest hold no windowed events at all — their cached state is
  // timeless until an event arrives).
  fx.AllocateAt(70.1, 3);
  const auto after = fx.core->cache_stats();
  EXPECT_GT(after.utilization_refreshes, before.utilization_refreshes);
  EXPECT_LE(after.utilization_refreshes, before.utilization_refreshes + 4);

  // And the refreshed utilizations agree bit-for-bit with a from-scratch
  // twin that never cached anything.
  Fixture twin(/*cache_enabled=*/false);
  twin.AllocateAt(10.0, 0);
  twin.AllocateAt(10.0, 1);
  twin.AllocateAt(69.9, 2);
  twin.AllocateAt(70.1, 3);
  twin.sim.RunAll();
  fx.sim.RunAll();
  for (std::size_t p = 0; p < fx.providers.size(); ++p) {
    EXPECT_EQ(fx.providers[p].Utilization(80.0),
              twin.providers[p].Utilization(80.0))
        << p;
    EXPECT_EQ(fx.providers[p].SatisfactionOnIntentions(),
              twin.providers[p].SatisfactionOnIntentions())
        << p;
    EXPECT_EQ(fx.providers[p].performed_count(),
              twin.providers[p].performed_count())
        << p;
  }
  EXPECT_EQ(fx.result.response_time_all.sum(),
            twin.result.response_time_all.sum());
}

TEST(CharacterizationCacheTest, ProbePathEvictionsInvalidateCachedUtilization) {
  // A metric probe / departure check reads Utilization directly, outside
  // the mediation path. When that read evicts decayed allocations, the
  // agent's windowed sum changes shape — a cached utilization that failed
  // to notice would serve a stale value at the next mediation. The coarse
  // characterization revision is bumped by the *agent* on any evicting
  // read, so the cache refreshes no matter who triggered the eviction.
  Fixture cached(/*cache_enabled=*/true);
  Fixture twin(/*cache_enabled=*/false);

  for (Fixture* fx : {&cached, &twin}) {
    fx->AllocateAt(10.0, 0);
    fx->AllocateAt(10.0, 1);
    fx->sim.RunUntil(75.0);
    // The out-of-band read at t = 75 pops the t = 10 allocations out of
    // every touched provider's utilization window.
    for (ProviderAgent& agent : fx->providers) {
      (void)agent.Utilization(75.0);
    }
    // Next mediation at the same `now` the probe used: the cached run must
    // see the eviction and re-read, not serve the pre-eviction value.
    fx->AllocateAt(75.0, 2);
    fx->AllocateAt(90.0, 3);
    fx->sim.RunAll();
  }

  EXPECT_EQ(cached.result.queries_completed, twin.result.queries_completed);
  EXPECT_EQ(cached.result.response_time_all.sum(),
            twin.result.response_time_all.sum());
  for (std::size_t p = 0; p < cached.providers.size(); ++p) {
    EXPECT_EQ(cached.providers[p].performed_count(),
              twin.providers[p].performed_count())
        << p;
    EXPECT_EQ(cached.providers[p].SatisfactionOnPreferences(),
              twin.providers[p].SatisfactionOnPreferences())
        << p;
  }
}

TEST(CharacterizationCacheTest, CacheOffForcesFullRecomputationEachQuery) {
  Fixture fx(/*cache_enabled=*/false);
  const std::size_t n = fx.members.size();
  fx.AllocateAt(10.0, 0);
  fx.AllocateAt(10.0, 1);
  const auto stats = fx.core->cache_stats();
  EXPECT_FALSE(fx.core->cache_enabled());
  // The recompute-per-query twin refreshes every member on every gather.
  EXPECT_EQ(stats.utilization_refreshes, 2 * n);
  EXPECT_EQ(stats.satisfaction_refreshes, 2 * n);
  EXPECT_EQ(stats.evaluator_rebuilds, 2 * n);
}

TEST(CharacterizationCacheTest, BatchAndSingleQueryShareOneCache) {
  // A burst characterizes the candidate set once; an immediately following
  // single-query Allocate at the same time hits the same entries.
  Fixture fx(/*cache_enabled=*/true);
  std::vector<Query> burst;
  for (QueryId i = 0; i < 3; ++i) {
    Query query;
    query.id = i;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(i % 4));
    query.n = 1;
    query.class_index = 0;
    query.units = fx.config.population.query_class_units[0];
    query.issue_time = 5.0;
    burst.push_back(query);
  }
  fx.sim.RunUntil(5.0);
  std::vector<MediationCore::Outcome> outcomes;
  fx.core->AllocateBatch(fx.sim, burst, 0.0, &outcomes);
  const auto after_burst = fx.core->cache_stats();
  // One full characterization of the member set, not one per burst query.
  EXPECT_EQ(after_burst.satisfaction_refreshes, fx.members.size());

  fx.AllocateAt(5.0, 99);
  const auto after_single = fx.core->cache_stats();
  // The burst's dispatches dirtied at most the selected providers.
  EXPECT_LE(after_single.satisfaction_refreshes,
            after_burst.satisfaction_refreshes + 3);
}

}  // namespace
}  // namespace sqlb::runtime
