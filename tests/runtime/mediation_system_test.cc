#include "runtime/mediation_system.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sqlb_method.h"
#include "methods/capacity_based.h"
#include "methods/mariposa.h"

namespace sqlb::runtime {
namespace {

/// A scaled-down Table 2 setup that runs in milliseconds.
SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

TEST(WorkloadSpecTest, ConstantAndRamp) {
  const auto constant = WorkloadSpec::Constant(0.8);
  EXPECT_DOUBLE_EQ(constant.FractionAt(123.0, 1000.0), 0.8);
  EXPECT_DOUBLE_EQ(constant.MaxFraction(), 0.8);

  const auto ramp = WorkloadSpec::Ramp(0.3, 1.0);
  EXPECT_DOUBLE_EQ(ramp.FractionAt(0.0, 1000.0), 0.3);
  EXPECT_DOUBLE_EQ(ramp.FractionAt(500.0, 1000.0), 0.65);
  EXPECT_DOUBLE_EQ(ramp.FractionAt(2000.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(ramp.MaxFraction(), 1.0);
}

TEST(MediationSystemTest, EveryIssuedQueryCompletesWhenCaptive) {
  SqlbMethod method;
  RunResult result = RunScenario(SmallConfig(0.5), &method);
  EXPECT_GT(result.queries_issued, 100u);
  EXPECT_EQ(result.queries_infeasible, 0u);
  // The run drains outstanding service, so conservation is exact.
  EXPECT_EQ(result.queries_completed, result.queries_issued);
  EXPECT_EQ(result.method_name, "SQLB");
}

TEST(MediationSystemTest, DeterministicForFixedSeed) {
  SqlbMethod m1, m2;
  RunResult a = RunScenario(SmallConfig(0.6, 7), &m1);
  RunResult b = RunScenario(SmallConfig(0.6, 7), &m2);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
}

TEST(MediationSystemTest, DifferentSeedsProduceDifferentTraffic) {
  SqlbMethod m1, m2;
  RunResult a = RunScenario(SmallConfig(0.6, 1), &m1);
  RunResult b = RunScenario(SmallConfig(0.6, 2), &m2);
  EXPECT_NE(a.queries_issued, b.queries_issued);
}

TEST(MediationSystemTest, ResponseTimesAreAtLeastServiceTime) {
  CapacityBasedMethod method;
  RunResult result = RunScenario(SmallConfig(0.4), &method);
  // The fastest possible response is a 130-unit query on a high-capacity
  // provider: 1.3 seconds.
  EXPECT_GE(result.response_time_all.min(), 1.3 - 1e-9);
}

TEST(MediationSystemTest, ArrivalCountTracksWorkload) {
  // lambda = fraction * total_capacity / mean_units; with the small
  // population total capacity = 4 * 100/7 + 24 * 100/3 + 12 * 100.
  SqlbMethod method;
  const double workload = 0.5;
  RunResult result = RunScenario(SmallConfig(workload, 3), &method);
  const double capacity = 4 * (100.0 / 7.0) + 24 * (100.0 / 3.0) + 1200.0;
  const double expected = workload * capacity / 140.0 * 300.0;
  EXPECT_NEAR(static_cast<double>(result.queries_issued), expected,
              4.0 * std::sqrt(expected));
}

TEST(MediationSystemTest, SqlbSatisfiesConsumersBaselinesAreNeutral) {
  // The Figure 4(e) shape: mu(delta_as, C) > 1 under SQLB, ~ 1 under the
  // baselines. Averaged over seeds: with only 40 providers a single draw
  // can correlate capacity and interest classes by chance.
  double sqlb_allocsat = 0.0;
  double capacity_allocsat = 0.0;
  const std::uint64_t seeds[] = {42, 43, 44};
  for (std::uint64_t seed : seeds) {
    SqlbMethod sqlb;
    RunResult s = RunScenario(SmallConfig(0.5, seed), &sqlb);
    sqlb_allocsat += s.series.Find(MediationSystem::kSeriesConsAllocSatMean)
                         ->MeanOver(100.0, 300.0);
    CapacityBasedMethod capacity;
    RunResult c = RunScenario(SmallConfig(0.5, seed), &capacity);
    capacity_allocsat +=
        c.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(100.0, 300.0);
  }
  sqlb_allocsat /= 3.0;
  capacity_allocsat /= 3.0;
  EXPECT_GT(sqlb_allocsat, 1.1);
  EXPECT_NEAR(capacity_allocsat, 1.0, 0.12);
  EXPECT_GT(sqlb_allocsat, capacity_allocsat + 0.1);
}

TEST(MediationSystemTest, CapacityBasedTracksWorkloadUtilization) {
  // DESIGN.md fidelity decision 1: under proportional balancing the mean
  // utilization approaches the workload fraction.
  CapacityBasedMethod method;
  RunResult result = RunScenario(SmallConfig(0.6), &method);
  const double ut_mean = result.series.Find(MediationSystem::kSeriesUtMean)
                             ->MeanOver(100.0, 300.0);
  EXPECT_NEAR(ut_mean, 0.6, 0.12);
}

TEST(MediationSystemTest, SeriesAreSampledAndBounded) {
  SqlbMethod method;
  RunResult result = RunScenario(SmallConfig(0.5), &method);
  for (const char* key :
       {MediationSystem::kSeriesProvSatIntMean,
        MediationSystem::kSeriesProvSatPrefMean,
        MediationSystem::kSeriesConsSatMean,
        MediationSystem::kSeriesProvSatIntFair,
        MediationSystem::kSeriesConsSatFair}) {
    const auto* series = result.series.Find(key);
    ASSERT_NE(series, nullptr) << key;
    EXPECT_GE(series->size(), 10u) << key;
    for (const auto& [t, v] : series->samples) {
      ASSERT_GE(v, 0.0) << key;
      ASSERT_LE(v, 1.0) << key;
    }
  }
}

TEST(MediationSystemTest, CaptiveRunsHaveNoDepartures) {
  SqlbMethod method;
  RunResult result = RunScenario(SmallConfig(1.0), &method);
  EXPECT_TRUE(result.departures.empty());
  EXPECT_EQ(result.remaining_providers, result.initial_providers);
  EXPECT_EQ(result.remaining_consumers, result.initial_consumers);
}

TEST(MediationSystemTest, OverloadTriggersOverutilizationDepartures) {
  // Mariposa at overload concentrates load; with departures enabled some
  // providers must leave by overutilization (the Figure 5(b)/Table 3
  // mechanism).
  SystemConfig config = SmallConfig(0.9);
  config.duration = 600.0;
  config.departures = DepartureConfig::AllEnabled();
  config.departures.grace_period = 150.0;
  config.departures.check_interval = 50.0;
  MariposaMethod method;
  RunResult result = RunScenario(config, &method);
  EXPECT_GT(result.tally.providers_total(), 0u);
  EXPECT_GT(
      result.tally.ByReason(DepartureReason::kOverutilization) +
          result.tally.ByReason(DepartureReason::kDissatisfaction) +
          result.tally.ByReason(DepartureReason::kStarvation),
      0u);
}

TEST(MediationSystemTest, DepartedProvidersReceiveNothingMore) {
  SystemConfig config = SmallConfig(0.9, 11);
  config.duration = 600.0;
  config.departures = DepartureConfig::AllEnabled();
  config.departures.grace_period = 150.0;
  config.departures.check_interval = 50.0;
  MariposaMethod method;
  MediationSystem system(config, &method);
  RunResult result = system.Run();
  for (const DepartureEvent& event : result.departures) {
    if (!event.is_provider) continue;
    const auto& agent =
        system.provider_agent(ProviderId(event.participant_index));
    EXPECT_FALSE(agent.active());
  }
  EXPECT_EQ(result.remaining_providers + result.tally.providers_total(),
            result.initial_providers);
}

TEST(MediationSystemTest, MultiProviderQueriesRespectQn) {
  SystemConfig config = SmallConfig(0.3);
  config.query_n = 3;
  SqlbMethod method;
  RunResult result = RunScenario(config, &method);
  // Every query still completes exactly once (response at the last of the
  // three completions), so conservation holds.
  EXPECT_EQ(result.queries_completed, result.queries_issued);
}

TEST(MediationSystemDeathTest, RunTwiceAborts) {
  SqlbMethod method;
  MediationSystem system(SmallConfig(0.3), &method);
  (void)system.Run();
  EXPECT_DEATH((void)system.Run(), "once");
}

}  // namespace
}  // namespace sqlb::runtime
