#include "runtime/provider_agent.h"

#include <gtest/gtest.h>

#include <vector>

namespace sqlb::runtime {
namespace {

ProviderProfile HighCapacityProfile(std::uint32_t id = 0) {
  ProviderProfile profile;
  profile.id = ProviderId(id);
  profile.capacity_class = Level::kHigh;
  profile.capacity = 100.0;  // 130-unit query in 1.3 s
  return profile;
}

ProviderAgentConfig SmallConfig() {
  ProviderAgentConfig config;
  config.window.capacity = 10;
  config.utilization_window = 10.0;
  return config;
}

Query MakeQuery(QueryId id, double units) {
  Query q;
  q.id = id;
  q.consumer = ConsumerId(0);
  q.n = 1;
  q.units = units;
  q.issue_time = 0.0;
  return q;
}

TEST(ProviderAgentTest, ServiceTimeIsUnitsOverCapacity) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  std::vector<SimTime> completions;
  agent.Enqueue(sim, MakeQuery(1, 130.0),
                [&completions](const Query&, ProviderId, SimTime t) {
                  completions.push_back(t);
                });
  sim.RunAll();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 1.3, 1e-9);
}

TEST(ProviderAgentTest, FifoQueueing) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  std::vector<QueryId> order;
  std::vector<SimTime> times;
  for (QueryId id = 1; id <= 3; ++id) {
    agent.Enqueue(sim, MakeQuery(id, 100.0),
                  [&](const Query& q, ProviderId, SimTime t) {
                    order.push_back(q.id);
                    times.push_back(t);
                  });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<QueryId>{1, 2, 3}));
  EXPECT_NEAR(times[0], 1.0, 1e-9);
  EXPECT_NEAR(times[1], 2.0, 1e-9);
  EXPECT_NEAR(times[2], 3.0, 1e-9);
}

TEST(ProviderAgentTest, BacklogTracksQueuedWork) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  EXPECT_DOUBLE_EQ(agent.BacklogSeconds(), 0.0);
  agent.Enqueue(sim, MakeQuery(1, 100.0), nullptr);
  agent.Enqueue(sim, MakeQuery(2, 200.0), nullptr);
  EXPECT_DOUBLE_EQ(agent.BacklogSeconds(), 3.0);
  EXPECT_EQ(agent.queue_length(), 2u);
  sim.RunAll();
  EXPECT_DOUBLE_EQ(agent.BacklogSeconds(), 0.0);
  EXPECT_EQ(agent.queue_length(), 0u);
}

TEST(ProviderAgentTest, UtilizationIsWindowedAllocationRate) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());  // window 10 s
  // 800 units allocated within the window over capacity 100 * 10 = 0.8.
  sim.ScheduleAt(1.0, [&agent](des::Simulator& s) {
    agent.Enqueue(s, MakeQuery(1, 400.0), nullptr);
  });
  sim.ScheduleAt(2.0, [&agent](des::Simulator& s) {
    agent.Enqueue(s, MakeQuery(2, 400.0), nullptr);
  });
  sim.RunUntil(2.0);
  EXPECT_NEAR(agent.Utilization(2.0), 0.8, 1e-9);
  // Once the window slides past the allocations, utilization decays to 0.
  sim.RunUntil(13.0);
  EXPECT_NEAR(agent.Utilization(13.0), 0.0, 1e-9);
}

TEST(ProviderAgentTest, UtilizationCanExceedOne) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  for (QueryId id = 0; id < 30; ++id) {
    agent.Enqueue(sim, MakeQuery(id, 100.0), nullptr);
  }
  EXPECT_NEAR(agent.Utilization(0.0), 3.0, 1e-9);  // 3000 / (100 * 10)
}

TEST(ProviderAgentTest, CommittedUtilizationAddsQueueDebt) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());  // window 10 s
  // 3000 units at capacity 100: windowed Ut = 3.0 and the backlog (30 s of
  // work) adds another 3.0 of commitment.
  for (QueryId id = 0; id < 30; ++id) {
    agent.Enqueue(sim, MakeQuery(id, 100.0), nullptr);
  }
  EXPECT_NEAR(agent.Utilization(0.0), 3.0, 1e-9);
  EXPECT_NEAR(agent.CommittedUtilization(0.0), 6.0, 1e-9);
  // After everything drains, both readings decay with the window.
  sim.RunAll();
  EXPECT_NEAR(agent.CommittedUtilization(100.0), 0.0, 1e-9);
}

TEST(ProviderAgentTest, TotalAllocatedUnitsIsMonotone) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  EXPECT_DOUBLE_EQ(agent.total_allocated_units(), 0.0);
  agent.Enqueue(sim, MakeQuery(1, 130.0), nullptr);
  agent.Enqueue(sim, MakeQuery(2, 150.0), nullptr);
  EXPECT_DOUBLE_EQ(agent.total_allocated_units(), 280.0);
  sim.RunAll();
  // Completion does not reduce the lifetime counter.
  EXPECT_DOUBLE_EQ(agent.total_allocated_units(), 280.0);
}

TEST(ProviderAgentTest, EstimateDelayIncludesBacklog) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  agent.Enqueue(sim, MakeQuery(1, 200.0), nullptr);
  EXPECT_NEAR(agent.EstimateDelay(130.0), 2.0 + 1.3, 1e-9);
}

TEST(ProviderAgentTest, IntentionUsesPreferenceBasedSatisfaction) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  // Fill the window with performed queries the provider privately hates:
  // preference-based satisfaction collapses, so Def. 8's self-balance
  // swings to preference-only behaviour.
  for (int i = 0; i < 10; ++i) agent.OnProposed(0.9, -0.95, true);
  EXPECT_LT(agent.SatisfactionOnPreferences(), 0.1);
  EXPECT_GT(agent.SatisfactionOnIntentions(), 0.9);
  const double intention = agent.ComputeIntention(0.7, sim.Now());
  // With satisfaction ~ 0, intention ~ preference^1 * (1-Ut)^0 = 0.7.
  EXPECT_NEAR(intention, 0.7, 0.05);
}

TEST(ProviderAgentTest, BidPriceDecreasesWithPreference) {
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  EXPECT_LT(agent.ComputeBidPrice(0.9), agent.ComputeBidPrice(-0.9));
}

TEST(ProviderAgentTest, DepartStopsNothingInFlight) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  int completions = 0;
  agent.Enqueue(sim, MakeQuery(1, 100.0),
                [&completions](const Query&, ProviderId, SimTime) {
                  ++completions;
                });
  agent.Depart();
  EXPECT_FALSE(agent.active());
  sim.RunAll();
  EXPECT_EQ(completions, 1);  // outstanding work still completes
}

TEST(ProviderAgentTest, DepartAndRejoinAreIdempotent) {
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  ASSERT_TRUE(agent.active());
  const std::uint64_t load0 = agent.load_revision();
  const std::uint64_t char0 = agent.characterization_revision();

  // Rejoining an already-active provider is a no-op: no revision bump, so
  // no cache invalidation rides a redundant membership event.
  agent.Rejoin();
  EXPECT_TRUE(agent.active());
  EXPECT_EQ(agent.load_revision(), load0);
  EXPECT_EQ(agent.characterization_revision(), char0);

  // First Depart flips the flag and bumps both revisions exactly once...
  agent.Depart();
  EXPECT_FALSE(agent.active());
  const std::uint64_t load1 = agent.load_revision();
  const std::uint64_t char1 = agent.characterization_revision();
  EXPECT_EQ(load1, load0 + 1);
  EXPECT_EQ(char1, char0 + 1);

  // ...and a second Depart changes nothing.
  agent.Depart();
  EXPECT_FALSE(agent.active());
  EXPECT_EQ(agent.load_revision(), load1);
  EXPECT_EQ(agent.characterization_revision(), char1);

  // Same unit pin for Rejoin: once to rejoin, idempotent after.
  agent.Rejoin();
  EXPECT_TRUE(agent.active());
  const std::uint64_t load2 = agent.load_revision();
  EXPECT_EQ(load2, load1 + 1);
  agent.Rejoin();
  EXPECT_TRUE(agent.active());
  EXPECT_EQ(agent.load_revision(), load2);
}

TEST(ProviderAgentTest, CompletionReportsPerformerId) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(7), SmallConfig());
  ProviderId seen;
  agent.Enqueue(sim, MakeQuery(1, 100.0),
                [&seen](const Query&, ProviderId p, SimTime) { seen = p; });
  sim.RunAll();
  EXPECT_EQ(seen, ProviderId(7));
}

TEST(ProviderAgentDeathTest, RejectsZeroCostQueries) {
  des::Simulator sim;
  ProviderAgent agent(HighCapacityProfile(), SmallConfig());
  EXPECT_DEATH(agent.Enqueue(sim, MakeQuery(1, 0.0), nullptr), "positive");
}

}  // namespace
}  // namespace sqlb::runtime
