#include "runtime/departures.h"

#include <gtest/gtest.h>

namespace sqlb::runtime {
namespace {

TEST(DepartureReasonTest, Names) {
  EXPECT_STREQ(DepartureReasonName(DepartureReason::kDissatisfaction),
               "dissatisfaction");
  EXPECT_STREQ(DepartureReasonName(DepartureReason::kStarvation),
               "starvation");
  EXPECT_STREQ(DepartureReasonName(DepartureReason::kOverutilization),
               "overutilization");
}

TEST(DepartureConfigTest, DefaultIsCaptive) {
  DepartureConfig config;
  EXPECT_FALSE(config.consumers_may_leave);
  EXPECT_FALSE(config.provider_dissatisfaction);
  EXPECT_FALSE(config.provider_starvation);
  EXPECT_FALSE(config.provider_overutilization);
}

TEST(DepartureConfigTest, AllEnabledTurnsEverythingOn) {
  const DepartureConfig config = DepartureConfig::AllEnabled();
  EXPECT_TRUE(config.consumers_may_leave);
  EXPECT_TRUE(config.provider_dissatisfaction);
  EXPECT_TRUE(config.provider_starvation);
  EXPECT_TRUE(config.provider_overutilization);
}

TEST(DepartureConfigTest, Figure5aRegime) {
  const DepartureConfig config =
      DepartureConfig::DissatisfactionAndStarvation();
  EXPECT_TRUE(config.provider_dissatisfaction);
  EXPECT_TRUE(config.provider_starvation);
  EXPECT_FALSE(config.provider_overutilization);
}

TEST(DepartureConfigTest, PaperThresholds) {
  DepartureConfig config;
  EXPECT_DOUBLE_EQ(config.provider_dissat_margin, 0.15);
  EXPECT_DOUBLE_EQ(config.starvation_fraction, 0.2);
  EXPECT_DOUBLE_EQ(config.overutilization_fraction, 2.2);
}

DepartureEvent ProviderEvent(DepartureReason reason, Level interest,
                             Level adaptation, Level capacity) {
  DepartureEvent event;
  event.is_provider = true;
  event.reason = reason;
  event.interest_class = interest;
  event.adaptation_class = adaptation;
  event.capacity_class = capacity;
  return event;
}

TEST(DepartureTallyTest, CountsByReasonAndDimension) {
  DepartureTally tally;
  tally.Add(ProviderEvent(DepartureReason::kDissatisfaction, Level::kHigh,
                          Level::kMedium, Level::kLow));
  tally.Add(ProviderEvent(DepartureReason::kDissatisfaction, Level::kHigh,
                          Level::kHigh, Level::kLow));
  tally.Add(ProviderEvent(DepartureReason::kOverutilization, Level::kLow,
                          Level::kMedium, Level::kHigh));

  EXPECT_EQ(tally.providers_total(), 3u);
  EXPECT_EQ(tally.ByReason(DepartureReason::kDissatisfaction), 2u);
  EXPECT_EQ(tally.ByReason(DepartureReason::kStarvation), 0u);
  EXPECT_EQ(tally.ByReason(DepartureReason::kOverutilization), 1u);

  EXPECT_EQ(tally.ByReasonInterest(DepartureReason::kDissatisfaction,
                                   Level::kHigh),
            2u);
  EXPECT_EQ(tally.ByReasonAdaptation(DepartureReason::kDissatisfaction,
                                     Level::kMedium),
            1u);
  EXPECT_EQ(tally.ByReasonCapacity(DepartureReason::kDissatisfaction,
                                   Level::kLow),
            2u);
  EXPECT_EQ(tally.ByReasonCapacity(DepartureReason::kOverutilization,
                                   Level::kHigh),
            1u);
}

TEST(DepartureTallyTest, ConsumersCountedSeparately) {
  DepartureTally tally;
  DepartureEvent consumer;
  consumer.is_provider = false;
  tally.Add(consumer);
  tally.Add(consumer);
  EXPECT_EQ(tally.consumers_total(), 2u);
  EXPECT_EQ(tally.providers_total(), 0u);
  EXPECT_EQ(tally.ByReason(DepartureReason::kDissatisfaction), 0u);
}

TEST(DepartureTallyTest, DimensionMarginalsAgree) {
  DepartureTally tally;
  for (int i = 0; i < 10; ++i) {
    tally.Add(ProviderEvent(DepartureReason::kStarvation,
                            static_cast<Level>(i % 3),
                            static_cast<Level>((i + 1) % 3),
                            static_cast<Level>((i + 2) % 3)));
  }
  // Every dimension's per-level counts sum to the same per-reason total.
  for (auto reason : {DepartureReason::kStarvation}) {
    std::uint64_t interest = 0, adaptation = 0, capacity = 0;
    for (int l = 0; l < 3; ++l) {
      interest += tally.ByReasonInterest(reason, static_cast<Level>(l));
      adaptation += tally.ByReasonAdaptation(reason, static_cast<Level>(l));
      capacity += tally.ByReasonCapacity(reason, static_cast<Level>(l));
    }
    EXPECT_EQ(interest, tally.ByReason(reason));
    EXPECT_EQ(adaptation, tally.ByReason(reason));
    EXPECT_EQ(capacity, tally.ByReason(reason));
  }
}

}  // namespace
}  // namespace sqlb::runtime
