#include <gtest/gtest.h>

#include "runtime/consumer_agent.h"
#include "runtime/reputation.h"

namespace sqlb::runtime {
namespace {

TEST(ConsumerAgentTest, PreferenceOnlyIntention) {
  ConsumerAgentConfig config;  // paper default: preference-only
  ConsumerAgent agent(ConsumerId(1), config);
  EXPECT_DOUBLE_EQ(agent.ComputeIntention(0.34, -1.0), 0.34);
  EXPECT_DOUBLE_EQ(agent.ComputeIntention(-0.54, 1.0), -0.54);
}

TEST(ConsumerAgentTest, FormulaModeUsesReputation) {
  ConsumerAgentConfig config;
  config.intention.mode = ConsumerIntentionMode::kFormula;
  config.intention.upsilon = 0.5;
  ConsumerAgent agent(ConsumerId(1), config);
  const double good_rep = agent.ComputeIntention(0.5, 0.9);
  const double bad_rep = agent.ComputeIntention(0.5, 0.1);
  EXPECT_GT(good_rep, bad_rep);
}

TEST(ConsumerAgentTest, WindowAccumulates) {
  ConsumerAgentConfig config;
  config.window.capacity = 4;
  ConsumerAgent agent(ConsumerId(1), config);
  EXPECT_DOUBLE_EQ(agent.Satisfaction(), 0.5);
  for (int i = 0; i < 4; ++i) agent.OnAllocated(0.6, 0.9);
  EXPECT_DOUBLE_EQ(agent.Satisfaction(), 0.9);
  EXPECT_DOUBLE_EQ(agent.Adequation(), 0.6);
  EXPECT_NEAR(agent.AllocationSatisfactionValue(), 1.5, 1e-12);
  EXPECT_EQ(agent.issued(), 4u);
}

TEST(ConsumerAgentTest, ResponseTimesTracked) {
  ConsumerAgent agent(ConsumerId(1), ConsumerAgentConfig{});
  agent.OnResult(1.5);
  agent.OnResult(2.5);
  EXPECT_EQ(agent.response_times().count(), 2u);
  EXPECT_DOUBLE_EQ(agent.response_times().mean(), 2.0);
}

TEST(ConsumerAgentTest, DepartFlag) {
  ConsumerAgent agent(ConsumerId(1), ConsumerAgentConfig{});
  EXPECT_TRUE(agent.active());
  agent.Depart();
  EXPECT_FALSE(agent.active());
}

TEST(ReputationRegistryTest, InitialValueEverywhere) {
  ReputationRegistry registry(4, 0.2);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(registry.Get(ProviderId(p)), 0.2);
  }
  EXPECT_EQ(registry.size(), 4u);
}

TEST(ReputationRegistryTest, FeedbackMovesEwma) {
  ReputationRegistry registry(2, 0.0, /*smoothing=*/0.5);
  registry.AddFeedback(ProviderId(0), 1.0);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(0)), 0.5);
  registry.AddFeedback(ProviderId(0), 1.0);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(0)), 0.75);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(1)), 0.0);  // untouched
}

TEST(ReputationRegistryTest, FeedbackIsClamped) {
  ReputationRegistry registry(1, 0.0, 1.0);
  registry.AddFeedback(ProviderId(0), 42.0);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(0)), 1.0);
  registry.AddFeedback(ProviderId(0), -42.0);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(0)), -1.0);
}

TEST(ReputationRegistryTest, SetOverrides) {
  ReputationRegistry registry(1);
  registry.Set(ProviderId(0), 0.7);
  EXPECT_DOUBLE_EQ(registry.Get(ProviderId(0)), 0.7);
}

TEST(ReputationRegistryDeathTest, UnknownProviderAborts) {
  ReputationRegistry registry(1);
  EXPECT_DEATH(registry.Get(ProviderId(5)), "unknown");
}

}  // namespace
}  // namespace sqlb::runtime
