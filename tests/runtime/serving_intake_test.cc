#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sqlb_method.h"
#include "obs/metrics.h"
#include "runtime/serving_mediator.h"
#include "sqlb/service.h"

/// \file
/// Intake edges of the serving tier (runtime/serving_mediator.h): the
/// max_queued_per_shard bound enforced exactly at the boundary, shed
/// accounting staying conserved under concurrent producers, Stop() racing
/// in-flight Submit/SubmitMany (the TSan target of this suite), and the
/// adaptive idle-parking ladder surfacing its counters.

namespace sqlb::runtime {
namespace {

SystemConfig SmallScenario() {
  SystemConfig config;
  config.population.num_consumers = 12;
  config.population.num_providers = 24;
  config.seed = 7;
  config.record_series = false;
  return config;
}

ServingMediator::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

TEST(ServingIntakeTest, QueueBoundIsExactAtTheBoundary) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 1;
  serving.max_queued_per_shard = 16;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  ServingProducer* producer = mediator.RegisterProducer();
  // Before Start nothing drains: the first max_queued_per_shard submissions
  // are accepted, the very next one sheds — no chunk-granularity slack.
  for (std::size_t i = 0; i < serving.max_queued_per_shard; ++i) {
    EXPECT_TRUE(mediator.Submit(producer, 0, 0)) << "submission " << i;
  }
  EXPECT_FALSE(mediator.Submit(producer, 0, 0));
  EXPECT_EQ(producer->submitted(), serving.max_queued_per_shard);
  EXPECT_EQ(producer->shed(), 1u);

  mediator.Start();
  mediator.Drain();
  const ServingReport report = mediator.Stop();
  EXPECT_EQ(report.served, serving.max_queued_per_shard);
}

TEST(ServingIntakeTest, SubmitManyAcceptsExactlyThePrefixThatFits) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 1;
  serving.max_queued_per_shard = 20;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  ServingProducer* producer = mediator.RegisterProducer();
  std::vector<ServingRequest> requests(64);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].consumer = static_cast<std::uint32_t>(i % 12);
    requests[i].class_index = 0;
  }
  // Single shard: every request routes to shard 0, so exactly the first 20
  // fit and the remaining 44 are shed as one suffix.
  const std::size_t accepted =
      mediator.SubmitMany(producer, requests.data(), requests.size());
  EXPECT_EQ(accepted, serving.max_queued_per_shard);
  EXPECT_EQ(producer->submitted(), serving.max_queued_per_shard);
  EXPECT_EQ(producer->shed(), requests.size() - accepted);

  mediator.Start();
  mediator.Drain();
  const ServingReport report = mediator.Stop();
  EXPECT_EQ(report.served, accepted);
  EXPECT_EQ(report.submitted + report.shed, requests.size());
}

TEST(ServingIntakeTest, ShedAccountingConservesUnderConcurrentProducers) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 1;
  serving.max_queued_per_shard = 128;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kAttempts = 2000;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  std::vector<ServingProducer*> handles;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    handles.push_back(mediator.RegisterProducer());
  }
  // Concurrent flood before Start: the reservation counter is the only
  // admission, so exactly max_queued_per_shard submissions win globally and
  // every producer's tally stays conserved.
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        mediator.Submit(handles[p], static_cast<std::uint32_t>(i % 12),
                        static_cast<std::uint32_t>(i % 2));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::uint64_t submitted = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(handles[p]->submitted() + handles[p]->shed(), kAttempts);
    submitted += handles[p]->submitted();
  }
  EXPECT_EQ(submitted, serving.max_queued_per_shard);

  mediator.Start();
  mediator.Drain();
  const ServingReport report = mediator.Stop();
  EXPECT_EQ(report.submitted, submitted);
  EXPECT_EQ(report.served, submitted);
  EXPECT_EQ(report.submitted + report.shed, kProducers * kAttempts);
}

TEST(ServingIntakeTest, StopRacesInFlightSubmissionsSafely) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 4;
  serving.mediator_threads = 2;
  serving.time_scale = 200.0;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kAttempts = 20000;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  std::vector<ServingProducer*> handles;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    handles.push_back(mediator.RegisterProducer());
  }
  mediator.Start();
  // Producers keep submitting straight through Stop(): everything accepted
  // before the intake closed is served, everything after sheds — nothing
  // blocks, crashes, or leaks a query. Half the producers use the batched
  // path so SubmitMany races the close too.
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      if (p % 2 == 0) {
        for (std::uint64_t i = 0; i < kAttempts; ++i) {
          mediator.Submit(handles[p], static_cast<std::uint32_t>(i % 12),
                          static_cast<std::uint32_t>(i % 2));
        }
      } else {
        ServingRequest chunk[32];
        for (std::uint64_t i = 0; i < kAttempts; i += 32) {
          for (std::uint64_t j = 0; j < 32; ++j) {
            chunk[j].consumer = static_cast<std::uint32_t>((i + j) % 12);
            chunk[j].class_index = static_cast<std::uint32_t>((i + j) % 2);
          }
          mediator.SubmitMany(handles[p], chunk, 32);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const ServingReport report = mediator.Stop();
  for (std::thread& t : threads) t.join();

  // The report folded the producer counters after the intake closed and
  // every in-flight call drained, so its submitted tally is final — and
  // Stop's end-drain serves all of it.
  EXPECT_EQ(report.served, report.submitted);
  EXPECT_EQ(report.run.queries_completed + report.run.queries_infeasible,
            report.run.queries_issued);
  EXPECT_EQ(report.run.queries_issued, report.served);
  // Post-join, every presented request was counted exactly once.
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(handles[p]->submitted() + handles[p]->shed(), kAttempts);
  }
}

TEST(ServingIntakeTest, IdleGroupsParkAndSurfaceTheCounters) {
  const SystemConfig scenario = SmallScenario();
  ServingConfig serving;
  serving.shards = 2;
  serving.housekeeping_interval = 0.005;

  ServingMediator mediator(scenario, serving, SqlbFactory());
  mediator.RegisterProducer();
  mediator.Start();
  // No traffic at all: the group burns through the spin and yield passes
  // and parks until the housekeeping deadline, repeatedly.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const ServingReport report = mediator.Stop();

  EXPECT_GE(report.idle_parks, 1u);
  EXPECT_EQ(report.run.metrics.CounterValue(obs::kMetricServingIdleParks),
            report.idle_parks);
  EXPECT_EQ(
      report.run.metrics.CounterValue(obs::kMetricServingSpuriousWakes),
      report.spurious_wakes);
  EXPECT_EQ(report.served, 0u);
}

TEST(ServingIntakeTest, ValidateRejectsNonDividingMediatorThreads) {
  sqlb::Config config;
  config.mode = sqlb::Mode::kServing;
  config.scenario() = SmallScenario();
  config.serving.shards = 4;
  config.serving.mediator_threads = 3;
  const Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mediator_threads"), std::string::npos)
      << status.message();

  config.serving.mediator_threads = 0;
  EXPECT_FALSE(config.Validate().ok());

  config.serving.mediator_threads = 4;
  EXPECT_TRUE(config.Validate().ok()) << config.Validate().message();
}

}  // namespace
}  // namespace sqlb::runtime
