#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// \file
/// Pins the algebra the flight recorder's merge relies on: histogram Merge
/// must be associative and commutative on the full integer + min/max state
/// (that is what makes the folded run-level snapshot independent of how
/// work was split across lanes), quantiles must land within the documented
/// bucket resolution, and MergeFrom must combine registries the way the
/// per-lane fold assumes (counters add, gauges fill-if-unset).

namespace sqlb::obs {
namespace {

/// Bit-level equality of everything a Quantile readout consumes: the
/// integer state (bucket counts, value count) plus exact min/max. The
/// float `sum` is checked to double precision separately where it matters —
/// FP addition is commutative but not bit-associative, and the merge
/// contract's exactness claim is scoped to the integer state.
void ExpectHistogramsIdentical(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.buckets()[i], b.buckets()[i]) << "bucket " << i;
  }
}

Histogram FromSamples(const std::vector<double>& samples) {
  Histogram h;
  for (double s : samples) h.Record(s);
  return h;
}

TEST(HistogramTest, MergeIsAssociative) {
  const Histogram a = FromSamples({0.001, 0.5, 3.0, 120.0});
  const Histogram b = FromSamples({0.02, 0.02, 7.5});
  const Histogram c = FromSamples({1e-9, 5e5, 0.25});  // clamped extremes too

  // (a + b) + c
  Histogram left = a;
  left.Merge(b);
  left.Merge(c);
  // a + (b + c)
  Histogram right_tail = b;
  right_tail.Merge(c);
  Histogram right = a;
  right.Merge(right_tail);

  ExpectHistogramsIdentical(left, right);
}

TEST(HistogramTest, MergeIsCommutative) {
  const Histogram a = FromSamples({0.004, 0.004, 18.0, 2500.0});
  const Histogram b = FromSamples({0.9, 0.9, 0.9, 1e-7});

  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);

  ExpectHistogramsIdentical(ab, ba);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  const Histogram a = FromSamples({0.1, 1.0, 10.0});
  const Histogram empty;

  Histogram merged = a;
  merged.Merge(empty);
  ExpectHistogramsIdentical(merged, a);

  Histogram other = empty;
  other.Merge(a);
  ExpectHistogramsIdentical(other, a);
}

TEST(HistogramTest, MergeCombinesCountSumMinMaxExactly) {
  const Histogram a = FromSamples({0.5, 2.0});
  const Histogram b = FromSamples({0.125, 64.0});
  Histogram merged = a;
  merged.Merge(b);

  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.sum(), 0.5 + 2.0 + 0.125 + 64.0);
  EXPECT_EQ(merged.min(), 0.125);
  EXPECT_EQ(merged.max(), 64.0);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  // 1000 uniform samples in [1, 2]: every quantile estimate must land
  // within one bucket's relative resolution of the exact order statistic.
  Histogram h;
  std::vector<double> sorted;
  for (int i = 0; i < 1000; ++i) {
    const double v = 1.0 + static_cast<double>(i) / 999.0;
    h.Record(v);
    sorted.push_back(v);
  }
  const double resolution =
      std::pow(Histogram::kMaxValue / Histogram::kMinValue,
               1.0 / static_cast<double>(Histogram::kBuckets)) -
      1.0;
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    const double est = h.Quantile(q);
    EXPECT_NEAR(est, exact, 2.0 * resolution * exact) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileClampedToObservedRange) {
  const Histogram h = FromSamples({3.0, 3.5, 4.0});
  EXPECT_GE(h.Quantile(0.0), 3.0);
  EXPECT_LE(h.Quantile(1.0), 4.0);
  EXPECT_GE(h.Quantile(0.999), 3.0);
  EXPECT_LE(h.Quantile(0.999), 4.0);
}

TEST(HistogramTest, EmptyHistogramReadsAsZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesCollapseToIt) {
  const Histogram h = FromSamples({0.042});
  EXPECT_EQ(h.Quantile(0.0), 0.042);
  EXPECT_EQ(h.Quantile(0.5), 0.042);
  EXPECT_EQ(h.Quantile(1.0), 0.042);
}

TEST(HistogramTest, BucketBoundsBracketTheirValues) {
  for (double v : {1e-6, 0.003, 1.0, 999.0, 9.9e5}) {
    const std::size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(Histogram::BucketLowerBound(i), v) << v;
    EXPECT_GT(Histogram::BucketUpperBound(i), v) << v;
  }
  // Out-of-range values clamp to the edge buckets.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kBuckets - 1);
}

TEST(MetricsRegistryTest, MergeFromAddsCountersAndMergesHistograms) {
  MetricsRegistry a;
  a.GetCounter("c").Inc(3);
  a.GetHistogram("h").Record(1.0);

  MetricsRegistry b;
  b.GetCounter("c").Inc(4);
  b.GetCounter("only_b").Inc(7);
  b.GetHistogram("h").Record(2.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("c"), 7u);
  EXPECT_EQ(a.CounterValue("only_b"), 7u);
  ASSERT_NE(a.FindHistogram("h"), nullptr);
  EXPECT_EQ(a.FindHistogram("h")->count(), 2u);
  EXPECT_EQ(a.FindHistogram("h")->sum(), 3.0);
}

TEST(MetricsRegistryTest, MergeFromFillsUnsetGaugesOnly) {
  MetricsRegistry a;
  a.GetGauge("set_in_both").Set(1.0);

  MetricsRegistry b;
  b.GetGauge("set_in_both").Set(2.0);
  b.GetGauge("set_in_b").Set(3.0);

  a.MergeFrom(b);
  // The fold never overwrites a live value.
  EXPECT_EQ(a.GaugeValue("set_in_both"), 1.0);
  EXPECT_EQ(a.GaugeValue("set_in_b"), 3.0);
}

TEST(MetricsRegistryTest, LaneFoldOrderDoesNotChangeTheSnapshot) {
  // Three "lanes" folded in two different orders must agree exactly —
  // the registry-level statement of associativity + commutativity.
  auto make_lane = [](std::uint64_t n, double v) {
    MetricsRegistry r;
    r.GetCounter(kMetricBatchFlushes).Inc(n);
    r.GetHistogram(kMetricResponseTime).Record(v);
    r.GetHistogram(kMetricResponseTime).Record(v * 2.0);
    return r;
  };
  // Dyadic sample values: every partial sum is exactly representable, so
  // even the float `sum` (and hence the JSON byte stream) is order-free.
  const MetricsRegistry l0 = make_lane(1, 0.5);
  const MetricsRegistry l1 = make_lane(10, 8.0);
  const MetricsRegistry l2 = make_lane(100, 0.25);

  MetricsRegistry forward;
  forward.MergeFrom(l0);
  forward.MergeFrom(l1);
  forward.MergeFrom(l2);

  MetricsRegistry backward;
  backward.MergeFrom(l2);
  backward.MergeFrom(l1);
  backward.MergeFrom(l0);

  EXPECT_EQ(forward.ToJson(), backward.ToJson());
  ExpectHistogramsIdentical(*forward.FindHistogram(kMetricResponseTime),
                            *backward.FindHistogram(kMetricResponseTime));
}

TEST(MetricsRegistryTest, ReadOnlyLookupsDoNotCreateMetrics) {
  const MetricsRegistry r;
  EXPECT_EQ(r.CounterValue("absent"), 0u);
  EXPECT_EQ(r.GaugeValue("absent"), 0.0);
  EXPECT_EQ(r.FindHistogram("absent"), nullptr);
  EXPECT_EQ(r.HistogramQuantile("absent", 0.99), 0.0);
  EXPECT_TRUE(r.empty());
}

TEST(MetricsRegistryTest, ToJsonCarriesAllSectionsAndQuantiles) {
  MetricsRegistry r;
  r.GetCounter(kMetricReroutes).Inc(5);
  r.GetGauge("batch.window.0").Set(0.25);
  for (int i = 1; i <= 100; ++i) {
    r.GetHistogram(kMetricResponseTime).Record(0.01 * i);
  }

  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"route.reroutes\""), std::string::npos);
  EXPECT_NE(json.find("\"batch.window.0\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.response_seconds\""), std::string::npos);
  for (const char* key : {"\"count\"", "\"p50\"", "\"p90\"", "\"p99\"",
                          "\"p999\"", "\"buckets\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace sqlb::obs
