#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/sqlb_method.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/mediation_system.h"
#include "shard/shard_router.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The flight-recorder determinism contract, end to end:
///
///  - under strict parity the full span stream (sorted by start/lane/seq)
///    is bit-identical between the serial run and every parallel run of the
///    same config, across shard counts M in {1, 4, 8} and worker threads in
///    {1, 2, hardware_concurrency} — with sampling at 1 (every query) and
///    zero ring overflow;
///  - the merged metrics snapshot is bit-identical too (same fold, same
///    JSON byte stream);
///  - observability is pure observation: turning tracing and histograms on
///    or off never changes what the simulation itself computes.

namespace sqlb::shard {
namespace {

using runtime::RunResult;
using runtime::SystemConfig;

SystemConfig SmallConfig(double workload, std::uint64_t seed = 42) {
  SystemConfig config;
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.consumer.window.capacity = 50;
  config.provider.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(workload);
  config.duration = 300.0;
  config.sample_interval = 25.0;
  config.stats_warmup = 50.0;
  config.seed = seed;
  return config;
}

/// Strict-parity parallel config with full-rate tracing: consumer-affine
/// routing, no rerouting, every query sampled.
ShardedSystemConfig TracedConfig(const SystemConfig& base,
                                 std::size_t shards) {
  ShardedSystemConfig config;
  config.base = base;
  config.base.observability.trace = true;
  config.base.observability.trace_sample_every = 1;
  config.router.num_shards = shards;
  config.router.policy = RoutingPolicy::kLocality;
  config.rerouting_enabled = false;
  return config;
}

ShardedMediationSystem::MethodFactory SqlbFactory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

void ExpectIdenticalSpanStreams(const std::vector<obs::TraceSpan>& a,
                                const std::vector<obs::TraceSpan>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].end, b[i].end) << i;
    EXPECT_EQ(a[i].ref, b[i].ref) << i;
    EXPECT_EQ(a[i].detail, b[i].detail) << i;
    EXPECT_EQ(a[i].lane, b[i].lane) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind)) << i;
    // One index is enough to localize a mismatch.
    if (::testing::Test::HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Strict parity: the traced parallel run reproduces the traced serial run's
// span stream and metrics snapshot bit for bit.
// ---------------------------------------------------------------------------

class TraceParityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TraceParityTest, SpanStreamAndMetricsAreBitIdenticalToSerial) {
  const std::size_t shards = std::get<0>(GetParam());
  const std::size_t threads = std::get<1>(GetParam());

  ShardedSystemConfig serial = TracedConfig(SmallConfig(0.8), shards);
  const ShardedRunResult serial_result =
      RunShardedScenario(serial, SqlbFactory());

  ShardedSystemConfig parallel = serial;
  parallel.worker_threads = threads;
  const ShardedRunResult parallel_result =
      RunShardedScenario(parallel, SqlbFactory());

  // The contract only promises bit-identity when nothing overflowed; with
  // barrier drains and the default ring this must be zero, not merely equal.
  EXPECT_EQ(serial_result.run.trace_spans_dropped, 0u);
  EXPECT_EQ(parallel_result.run.trace_spans_dropped, 0u);
  // Sampling at 1 with a served workload must actually produce spans.
  ASSERT_GT(serial_result.run.trace_spans.size(), 0u);

  ExpectIdenticalSpanStreams(serial_result.run.trace_spans,
                             parallel_result.run.trace_spans);
  EXPECT_EQ(serial_result.run.metrics.ToJson(),
            parallel_result.run.metrics.ToJson());
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndThreads, TraceParityTest,
    ::testing::Values(
        std::make_tuple(std::size_t{1}, std::size_t{1}),
        std::make_tuple(std::size_t{1}, std::size_t{2}),
        std::make_tuple(std::size_t{1},
                        std::size_t{std::max(2u,
                                             std::thread::hardware_concurrency())}),
        std::make_tuple(std::size_t{4}, std::size_t{1}),
        std::make_tuple(std::size_t{4}, std::size_t{2}),
        std::make_tuple(std::size_t{4},
                        std::size_t{std::max(2u,
                                             std::thread::hardware_concurrency())}),
        std::make_tuple(std::size_t{8}, std::size_t{1}),
        std::make_tuple(std::size_t{8}, std::size_t{2}),
        std::make_tuple(std::size_t{8},
                        std::size_t{std::max(2u,
                                             std::thread::hardware_concurrency())})));

TEST(TraceDeterminismTest, RepeatedTracedRunsProduceTheSameStream) {
  ShardedSystemConfig config = TracedConfig(SmallConfig(0.9, 5), 4);
  config.worker_threads = std::max(2u, std::thread::hardware_concurrency());
  const ShardedRunResult first = RunShardedScenario(config, SqlbFactory());
  const ShardedRunResult second = RunShardedScenario(config, SqlbFactory());
  ASSERT_GT(first.run.trace_spans.size(), 0u);
  ExpectIdenticalSpanStreams(first.run.trace_spans, second.run.trace_spans);
  EXPECT_EQ(first.run.metrics.ToJson(), second.run.metrics.ToJson());
}

TEST(TraceDeterminismTest, SortedStreamIsATotalOrder) {
  const ShardedRunResult result =
      RunShardedScenario(TracedConfig(SmallConfig(0.8), 4), SqlbFactory());
  const auto& spans = result.run.trace_spans;
  ASSERT_GT(spans.size(), 1u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    const auto key = [](const obs::TraceSpan& s) {
      return std::make_tuple(s.start, s.lane, s.seq);
    };
    EXPECT_LT(key(spans[i - 1]), key(spans[i])) << i;
    if (HasFailure()) break;
  }
}

TEST(TraceDeterminismTest, SamplingThinsTheStreamDeterministically) {
  // sample_every=16 must keep exactly the spans whose query id is a
  // multiple of 16 — a strict subset of the full-rate run's query spans —
  // while non-query spans (gossip, handoff) are unaffected by sampling.
  ShardedSystemConfig full = TracedConfig(SmallConfig(0.8), 4);
  const ShardedRunResult full_result =
      RunShardedScenario(full, SqlbFactory());

  ShardedSystemConfig sampled = full;
  sampled.base.observability.trace_sample_every = 16;
  const ShardedRunResult sampled_result =
      RunShardedScenario(sampled, SqlbFactory());

  ASSERT_GT(sampled_result.run.trace_spans.size(), 0u);
  EXPECT_LT(sampled_result.run.trace_spans.size(),
            full_result.run.trace_spans.size());
  for (const obs::TraceSpan& span : sampled_result.run.trace_spans) {
    if (span.kind == obs::SpanKind::kGossip ||
        span.kind == obs::SpanKind::kHandoff) {
      continue;
    }
    EXPECT_EQ(span.ref % 16, 0u) << obs::SpanKindName(span.kind);
    if (HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Pure observation: toggling observability never changes the simulation.
// ---------------------------------------------------------------------------

void ExpectSameSimulation(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(a.queries_infeasible, b.queries_infeasible);
  EXPECT_EQ(a.response_time.count(), b.response_time.count());
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.variance(), b.response_time.variance());
  EXPECT_EQ(a.response_time_all.sum(), b.response_time_all.sum());
  EXPECT_EQ(a.remaining_providers, b.remaining_providers);
  EXPECT_EQ(a.remaining_consumers, b.remaining_consumers);
}

TEST(ObservabilityTransparencyTest, TracingNeverPerturbsTheShardedRun) {
  ShardedSystemConfig off = TracedConfig(SmallConfig(0.8), 4);
  off.base.observability.trace = false;
  off.base.observability.metrics = false;
  const ShardedRunResult off_result = RunShardedScenario(off, SqlbFactory());

  ShardedSystemConfig on = TracedConfig(SmallConfig(0.8), 4);
  const ShardedRunResult on_result = RunShardedScenario(on, SqlbFactory());

  ExpectSameSimulation(off_result.run, on_result.run);
  EXPECT_EQ(off_result.reroutes, on_result.reroutes);
  EXPECT_EQ(off_result.gossip_sent, on_result.gossip_sent);
  // And the gating actually gates: no spans, no hot histograms when off.
  EXPECT_TRUE(off_result.run.trace_spans.empty());
  EXPECT_EQ(off_result.run.ResponseTimeQuantile(0.5), 0.0);
  EXPECT_GT(on_result.run.ResponseTimeQuantile(0.5), 0.0);
}

TEST(ObservabilityTransparencyTest, TracingNeverPerturbsTheMonoMediator) {
  SystemConfig base = SmallConfig(0.7);

  SqlbMethod off_method;
  runtime::MediationSystem off_system(base, &off_method);
  const RunResult off_result = off_system.Run();

  SystemConfig traced = base;
  traced.observability.trace = true;
  traced.observability.trace_sample_every = 1;
  SqlbMethod on_method;
  runtime::MediationSystem on_system(traced, &on_method);
  const RunResult on_result = on_system.Run();

  ExpectSameSimulation(off_result, on_result);
  ASSERT_GT(on_result.trace_spans.size(), 0u);
  EXPECT_EQ(on_result.trace_spans_dropped, 0u);
}

TEST(ObservabilityTransparencyTest,
     MonoAndM1ShardedTracedRunsAgreeOnQuerySpans) {
  // The M=1 sharded tier must tell the same per-query story the
  // mono-mediator tells: same span multiset for the mediation-core kinds
  // (the sharded tier adds its own batch/route/gossip spans on top).
  SystemConfig base = SmallConfig(0.7);
  base.observability.trace = true;
  base.observability.trace_sample_every = 1;

  SqlbMethod mono_method;
  runtime::MediationSystem mono(base, &mono_method);
  const RunResult mono_result = mono.Run();

  ShardedSystemConfig sharded = TracedConfig(SmallConfig(0.7), 1);
  const ShardedRunResult sharded_result =
      RunShardedScenario(sharded, SqlbFactory());

  auto count_kind = [](const std::vector<obs::TraceSpan>& spans,
                       obs::SpanKind kind) {
    return std::count_if(spans.begin(), spans.end(),
                         [kind](const obs::TraceSpan& s) {
                           return s.kind == kind;
                         });
  };
  for (obs::SpanKind kind :
       {obs::SpanKind::kGather, obs::SpanKind::kScore,
        obs::SpanKind::kAllocate, obs::SpanKind::kExecute,
        obs::SpanKind::kComplete}) {
    EXPECT_EQ(count_kind(mono_result.trace_spans, kind),
              count_kind(sharded_result.run.trace_spans, kind))
        << obs::SpanKindName(kind);
  }
}

}  // namespace
}  // namespace sqlb::shard
