#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

/// \file
/// Pins the TraceLane flight-recorder semantics: bounded ring that keeps
/// the most recent spans and counts evictions, a per-lane monotone seq that
/// survives drains, deterministic id-based sampling, and the Chrome/Perfetto
/// JSON export shape.

namespace sqlb::obs {
namespace {

void RecordNth(TraceLane* lane, std::uint64_t i) {
  lane->Record(SpanKind::kExecute, static_cast<double>(i),
               static_cast<double>(i) + 0.5, /*ref=*/i, /*detail=*/0.0);
}

TEST(TraceLaneTest, OverflowKeepsTheMostRecentSpansAndCountsDrops) {
  TraceLane lane(/*lane=*/2, /*sample_every=*/1, /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) RecordNth(&lane, i);

  EXPECT_EQ(lane.dropped(), 6u);
  EXPECT_EQ(lane.pending(), 4u);
  EXPECT_EQ(lane.seq(), 10u);

  std::vector<TraceSpan> out;
  lane.Drain(&out);
  ASSERT_EQ(out.size(), 4u);
  // Flight-recorder semantics: the retained window is the LAST 4 records,
  // oldest-first.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ref, 6u + i) << i;
    EXPECT_EQ(out[i].seq, 6u + i) << i;
    EXPECT_EQ(out[i].lane, 2u) << i;
  }
}

TEST(TraceLaneTest, DrainAppendsOldestFirstAndClears) {
  TraceLane lane(0, 1, 16);
  for (std::uint64_t i = 0; i < 3; ++i) RecordNth(&lane, i);

  std::vector<TraceSpan> out;
  out.push_back(TraceSpan{});  // Drain must append, not overwrite
  lane.Drain(&out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].ref, 0u);
  EXPECT_EQ(out[2].ref, 1u);
  EXPECT_EQ(out[3].ref, 2u);
  EXPECT_EQ(lane.pending(), 0u);

  // seq and dropped persist across drains; the next record continues the
  // per-lane sequence.
  RecordNth(&lane, 99);
  std::vector<TraceSpan> next;
  lane.Drain(&next);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].seq, 3u);
  EXPECT_EQ(lane.dropped(), 0u);
}

TEST(TraceLaneTest, SamplingIsDeterministicInTheQueryId) {
  TraceLane lane(0, /*sample_every=*/16, 16);
  EXPECT_TRUE(lane.SamplesQuery(0));
  for (std::uint64_t id = 1; id < 16; ++id) {
    EXPECT_FALSE(lane.SamplesQuery(id)) << id;
  }
  EXPECT_TRUE(lane.SamplesQuery(16));
  EXPECT_TRUE(lane.SamplesQuery(32));
  EXPECT_FALSE(lane.SamplesQuery(33));
}

TEST(TraceLaneTest, SampleEveryZeroMeansEveryQuery) {
  TraceLane lane(0, /*sample_every=*/0, 16);
  for (std::uint64_t id = 0; id < 5; ++id) {
    EXPECT_TRUE(lane.SamplesQuery(id)) << id;
  }
}

TEST(TraceLaneTest, RecordInstantHasZeroDuration) {
  TraceLane lane(1, 1, 16);
  lane.RecordInstant(SpanKind::kGossip, 42.0, 7, 0.5);
  std::vector<TraceSpan> out;
  lane.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start, 42.0);
  EXPECT_EQ(out[0].end, 42.0);
  EXPECT_EQ(out[0].ref, 7u);
  EXPECT_EQ(out[0].detail, 0.5);
  EXPECT_EQ(out[0].kind, SpanKind::kGossip);
}

TEST(SpanKindTest, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(SpanKind::kGossip); ++k) {
    const char* name = SpanKindName(static_cast<SpanKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << k;
  }
}

TEST(ChromeTraceJsonTest, EmitsLaneMetadataAndSpanEvents) {
  TraceLane shard(0, 1, 16);
  shard.Record(SpanKind::kBatchWait, 1.0, 1.25, 17, 3.0);
  TraceLane coord(2, 1, 16);
  coord.RecordInstant(SpanKind::kGossip, 2.0, 1, 0.8);

  std::vector<TraceSpan> spans;
  shard.Drain(&spans);
  coord.Drain(&spans);

  const std::string json = ChromeTraceJson(spans, /*shard_lanes=*/2);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata row per lane, coordinator last.
  EXPECT_NE(json.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(json.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  // Span rows: kind names, complete-event phase, microsecond timestamps.
  EXPECT_NE(json.find("\"batch_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"gossip\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"ref\":17"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyStreamIsStillValidJson) {
  const std::string json = ChromeTraceJson({}, 1);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace sqlb::obs
