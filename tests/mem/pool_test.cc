#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "mem/agent_arena.h"
#include "mem/chunked_fifo.h"
#include "mem/page_pool.h"
#include "mem/paged_ring.h"

/// \file
/// The pooled agent-state substrate's contracts: page alignment and
/// zero-fill, freelist recycling (a churn/failover free wave feeds the next
/// admission, nothing returns to the OS), the byte budget surfacing as a
/// nullptr status instead of an abort, chunk ownership surviving cross-pool
/// frees, and PagedRing replicating RingBuffer's push/eviction arithmetic
/// exactly.

namespace sqlb::mem {
namespace {

TEST(PagePoolTest, PagesAreAlignedAndZeroFilled) {
  PagePool pool(PagePool::kDefaultPageBytes);
  void* page = pool.Allocate();
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(page) % PagePool::kPageAlignment,
            0u);
  const unsigned char* bytes = static_cast<const unsigned char*>(page);
  for (std::size_t i = 0; i < pool.page_bytes(); ++i) {
    ASSERT_EQ(bytes[i], 0u) << "byte " << i;
  }
  pool.Free(page);
}

TEST(PagePoolTest, FreedPagesAreRecycledNotReturned) {
  PagePool pool;
  std::vector<void*> wave;
  for (int i = 0; i < 8; ++i) wave.push_back(pool.Allocate());
  const std::size_t reserved = pool.pages_reserved();
  EXPECT_EQ(reserved, 8u);

  // A churn/failover-style free wave: everything back to the freelist.
  for (void* page : wave) pool.Free(page);
  EXPECT_EQ(pool.pages_reserved(), reserved);  // never returned to the OS
  EXPECT_EQ(pool.pages_free(), reserved);

  // The next admission wave reuses those exact pages.
  std::set<void*> recycled;
  for (int i = 0; i < 8; ++i) recycled.insert(pool.Allocate());
  EXPECT_EQ(pool.pages_reserved(), reserved);  // no new reservation
  for (void* page : wave) EXPECT_TRUE(recycled.count(page)) << page;
  for (void* page : recycled) pool.Free(page);
}

TEST(PagePoolTest, ByteBudgetExhaustionReturnsNull) {
  PagePool pool(PagePool::kDefaultPageBytes,
                /*max_bytes=*/2 * PagePool::kDefaultPageBytes);
  void* a = pool.Allocate();
  void* b = pool.Allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.Allocate(), nullptr);  // budget, not abort
  pool.Free(a);
  EXPECT_NE(pool.Allocate(), nullptr);  // freed budget is usable again
}

TEST(PagePoolTest, PeakBytesTracksHighWater) {
  PagePool pool;
  void* a = pool.Allocate();
  void* b = pool.Allocate();
  EXPECT_EQ(pool.peak_bytes(), 2 * pool.page_bytes());
  pool.Free(a);
  pool.Free(b);
  EXPECT_EQ(pool.peak_bytes(), 2 * pool.page_bytes());  // monotone
}

TEST(SlabPoolTest, BlocksAreMaxAlignedWithinPages) {
  PagePool pages;
  SlabPool slabs(&pages, kAgentChunkBytes);
  for (int i = 0; i < 200; ++i) {
    void* block = slabs.Allocate();
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) %
                  alignof(std::max_align_t),
              0u);
  }
  EXPECT_EQ(slabs.blocks_live(), 200u);
  EXPECT_GE(slabs.blocks_peak(), 200u);
}

TEST(SlabPoolTest, FreelistRecyclesAcrossChurnWaves) {
  PagePool pages;
  SlabPool slabs(&pages, kAgentChunkBytes);
  std::vector<void*> wave;
  for (int i = 0; i < 300; ++i) wave.push_back(slabs.Allocate());
  const std::size_t pages_after_wave = pages.pages_reserved();
  for (void* block : wave) slabs.Free(block);
  EXPECT_EQ(slabs.blocks_live(), 0u);
  // The re-admission wave draws entirely from recycled blocks.
  for (int i = 0; i < 300; ++i) ASSERT_NE(slabs.Allocate(), nullptr);
  EXPECT_EQ(pages.pages_reserved(), pages_after_wave);
}

TEST(SlabPoolTest, BudgetExhaustionSurfacesAsNull) {
  PagePool pages(PagePool::kDefaultPageBytes,
                 /*max_bytes=*/PagePool::kDefaultPageBytes);
  SlabPool slabs(&pages, kAgentChunkBytes);
  std::vector<void*> blocks;
  void* block;
  while ((block = slabs.Allocate()) != nullptr) blocks.push_back(block);
  EXPECT_EQ(blocks.size(), PagePool::kDefaultPageBytes / kAgentChunkBytes);
  slabs.Free(blocks.back());
  blocks.pop_back();
  EXPECT_NE(slabs.Allocate(), nullptr);
}

TEST(ChunkedFifoTest, FifoOrderAcrossChunkBoundaries) {
  ChunkedFifo<std::uint64_t> fifo;
  const std::size_t n = ChunkedFifo<std::uint64_t>::kChunkCapacity * 3 + 7;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(fifo.push_back(i, nullptr));
  }
  EXPECT_EQ(fifo.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(fifo.front(), i);
    fifo.pop_front();
  }
  EXPECT_TRUE(fifo.empty());
}

TEST(ChunkedFifoTest, SteadyStateRetainsOneChunk) {
  ChunkedFifo<int> fifo;
  ASSERT_TRUE(fifo.push_back(1, nullptr));
  const std::size_t one_chunk = fifo.resident_bytes();
  EXPECT_EQ(one_chunk, kAgentChunkBytes);
  for (int i = 0; i < 1000; ++i) {
    fifo.pop_front();
    ASSERT_TRUE(fifo.push_back(i, nullptr));
    ASSERT_EQ(fifo.resident_bytes(), one_chunk);  // allocator never touched
  }
}

TEST(ChunkedFifoTest, PooledChunksReturnToOwnerAfterCrossPoolMigration) {
  PagePool pages_a, pages_b;
  SlabPool slabs_a(&pages_a, kAgentChunkBytes);
  SlabPool slabs_b(&pages_b, kAgentChunkBytes);

  // Fill on arena A (the provider's original shard)...
  ChunkedFifo<std::uint64_t> fifo;
  const std::size_t n = ChunkedFifo<std::uint64_t>::kChunkCapacity * 4;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(fifo.push_back(i, &slabs_a));
  }
  const std::size_t live_a = slabs_a.blocks_live();
  ASSERT_GE(live_a, 4u);

  // ...migrate (move), then keep growing on arena B while draining: the
  // churn-handoff shape. A-chunks must drain back to pool A, B-chunks to B.
  ChunkedFifo<std::uint64_t> migrated(std::move(fifo));
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(migrated.push_back(n + i, &slabs_b));
  }
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    ASSERT_EQ(migrated.front(), i);
    migrated.pop_front();
  }
  migrated.Clear();
  EXPECT_EQ(slabs_a.blocks_live(), 0u);
  EXPECT_EQ(slabs_b.blocks_live(), 0u);
}

TEST(ChunkedFifoTest, PoolExhaustionLeavesQueueUnchanged) {
  PagePool pages(/*page_bytes=*/4096, /*max_bytes=*/4096);
  SlabPool slabs(&pages, kAgentChunkBytes);
  ChunkedFifo<std::uint64_t> fifo;
  std::uint64_t pushed = 0;
  while (fifo.push_back(pushed, &slabs)) ++pushed;
  ASSERT_GT(pushed, 0u);
  const std::size_t size_at_oom = fifo.size();
  EXPECT_FALSE(fifo.push_back(999, &slabs));  // still out of budget
  EXPECT_EQ(fifo.size(), size_at_oom);
  for (std::uint64_t i = 0; i < size_at_oom; ++i) {
    ASSERT_EQ(fifo.front(), i);  // contents untouched by the failed pushes
    fifo.pop_front();
  }
}

TEST(PagedRingTest, MatchesRingBufferPushEvictionArithmetic) {
  // Reference semantics: size < capacity appends; at capacity the oldest is
  // evicted and returned. Mirror against a plain vector model.
  const std::size_t capacity = 37;
  PagedRing<double> ring(capacity, /*lazy=*/true);
  std::vector<double> model;
  std::size_t model_head = 0;
  for (int i = 0; i < 500; ++i) {
    const double value = 0.25 * i;
    double evicted = -1.0;
    const bool did_evict = ring.Push(value, &evicted);
    if (model.size() < capacity) {
      model.push_back(value);
      EXPECT_FALSE(did_evict);
    } else {
      EXPECT_TRUE(did_evict);
      EXPECT_EQ(evicted, model[model_head]);
      model[model_head] = value;
      model_head = (model_head + 1) % capacity;
    }
    ASSERT_EQ(ring.size(), model.size());
    for (std::size_t k = 0; k < ring.size(); ++k) {
      ASSERT_EQ(ring.at(k), model[(model_head + k) % capacity]) << k;
    }
  }
}

TEST(PagedRingTest, LazyModeMaterializesChunksOnDemand) {
  const std::size_t capacity = 1000;  // many chunks worth of doubles
  PagedRing<double> lazy(capacity, /*lazy=*/true);
  EXPECT_EQ(lazy.resident_bytes(), 0u);
  lazy.Push(1.0);
  EXPECT_EQ(lazy.resident_chunks(), 1u);  // one slot -> one chunk

  PagedRing<double> eager(capacity, /*lazy=*/false);
  const std::size_t full =
      (capacity + PagedRing<double>::kChunkCapacity - 1) /
      PagedRing<double>::kChunkCapacity;
  EXPECT_EQ(eager.resident_chunks(), full);
}

TEST(PagedRingTest, PooledChunksDrainToOriginArena) {
  AgentPoolConfig config;
  config.enabled = true;
  AgentArena arena(config);
  {
    PagedRing<double> ring(256, /*lazy=*/true);
    ring.set_pool(arena.slabs());
    for (int i = 0; i < 256; ++i) ring.Push(static_cast<double>(i));
    EXPECT_GT(arena.slabs()->blocks_live(), 0u);
    EXPECT_GT(arena.bytes_reserved(), 0u);
  }
  EXPECT_EQ(arena.slabs()->blocks_live(), 0u);  // destructor returned all
}

TEST(AgentArenaTest, DisabledConfigStillConstructsUsableArena) {
  // The arena type itself is mode-agnostic; enablement is decided by the
  // AgentStore wiring (runtime/agent_store.h), not here.
  AgentPoolConfig config;
  AgentArena arena(config);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  void* block = arena.slabs()->Allocate();
  EXPECT_NE(block, nullptr);
  arena.slabs()->Free(block);
}

}  // namespace
}  // namespace sqlb::mem
