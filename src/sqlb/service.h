#ifndef SQLB_SQLB_SERVICE_H_
#define SQLB_SQLB_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "core/allocation.h"
#include "runtime/scenario.h"
#include "runtime/serving_mediator.h"
#include "shard/sharded_mediation_system.h"

/// \file
/// The one public facade over the three mediation drivers. Everything an
/// application needs is here: pick a Mode, fill a Config, Create() a
/// Service, and either Run() the scenario to completion (simulation modes)
/// or Start()/Submit()/Drain()/Stop() it (serving mode). Examples and
/// benches construct systems through this header; the driver classes behind
/// it (runtime::MediationSystem, shard::ShardedMediationSystem,
/// runtime::ServingMediator) stay public for tests and for callers that
/// need driver-specific introspection.
///
/// Config::Validate() is the unified config check: one code path that
/// covers the scenario config (runtime::ValidateSystemConfig), the batching
/// knobs shared by the sharded and serving tiers, and the per-mode
/// constraints — returning actionable InvalidArgument messages instead of
/// scattering asserts across the drivers.

namespace sqlb {

/// Which driver a Service wraps.
enum class Mode {
  /// One mediator, the paper's Section 6 setup (runtime/mediation_system.h).
  kMono,
  /// M mediators over a consistent-hash provider partition, DES-pumped
  /// (shard/sharded_mediation_system.h).
  kSharded,
  /// Wall-clock serving: real threads submit through lock-free intake
  /// queues; the DES is the replay oracle (runtime/serving_mediator.h).
  kServing,
};

/// Everything any mode needs. `sharded.base` is the scenario itself
/// (population, workload, agents, seed) and is the part every mode reads;
/// the rest of `sharded` applies to kSharded, `serving` to kServing.
struct Config {
  Mode mode = Mode::kMono;
  shard::ShardedSystemConfig sharded;
  runtime::ServingConfig serving;

  /// The scenario config every mode shares (alias for sharded.base).
  runtime::SystemConfig& scenario() { return sharded.base; }
  const runtime::SystemConfig& scenario() const { return sharded.base; }

  /// The unified config check. OK, or InvalidArgument explaining exactly
  /// which knob is wrong and what it needs to be.
  Status Validate() const;
};

/// A configured mediation service. Create() -> (Run() | serving lifecycle).
class Service {
 public:
  /// Fresh method instance per shard (mono calls it once with shard 0).
  using MethodFactory =
      std::function<std::unique_ptr<AllocationMethod>(std::uint32_t shard)>;

  /// Validates `config` and builds the mode's driver. On an invalid config:
  /// stores the error in `*status` and returns nullptr when `status` is
  /// given, aborts with the validation message otherwise.
  static std::unique_ptr<Service> Create(const Config& config,
                                         MethodFactory factory,
                                         Status* status = nullptr);
  ~Service();

  Mode mode() const { return config_.mode; }
  const Config& config() const { return config_; }

  // --- Simulation modes (kMono, kSharded) ----------------------------------

  /// Executes the configured scenario to completion and returns the result.
  /// Call once. A kMono run fills the mono-compatible `run` member and one
  /// synthetic shard entry, so callers read one result shape in both modes.
  shard::ShardedRunResult Run();

  // --- Serving mode (kServing) ---------------------------------------------

  /// Registers one producer thread; call before Start().
  runtime::ServingProducer* RegisterProducer();
  /// Launches the mediator thread and the wall clock.
  void Start();
  /// Submits one query request from `producer`'s thread. False = shed by
  /// intake backpressure.
  bool Submit(runtime::ServingProducer* producer, std::uint32_t consumer_index,
              std::uint32_t class_index);
  /// Batched submission: presents `requests[0..count)` in order with one
  /// intake reservation per same-shard run (see
  /// runtime::ServingMediator::SubmitMany). Returns the accepted prefix
  /// length; the remainder was shed.
  std::size_t SubmitMany(runtime::ServingProducer* producer,
                         const runtime::ServingRequest* requests,
                         std::size_t count);
  /// Submits `count` identical requests through the batched path; returns
  /// how many were accepted (stops at the first shed — the queue is full,
  /// retrying inline would spin against backpressure).
  std::size_t SubmitBatch(runtime::ServingProducer* producer,
                          std::uint32_t consumer_index,
                          std::uint32_t class_index, std::size_t count);
  /// Blocks until every accepted submission has been mediated. Call after
  /// the producers stopped submitting.
  void Drain();
  /// Stops the mediator, flushes the remaining intake, and finalizes.
  runtime::ServingReport Stop();
  /// The recorded replay trace (stable after Stop()).
  const runtime::ServingTrace& trace() const;
  /// Replays trace() through the DES with an identically-built system and
  /// returns the replay's decision log and RunResult (the replay-oracle
  /// comparison, see ReplayServingTrace). Call after Stop().
  runtime::ServingReplayResult Replay() const;

 private:
  Service(Config config, MethodFactory factory);

  Config config_;
  MethodFactory factory_;
  /// Exactly one of these is live, per mode.
  std::unique_ptr<shard::ShardedMediationSystem> sharded_;
  std::unique_ptr<runtime::ServingMediator> serving_;
  bool ran_ = false;
};

}  // namespace sqlb

#endif  // SQLB_SQLB_SERVICE_H_
