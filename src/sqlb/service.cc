#include "sqlb/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "runtime/mediation_system.h"

namespace sqlb {

namespace {

/// The batching knobs shared by the sharded and serving tiers, checked
/// once. `tier` names the owner in the error message ("sharded"/"serving").
Status ValidateBatching(const char* tier, double batch_window,
                        const runtime::AdaptiveBatchConfig& adaptive) {
  const std::string prefix = std::string(tier) + " config: ";
  if (batch_window < 0.0) {
    return Status::InvalidArgument(prefix +
                                   "batch_window must be >= 0 seconds");
  }
  if (!adaptive.enabled) return Status::OK();
  if (adaptive.max_window <= 0.0) {
    return Status::InvalidArgument(
        prefix +
        "adaptive batching with a zero (or negative) max_window never "
        "coalesces anything; set adaptive_batch.max_window > 0 or disable "
        "adaptive_batch.enabled");
  }
  if (adaptive.min_window < 0.0 || adaptive.min_window > adaptive.max_window) {
    return Status::InvalidArgument(
        prefix +
        "adaptive batching needs 0 <= min_window <= max_window (got min " +
        std::to_string(adaptive.min_window) + ", max " +
        std::to_string(adaptive.max_window) + ")");
  }
  if (adaptive.target_burst <= 0.0 || adaptive.ewma_tau <= 0.0 ||
      adaptive.backlog_ref <= 0.0) {
    return Status::InvalidArgument(
        prefix +
        "adaptive batching needs positive target_burst, ewma_tau and "
        "backlog_ref (they divide the rate-matched window)");
  }
  return Status::OK();
}

}  // namespace

Status Config::Validate() const {
  Status status = runtime::ValidateSystemConfig(scenario());
  if (!status.ok()) return status;

  switch (mode) {
    case Mode::kMono:
      break;

    case Mode::kSharded: {
      if (sharded.router.num_shards < 1) {
        return Status::InvalidArgument(
            "sharded config: router.num_shards must be >= 1");
      }
      if (sharded.max_route_attempts < 1) {
        return Status::InvalidArgument(
            "sharded config: max_route_attempts must be >= 1 (the first "
            "attempt is an attempt)");
      }
      if (sharded.gossip_enabled && sharded.gossip_interval <= 0.0) {
        return Status::InvalidArgument(
            "sharded config: gossip_interval must be positive when gossip "
            "is enabled");
      }
      if (sharded.rebalance_enabled && sharded.rebalance_interval <= 0.0) {
        return Status::InvalidArgument(
            "sharded config: rebalance_interval must be positive when "
            "rebalancing is enabled");
      }
      status = ValidateBatching("sharded", sharded.batch_window,
                                sharded.adaptive_batch);
      if (!status.ok()) return status;
      break;
    }

    case Mode::kServing: {
      if (serving.shards < 1) {
        return Status::InvalidArgument(
            "serving config: shards must be >= 1");
      }
      if (serving.time_scale <= 0.0) {
        return Status::InvalidArgument(
            "serving config: time_scale must be positive (simulated "
            "seconds per wall second)");
      }
      if (serving.max_burst < 1) {
        return Status::InvalidArgument(
            "serving config: max_burst must be >= 1");
      }
      if (serving.housekeeping_interval <= 0.0) {
        return Status::InvalidArgument(
            "serving config: housekeeping_interval must be positive wall "
            "seconds");
      }
      if (serving.max_queued_per_shard < 1) {
        return Status::InvalidArgument(
            "serving config: max_queued_per_shard must be >= 1");
      }
      if (serving.mediator_threads < 1) {
        return Status::InvalidArgument(
            "serving config: mediator_threads must be >= 1");
      }
      if (serving.shards % serving.mediator_threads != 0) {
        return Status::InvalidArgument(
            "serving config: mediator_threads (" +
            std::to_string(serving.mediator_threads) +
            ") must divide shards (" + std::to_string(serving.shards) +
            ") evenly — each mediator thread owns a contiguous group of "
            "shards/mediator_threads shards");
      }
      status = ValidateBatching("serving", serving.batch_window,
                                serving.adaptive_batch);
      if (!status.ok()) return status;
      const runtime::DepartureConfig& dep = scenario().departures;
      if (dep.consumers_may_leave || dep.provider_dissatisfaction ||
          dep.provider_starvation || dep.provider_overutilization) {
        return Status::InvalidArgument(
            "serving mode has no departure-check clock; disable every "
            "SystemConfig::departures rule");
      }
      if (!scenario().provider_churn.events.empty()) {
        return Status::InvalidArgument(
            "serving mode does not script provider churn; clear "
            "SystemConfig::provider_churn");
      }
      if (!scenario().shard_faults.empty()) {
        return Status::InvalidArgument(
            "serving mode does not script shard faults; clear "
            "SystemConfig::shard_faults");
      }
      break;
    }
  }
  return Status::OK();
}

std::unique_ptr<Service> Service::Create(const Config& config,
                                         MethodFactory factory,
                                         Status* status) {
  Status valid = config.Validate();
  if (!valid.ok()) {
    if (status == nullptr) {
      SQLB_CHECK(false, valid.message().c_str());
    }
    *status = std::move(valid);
    return nullptr;
  }
  SQLB_CHECK(factory != nullptr, "Service needs a method factory");
  if (status != nullptr) *status = Status::OK();
  return std::unique_ptr<Service>(
      new Service(config, std::move(factory)));
}

Service::Service(Config config, MethodFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  switch (config_.mode) {
    case Mode::kMono:
      // Built in Run(): the mono driver is construct-run-destroy.
      break;
    case Mode::kSharded:
      sharded_ = std::make_unique<shard::ShardedMediationSystem>(
          config_.sharded, factory_);
      break;
    case Mode::kServing:
      serving_ = std::make_unique<runtime::ServingMediator>(
          config_.scenario(), config_.serving, factory_);
      break;
  }
}

Service::~Service() = default;

shard::ShardedRunResult Service::Run() {
  SQLB_CHECK(config_.mode != Mode::kServing,
             "Run() drives the simulation modes; serving uses "
             "Start/Submit/Drain/Stop");
  SQLB_CHECK(!ran_, "Run() may only be called once");
  ran_ = true;
  if (config_.mode == Mode::kSharded) {
    return sharded_->Run();
  }
  // Mono: run the classic driver and present its result in the sharded
  // shape (one synthetic shard entry), so callers read one result type.
  std::unique_ptr<AllocationMethod> method = factory_(0);
  SQLB_CHECK(method != nullptr, "method factory returned null");
  shard::ShardedRunResult result;
  result.run = runtime::RunScenario(config_.scenario(), method.get());
  shard::ShardStats stats;
  stats.initial_providers = result.run.initial_providers;
  stats.remaining_providers = result.run.remaining_providers;
  stats.routed = result.run.queries_issued;
  stats.allocated =
      result.run.queries_issued - result.run.queries_infeasible;
  result.shards.push_back(stats);
  return result;
}

runtime::ServingProducer* Service::RegisterProducer() {
  SQLB_CHECK(config_.mode == Mode::kServing,
             "RegisterProducer is serving-mode only");
  return serving_->RegisterProducer();
}

void Service::Start() {
  SQLB_CHECK(config_.mode == Mode::kServing, "Start is serving-mode only");
  serving_->Start();
}

bool Service::Submit(runtime::ServingProducer* producer,
                     std::uint32_t consumer_index,
                     std::uint32_t class_index) {
  return serving_->Submit(producer, consumer_index, class_index);
}

std::size_t Service::SubmitMany(runtime::ServingProducer* producer,
                                const runtime::ServingRequest* requests,
                                std::size_t count) {
  return serving_->SubmitMany(producer, requests, count);
}

std::size_t Service::SubmitBatch(runtime::ServingProducer* producer,
                                 std::uint32_t consumer_index,
                                 std::uint32_t class_index,
                                 std::size_t count) {
  // Identical requests all land on one shard, so feed the batched path in
  // fixed-size chunks — each chunk costs one reservation and one tail
  // exchange instead of one per query.
  runtime::ServingRequest chunk[64];
  for (auto& request : chunk) {
    request.consumer = consumer_index;
    request.class_index = class_index;
  }
  std::size_t accepted = 0;
  while (accepted < count) {
    const std::size_t n = std::min<std::size_t>(64, count - accepted);
    const std::size_t got = serving_->SubmitMany(producer, chunk, n);
    accepted += got;
    if (got < n) break;
  }
  return accepted;
}

void Service::Drain() {
  SQLB_CHECK(config_.mode == Mode::kServing, "Drain is serving-mode only");
  serving_->Drain();
}

runtime::ServingReport Service::Stop() {
  SQLB_CHECK(config_.mode == Mode::kServing, "Stop is serving-mode only");
  return serving_->Stop();
}

const runtime::ServingTrace& Service::trace() const {
  SQLB_CHECK(config_.mode == Mode::kServing, "trace is serving-mode only");
  return serving_->trace();
}

runtime::ServingReplayResult Service::Replay() const {
  SQLB_CHECK(config_.mode == Mode::kServing, "Replay is serving-mode only");
  return runtime::ReplayServingTrace(config_.scenario(),
                                     config_.serving.shards, factory_,
                                     serving_->trace());
}

}  // namespace sqlb
