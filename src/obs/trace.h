#ifndef SQLB_OBS_TRACE_H_
#define SQLB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"

/// \file
/// The trace half of the observability layer: per-query lifecycle spans
/// recorded into per-lane ring buffers ("flight recorder" semantics — a
/// bounded window of the most recent spans, oldest overwritten first), and
/// an exporter to the chrome://tracing / Perfetto JSON event format.
///
/// Determinism contract (pinned in tests/obs/trace_determinism_test.cc):
/// spans are attributed to the lane that owns the query's shard at the
/// *record site*, in both serial and strict-parity parallel execution, so
/// each lane observes the identical span sequence regardless of thread
/// count. Every span carries (lane, seq) with a per-lane monotone seq;
/// sorting the drained union by (start, lane, seq) is therefore a total
/// order and yields a bit-identical stream across {serial, parallel x N}
/// whenever no lane overflowed (dropped() == 0).

namespace sqlb::obs {

/// Lifecycle stage a span describes. Order follows a query's path through
/// the stack; the taxonomy is documented in README "Observability".
enum class SpanKind : std::uint8_t {
  kIntake = 0,    // query drawn from the workload and issued
  kRoute,         // router picked the owning shard
  kReroute,       // walked to the next shard after a saturated attempt
  kBatchWait,     // time the query sat in a batch-window buffer
  kGather,        // candidate gathering (cache hit or refresh)
  kScore,         // utilization/satisfaction scoring pass
  kAllocate,      // providers committed for the query
  kReject,        // query declared infeasible (no candidates / saturated)
  kExecute,       // provider-side execution (dispatch -> completion)
  kComplete,      // response delivered back to the consumer
  kHandoff,       // provider ownership transfer between shards
  kGossip,        // load-report fan-out round
};

/// Human-readable name for a span kind ("intake", "route", ...).
const char* SpanKindName(SpanKind kind);

/// One recorded span. 48 bytes; POD so the ring buffer stays trivially
/// copyable.
struct TraceSpan {
  SimTime start = 0.0;   // simulated seconds
  SimTime end = 0.0;     // == start for instantaneous events
  std::uint64_t ref = 0;  // QueryId, provider index, or 0 (kind-dependent)
  double detail = 0.0;    // kind-specific payload (shard, wait, count, ...)
  std::uint32_t lane = 0;  // shard index, or the coordinator lane (M)
  std::uint32_t seq = 0;   // per-lane record sequence number
  SpanKind kind = SpanKind::kIntake;
};

/// Single-writer span recorder for one lane. Holds the most recent
/// `capacity` spans; older spans are overwritten and counted in dropped().
/// Sampling is deterministic in the query id (arrival sequence), never in
/// wall-clock or RNG state, so the sampled set is identical across runs.
class TraceLane {
 public:
  TraceLane(std::uint32_t lane, std::uint64_t sample_every,
            std::size_t capacity)
      : lane_(lane),
        sample_every_(sample_every == 0 ? 1 : sample_every),
        ring_(capacity == 0 ? 1 : capacity) {}

  /// True when spans for this query should be recorded (every
  /// `sample_every`-th query by id; ids are the monotone arrival sequence).
  bool SamplesQuery(QueryId id) const { return id % sample_every_ == 0; }

  void Record(SpanKind kind, SimTime start, SimTime end, std::uint64_t ref,
              double detail) {
    TraceSpan span;
    span.start = start;
    span.end = end;
    span.ref = ref;
    span.detail = detail;
    span.lane = lane_;
    span.seq = seq_++;
    span.kind = kind;
    TraceSpan evicted;
    if (ring_.Push(span, &evicted)) ++dropped_;
  }

  /// Instantaneous event at `at`.
  void RecordInstant(SpanKind kind, SimTime at, std::uint64_t ref,
                     double detail) {
    Record(kind, at, at, ref, detail);
  }

  /// Appends the retained spans oldest-first to `out` and clears the ring.
  /// dropped() and the seq counter persist across drains.
  void Drain(std::vector<TraceSpan>* out);

  std::uint32_t lane() const { return lane_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint32_t seq() const { return seq_; }
  std::size_t pending() const { return ring_.size(); }

 private:
  std::uint32_t lane_;
  std::uint64_t sample_every_;
  std::uint32_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  RingBuffer<TraceSpan> ring_;
};

/// Renders spans as a chrome://tracing / Perfetto "traceEvents" JSON
/// document. Each lane becomes a tid row ("shard 0", ..., "coordinator");
/// simulated seconds map to microseconds of trace time.
std::string ChromeTraceJson(const std::vector<TraceSpan>& spans,
                            std::size_t shard_lanes);

}  // namespace sqlb::obs

#endif  // SQLB_OBS_TRACE_H_
