#include "obs/trace.h"

#include <cstdio>

namespace sqlb::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIntake:
      return "intake";
    case SpanKind::kRoute:
      return "route";
    case SpanKind::kReroute:
      return "reroute";
    case SpanKind::kBatchWait:
      return "batch_wait";
    case SpanKind::kGather:
      return "gather";
    case SpanKind::kScore:
      return "score";
    case SpanKind::kAllocate:
      return "allocate";
    case SpanKind::kReject:
      return "reject";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kComplete:
      return "complete";
    case SpanKind::kHandoff:
      return "handoff";
    case SpanKind::kGossip:
      return "gossip";
  }
  return "unknown";
}

void TraceLane::Drain(std::vector<TraceSpan>* out) {
  // No reserve: an exact-size reserve per drain would defeat push_back's
  // geometric growth and turn repeated drains into quadratic reallocation.
  ring_.ForEach([out](const TraceSpan& span) { out->push_back(span); });
  ring_.Clear();
}

std::string ChromeTraceJson(const std::vector<TraceSpan>& spans,
                            std::size_t shard_lanes) {
  std::string out;
  out.reserve(128 + spans.size() * 160);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  char buf[256];
  bool first = true;
  // Thread-name metadata rows so Perfetto labels each lane.
  for (std::size_t lane = 0; lane <= shard_lanes; ++lane) {
    if (!first) out.push_back(',');
    first = false;
    if (lane < shard_lanes) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"tid\":%zu,\"args\":{\"name\":\"shard %zu\"}}",
                    lane, lane);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"tid\":%zu,\"args\":{\"name\":\"coordinator\"}}",
                    lane);
    }
    out.append(buf);
  }
  for (const TraceSpan& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    // Simulated seconds -> microseconds; "X" complete events need a
    // non-negative duration, instants get dur 0.
    const double ts_us = span.start * 1e6;
    const double dur_us =
        span.end > span.start ? (span.end - span.start) * 1e6 : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"sqlb\",\"ph\":\"X\","
                  "\"ts\":%.6f,\"dur\":%.6f,\"pid\":0,\"tid\":%u,"
                  "\"args\":{\"ref\":%llu,\"detail\":%.17g,\"seq\":%u}}",
                  SpanKindName(span.kind), ts_us, dur_us, span.lane,
                  static_cast<unsigned long long>(span.ref), span.detail,
                  span.seq);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

}  // namespace sqlb::obs
