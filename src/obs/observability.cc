#include "obs/observability.h"

#include <algorithm>
#include <tuple>

namespace sqlb::obs {

FlightRecorder::FlightRecorder(const ObservabilityConfig& config,
                               std::size_t shard_lanes)
    : config_(config),
      shard_lanes_(shard_lanes),
      registries_(shard_lanes + 1) {
#if !defined(SQLB_DISABLE_OBSERVABILITY)
  if (config_.trace) {
    lanes_.reserve(shard_lanes + 1);
    for (std::size_t lane = 0; lane <= shard_lanes; ++lane) {
      lanes_.push_back(std::make_unique<TraceLane>(
          static_cast<std::uint32_t>(lane), config_.trace_sample_every,
          config_.trace_ring_capacity));
    }
  }
#endif
}

void FlightRecorder::DrainSpans() {
  for (auto& lane : lanes_) lane->Drain(&spans_);
}

std::vector<TraceSpan> FlightRecorder::FinishSpans() {
  DrainSpans();
  std::sort(spans_.begin(), spans_.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return std::tie(a.start, a.lane, a.seq) <
                     std::tie(b.start, b.lane, b.seq);
            });
  return std::move(spans_);
}

std::uint64_t FlightRecorder::DroppedSpans() const {
  std::uint64_t dropped = 0;
  for (const auto& lane : lanes_) dropped += lane->dropped();
  return dropped;
}

MetricsRegistry FlightRecorder::MergedMetrics() const {
  MetricsRegistry merged;
  for (const MetricsRegistry& registry : registries_) {
    merged.MergeFrom(registry);
  }
  return merged;
}

}  // namespace sqlb::obs
