#ifndef SQLB_OBS_OBSERVABILITY_H_
#define SQLB_OBS_OBSERVABILITY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

/// \file
/// FlightRecorder: the per-run assembly of the observability layer. One
/// metrics registry and one optional trace lane per execution lane (M shard
/// lanes plus one coordinator lane), drained and merged exactly like the
/// EffectLog — per-lane single-writer between barriers, folded in a fixed
/// lane order so the run-level snapshot is bit-identical across thread
/// counts.
///
/// Gating levels:
///  - `ObservabilityConfig::trace` — span recording; off by default.
///    trace_lane() returns nullptr when off, so call sites pay one branch.
///  - `ObservabilityConfig::metrics` — hot-path latency histograms
///    (response time, batch wait, ...). hot_metrics() returns nullptr when
///    off. Structural counters (flushes, reroutes, handoffs, ...) are NOT
///    gated: they replace pre-existing always-on ad-hoc counters at the
///    same cost and feed the bench result structs, so registry() is always
///    live.
///  - compile time — building with -DSQLB_DISABLE_OBSERVABILITY strips
///    spans and hot histograms entirely (both accessors return nullptr
///    regardless of config); structural counters keep working.

namespace sqlb::obs {

/// Run-level observability switches; lives in SystemConfig::observability.
struct ObservabilityConfig {
  /// Record hot-path latency histograms into the per-lane registries.
  bool metrics = true;
  /// Record per-query trace spans (flight recorder + exporter).
  bool trace = false;
  /// Record spans for every N-th query (by arrival id; id % N == 0).
  /// 1 = every query. Non-query spans (gossip, handoff) are always
  /// recorded when trace is on.
  std::uint64_t trace_sample_every = 16;
  /// Spans retained per lane; older spans are overwritten ("flight
  /// recorder"). Drains at barriers keep the ring far from full in
  /// practice; the dropped counter reports any overflow.
  std::size_t trace_ring_capacity = 1 << 15;
};

class FlightRecorder {
 public:
  /// `shard_lanes` = M; lane indices 0..M-1 are shard lanes and lane M is
  /// the coordinator lane (router, gossip, handoff, intake).
  FlightRecorder(const ObservabilityConfig& config, std::size_t shard_lanes);

  std::size_t shard_lanes() const { return shard_lanes_; }
  std::uint32_t coordinator_lane() const {
    return static_cast<std::uint32_t>(shard_lanes_);
  }
  const ObservabilityConfig& config() const { return config_; }

  /// Always-live registry for `lane` (structural counters + merged stats).
  MetricsRegistry& registry(std::size_t lane) { return registries_[lane]; }

  /// Registry for hot-path histogram recording, or nullptr when histograms
  /// are disabled (config or compile time).
  MetricsRegistry* hot_metrics(std::size_t lane) {
#if defined(SQLB_DISABLE_OBSERVABILITY)
    (void)lane;
    return nullptr;
#else
    return config_.metrics ? &registries_[lane] : nullptr;
#endif
  }

  /// Span recorder for `lane`, or nullptr when tracing is disabled.
  TraceLane* trace_lane(std::size_t lane) {
#if defined(SQLB_DISABLE_OBSERVABILITY)
    (void)lane;
    return nullptr;
#else
    return lanes_.empty() ? nullptr : lanes_[lane].get();
#endif
  }

  /// Moves retained spans out of every lane ring into the run-level store.
  /// Called at parallel barriers (alongside the EffectLog merge) and at the
  /// end of the run; cheap no-op when tracing is off.
  void DrainSpans();

  /// Drains any remaining spans and returns the full stream sorted by
  /// (start, lane, seq) — a total order (lane/seq unique), so the stream is
  /// bit-identical across serial and strict-parity parallel runs whenever
  /// DroppedSpans() == 0.
  std::vector<TraceSpan> FinishSpans();

  /// Spans lost to ring overflow, summed over lanes.
  std::uint64_t DroppedSpans() const;

  /// Folds the per-lane registries in fixed lane order (shard 0..M-1, then
  /// coordinator) into one run-level snapshot.
  MetricsRegistry MergedMetrics() const;

 private:
  ObservabilityConfig config_;
  std::size_t shard_lanes_;
  std::vector<MetricsRegistry> registries_;  // size shard_lanes_ + 1
  std::vector<std::unique_ptr<TraceLane>> lanes_;  // empty when trace off
  std::vector<TraceSpan> spans_;
};

}  // namespace sqlb::obs

#endif  // SQLB_OBS_OBSERVABILITY_H_
