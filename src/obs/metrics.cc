#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sqlb::obs {

namespace {

// log(kMaxValue / kMinValue), the total log-span the buckets divide evenly.
const double kLogSpan = std::log(Histogram::kMaxValue / Histogram::kMinValue);

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonUint(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

// Metric names are code constants (no quotes or control characters), so
// escaping is a plain quote wrap.
void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  out->append(name);
  out->append("\":");
}

}  // namespace

std::size_t Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  if (value >= kMaxValue) return kBuckets - 1;
  const double frac = std::log(value / kMinValue) / kLogSpan;
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(kBuckets));
  return std::min(idx, kBuckets - 1);
}

double Histogram::BucketLowerBound(std::size_t i) {
  if (i == 0) return 0.0;
  return kMinValue *
         std::exp(kLogSpan * static_cast<double>(i) /
                  static_cast<double>(kBuckets));
}

double Histogram::BucketUpperBound(std::size_t i) {
  return kMinValue *
         std::exp(kLogSpan * static_cast<double>(i + 1) /
                  static_cast<double>(kBuckets));
}

void Histogram::Record(double value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (0-based, nearest-rank style).
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double first = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (target < static_cast<double>(cumulative)) {
      // Geometric interpolation across the bucket's log-width.
      const double within =
          (target - first + 0.5) / static_cast<double>(buckets_[i]);
      const double lo = std::max(BucketLowerBound(i), kMinValue);
      const double hi = BucketUpperBound(i);
      const double value = lo * std::pow(hi / lo, std::clamp(within, 0.0, 1.0));
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

double MetricsRegistry::HistogramQuantile(const std::string& name,
                                          double q) const {
  const Histogram* h = FindHistogram(name);
  return h == nullptr ? 0.0 : h->Quantile(q);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Merge(counter);
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].Merge(gauge);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out;
  out.reserve(1024);
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    AppendJsonUint(&out, counter.value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    AppendJsonNumber(&out, gauge.value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out.append("{\"count\":");
    AppendJsonUint(&out, h.count());
    out.append(",\"sum\":");
    AppendJsonNumber(&out, h.sum());
    out.append(",\"min\":");
    AppendJsonNumber(&out, h.min());
    out.append(",\"max\":");
    AppendJsonNumber(&out, h.max());
    out.append(",\"mean\":");
    AppendJsonNumber(&out, h.mean());
    out.append(",\"p50\":");
    AppendJsonNumber(&out, h.Quantile(0.50));
    out.append(",\"p90\":");
    AppendJsonNumber(&out, h.Quantile(0.90));
    out.append(",\"p99\":");
    AppendJsonNumber(&out, h.Quantile(0.99));
    out.append(",\"p999\":");
    AppendJsonNumber(&out, h.Quantile(0.999));
    out.append(",\"buckets\":[");
    bool first_bucket = true;
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      AppendJsonNumber(&out, Histogram::BucketLowerBound(i));
      out.push_back(',');
      AppendJsonUint(&out, buckets[i]);
      out.push_back(']');
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

}  // namespace sqlb::obs
