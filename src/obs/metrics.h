#ifndef SQLB_OBS_METRICS_H_
#define SQLB_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

/// \file
/// The metrics half of the observability layer (src/obs/): named counters,
/// gauges and fixed-geometry log-scale latency histograms, grouped into a
/// MetricsRegistry.
///
/// Registries are built for deterministic parallel simulation, not for a
/// concurrent scrape path: every lane of the sharded tier owns one registry
/// (single writer, no atomics, no shared cache lines) and the run-level
/// snapshot is produced by folding the per-lane registries in a fixed order
/// at the end of the run. Because every histogram shares one global bucket
/// geometry, the fold is an elementwise add — associative and commutative
/// on the integer state (bucket counts, value counts, min/max), which is
/// what makes the merged snapshot independent of how the work was split
/// across lanes (pinned in tests/obs/metrics_test.cc).

namespace sqlb::obs {

/// Monotonic event count. Plain state, single-writer by construction.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value. Merge keeps the other's value when
/// this gauge was never set (per-lane gauges are disjoint by naming
/// convention, so a fold never overwrites a live value).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  bool set() const { return set_; }
  void Merge(const Gauge& other) {
    if (!set_ && other.set_) {
      value_ = other.value_;
      set_ = true;
    }
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Fixed-geometry log-scale histogram over positive values.
///
/// All instances share one bucket layout — kBuckets buckets log-spaced over
/// [kMinValue, kMaxValue), with everything below the range folded into
/// bucket 0 and everything at or above it into the last bucket — so Merge
/// is an elementwise add of bucket counts plus exact min/max/count
/// combination: associative and commutative on everything a Quantile
/// readout consumes. The per-bucket relative resolution is
/// (kMaxValue/kMinValue)^(1/kBuckets) - 1 (~11% at the defaults), which is
/// the quantile error bound.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 256;
  static constexpr double kMinValue = 1e-6;
  static constexpr double kMaxValue = 1e6;

  void Record(double value);
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// The q-quantile (0 <= q <= 1) estimated from the bucket counts:
  /// geometric interpolation inside the target bucket, clamped to the exact
  /// observed [min, max]. 0 when empty.
  double Quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Bucket index `value` falls into (range clamped).
  static std::size_t BucketIndex(double value);
  /// Lower/upper value bound of bucket `i`.
  static double BucketLowerBound(std::size_t i);
  static double BucketUpperBound(std::size_t i);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named counters, gauges and histograms. Lookup is by name (std::map, so
/// every iteration — merges, JSON dumps — runs in one deterministic order);
/// hot paths call Get* once and keep the reference, which stays valid for
/// the registry's lifetime (map nodes are stable).
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Gauge& GetGauge(const std::string& name) { return gauges_[name]; }
  Histogram& GetHistogram(const std::string& name) {
    return histograms_[name];
  }

  /// Read-only lookups that do not create the metric: the zero-state value
  /// when absent, so reporting code never mutates the registry.
  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  /// Quantile of `name`, 0 when the histogram is absent or empty.
  double HistogramQuantile(const std::string& name, double q) const;

  /// Folds `other` into this registry (counters add, gauges fill-if-unset,
  /// histograms merge elementwise). The per-lane fold of the sharded tier.
  void MergeFrom(const MetricsRegistry& other);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Renders the whole registry as one JSON object:
  /// {"counters": {name: value}, "gauges": {name: value},
  ///  "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
  ///                        p999, buckets: [[lower_bound, count], ...]}}}
  /// (bucket list holds only the non-empty buckets). Key order is the map
  /// order — deterministic across runs.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// ---------------------------------------------------------------------------
// Canonical metric names across the mediation stack. Every layer that
// records into a registry names its metrics from this list, so benches,
// tests and the JSON snapshot all read one vocabulary.
// ---------------------------------------------------------------------------

// Latency histograms (seconds, simulated time).
inline constexpr const char kMetricResponseTime[] = "rt.response_seconds";
inline constexpr const char kMetricBatchWait[] = "batch.wait_seconds";
inline constexpr const char kMetricHandoffDrain[] = "handoff.drain_seconds";
inline constexpr const char kMetricGossipStaleness[] =
    "gossip.staleness_seconds";
// Mediation cost proxy: candidates characterized + scored per query
// (Algorithm 1's per-query work is proportional to |P_q|).
inline constexpr const char kMetricMediationCandidates[] =
    "mediation.candidates_per_query";
// Availability penalty per re-issued query: re-issue time minus original
// issue time (the time the query spent bound to a mediator that died).
inline constexpr const char kMetricReissueDelay[] =
    "failover.reissue_delay_seconds";

// Counters.
inline constexpr const char kMetricBatchFlushes[] = "batch.flushes";
inline constexpr const char kMetricBatchedQueries[] = "batch.queries";
inline constexpr const char kMetricReroutes[] = "route.reroutes";
inline constexpr const char kMetricRerouteRescues[] = "route.rescues";
inline constexpr const char kMetricStaleFallbacks[] = "route.stale_fallbacks";
inline constexpr const char kMetricEpochLaggedReports[] =
    "gossip.epoch_lagged_reports";
inline constexpr const char kMetricRebalancesDamped[] = "rebalance.damped";
inline constexpr const char kMetricRingRebalances[] = "rebalance.applied";
inline constexpr const char kMetricHandoffsStarted[] = "handoff.started";
inline constexpr const char kMetricHandoffsCompleted[] = "handoff.completed";
inline constexpr const char kMetricHandoffsCancelled[] = "handoff.cancelled";

// Failover accounting (runtime/faults.h). The reissued total satisfies
// completed + infeasible + reissued == issued under any kill schedule.
inline constexpr const char kMetricShardCrashes[] = "failover.shard_crashes";
inline constexpr const char kMetricReissuedQueries[] =
    "failover.reissued_queries";
// Per-reason re-issue counters: "failover.reissued.in_flight",
// "failover.reissued.intake" (the ReissueReasonName suffix is appended).
inline constexpr const char kMetricReissuedPrefix[] = "failover.reissued.";
// Providers a survivor adopted from a snapshot (baselines restored) vs
// re-admitted fresh (crashed before their first snapshot).
inline constexpr const char kMetricRestoredProviders[] =
    "failover.restored_providers";
inline constexpr const char kMetricOrphanedProviders[] =
    "failover.orphaned_providers";
// Drain-retry ticks where a dead shard's provider still had in-flight work.
inline constexpr const char kMetricFailoverDrainTicks[] =
    "failover.drain_ticks";
// Completions suppressed because their dispatching incarnation crashed.
inline constexpr const char kMetricDroppedCompletions[] =
    "failover.dropped_completions";
// Crash-consistent snapshots exported at barriers.
inline constexpr const char kMetricSnapshots[] = "failover.snapshots";

// Message substrate (msg/network.h) — surfaced so network loss is visible
// to the single-source-of-truth metrics layer.
inline constexpr const char kMetricNetSent[] = "net.sent";
inline constexpr const char kMetricNetDelivered[] = "net.delivered";
inline constexpr const char kMetricNetDropped[] = "net.dropped";
inline constexpr const char kMetricNetInjectedDrops[] = "net.injected_drops";
inline constexpr const char kMetricNetInjectedDelays[] =
    "net.injected_delays";
// Ring-epoch re-announcements to shards whose gossiped epoch lags (the
// retry half of "gossip retry + epoch-lagged fallback").
inline constexpr const char kMetricGossipRingRetries[] =
    "gossip.ring_retries";
// Load-report messages put on the wire per run (every hop counts one:
// origin sends and hierarchical relay forwards alike). The scale gate
// bounds this at O(M log M) per gossip round.
inline constexpr const char kMetricGossipLoadMessages[] =
    "gossip.load_messages";
// Hierarchical-topology relay traffic: reports forwarded hop-by-hop
// through aggregator shards, and reports dropped because their relay
// shard was dead at delivery time (the origin keeps reporting; the next
// round's tree routes around the corpse).
inline constexpr const char kMetricGossipRelayForwards[] =
    "gossip.relay_forwards";
inline constexpr const char kMetricGossipRelayDrops[] =
    "gossip.relay_drops";

// Per-shard gauges (the shard index is appended: "batch.window.0", ...).
inline constexpr const char kMetricBatchWindowPrefix[] = "batch.window.";

// Wall-clock serving tier (runtime/serving_mediator.h): enqueue ->
// mediation wall latency, folded over the per-producer histograms at Stop.
inline constexpr const char kMetricServingIntakeWall[] =
    "serving.intake_wall_seconds";
// Idle-parking accounting of the serving mediator groups: how many times a
// group thread parked on its condvar after the spin -> yield ladder found
// no work, and how many wakeups found the queues still empty (a produce
// that raced the park, or a notification for work another pass already
// drained). Folded over every group at Stop.
inline constexpr const char kMetricServingIdleParks[] = "serving.idle_parks";
inline constexpr const char kMetricServingSpuriousWakes[] =
    "serving.spurious_wakes";

}  // namespace sqlb::obs

#endif  // SQLB_OBS_METRICS_H_
