#include "matchmaking/capability.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb {

std::uint32_t TermDictionary::Intern(const std::string& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  SQLB_CHECK(id != kNotFoundId, "term dictionary overflow");
  ids_.emplace(term, id);
  names_.push_back(term);
  return id;
}

std::uint32_t TermDictionary::Lookup(const std::string& term) const {
  auto it = ids_.find(term);
  return it == ids_.end() ? kNotFoundId : it->second;
}

const std::string& TermDictionary::Name(std::uint32_t id) const {
  SQLB_CHECK(id < names_.size(), "unknown term id");
  return names_[id];
}

Capability::Capability(std::vector<std::uint32_t> terms)
    : terms_(std::move(terms)) {
  std::sort(terms_.begin(), terms_.end());
  terms_.erase(std::unique(terms_.begin(), terms_.end()), terms_.end());
}

bool Capability::Covers(
    const std::vector<std::uint32_t>& required_terms) const {
  for (std::uint32_t t : required_terms) {
    if (!Contains(t)) return false;
  }
  return true;
}

bool Capability::Contains(std::uint32_t term) const {
  return std::binary_search(terms_.begin(), terms_.end(), term);
}

}  // namespace sqlb
