#include "matchmaking/matchmaker.h"

#include <algorithm>

namespace sqlb {
namespace {

/// Inserts `id` into a sorted unique vector (no-op when present).
void SortedInsert(std::vector<ProviderId>& v, ProviderId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

/// Removes `id` from a sorted vector (no-op when absent).
void SortedErase(std::vector<ProviderId>& v, ProviderId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

}  // namespace

void AcceptAllMatchmaker::Register(ProviderId provider,
                                   const Capability& /*capability*/) {
  SortedInsert(sorted_, provider);
}

void AcceptAllMatchmaker::Unregister(ProviderId provider) {
  SortedErase(sorted_, provider);
}

std::vector<ProviderId> AcceptAllMatchmaker::Match(
    const Query& /*query*/) const {
  return sorted_;
}

void TermIndexMatchmaker::Register(ProviderId provider,
                                   const Capability& capability) {
  auto it = capabilities_.find(provider);
  if (it != capabilities_.end()) {
    for (std::uint32_t t : it->second.terms()) SortedErase(postings_[t], provider);
  }
  capabilities_[provider] = capability;
  for (std::uint32_t t : capability.terms()) {
    SortedInsert(postings_[t], provider);
  }
}

void TermIndexMatchmaker::Unregister(ProviderId provider) {
  auto it = capabilities_.find(provider);
  if (it == capabilities_.end()) return;
  for (std::uint32_t t : it->second.terms()) {
    SortedErase(postings_[t], provider);
  }
  capabilities_.erase(it);
}

std::vector<ProviderId> TermIndexMatchmaker::Match(const Query& query) const {
  if (query.required_terms.empty()) {
    // No constraints: every registered provider qualifies.
    std::vector<ProviderId> all;
    all.reserve(capabilities_.size());
    for (const auto& [id, unused] : capabilities_) all.push_back(id);
    std::sort(all.begin(), all.end());
    return all;
  }

  // Intersect postings, starting from the rarest term for speed.
  std::vector<const std::vector<ProviderId>*> lists;
  lists.reserve(query.required_terms.size());
  for (std::uint32_t t : query.required_terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return {};  // term held by nobody
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::vector<ProviderId> result = *lists.front();
  std::vector<ProviderId> next;
  for (std::size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    next.clear();
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

}  // namespace sqlb
