#ifndef SQLB_MATCHMAKING_CAPABILITY_H_
#define SQLB_MATCHMAKING_CAPABILITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

/// \file
/// Capability descriptions for matchmaking. Section 2 assumes a sound and
/// complete matchmaking procedure exists ("there is a large body of work on
/// matchmaking [11, 14]"); this substrate provides one: providers declare a
/// set of capability terms ("international-shipping", "cpu", ...), a query
/// carries required terms, and a provider matches when its capability set
/// covers the query's requirements. Terms are interned to dense ids so that
/// matching is integer work.

namespace sqlb {

/// Interns term strings to dense uint32 ids.
class TermDictionary {
 public:
  /// Returns the id for `term`, creating it on first use.
  std::uint32_t Intern(const std::string& term);

  /// Returns the id for `term` or kNotFoundId when unknown.
  std::uint32_t Lookup(const std::string& term) const;

  /// The term string of an id minted by Intern().
  const std::string& Name(std::uint32_t id) const;

  std::size_t size() const { return names_.size(); }

  static constexpr std::uint32_t kNotFoundId = 0xffffffffu;

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

/// A provider's declared capability: a deduplicated, sorted set of term ids.
class Capability {
 public:
  Capability() = default;
  /// Builds from arbitrary (possibly duplicated, unsorted) term ids.
  explicit Capability(std::vector<std::uint32_t> terms);

  /// True when this capability covers every required term.
  bool Covers(const std::vector<std::uint32_t>& required_terms) const;

  bool Contains(std::uint32_t term) const;
  const std::vector<std::uint32_t>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

 private:
  std::vector<std::uint32_t> terms_;  // sorted, unique
};

}  // namespace sqlb

#endif  // SQLB_MATCHMAKING_CAPABILITY_H_
