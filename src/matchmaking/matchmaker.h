#ifndef SQLB_MATCHMAKING_MATCHMAKER_H_
#define SQLB_MATCHMAKING_MATCHMAKER_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "matchmaking/capability.h"
#include "model/query.h"

/// \file
/// Matchmakers compute P_q, the set of providers able to treat a query
/// (Section 2). Two implementations:
///
///  - AcceptAllMatchmaker: the paper's simulation setup ("all the providers
///    in the system are able to perform all the incoming queries").
///  - TermIndexMatchmaker: a real inverted-index matchmaker over capability
///    terms — sound (no false positives: every returned provider covers the
///    query's terms) and complete (no false negatives: every covering
///    provider is returned), the two properties Section 2 assumes.
///
/// Both track provider registration/departure, so P_q always reflects the
/// currently active population.

namespace sqlb {

class Matchmaker {
 public:
  virtual ~Matchmaker() = default;

  /// Declares a provider and its capability. Re-registering replaces the
  /// capability.
  virtual void Register(ProviderId provider, const Capability& capability) = 0;

  /// Removes a departed provider; it no longer appears in any P_q.
  virtual void Unregister(ProviderId provider) = 0;

  /// Computes P_q for `query`, in ascending provider-id order.
  virtual std::vector<ProviderId> Match(const Query& query) const = 0;

  virtual std::size_t registered_count() const = 0;
};

/// P_q = all registered providers, regardless of the query description.
class AcceptAllMatchmaker final : public Matchmaker {
 public:
  void Register(ProviderId provider, const Capability& capability) override;
  void Unregister(ProviderId provider) override;
  std::vector<ProviderId> Match(const Query& query) const override;
  std::size_t registered_count() const override { return sorted_.size(); }

  /// The same P_q Match returns, borrowed instead of copied: AcceptAll's
  /// candidate set is query-independent, so the mediation hot path reads
  /// the member list in place (one vector copy per mediation saved — the
  /// reference is only valid until the next Register/Unregister).
  const std::vector<ProviderId>& MatchAll() const { return sorted_; }

 private:
  std::vector<ProviderId> sorted_;  // ascending, unique
};

/// Inverted-index matchmaker: P_q = providers whose capability covers all
/// of the query's required terms. A query with no required terms matches
/// every registered provider.
class TermIndexMatchmaker final : public Matchmaker {
 public:
  void Register(ProviderId provider, const Capability& capability) override;
  void Unregister(ProviderId provider) override;
  std::vector<ProviderId> Match(const Query& query) const override;
  std::size_t registered_count() const override {
    return capabilities_.size();
  }

 private:
  std::unordered_map<ProviderId, Capability> capabilities_;
  // term id -> ascending provider ids holding that term.
  std::unordered_map<std::uint32_t, std::vector<ProviderId>> postings_;
};

}  // namespace sqlb

#endif  // SQLB_MATCHMAKING_MATCHMAKER_H_
