#ifndef SQLB_MEM_CHUNKED_FIFO_H_
#define SQLB_MEM_CHUNKED_FIFO_H_

#include <cstddef>
#include <new>
#include <utility>

#include "common/status.h"
#include "mem/page_pool.h"

/// \file
/// FIFO queue over fixed-size chunks — the pooled replacement for the
/// per-agent std::deque. Chunks come from a SlabPool (lazily, so an idle
/// agent holds no queue memory at all) or from the heap when no pool is
/// wired (the AoS-baseline mode). Each chunk records the pool it came from:
/// a provider migrated by a churn handoff or failover adoption drains chunks
/// allocated on its old shard's arena from its new lane, and every chunk
/// returns to its owner.

namespace sqlb::mem {

/// The chunk granule shared by the agent containers. Small enough that a
/// provider holding a handful of queued queries or window entries stays
/// within one chunk; an eager first chunk matches the std::deque node the
/// legacy layout allocated up front.
inline constexpr std::size_t kAgentChunkBytes = 512;

template <typename T>
class ChunkedFifo {
 public:
  struct ChunkHeader {
    ChunkHeader* next;
    SlabPool* owner;  // nullptr = heap chunk
  };

  static constexpr std::size_t kChunkCapacity =
      (kAgentChunkBytes - sizeof(ChunkHeader)) / sizeof(T);
  static_assert(kChunkCapacity >= 1, "chunk too small for one element");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned element type");

  /// `eager_first_chunk` pre-allocates one heap chunk, reproducing the
  /// up-front node of the std::deque this container replaces (the honest
  /// AoS-baseline residency). Lazy mode allocates nothing until the first
  /// push.
  explicit ChunkedFifo(bool eager_first_chunk = false) {
    if (eager_first_chunk) {
      head_ = tail_ = NewChunk(nullptr);
      SQLB_CHECK(head_ != nullptr, "heap chunk allocation failed");
    }
  }

  ~ChunkedFifo() { Release(); }

  ChunkedFifo(const ChunkedFifo&) = delete;
  ChunkedFifo& operator=(const ChunkedFifo&) = delete;

  ChunkedFifo(ChunkedFifo&& other) noexcept { MoveFrom(other); }
  ChunkedFifo& operator=(ChunkedFifo&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  /// Appends `value`; chunks come from `pool` when non-null, the heap
  /// otherwise. Returns false (queue unchanged) when the pool's page budget
  /// is exhausted — the caller surfaces the out-of-memory status.
  bool push_back(T value, SlabPool* pool) {
    if (tail_ == nullptr) {
      ChunkHeader* c = NewChunk(pool);
      if (c == nullptr) return false;
      head_ = tail_ = c;
      head_idx_ = tail_idx_ = 0;
    } else if (tail_idx_ == kChunkCapacity) {
      ChunkHeader* c = NewChunk(pool);
      if (c == nullptr) return false;
      tail_->next = c;
      tail_ = c;
      tail_idx_ = 0;
    }
    ::new (static_cast<void*>(Slots(tail_) + tail_idx_)) T(std::move(value));
    ++tail_idx_;
    ++size_;
    return true;
  }

  T& front() {
    SQLB_CHECK(size_ > 0, "ChunkedFifo::front on empty queue");
    return Slots(head_)[head_idx_];
  }
  const T& front() const {
    SQLB_CHECK(size_ > 0, "ChunkedFifo::front on empty queue");
    return Slots(head_)[head_idx_];
  }

  void pop_front() {
    SQLB_CHECK(size_ > 0, "ChunkedFifo::pop_front on empty queue");
    Slots(head_)[head_idx_].~T();
    ++head_idx_;
    --size_;
    if (size_ == 0) {
      // head_ == tail_ whenever the queue is empty (middle chunks are
      // always full). Rewind in place: the last chunk is retained so an
      // enqueue/dequeue steady state never touches the allocator.
      head_idx_ = tail_idx_ = 0;
    } else if (head_idx_ == kChunkCapacity) {
      ChunkHeader* old = head_;
      head_ = old->next;
      head_idx_ = 0;
      FreeChunk(old);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Bytes of chunk storage currently held (the residency this queue
  /// contributes to bytes_per_provider).
  std::size_t resident_bytes() const { return chunks_ * kAgentChunkBytes; }

  /// Pops every element and frees every chunk (including the retained one).
  void Clear() { Release(); }

 private:
  static T* Slots(ChunkHeader* c) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(c) +
                                sizeof(ChunkHeader));
  }
  static const T* Slots(const ChunkHeader* c) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(c) +
                                      sizeof(ChunkHeader));
  }

  ChunkHeader* NewChunk(SlabPool* pool) {
    void* raw = pool != nullptr ? pool->Allocate()
                                : ::operator new(kAgentChunkBytes,
                                                 std::nothrow);
    if (raw == nullptr) return nullptr;
    ChunkHeader* c = static_cast<ChunkHeader*>(raw);
    c->next = nullptr;
    c->owner = pool;
    ++chunks_;
    return c;
  }

  void FreeChunk(ChunkHeader* c) {
    SQLB_CHECK(chunks_ > 0, "chunk accounting underflow");
    --chunks_;
    if (c->owner != nullptr) {
      c->owner->Free(c);
    } else {
      ::operator delete(static_cast<void*>(c));
    }
  }

  void Release() {
    while (size_ > 0) pop_front();
    if (head_ != nullptr) {
      FreeChunk(head_);
      head_ = tail_ = nullptr;
    }
    head_idx_ = tail_idx_ = 0;
  }

  void MoveFrom(ChunkedFifo& other) noexcept {
    head_ = other.head_;
    tail_ = other.tail_;
    head_idx_ = other.head_idx_;
    tail_idx_ = other.tail_idx_;
    size_ = other.size_;
    chunks_ = other.chunks_;
    other.head_ = other.tail_ = nullptr;
    other.head_idx_ = other.tail_idx_ = 0;
    other.size_ = 0;
    other.chunks_ = 0;
  }

  ChunkHeader* head_ = nullptr;
  ChunkHeader* tail_ = nullptr;
  std::size_t head_idx_ = 0;  // index of front() in head_
  std::size_t tail_idx_ = 0;  // one past the last element in tail_
  std::size_t size_ = 0;
  std::size_t chunks_ = 0;
};

}  // namespace sqlb::mem

#endif  // SQLB_MEM_CHUNKED_FIFO_H_
