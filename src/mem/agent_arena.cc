#include "mem/agent_arena.h"

#include "mem/chunked_fifo.h"

namespace sqlb::mem {

AgentArena::AgentArena(const AgentPoolConfig& config)
    : pages_(config.page_bytes, config.max_bytes_per_arena),
      slabs_(&pages_, kAgentChunkBytes) {}

}  // namespace sqlb::mem
