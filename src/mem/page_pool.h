#ifndef SQLB_MEM_PAGE_POOL_H_
#define SQLB_MEM_PAGE_POOL_H_

#include <cstddef>
#include <mutex>
#include <vector>

/// \file
/// Paged memory substrate for the compact agent-state tier: a PagePool hands
/// out large aligned pages (reserved from the OS once, recycled forever), and
/// a SlabPool carves one fixed block class out of those pages for the chunked
/// agent containers (mem/chunked_fifo.h, mem/paged_ring.h).
///
/// Design points, in the spirit of katana's PagePool/SharedMemRuntime
/// (SNIPPETS.md §2):
///  - pages are zero-filled on first allocation *by the calling thread*, so a
///    lane allocating from its own arena first-touches the page on its
///    worker's socket (the NUMA homing policy — no explicit mbind needed);
///  - freed pages/blocks go to freelists, never back to the OS: a churn or
///    failover wave recycles into the next admission instead of thrashing
///    malloc;
///  - an optional byte budget turns exhaustion into a nullptr status the
///    caller can surface, not an abort inside the allocator.
///
/// Block/page frees are mutex-protected: they are chunk-granular (one lock
/// per ~tens of queue entries) and may legitimately cross pools — a provider
/// migrated by a churn handoff drains chunks allocated on its old shard's
/// arena from its new lane (each chunk carries its owner pool and returns
/// there).

namespace sqlb::mem {

/// Allocates fixed-size, aligned, zero-filled-on-first-use pages.
class PagePool {
 public:
  static constexpr std::size_t kDefaultPageBytes = 1u << 16;  // 64 KiB
  static constexpr std::size_t kPageAlignment = 4096;

  /// `max_bytes` caps the total bytes reserved from the OS; 0 = unlimited.
  explicit PagePool(std::size_t page_bytes = kDefaultPageBytes,
                    std::size_t max_bytes = 0);
  ~PagePool();

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// One zeroed page, or nullptr when the byte budget is exhausted. Fresh
  /// pages are faulted in (memset) by the calling thread — the first-touch
  /// NUMA placement hook.
  void* Allocate();

  /// Returns a page to the freelist (never to the OS).
  void Free(void* page);

  std::size_t page_bytes() const { return page_bytes_; }
  /// Pages currently reserved from the OS (free + in use).
  std::size_t pages_reserved() const;
  std::size_t pages_free() const;
  std::size_t bytes_reserved() const;
  /// High-water mark of bytes reserved from the OS.
  std::size_t peak_bytes() const;

 private:
  const std::size_t page_bytes_;
  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::vector<void*> free_;
  std::vector<void*> all_;
  std::size_t peak_pages_ = 0;
};

/// Carves one fixed block class out of PagePool pages. Blocks are the chunk
/// granule of the agent containers; `block_bytes` is rounded up so every
/// block is max_align_t-aligned within its page.
class SlabPool {
 public:
  SlabPool(PagePool* pages, std::size_t block_bytes);

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// One block, or nullptr when the backing PagePool is out of budget.
  /// Contents are unspecified (recycled blocks are not re-zeroed).
  void* Allocate();

  /// Returns a block to this pool. Safe from any thread, including threads
  /// draining chunks that migrated to another shard's lane.
  void Free(void* block);

  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t blocks_live() const;
  std::size_t blocks_peak() const;

 private:
  struct FreeNode {
    FreeNode* next;
  };

  PagePool* const pages_;
  const std::size_t block_bytes_;
  mutable std::mutex mu_;
  FreeNode* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace sqlb::mem

#endif  // SQLB_MEM_PAGE_POOL_H_
