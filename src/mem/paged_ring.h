#ifndef SQLB_MEM_PAGED_RING_H_
#define SQLB_MEM_PAGED_RING_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>

#include "common/status.h"
#include "mem/chunked_fifo.h"
#include "mem/page_pool.h"

/// \file
/// Fixed-capacity ring over lazily-allocated chunks — the pooled replacement
/// for the eagerly-sized RingBuffer behind the provider characterization
/// windows. Push/eviction semantics replicate common/ring_buffer.h exactly
/// (same index arithmetic, same evicted element), so a window running on a
/// PagedRing is bit-identical to one on a RingBuffer; only the backing
/// storage differs. In eager mode every chunk is heap-allocated up front
/// (the honest AoS-baseline residency: the legacy RingBuffer sized its
/// vector to k at construction); in lazy mode a chunk materializes — from
/// the wired SlabPool, or the heap while none is wired — the first time a
/// logical slot inside it is written, so a provider proposed only a few
/// queries holds one chunk instead of k slots.

namespace sqlb::mem {

template <typename T>
class PagedRing {
 public:
  static_assert(std::is_trivially_copyable<T>::value &&
                    std::is_trivially_destructible<T>::value,
                "PagedRing requires trivially copyable elements");

  struct ChunkHeader {
    SlabPool* owner;  // nullptr = heap chunk
  };

  static constexpr std::size_t kChunkCapacity =
      (kAgentChunkBytes - sizeof(ChunkHeader)) / sizeof(T);
  static_assert(kChunkCapacity >= 1, "chunk too small for one element");

  PagedRing(std::size_t capacity, bool lazy)
      : capacity_(capacity),
        num_chunks_((capacity + kChunkCapacity - 1) / kChunkCapacity),
        chunks_(new ChunkHeader*[num_chunks_]()) {
    SQLB_CHECK(capacity >= 1, "PagedRing capacity must be >= 1");
    if (!lazy) {
      for (std::size_t c = 0; c < num_chunks_; ++c) {
        chunks_[c] = NewChunk(nullptr);
        SQLB_CHECK(chunks_[c] != nullptr, "heap chunk allocation failed");
      }
    }
  }

  ~PagedRing() {
    for (std::size_t c = 0; c < num_chunks_; ++c) {
      if (chunks_[c] != nullptr) FreeChunk(chunks_[c]);
    }
  }

  PagedRing(const PagedRing&) = delete;
  PagedRing& operator=(const PagedRing&) = delete;

  PagedRing(PagedRing&& other) noexcept
      : capacity_(other.capacity_),
        num_chunks_(other.num_chunks_),
        chunks_(std::move(other.chunks_)),
        resident_chunks_(other.resident_chunks_),
        pool_(other.pool_),
        head_(other.head_),
        size_(other.size_) {
    other.chunks_.reset(new ChunkHeader*[other.num_chunks_]());
    other.resident_chunks_ = 0;
    other.head_ = 0;
    other.size_ = 0;
  }

  /// Wires (or rewires) the pool lazy chunks come from; already-resident
  /// chunks keep their original owner and return there when freed.
  void set_pool(SlabPool* pool) { pool_ = pool; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends `value`; if full, evicts and returns the oldest element —
  /// exactly RingBuffer::Push.
  bool Push(T value, T* evicted = nullptr) {
    if (size_ < capacity_) {
      *MutableSlot((head_ + size_) % capacity_) = value;
      ++size_;
      return false;
    }
    T* head_slot = MutableSlot(head_);
    if (evicted != nullptr) *evicted = *head_slot;
    *head_slot = value;
    head_ = (head_ + 1) % capacity_;
    return true;
  }

  /// Element i = 0 is the oldest retained element.
  const T& at(std::size_t i) const {
    SQLB_CHECK(i < size_, "PagedRing index out of range");
    const std::size_t physical = (head_ + i) % capacity_;
    const ChunkHeader* c = chunks_[physical / kChunkCapacity];
    SQLB_CHECK(c != nullptr, "PagedRing slot read before first write");
    return Slots(c)[physical % kChunkCapacity];
  }

  /// Hints the prefetcher at the slot the next Push will write — the
  /// PagedRing analogue of RingBuffer::PrefetchPushSlot. A lazy slot whose
  /// chunk is not resident yet has no address to prefetch.
  void PrefetchPushSlot() const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t physical =
        size_ < capacity_ ? (head_ + size_) % capacity_ : head_;
    const ChunkHeader* c = chunks_[physical / kChunkCapacity];
    if (c != nullptr) {
      __builtin_prefetch(&Slots(c)[physical % kChunkCapacity], 1, 1);
    }
#endif
  }

  std::size_t resident_chunks() const { return resident_chunks_; }
  std::size_t resident_bytes() const {
    return resident_chunks_ * kAgentChunkBytes;
  }

 private:
  static T* Slots(ChunkHeader* c) {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(c) +
                                sizeof(ChunkHeader));
  }
  static const T* Slots(const ChunkHeader* c) {
    return reinterpret_cast<const T*>(reinterpret_cast<const char*>(c) +
                                      sizeof(ChunkHeader));
  }

  ChunkHeader* NewChunk(SlabPool* pool) {
    void* raw = pool != nullptr ? pool->Allocate()
                                : ::operator new(kAgentChunkBytes,
                                                 std::nothrow);
    if (raw == nullptr) return nullptr;
    ChunkHeader* c = static_cast<ChunkHeader*>(raw);
    c->owner = pool;
    ++resident_chunks_;
    return c;
  }

  void FreeChunk(ChunkHeader* c) {
    --resident_chunks_;
    if (c->owner != nullptr) {
      c->owner->Free(c);
    } else {
      ::operator delete(static_cast<void*>(c));
    }
  }

  T* MutableSlot(std::size_t physical) {
    ChunkHeader*& c = chunks_[physical / kChunkCapacity];
    if (c == nullptr) {
      c = NewChunk(pool_);
      SQLB_CHECK(c != nullptr,
                 "agent pool out of memory: raise agent_pool.max_bytes");
    }
    return Slots(c) + physical % kChunkCapacity;
  }

  const std::size_t capacity_;
  const std::size_t num_chunks_;
  std::unique_ptr<ChunkHeader*[]> chunks_;
  std::size_t resident_chunks_ = 0;
  SlabPool* pool_ = nullptr;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sqlb::mem

#endif  // SQLB_MEM_PAGED_RING_H_
