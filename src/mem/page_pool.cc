#include "mem/page_pool.h"

#include <cstring>
#include <new>

#include "common/status.h"

namespace sqlb::mem {

PagePool::PagePool(std::size_t page_bytes, std::size_t max_bytes)
    : page_bytes_(page_bytes), max_bytes_(max_bytes) {
  SQLB_CHECK(page_bytes_ >= 4096 && (page_bytes_ & (page_bytes_ - 1)) == 0,
             "page size must be a power of two >= 4096");
}

PagePool::~PagePool() {
  for (void* page : all_) {
    ::operator delete(page, std::align_val_t{kPageAlignment});
  }
}

void* PagePool::Allocate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      void* page = free_.back();
      free_.pop_back();
      return page;
    }
    if (max_bytes_ != 0 && (all_.size() + 1) * page_bytes_ > max_bytes_) {
      return nullptr;  // budget exhausted — caller surfaces the status
    }
  }
  void* page = ::operator new(page_bytes_, std::align_val_t{kPageAlignment},
                              std::nothrow);
  if (page == nullptr) return nullptr;
  // Fault the page in on the calling thread: first touch homes it on the
  // caller's NUMA node, which is the lane worker for pooled agent state.
  std::memset(page, 0, page_bytes_);
  std::lock_guard<std::mutex> lock(mu_);
  all_.push_back(page);
  if (all_.size() > peak_pages_) peak_pages_ = all_.size();
  return page;
}

void PagePool::Free(void* page) {
  SQLB_CHECK(page != nullptr, "freeing a null page");
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(page);
}

std::size_t PagePool::pages_reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

std::size_t PagePool::pages_free() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

std::size_t PagePool::bytes_reserved() const {
  return pages_reserved() * page_bytes_;
}

std::size_t PagePool::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_pages_ * page_bytes_;
}

SlabPool::SlabPool(PagePool* pages, std::size_t block_bytes)
    : pages_(pages),
      block_bytes_((block_bytes + alignof(std::max_align_t) - 1) &
                   ~(alignof(std::max_align_t) - 1)) {
  SQLB_CHECK(pages_ != nullptr, "slab pool needs a page pool");
  SQLB_CHECK(block_bytes_ >= sizeof(FreeNode) &&
                 block_bytes_ <= pages_->page_bytes(),
             "slab block size out of range");
}

void* SlabPool::Allocate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_ != nullptr) {
      FreeNode* node = free_;
      free_ = node->next;
      ++live_;
      if (live_ > peak_) peak_ = live_;
      return node;
    }
  }
  void* page = pages_->Allocate();
  if (page == nullptr) return nullptr;
  const std::size_t blocks = pages_->page_bytes() / block_bytes_;
  char* base = static_cast<char*>(page);
  std::lock_guard<std::mutex> lock(mu_);
  // Thread blocks [1, n) onto the freelist in address order; hand out
  // block 0 directly.
  for (std::size_t b = blocks; b-- > 1;) {
    FreeNode* node = reinterpret_cast<FreeNode*>(base + b * block_bytes_);
    node->next = free_;
    free_ = node;
  }
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return base;
}

void SlabPool::Free(void* block) {
  SQLB_CHECK(block != nullptr, "freeing a null block");
  std::lock_guard<std::mutex> lock(mu_);
  FreeNode* node = static_cast<FreeNode*>(block);
  node->next = free_;
  free_ = node;
  SQLB_CHECK(live_ > 0, "slab pool free without a live block");
  --live_;
}

std::size_t SlabPool::blocks_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::size_t SlabPool::blocks_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

}  // namespace sqlb::mem
