#ifndef SQLB_MEM_AGENT_ARENA_H_
#define SQLB_MEM_AGENT_ARENA_H_

#include <cstddef>
#include <memory>

#include "mem/page_pool.h"

/// \file
/// Per-lane arena for pooled agent state. Each mediation lane (shard) owns
/// one arena; agents homed on that shard draw their queue/window chunks from
/// it, so a lane's agent state lives in pages its own worker thread
/// first-touched (the NUMA placement policy — see mem/page_pool.h).

namespace sqlb::mem {

/// Configuration for the pooled agent-state tier (SystemConfig::agent_pool).
struct AgentPoolConfig {
  /// Off (default): agents keep the legacy eager heap layout — the AoS
  /// baseline every existing pin was measured against. On: chunked queues
  /// and window rings allocate lazily from per-lane arenas.
  bool enabled = false;
  /// Page size of each arena's PagePool.
  std::size_t page_bytes = PagePool::kDefaultPageBytes;
  /// Byte budget per arena; 0 = unlimited. Exhaustion surfaces as a
  /// checked out-of-memory status at the allocating agent, not an abort
  /// inside the allocator.
  std::size_t max_bytes_per_arena = 0;
};

/// One lane's pools: a PagePool and the single agent-chunk block class.
class AgentArena {
 public:
  explicit AgentArena(const AgentPoolConfig& config);

  SlabPool* slabs() { return &slabs_; }
  const PagePool& pages() const { return pages_; }

  std::size_t bytes_reserved() const { return pages_.bytes_reserved(); }
  std::size_t peak_bytes() const { return pages_.peak_bytes(); }

 private:
  PagePool pages_;
  SlabPool slabs_;
};

}  // namespace sqlb::mem

#endif  // SQLB_MEM_AGENT_ARENA_H_
