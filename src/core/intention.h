#ifndef SQLB_CORE_INTENTION_H_
#define SQLB_CORE_INTENTION_H_

/// \file
/// The SQLB intention functions (Section 5.1-5.2).
///
/// A consumer's intention to allocate a query to a provider trades its
/// private preference against the provider's reputation (Definition 7,
/// balanced by upsilon). A provider's intention to perform a query trades
/// its private preference against its utilization (Definition 8), balanced
/// *on the fly* by the provider's own preference-based satisfaction: a
/// satisfied provider tolerates undesired queries; a dissatisfied one
/// focuses on its preferences.
///
/// Outputs are positive when the participant wants the interaction and
/// negative otherwise. With the paper's epsilon = 1 the negative branches
/// can exceed the nominal [-1, 1] range (Figure 2 plots values down to
/// -2.5); raw values are used for ranking, and are clamped only when they
/// enter the satisfaction model (DESIGN.md fidelity decision 2).

namespace sqlb {

/// How a consumer derives intentions from preference and reputation.
enum class ConsumerIntentionMode {
  /// Definition 7 as written.
  kFormula,
  /// The paper's simulation setup (Section 6.1, upsilon = 1): the intention
  /// *is* the preference. Definition 7's negative branch with upsilon = 1
  /// would still distort negative preferences, so the setup's stated intent
  /// ("the consumers' intentions denote their preferences") gets its own
  /// mode (DESIGN.md fidelity decision 3).
  kPreferenceOnly,
};

struct ConsumerIntentionParams {
  /// Balance between own preference (1) and provider reputation (0).
  /// A consumer with rich direct experience of a provider sets
  /// upsilon > 0.5; one relying on hearsay sets upsilon < 0.5.
  double upsilon = 1.0;
  /// Keeps the negative branch away from zero when preference or reputation
  /// saturate at 1. The paper "usually" sets 1.
  double epsilon = 1.0;
  ConsumerIntentionMode mode = ConsumerIntentionMode::kFormula;
};

/// Definition 7. `preference` = prf_c(q, p) in [-1, 1]; `reputation` =
/// rep(p) in [-1, 1]. Inputs outside their domains are clamped.
double ConsumerIntention(double preference, double reputation,
                         const ConsumerIntentionParams& params);

/// How a provider derives intentions (the non-default modes exist for the
/// ablation study; the paper's SQLB uses kSelfBalancing).
enum class ProviderIntentionMode {
  /// Definition 8 as written: satisfaction-driven preference/utilization
  /// tradeoff.
  kSelfBalancing,
  /// Ablation: intention = preference, utilization ignored.
  kPreferenceOnly,
  /// Ablation: intention = 1 - 2 * min(utilization, 1), preference ignored
  /// (wants work when idle, refuses when saturated).
  kUtilizationOnly,
};

struct ProviderIntentionParams {
  /// Same role as in Definition 7; the paper "usually" sets 1.
  double epsilon = 1.0;
  ProviderIntentionMode mode = ProviderIntentionMode::kSelfBalancing;
};

/// Definition 8. `preference` = prf_p(q) in [-1, 1]; `utilization` =
/// Ut(p) >= 0 (may exceed 1 under overload); `preference_satisfaction` is
/// the provider's *private, preference-based* satisfaction in [0, 1]
/// (Section 5.2 requires the self-balance to use preferences, not shown
/// intentions). Inputs outside their domains are clamped.
double ProviderIntention(double preference, double utilization,
                         double preference_satisfaction,
                         const ProviderIntentionParams& params);

/// Definition 8 with the provider-state factors hoisted: utilization and
/// satisfaction are fixed at construction and only the per-query preference
/// varies. Both branch factors that depend on state alone — (1 - ut)^sat
/// and (ut + eps)^sat — are precomputed, so Eval() costs one pow instead of
/// two. Built once per burst per candidate by the batched intake
/// (MediationCore::AllocateBatch); Eval(prf) returns bit-for-bit the value
/// of ProviderIntention(prf, ut, sat, params) — pow is deterministic, and
/// the factor multiplication order is preserved.
class ProviderIntentionEvaluator {
 public:
  /// An empty evaluator (default params, idle provider) so cache tables can
  /// be pre-sized; always overwritten by a real refresh before Eval runs.
  ProviderIntentionEvaluator() = default;
  ProviderIntentionEvaluator(double utilization,
                             double preference_satisfaction,
                             const ProviderIntentionParams& params);

  double Eval(double preference) const;

 private:
  ProviderIntentionMode mode_ = ProviderIntentionMode::kSelfBalancing;
  double epsilon_ = 1.0;
  double clamped_sat_ = 0.5;    // Clamp(sat, 0, 1)
  double one_minus_sat_ = 0.5;  // exponent of the preference factor
  double utilization_ = 0.0;    // max(0, ut)
  double positive_state_factor_ = 1.0;  // (1 - ut)^sat, valid when ut < 1
  double negative_state_factor_ = 1.0;  // (ut + eps)^sat
  double utilization_only_value_ = 0.0;
};

}  // namespace sqlb

#endif  // SQLB_CORE_INTENTION_H_
