#include "core/allocation.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb {

std::size_t SelectionCount(const AllocationRequest& request) {
  SQLB_CHECK(request.query != nullptr, "allocation request without a query");
  return std::min<std::size_t>(request.query->n, request.candidates.size());
}

void AllocationMethod::AllocateBatch(const AllocationRequest* requests,
                                     std::size_t count,
                                     AllocationDecision* decisions) {
  for (std::size_t i = 0; i < count; ++i) {
    decisions[i] = Allocate(requests[i]);
  }
}

}  // namespace sqlb
