#include "core/allocation.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb {

std::size_t SelectionCount(const AllocationRequest& request) {
  SQLB_CHECK(request.query != nullptr, "allocation request without a query");
  return std::min<std::size_t>(request.query->n, request.candidates.size());
}

}  // namespace sqlb
