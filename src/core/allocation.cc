#include "core/allocation.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb {

void CandidateColumns::Clear() {
  ids.clear();
  consumer_intention.clear();
  provider_intention.clear();
  provider_satisfaction.clear();
  utilization.clear();
  capacity.clear();
  backlog_seconds.clear();
  bid_price.clear();
  estimated_delay.clear();
}

void CandidateColumns::Reserve(std::size_t n) {
  ids.reserve(n);
  consumer_intention.reserve(n);
  provider_intention.reserve(n);
  provider_satisfaction.reserve(n);
  utilization.reserve(n);
  capacity.reserve(n);
  backlog_seconds.reserve(n);
  bid_price.reserve(n);
  estimated_delay.reserve(n);
}

void CandidateColumns::Push(const CandidateProvider& candidate) {
  ids.push_back(candidate.id);
  consumer_intention.push_back(candidate.consumer_intention);
  provider_intention.push_back(candidate.provider_intention);
  provider_satisfaction.push_back(candidate.provider_satisfaction);
  utilization.push_back(candidate.utilization);
  capacity.push_back(candidate.capacity);
  backlog_seconds.push_back(candidate.backlog_seconds);
  bid_price.push_back(candidate.bid_price);
  estimated_delay.push_back(candidate.estimated_delay);
}

CandidateProvider CandidateColumns::At(std::size_t i) const {
  SQLB_CHECK(i < ids.size(), "candidate column index out of range");
  CandidateProvider candidate;
  candidate.id = ids[i];
  candidate.consumer_intention = consumer_intention[i];
  candidate.provider_intention = provider_intention[i];
  candidate.provider_satisfaction = provider_satisfaction[i];
  // The optional columns may be unmaterialized (a gather honouring a
  // narrowed CandidateColumnNeeds mask leaves them empty): keep the AoS
  // defaults then, so a method that narrowed its mask but still routes
  // through the materializing adapter reads defined values, not past the
  // end of an empty vector.
  if (i < utilization.size()) candidate.utilization = utilization[i];
  if (i < capacity.size()) candidate.capacity = capacity[i];
  if (i < backlog_seconds.size()) {
    candidate.backlog_seconds = backlog_seconds[i];
  }
  if (i < bid_price.size()) candidate.bid_price = bid_price[i];
  if (i < estimated_delay.size()) {
    candidate.estimated_delay = estimated_delay[i];
  }
  return candidate;
}

std::size_t SelectionCount(const AllocationRequest& request) {
  SQLB_CHECK(request.query != nullptr, "allocation request without a query");
  return std::min<std::size_t>(request.query->n, request.candidates.size());
}

std::size_t SelectionCount(const Query& query, std::size_t n_candidates) {
  return std::min<std::size_t>(query.n, n_candidates);
}

void AllocationMethod::AllocateBatch(const AllocationRequest* requests,
                                     std::size_t count,
                                     AllocationDecision* decisions) {
  for (std::size_t i = 0; i < count; ++i) {
    decisions[i] = Allocate(requests[i]);
  }
}

AllocationDecision AllocationMethod::AllocateColumns(
    const ColumnarRequest& request) {
  SQLB_CHECK(request.candidates != nullptr,
             "columnar request without candidates");
  const CandidateColumns& columns = *request.candidates;
  aos_scratch_.query = request.query;
  aos_scratch_.consumer_satisfaction = request.consumer_satisfaction;
  aos_scratch_.candidates.clear();
  aos_scratch_.candidates.reserve(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    aos_scratch_.candidates.push_back(columns.At(i));
  }
  return Allocate(aos_scratch_);
}

void AllocationMethod::AllocateBatchColumns(const ColumnarRequest* requests,
                                            std::size_t count,
                                            AllocationDecision* decisions) {
  for (std::size_t i = 0; i < count; ++i) {
    decisions[i] = AllocateColumns(requests[i]);
  }
}

}  // namespace sqlb
