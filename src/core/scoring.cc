#include "core/scoring.h"

#include <algorithm>
#include <numeric>

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb {

double OmegaBalance(double consumer_satisfaction,
                    double provider_satisfaction) {
  const double sc = Clamp(consumer_satisfaction, 0.0, 1.0);
  const double sp = Clamp(provider_satisfaction, 0.0, 1.0);
  return ((sc - sp) + 1.0) / 2.0;
}

double ProviderScore(double provider_intention, double consumer_intention,
                     double omega, double epsilon) {
  SQLB_CHECK(epsilon > 0.0, "Definition 9 requires epsilon > 0");
  const double w = Clamp(omega, 0.0, 1.0);
  const double pi = provider_intention;
  const double ci = consumer_intention;
  if (pi > 0.0 && ci > 0.0) {
    return BoundedPow(pi, w) * BoundedPow(ci, 1.0 - w);
  }
  // Negative branch: distance of each intention from full agreement (1),
  // weighted by omega. Intentions below -1 (possible with epsilon = 1 in
  // Defs. 7-8) simply deepen the refusal.
  return -(BoundedPow(1.0 - pi + epsilon, w) *
           BoundedPow(1.0 - ci + epsilon, 1.0 - w));
}

void SqlbScoreColumns(const double* provider_intention,
                      const double* consumer_intention,
                      const double* provider_satisfaction, std::size_t count,
                      double consumer_satisfaction, double epsilon,
                      const double* fixed_omega, std::vector<double>* scores) {
  scores->clear();
  scores->reserve(count);
  if (fixed_omega != nullptr) {
    const double omega = *fixed_omega;
    for (std::size_t i = 0; i < count; ++i) {
      scores->push_back(ProviderScore(provider_intention[i],
                                      consumer_intention[i], omega, epsilon));
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double omega =
        OmegaBalance(consumer_satisfaction, provider_satisfaction[i]);
    scores->push_back(ProviderScore(provider_intention[i],
                                    consumer_intention[i], omega, epsilon));
  }
}

std::vector<std::size_t> RankByScore(const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

std::vector<std::size_t> SelectTopN(const std::vector<double>& scores,
                                    std::size_t n) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t take = std::min(n, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  order.resize(take);
  return order;
}

}  // namespace sqlb
