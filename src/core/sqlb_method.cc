#include "core/sqlb_method.h"

#include "common/status.h"
#include "core/scoring.h"

namespace sqlb {

SqlbMethod::SqlbMethod(SqlbOptions options) : options_(options) {
  SQLB_CHECK(options_.epsilon > 0.0, "SQLB requires epsilon > 0");
  if (options_.fixed_omega.has_value()) {
    SQLB_CHECK(*options_.fixed_omega >= 0.0 && *options_.fixed_omega <= 1.0,
               "fixed omega must lie in [0, 1]");
  }
}

AllocationDecision SqlbMethod::Allocate(const AllocationRequest& request) {
  AllocationDecision decision;
  decision.scores.reserve(request.candidates.size());
  for (const CandidateProvider& p : request.candidates) {
    const double omega =
        options_.fixed_omega.has_value()
            ? *options_.fixed_omega
            : OmegaBalance(request.consumer_satisfaction,
                           p.provider_satisfaction);
    decision.scores.push_back(ProviderScore(p.provider_intention,
                                            p.consumer_intention, omega,
                                            options_.epsilon));
  }
  decision.selected = SelectTopN(decision.scores, SelectionCount(request));
  return decision;
}

}  // namespace sqlb
