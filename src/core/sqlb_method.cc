#include "core/sqlb_method.h"

#include "common/status.h"
#include "core/scoring.h"

namespace sqlb {

SqlbMethod::SqlbMethod(SqlbOptions options) : options_(options) {
  SQLB_CHECK(options_.epsilon > 0.0, "SQLB requires epsilon > 0");
  if (options_.fixed_omega.has_value()) {
    SQLB_CHECK(*options_.fixed_omega >= 0.0 && *options_.fixed_omega <= 1.0,
               "fixed omega must lie in [0, 1]");
  }
}

AllocationDecision SqlbMethod::Allocate(const AllocationRequest& request) {
  AllocationDecision decision;
  decision.scores.reserve(request.candidates.size());
  for (const CandidateProvider& p : request.candidates) {
    const double omega =
        options_.fixed_omega.has_value()
            ? *options_.fixed_omega
            : OmegaBalance(request.consumer_satisfaction,
                           p.provider_satisfaction);
    decision.scores.push_back(ProviderScore(p.provider_intention,
                                            p.consumer_intention, omega,
                                            options_.epsilon));
  }
  decision.selected = SelectTopN(decision.scores, SelectionCount(request));
  return decision;
}

AllocationDecision SqlbMethod::AllocateColumns(const ColumnarRequest& request) {
  SQLB_CHECK(request.query != nullptr && request.candidates != nullptr,
             "columnar request needs a query and candidates");
  const CandidateColumns& columns = *request.candidates;
  AllocationDecision decision;
  SqlbScoreColumns(columns.provider_intention.data(),
                   columns.consumer_intention.data(),
                   columns.provider_satisfaction.data(), columns.size(),
                   request.consumer_satisfaction, options_.epsilon,
                   options_.fixed_omega.has_value() ? &*options_.fixed_omega
                                                    : nullptr,
                   &decision.scores);
  decision.selected = SelectTopN(
      decision.scores, SelectionCount(*request.query, columns.size()));
  return decision;
}

}  // namespace sqlb
