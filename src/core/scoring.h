#ifndef SQLB_CORE_SCORING_H_
#define SQLB_CORE_SCORING_H_

#include <cstddef>
#include <vector>

/// \file
/// Scoring and ranking of providers (Section 5.3).
///
/// The score of a provider for a query balances the provider's intention to
/// perform it against the consumer's intention to allocate it there
/// (Definition 9). The balance weight omega is derived from the two sides'
/// mediator-visible satisfactions (Eq. 6): the less satisfied side gets the
/// larger say, which is what lets SQLB trade consumers' intentions for
/// providers' intentions "in according to their satisfaction".

namespace sqlb {

/// Eq. 6 — omega = ((sat_consumer - sat_provider) + 1) / 2, in [0, 1].
/// omega = 1 weighs only the provider's intention; omega = 0 only the
/// consumer's. Inputs are satisfactions in [0, 1] (clamped).
double OmegaBalance(double consumer_satisfaction,
                    double provider_satisfaction);

/// Definition 9 — the score of provider p for query q given the provider's
/// intention PI_q[p], the consumer's intention CI_q[p], and the balance
/// omega. epsilon > 0 keeps the negative branch away from zero. Intentions
/// may exceed [-1, 1] on the negative side (see core/intention.h); larger
/// scores are better.
double ProviderScore(double provider_intention, double consumer_intention,
                     double omega, double epsilon = 1.0);

/// Definition 9 over struct-of-arrays columns: fills `scores[i]` with
/// ProviderScore(provider_intention[i], consumer_intention[i], omega_i,
/// epsilon), where omega_i is Eq. 6 over (consumer_satisfaction,
/// provider_satisfaction[i]) — or `*fixed_omega` for all i when non-null
/// (the omega ablation's pinned-omega mode). The SQLB scoring kernel of the
/// mediation hot path: all four inputs are contiguous doubles filled from
/// the characterization cache, so the loop never strides over candidate
/// structs. Arithmetic is per-element identical to the scalar calls, in
/// index order — bit-for-bit the scores the AoS loop produces.
void SqlbScoreColumns(const double* provider_intention,
                      const double* consumer_intention,
                      const double* provider_satisfaction, std::size_t count,
                      double consumer_satisfaction, double epsilon,
                      const double* fixed_omega, std::vector<double>* scores);

/// Ranks candidate indices by descending score; ties broken by original
/// index (deterministic). Returns the permutation (the R_q vector of
/// Section 5.3: element 0 is the best-scored provider).
std::vector<std::size_t> RankByScore(const std::vector<double>& scores);

/// Returns the first min(n, scores.size()) entries of RankByScore: the
/// providers Algorithm 1 selects. Uses a partial sort; O(N log n).
std::vector<std::size_t> SelectTopN(const std::vector<double>& scores,
                                    std::size_t n);

}  // namespace sqlb

#endif  // SQLB_CORE_SCORING_H_
