#ifndef SQLB_CORE_SQLB_METHOD_H_
#define SQLB_CORE_SQLB_METHOD_H_

#include <optional>
#include <string>

#include "core/allocation.h"

/// \file
/// The SQLB allocation method: the scoring/ranking/selection part of
/// Algorithm 1 (Section 5.4). Intention gathering (lines 2-5 of the
/// algorithm) is the mediator's job — runtime/mediation_core.h runs it
/// synchronously for both the DES drivers and the wall-clock serving tier
/// (runtime/serving_mediator.h) — so this class receives intentions already
/// collected in the AllocationRequest.

namespace sqlb {

struct SqlbOptions {
  /// epsilon of Definition 9.
  double epsilon = 1.0;
  /// When set, overrides Eq. 6 with a fixed omega in [0, 1] (Section 5.3
  /// notes one can pin omega for cooperative settings, e.g. omega = 0 to
  /// rank purely by consumer intentions). Used by the omega ablation.
  std::optional<double> fixed_omega;
};

/// Satisfaction-based Query Load Balancing.
class SqlbMethod final : public AllocationMethod {
 public:
  explicit SqlbMethod(SqlbOptions options = {});

  std::string name() const override { return "SQLB"; }

  /// Lines 6-10 of Algorithm 1: per provider, omega from the consumer's and
  /// provider's satisfaction (Eq. 6), score from the two intentions
  /// (Definition 9), then rank and take the q.n best.
  AllocationDecision Allocate(const AllocationRequest& request) override;

  /// Same decision over the SoA candidate layout: the SqlbScoreColumns
  /// kernel runs over the contiguous intention/satisfaction columns, then
  /// SelectTopN — no AoS materialization. Bit-identical to Allocate over
  /// the gathered AoS request.
  AllocationDecision AllocateColumns(const ColumnarRequest& request) override;

  /// Definition 9 reads intentions and satisfactions only — none of the
  /// load/economy columns need to be materialized for SQLB.
  CandidateColumnNeeds RequiredColumns() const override {
    return CandidateColumnNeeds::None();
  }

  const SqlbOptions& options() const { return options_; }

 private:
  SqlbOptions options_;
};

}  // namespace sqlb

#endif  // SQLB_CORE_SQLB_METHOD_H_
