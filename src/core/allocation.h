#ifndef SQLB_CORE_ALLOCATION_H_
#define SQLB_CORE_ALLOCATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "model/query.h"

/// \file
/// The allocation-method interface the mediator dispatches to. A method
/// receives, per query, the candidate set P_q with everything a mediator can
/// legitimately observe — shown intentions, utilization-related state the
/// providers chose to expose, economic bids — and returns the ordered
/// selection of min(q.n, N) providers (the All_oc vector of Section 2).
///
/// SQLB (core/sqlb_method.h), the baselines and the extensions
/// (methods/*.h) all implement this interface, which is what lets the
/// experiment harness swap them while keeping everything else identical
/// ("the only thing that changes is the way in which each method allocates
/// the queries", Section 6.1).

namespace sqlb {

/// Mediator-visible snapshot of one candidate provider for one query.
struct CandidateProvider {
  ProviderId id;
  /// CI_q[p] — the consumer's shown intention for allocating q to p.
  double consumer_intention = 0.0;
  /// PI_q[p] — p's shown intention for performing q.
  double provider_intention = 0.0;
  /// p's mediator-visible (intention-based) satisfaction, for Eq. 6.
  double provider_satisfaction = 0.5;
  /// Ut(p) — p's current utilization (allocated work rate / capacity).
  double utilization = 0.0;
  /// p's processing capacity in treatment units per second.
  double capacity = 1.0;
  /// Seconds of work currently queued at p (backlog / capacity).
  double backlog_seconds = 0.0;
  /// Mariposa-style asking price for this query (methods/mariposa.h).
  double bid_price = 0.0;
  /// p's estimate of the delay before q would complete, in seconds.
  double estimated_delay = 0.0;
};

/// One allocation request: the query plus its candidate set P_q.
struct AllocationRequest {
  const Query* query = nullptr;
  /// The issuing consumer's mediator-visible satisfaction, for Eq. 6.
  double consumer_satisfaction = 0.5;
  std::vector<CandidateProvider> candidates;
};

/// The outcome: `selected` holds indices into request.candidates, best
/// first, with size min(q.n, N). `scores` (aligned with candidates) records
/// each method's internal ranking value for diagnostics and tests; methods
/// for which "higher is better" does not apply (e.g. bid prices) negate.
struct AllocationDecision {
  std::vector<std::size_t> selected;
  std::vector<double> scores;
};

/// Strategy interface. Implementations must be deterministic given the
/// request (any randomness must come through injected state), so that
/// experiment runs are reproducible.
class AllocationMethod {
 public:
  virtual ~AllocationMethod() = default;

  /// Stable identifier used in reports ("SQLB", "CapacityBased", ...).
  virtual std::string name() const = 0;

  /// Picks min(q.n, candidates.size()) providers. `request.candidates` is
  /// never empty (the system only admits feasible queries, Section 2).
  virtual AllocationDecision Allocate(const AllocationRequest& request) = 0;

  /// Scores one burst of requests in a single pass: the batched-intake hot
  /// path (MediationCore::AllocateBatch) hands every same-burst request at
  /// once so a method can hoist per-burst work (shared candidate set,
  /// provider-side rank components) out of the per-query loop. The default
  /// simply delegates to Allocate per request, so overriding is an
  /// optimization, never a semantic requirement; `decisions` has room for
  /// `count` results. A burst of one must decide exactly like Allocate —
  /// that bit-for-bit contract is pinned in tests/shard/.
  virtual void AllocateBatch(const AllocationRequest* requests,
                             std::size_t count, AllocationDecision* decisions);
};

/// Number of providers Algorithm 1 must select for `request`.
std::size_t SelectionCount(const AllocationRequest& request);

}  // namespace sqlb

#endif  // SQLB_CORE_ALLOCATION_H_
