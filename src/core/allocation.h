#ifndef SQLB_CORE_ALLOCATION_H_
#define SQLB_CORE_ALLOCATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "model/query.h"

/// \file
/// The allocation-method interface the mediator dispatches to. A method
/// receives, per query, the candidate set P_q with everything a mediator can
/// legitimately observe — shown intentions, utilization-related state the
/// providers chose to expose, economic bids — and returns the ordered
/// selection of min(q.n, N) providers (the All_oc vector of Section 2).
///
/// SQLB (core/sqlb_method.h), the baselines and the extensions
/// (methods/*.h) all implement this interface, which is what lets the
/// experiment harness swap them while keeping everything else identical
/// ("the only thing that changes is the way in which each method allocates
/// the queries", Section 6.1).

namespace sqlb {

/// Mediator-visible snapshot of one candidate provider for one query.
struct CandidateProvider {
  ProviderId id;
  /// CI_q[p] — the consumer's shown intention for allocating q to p.
  double consumer_intention = 0.0;
  /// PI_q[p] — p's shown intention for performing q.
  double provider_intention = 0.0;
  /// p's mediator-visible (intention-based) satisfaction, for Eq. 6.
  double provider_satisfaction = 0.5;
  /// Ut(p) — p's current utilization (allocated work rate / capacity).
  double utilization = 0.0;
  /// p's processing capacity in treatment units per second.
  double capacity = 1.0;
  /// Seconds of work currently queued at p (backlog / capacity).
  double backlog_seconds = 0.0;
  /// Mariposa-style asking price for this query (methods/mariposa.h).
  double bid_price = 0.0;
  /// p's estimate of the delay before q would complete, in seconds.
  double estimated_delay = 0.0;
};

/// One allocation request: the query plus its candidate set P_q.
struct AllocationRequest {
  const Query* query = nullptr;
  /// The issuing consumer's mediator-visible satisfaction, for Eq. 6.
  double consumer_satisfaction = 0.5;
  std::vector<CandidateProvider> candidates;
};

/// Struct-of-arrays form of a candidate set: one contiguous column per
/// CandidateProvider field, aligned by candidate index. This is the layout
/// the mediation hot path fills (from the event-driven characterization
/// cache) and the scoring kernels consume — ProviderScore/SelectTopN walk
/// contiguous doubles instead of striding over 72-byte structs. The AoS
/// CandidateProvider remains the compatibility view: At(i) gathers one, and
/// AllocationMethod's default columnar entry points materialize a full AoS
/// request for methods that have no columnar override.
struct CandidateColumns {
  std::vector<ProviderId> ids;
  std::vector<double> consumer_intention;
  std::vector<double> provider_intention;
  std::vector<double> provider_satisfaction;
  std::vector<double> utilization;
  std::vector<double> capacity;
  std::vector<double> backlog_seconds;
  std::vector<double> bid_price;
  std::vector<double> estimated_delay;

  std::size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
  void Clear();
  void Reserve(std::size_t n);
  /// Appends one candidate across every column.
  void Push(const CandidateProvider& candidate);
  /// Gathers candidate `i` back into the AoS view.
  CandidateProvider At(std::size_t i) const;
};

/// One allocation request over the columnar candidate layout. `candidates`
/// is borrowed and must outlive the call.
struct ColumnarRequest {
  const Query* query = nullptr;
  double consumer_satisfaction = 0.5;
  const CandidateColumns* candidates = nullptr;
};

/// Which optional candidate columns a method actually reads. The gather
/// loop materializes only these; ids, consumer_intention,
/// provider_intention and provider_satisfaction are always filled (the
/// Algorithm-1 core consumes them for scoring and the post-decision half).
/// The default (everything) is what the AoS compatibility adapter needs.
struct CandidateColumnNeeds {
  bool utilization = true;
  bool capacity = true;
  bool backlog_seconds = true;
  bool bid_price = true;
  bool estimated_delay = true;

  static CandidateColumnNeeds All() { return {}; }
  static CandidateColumnNeeds None() {
    return {false, false, false, false, false};
  }
};

/// The outcome: `selected` holds indices into request.candidates, best
/// first, with size min(q.n, N). `scores` (aligned with candidates) records
/// each method's internal ranking value for diagnostics and tests; methods
/// for which "higher is better" does not apply (e.g. bid prices) negate.
struct AllocationDecision {
  std::vector<std::size_t> selected;
  std::vector<double> scores;
};

/// Strategy interface. Implementations must be deterministic given the
/// request (any randomness must come through injected state), so that
/// experiment runs are reproducible.
class AllocationMethod {
 public:
  virtual ~AllocationMethod() = default;

  /// Stable identifier used in reports ("SQLB", "CapacityBased", ...).
  virtual std::string name() const = 0;

  /// Picks min(q.n, candidates.size()) providers. `request.candidates` is
  /// never empty (the system only admits feasible queries, Section 2).
  virtual AllocationDecision Allocate(const AllocationRequest& request) = 0;

  /// Scores one burst of requests in a single pass: the batched-intake hot
  /// path (MediationCore::AllocateBatch) hands every same-burst request at
  /// once so a method can hoist per-burst work (shared candidate set,
  /// provider-side rank components) out of the per-query loop. The default
  /// simply delegates to Allocate per request, so overriding is an
  /// optimization, never a semantic requirement; `decisions` has room for
  /// `count` results. A burst of one must decide exactly like Allocate —
  /// that bit-for-bit contract is pinned in tests/shard/.
  virtual void AllocateBatch(const AllocationRequest* requests,
                             std::size_t count, AllocationDecision* decisions);

  /// Columnar entry point of the mediation hot path. The default
  /// materializes an AoS AllocationRequest from the columns (into a member
  /// scratch, reused across calls) and delegates to Allocate, so every
  /// method keeps working unchanged; methods with a dedicated SoA kernel
  /// (SQLB, capacity-based, Mariposa) override this and never touch the AoS
  /// form. Must decide bit-for-bit like Allocate over the gathered AoS
  /// request — the contract tests/core/allocation_contract_test.cc pins for
  /// every method.
  virtual AllocationDecision AllocateColumns(const ColumnarRequest& request);

  /// Columnar burst scoring; default loops AllocateColumns per request.
  virtual void AllocateBatchColumns(const ColumnarRequest* requests,
                                    std::size_t count,
                                    AllocationDecision* decisions);

  /// The optional columns this method's scoring reads. The mediation
  /// gather skips the rest — a method overriding AllocateColumns should
  /// override this too, or it pays for columns it never touches. Must be
  /// stable over the method's lifetime (the core reads it once).
  virtual CandidateColumnNeeds RequiredColumns() const {
    return CandidateColumnNeeds::All();
  }

 protected:
  /// Scratch for the default AllocateColumns AoS materialization (methods
  /// are single-threaded per shard; reusing it keeps the compatibility path
  /// allocation-free after warm-up).
  AllocationRequest aos_scratch_;
};

/// Number of providers Algorithm 1 must select for `request`.
std::size_t SelectionCount(const AllocationRequest& request);
/// Same rule — min(q.n, n_candidates) — for the columnar path.
std::size_t SelectionCount(const Query& query, std::size_t n_candidates);

}  // namespace sqlb

#endif  // SQLB_CORE_ALLOCATION_H_
