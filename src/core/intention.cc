#include "core/intention.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb {

double ConsumerIntention(double preference, double reputation,
                         const ConsumerIntentionParams& params) {
  SQLB_CHECK(params.epsilon > 0.0, "Definition 7 requires epsilon > 0");
  SQLB_CHECK(params.upsilon >= 0.0 && params.upsilon <= 1.0,
             "Definition 7 requires upsilon in [0, 1]");
  const double prf = Clamp(preference, -1.0, 1.0);
  if (params.mode == ConsumerIntentionMode::kPreferenceOnly) return prf;

  const double rep = Clamp(reputation, -1.0, 1.0);
  const double u = params.upsilon;
  const double eps = params.epsilon;
  if (prf > 0.0 && rep > 0.0) {
    return BoundedPow(prf, u) * BoundedPow(rep, 1.0 - u);
  }
  // Negative branch: the more the preference or the reputation falls short
  // of 1, the stronger the refusal. epsilon keeps the product away from 0
  // when one factor saturates.
  return -(BoundedPow(1.0 - prf + eps, u) *
           BoundedPow(1.0 - rep + eps, 1.0 - u));
}

double ProviderIntention(double preference, double utilization,
                         double preference_satisfaction,
                         const ProviderIntentionParams& params) {
  SQLB_CHECK(params.epsilon > 0.0, "Definition 8 requires epsilon > 0");
  const double prf = Clamp(preference, -1.0, 1.0);
  const double ut = std::max(0.0, utilization);

  switch (params.mode) {
    case ProviderIntentionMode::kPreferenceOnly:
      return prf;
    case ProviderIntentionMode::kUtilizationOnly:
      return 1.0 - 2.0 * std::min(ut, 1.0);
    case ProviderIntentionMode::kSelfBalancing:
      break;
  }

  const double sat = Clamp(preference_satisfaction, 0.0, 1.0);
  const double eps = params.epsilon;
  if (prf > 0.0 && ut < 1.0) {
    // A satisfied provider (sat -> 1) weighs utilization; a dissatisfied
    // one (sat -> 0) weighs its preference (Section 5.2).
    return BoundedPow(prf, 1.0 - sat) * BoundedPow(1.0 - ut, sat);
  }
  return -(BoundedPow(1.0 - prf + eps, 1.0 - sat) *
           BoundedPow(ut + eps, sat));
}

ProviderIntentionEvaluator::ProviderIntentionEvaluator(
    double utilization, double preference_satisfaction,
    const ProviderIntentionParams& params)
    : mode_(params.mode),
      epsilon_(params.epsilon),
      clamped_sat_(Clamp(preference_satisfaction, 0.0, 1.0)),
      one_minus_sat_(1.0 - clamped_sat_),
      utilization_(std::max(0.0, utilization)) {
  SQLB_CHECK(params.epsilon > 0.0, "Definition 8 requires epsilon > 0");
  if (utilization_ < 1.0) {
    positive_state_factor_ = BoundedPow(1.0 - utilization_, clamped_sat_);
  }
  negative_state_factor_ = BoundedPow(utilization_ + epsilon_, clamped_sat_);
  utilization_only_value_ = 1.0 - 2.0 * std::min(utilization_, 1.0);
}

double ProviderIntentionEvaluator::Eval(double preference) const {
  const double prf = Clamp(preference, -1.0, 1.0);
  switch (mode_) {
    case ProviderIntentionMode::kPreferenceOnly:
      return prf;
    case ProviderIntentionMode::kUtilizationOnly:
      return utilization_only_value_;
    case ProviderIntentionMode::kSelfBalancing:
      break;
  }
  if (prf > 0.0 && utilization_ < 1.0) {
    return BoundedPow(prf, one_minus_sat_) * positive_state_factor_;
  }
  return -(BoundedPow(1.0 - prf + epsilon_, one_minus_sat_) *
           negative_state_factor_);
}

}  // namespace sqlb
