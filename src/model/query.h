#ifndef SQLB_MODEL_QUERY_H_
#define SQLB_MODEL_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

/// \file
/// The query abstraction of Section 2: q = <c, d, n> where q.c is the issuing
/// consumer, q.d describes the task (here: required capability terms plus a
/// treatment cost), and q.n is the number of providers the consumer wants.

namespace sqlb {

/// A feasible query flowing through the mediator.
struct Query {
  /// Monotonically increasing arrival sequence number (unique per run).
  QueryId id = kInvalidQueryId;
  /// q.c — the consumer that issued the query.
  ConsumerId consumer;
  /// q.n — how many providers the consumer wants the query allocated to.
  /// The paper's simulations use n = 1 ("consumers only ask for one
  /// informational answer"); the model and allocation methods support any n.
  std::uint32_t n = 1;
  /// Treatment cost in abstract units; Section 6.1 uses two classes (130 and
  /// 150 units, ~1.3 s / 1.5 s on a high-capacity provider).
  double units = 0.0;
  /// Index of the workload class the query was drawn from (reporting only).
  std::uint32_t class_index = 0;
  /// Required capability terms for matchmaking (q.d). Empty means the
  /// accept-all matchmaker of the paper's simulation setup applies.
  std::vector<std::uint32_t> required_terms;
  /// Simulated issue time.
  SimTime issue_time = 0.0;
};

}  // namespace sqlb

#endif  // SQLB_MODEL_QUERY_H_
