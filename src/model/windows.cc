#include "model/windows.h"

#include "common/math_util.h"
#include "common/status.h"
#include "model/characterization.h"

namespace sqlb {

ConsumerWindow::ConsumerWindow(const WindowConfig& config)
    : config_(config), entries_(config.capacity) {
  SQLB_CHECK(config.prior >= 0.0 && config.prior <= 1.0,
             "window prior must lie in [0, 1]");
}

void ConsumerWindow::Record(double adequation, double satisfaction) {
  SQLB_CHECK(adequation >= 0.0 && adequation <= 1.0,
             "per-query adequation must lie in [0, 1] (Eq. 1)");
  SQLB_CHECK(satisfaction >= 0.0 && satisfaction <= 1.0,
             "per-query satisfaction must lie in [0, 1] (Eq. 2)");
  Entry evicted;
  if (entries_.Push(Entry{adequation, satisfaction}, &evicted)) {
    adequation_sum_ -= evicted.adequation;
    satisfaction_sum_ -= evicted.satisfaction;
  }
  adequation_sum_ += adequation;
  satisfaction_sum_ += satisfaction;
  ++recorded_;
}

double ConsumerWindow::Adequation() const {
  const double k = static_cast<double>(entries_.capacity());
  const double m = static_cast<double>(entries_.size());
  // (sum + (k - m) * prior) / k: pseudo-entries at the prior fill the
  // window until real evidence displaces them. Clamped against the tiny
  // negative drift a running add/subtract sum can accumulate.
  return Clamp((adequation_sum_ + (k - m) * config_.prior) / k, 0.0, 1.0);
}

double ConsumerWindow::Satisfaction() const {
  const double k = static_cast<double>(entries_.capacity());
  const double m = static_cast<double>(entries_.size());
  return Clamp((satisfaction_sum_ + (k - m) * config_.prior) / k, 0.0, 1.0);
}

double ConsumerWindow::AllocationSatisfactionValue() const {
  return AllocationSatisfaction(Satisfaction(), Adequation());
}

double ConsumerWindow::RawAdequation() const {
  if (entries_.empty()) return 0.0;
  return adequation_sum_ / static_cast<double>(entries_.size());
}

double ConsumerWindow::RawSatisfaction() const {
  if (entries_.empty()) return 0.0;
  return satisfaction_sum_ / static_cast<double>(entries_.size());
}

ProviderWindow::ProviderWindow(const WindowConfig& config, bool lazy)
    : config_(config), entries_(config.capacity, lazy) {
  SQLB_CHECK(config.prior >= 0.0 && config.prior <= 1.0,
             "window prior must lie in [0, 1]");
  SQLB_CHECK(config.satisfaction_prior_weight >= 0.0,
             "satisfaction prior weight must be >= 0");
  last_satisfaction_[0] = config.prior;
  last_satisfaction_[1] = config.prior;
}

void ProviderWindow::Record(double shown_intention, double preference,
                            bool performed) {
  const Entry entry{IntentionToUnit(shown_intention),
                    IntentionToUnit(preference), performed};
  bool perf_changed = performed;
  Entry evicted;
  if (entries_.Push(entry, &evicted)) {
    intention_sum_ -= evicted.intention_unit;
    preference_sum_ -= evicted.preference_unit;
    if (evicted.performed) {
      perf_intention_sum_ -= evicted.intention_unit;
      perf_preference_sum_ -= evicted.preference_unit;
      --performed_in_window_;
      perf_changed = true;
    }
  }
  if (perf_changed) ++sat_revision_;
  intention_sum_ += entry.intention_unit;
  preference_sum_ += entry.preference_unit;
  if (performed) {
    perf_intention_sum_ += entry.intention_unit;
    perf_preference_sum_ += entry.preference_unit;
    ++performed_in_window_;
    ++performed_total_;
  }
  ++proposed_;
}

double ProviderWindow::Adequation(Channel channel) const {
  const double sum =
      channel == Channel::kIntention ? intention_sum_ : preference_sum_;
  const double k = static_cast<double>(entries_.capacity());
  const double m = static_cast<double>(entries_.size());
  return Clamp((sum + (k - m) * config_.prior) / k, 0.0, 1.0);
}

double ProviderWindow::Satisfaction(Channel channel) const {
  const std::size_t c = channel == Channel::kIntention ? 0 : 1;
  const double s = static_cast<double>(performed_in_window_);
  const double w = config_.satisfaction_prior_weight;
  if (s + w <= 0.0) {
    // Nothing performed inside the window and no smoothing prior: hold the
    // last known value (initially the 0.5 prior of Table 2).
    return last_satisfaction_[c];
  }
  const double sum = channel == Channel::kIntention ? perf_intention_sum_
                                                    : perf_preference_sum_;
  const double value = Clamp((sum + w * config_.prior) / (s + w), 0.0, 1.0);
  if (performed_in_window_ > 0) last_satisfaction_[c] = value;
  return value;
}

double ProviderWindow::AllocationSatisfactionValue(Channel channel) const {
  return AllocationSatisfaction(Satisfaction(channel), Adequation(channel));
}

double ProviderWindow::RawAdequation(Channel channel) const {
  if (entries_.empty()) return 0.0;
  const double sum =
      channel == Channel::kIntention ? intention_sum_ : preference_sum_;
  return sum / static_cast<double>(entries_.size());
}

double ProviderWindow::RawSatisfaction(Channel channel) const {
  if (performed_in_window_ == 0) return 0.0;
  const double sum = channel == Channel::kIntention ? perf_intention_sum_
                                                    : perf_preference_sum_;
  return sum / static_cast<double>(performed_in_window_);
}

}  // namespace sqlb
