#include "model/characterization.h"

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb {

double QueryAdequation(const std::vector<double>& intentions_over_pq) {
  SQLB_CHECK(!intentions_over_pq.empty(),
             "Eq. 1 requires a non-empty provider set P_q");
  double sum = 0.0;
  for (double ci : intentions_over_pq) sum += ClampIntention(ci);
  const double avg = sum / static_cast<double>(intentions_over_pq.size());
  return (avg + 1.0) / 2.0;
}

double QuerySatisfaction(const std::vector<double>& intentions_over_selected,
                         std::size_t n) {
  SQLB_CHECK(n >= 1, "Eq. 2 requires q.n >= 1");
  double sum = 0.0;
  for (double ci : intentions_over_selected) sum += ClampIntention(ci);
  const double avg = sum / static_cast<double>(n);
  // With |selected| < n the average can only reach |selected|/n, so missing
  // results depress satisfaction, as intended by the paper's Eq. 2. The
  // result still lies in [0, 1] because each clamped term is in [-1, 1] and
  // |selected| <= n by construction of the allocation (Section 2).
  return Clamp((avg + 1.0) / 2.0, 0.0, 1.0);
}

double AllocationSatisfaction(double satisfaction, double adequation) {
  constexpr double kTiny = 1e-12;
  if (adequation <= kTiny) {
    // Degenerate participant: nothing in the system matches its intentions.
    // 0/0 is defined as neutral; positive satisfaction over zero adequation
    // cannot arise from Eqs. 1-2 with a consistent window, but is mapped to
    // a large finite value to keep downstream metrics finite.
    return satisfaction <= kTiny ? 1.0 : satisfaction / kTiny;
  }
  return satisfaction / adequation;
}

}  // namespace sqlb
