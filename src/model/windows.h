#ifndef SQLB_MODEL_WINDOWS_H_
#define SQLB_MODEL_WINDOWS_H_

#include <cstddef>
#include <cstdint>

#include "common/ring_buffer.h"
#include "mem/paged_ring.h"

/// \file
/// Sliding "k last interactions" state behind the long-run characterization
/// of Section 3:
///
///  - ConsumerWindow tracks the consumer's k last *issued* queries (IQ^k_c):
///    one (adequation, satisfaction) pair per query (Eqs. 1-2).
///  - ProviderWindow tracks the provider's k last *proposed* queries
///    (PQ^k_p): the shown intention, the private preference, and whether the
///    provider actually performed the query (SQ^k_p is the performed
///    subset). Two value channels let the same window answer both the
///    mediator-visible, intention-based question (Figure 4(a)) and the
///    private, preference-based one (Figure 4(b)).
///
/// Both windows blend an initial prior (the paper initializes satisfaction
/// at 0.5, Section 6.1) while evidence is scarce; see DESIGN.md fidelity
/// decision 4. Raw (unblended) Definition 1/2/4/5 values remain available
/// for tests and analysis.

namespace sqlb {

/// Tunables shared by both window types.
struct WindowConfig {
  /// Window capacity k (paper: 200 for consumers, 500 for providers).
  std::size_t capacity = 200;
  /// Initial prior value blended in while the window fills.
  double prior = 0.5;
  /// Pseudo-count weight of the prior for the provider's performed-subset
  /// satisfaction (Def. 5), whose sample count is not bounded below: with
  /// weight w, satisfaction = (sum + w * prior) / (count + w). The default
  /// 0 keeps Definition 5 exact whenever the performed subset is
  /// non-empty; a positive weight smooths the inherently tiny-sample
  /// estimate for applications that want it.
  ///
  /// When the performed subset is empty, Satisfaction() holds its last
  /// known value instead of Definition 5's literal 0 (the paper
  /// initializes satisfaction at 0.5 and lets it "evolve with the k last
  /// queries" — a provider between two allocations keeps its opinion; a
  /// hard 0 would make every provider maximally dissatisfied every few
  /// seconds and drown the evaluation's other departure causes).
  /// RawSatisfaction() keeps the literal Definition 5 behaviour.
  double satisfaction_prior_weight = 0.0;
};

/// Window over the consumer's k last issued queries.
class ConsumerWindow {
 public:
  explicit ConsumerWindow(const WindowConfig& config);

  /// Records one completed allocation: the per-query adequation (Eq. 1) and
  /// satisfaction (Eq. 2), both already in [0, 1].
  void Record(double adequation, double satisfaction);

  /// Definition 1 with prior blending while the window is not yet full.
  double Adequation() const;
  /// Definition 2 with prior blending while the window is not yet full.
  double Satisfaction() const;
  /// Definition 3: Satisfaction() / Adequation().
  double AllocationSatisfactionValue() const;

  /// Unblended Definition 1 (0 when empty).
  double RawAdequation() const;
  /// Unblended Definition 2 (0 when empty).
  double RawSatisfaction() const;

  /// Total queries ever recorded (not capped at k); drives the departure
  /// check cadence (every full window turnover).
  std::uint64_t recorded() const { return recorded_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return entries_.capacity(); }

 private:
  struct Entry {
    double adequation;
    double satisfaction;
  };

  WindowConfig config_;
  RingBuffer<Entry> entries_;
  double adequation_sum_ = 0.0;
  double satisfaction_sum_ = 0.0;
  std::uint64_t recorded_ = 0;
};

/// Window over the provider's k last proposed queries.
class ProviderWindow {
 public:
  /// `lazy` selects the pooled backing mode of the entry ring: eager
  /// (default) allocates every chunk up front like the legacy RingBuffer
  /// sized its vector; lazy materializes chunks on first write, from the
  /// pool wired via set_chunk_pool() (heap until one is wired). The two
  /// modes run the identical Record/eviction arithmetic.
  explicit ProviderWindow(const WindowConfig& config, bool lazy = false);

  /// Wires the slab pool lazy chunks come from (the owning lane's arena);
  /// resident chunks keep their original owner.
  void set_chunk_pool(mem::SlabPool* pool) { entries_.set_pool(pool); }

  /// Bytes of entry-ring storage currently resident.
  std::size_t resident_bytes() const { return entries_.resident_bytes(); }

  /// Records one proposed query: the intention the provider showed, its
  /// private preference (both on the [-1, 1] scale; clamped), and whether
  /// the mediator allocated the query to this provider.
  void Record(double shown_intention, double preference, bool performed);

  /// Prefetch hint for a bulk notify sweep: pulls the ring slot the next
  /// Record will touch (see RingBuffer::PrefetchPushSlot).
  void PrefetchRecordSlot() const { entries_.PrefetchPushSlot(); }

  /// The two value channels of the window.
  enum class Channel {
    kIntention,   // mediator-visible (Figures 4(a), Eq. 6)
    kPreference,  // private (Figures 4(b)-(c), Def. 8's self-balance)
  };

  /// Definition 4 over the chosen channel, prior-blended while filling.
  double Adequation(Channel channel) const;
  /// Definition 5 over the performed subset (prior pseudo-count blended
  /// when configured); holds its last known value while the performed
  /// subset is empty (see WindowConfig::satisfaction_prior_weight).
  double Satisfaction(Channel channel) const;
  /// Definition 6: Satisfaction / Adequation on the chosen channel.
  double AllocationSatisfactionValue(Channel channel) const;

  /// Unblended Definition 4 (0 when the window is empty, as in the paper).
  double RawAdequation(Channel channel) const;
  /// Unblended Definition 5 (0 when no query was performed, as in paper).
  double RawSatisfaction(Channel channel) const;

  /// Queries ever proposed / performed (not capped at k).
  std::uint64_t proposed() const { return proposed_; }
  std::uint64_t performed() const { return performed_total_; }

  /// Bumped whenever the performed-subset aggregates change (a performed
  /// query was recorded, or a performed entry was evicted) — i.e. exactly
  /// when Satisfaction() can change on either channel. Recording a
  /// *non-performed* proposal leaves the revision alone: the mediation
  /// tier's characterization cache uses this to skip satisfaction reads for
  /// the (common) candidates a query proposed to but did not select.
  std::uint64_t satisfaction_revision() const { return sat_revision_; }
  /// Performed entries currently inside the window (|SQ^k_p|).
  std::size_t performed_in_window() const { return performed_in_window_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return entries_.capacity(); }

 private:
  struct Entry {
    double intention_unit;   // (clamped intention + 1) / 2
    double preference_unit;  // (clamped preference + 1) / 2
    bool performed;
  };

  WindowConfig config_;
  mem::PagedRing<Entry> entries_;
  double intention_sum_ = 0.0;        // over all entries
  double preference_sum_ = 0.0;       // over all entries
  double perf_intention_sum_ = 0.0;   // over performed entries
  double perf_preference_sum_ = 0.0;  // over performed entries
  std::size_t performed_in_window_ = 0;
  std::uint64_t proposed_ = 0;
  std::uint64_t performed_total_ = 0;
  std::uint64_t sat_revision_ = 0;
  // Last known satisfaction per channel, served while the performed
  // subset is empty (mutable: refreshed on read, which is side-effect-free
  // w.r.t. the observable value).
  mutable double last_satisfaction_[2] = {0.5, 0.5};
};

}  // namespace sqlb

#endif  // SQLB_MODEL_WINDOWS_H_
