#include "model/metrics.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double JainFairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double MinMaxRatio(const std::vector<double>& values, double c0) {
  SQLB_CHECK(c0 > 0.0, "Min-Max ratio requires c0 > 0 (Eq. 5)");
  if (values.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return (*lo + c0) / (*hi + c0);
}

double LoadImbalance(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  const double mean = Mean(values);
  if (mean == 0.0) return 1.0;
  return *std::max_element(values.begin(), values.end()) / mean;
}

MetricSummary Summarize(const std::vector<double>& values, double c0) {
  MetricSummary out;
  out.count = values.size();
  out.mean = Mean(values);
  out.fairness = JainFairness(values);
  out.min_max = MinMaxRatio(values, c0);
  return out;
}

MetricSummary SummarizeBy(std::size_t count,
                          const std::function<double(std::size_t)>& accessor,
                          double c0) {
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) values.push_back(accessor(i));
  return Summarize(values, c0);
}

}  // namespace sqlb
