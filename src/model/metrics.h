#ifndef SQLB_MODEL_METRICS_H_
#define SQLB_MODEL_METRICS_H_

#include <cstddef>
#include <functional>
#include <vector>

/// \file
/// The three system metrics of Section 4, applicable to any per-participant
/// quantity g (adequation, satisfaction, allocation satisfaction,
/// utilization) over a set S of consumers or providers:
///
///   - efficiency:   arithmetic mean mu(g, S)                      (Eq. 3)
///   - sensitivity:  Jain fairness index f(g, S) in [1/|S|, 1]     (Eq. 4)
///   - balance:      Min-Max ratio sigma(g, S) with constant c0    (Eq. 5)
///
/// The paper stresses that the three are complementary: using only one loses
/// information (Section 4, last paragraph).

namespace sqlb {

/// Arithmetic mean of `values` (Eq. 3). Returns 0 for an empty set.
double Mean(const std::vector<double>& values);

/// Jain fairness index (Eq. 4): (sum g)^2 / (|S| * sum g^2).
/// Returns 1 for an empty set or when all values are zero (a degenerate
/// allocation is vacuously fair); otherwise lies in [1/|S|, 1].
double JainFairness(const std::vector<double>& values);

/// Min-Max balance ratio (Eq. 5): (min g + c0) / (max g + c0), c0 > 0.
/// Returns 1 for an empty set. The paper uses sigma to spot punished
/// participants.
double MinMaxRatio(const std::vector<double>& values, double c0 = 0.1);

/// Load-imbalance factor: max g / mu(g, S), the complement of Eq. 4 the
/// sharded tier reports per mediator (1 = perfectly even, |S| = everything
/// concentrated on one element). Returns 1 for an empty set or when the
/// mean is zero.
double LoadImbalance(const std::vector<double>& values);

/// Bundle of the three metrics over one value set.
struct MetricSummary {
  double mean = 0.0;
  double fairness = 1.0;
  double min_max = 1.0;
  std::size_t count = 0;
};

/// Computes all three metrics in one pass over `values`.
MetricSummary Summarize(const std::vector<double>& values, double c0 = 0.1);

/// Collects g(s) for every element of a population and summarizes it.
/// `accessor` maps an element index to its g value; `count` is |S|.
MetricSummary SummarizeBy(std::size_t count,
                          const std::function<double(std::size_t)>& accessor,
                          double c0 = 0.1);

}  // namespace sqlb

#endif  // SQLB_MODEL_METRICS_H_
