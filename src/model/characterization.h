#ifndef SQLB_MODEL_CHARACTERIZATION_H_
#define SQLB_MODEL_CHARACTERIZATION_H_

#include <cstddef>
#include <vector>

/// \file
/// Per-query characterization formulas of Section 3 (consumer side), plus
/// the allocation-satisfaction ratio shared by both sides.
///
/// All intention inputs are on the paper's [-1, 1] scale (values outside are
/// clamped, DESIGN.md fidelity decision 2); all outputs live in [0, 1]
/// except the ratio, which lives in [0, +inf).

namespace sqlb {

/// Eq. 1 — adequation of a consumer for one query allocation: the average of
/// the consumer's shown intentions towards every provider in P_q, mapped to
/// [0, 1]. `intentions_over_pq` must be non-empty.
double QueryAdequation(const std::vector<double>& intentions_over_pq);

/// Eq. 2 — satisfaction of a consumer with one query allocation: the sum of
/// its intentions towards the providers that got the query, divided by q.n
/// (not by the number actually selected: receiving fewer results than wanted
/// costs satisfaction), mapped to [0, 1]. `n` must be >= 1.
double QuerySatisfaction(const std::vector<double>& intentions_over_selected,
                         std::size_t n);

/// Defs. 3 and 6 — allocation satisfaction = satisfaction / adequation.
/// > 1: the allocation method works well for the participant; < 1: the
/// participant is punished; = 1: neutral. The 0/0 corner (a participant with
/// zero adequation and zero satisfaction) is defined as neutral (1).
double AllocationSatisfaction(double satisfaction, double adequation);

}  // namespace sqlb

#endif  // SQLB_MODEL_CHARACTERIZATION_H_
