#include "experiments/experiments.h"

#include "common/status.h"
#include "core/sqlb_method.h"
#include "methods/capacity_based.h"
#include "methods/kn_best.h"
#include "methods/mariposa.h"
#include "methods/simple_methods.h"
#include "methods/sqlb_economic.h"

namespace sqlb::experiments {

std::string MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kSqlb:
      return "SQLB";
    case MethodKind::kCapacityBased:
      return "CapacityBased";
    case MethodKind::kCapacityMaxAvailable:
      return "CapacityBased(max-available)";
    case MethodKind::kMariposa:
      return "Mariposa-like";
    case MethodKind::kRandom:
      return "Random";
    case MethodKind::kRoundRobin:
      return "RoundRobin";
    case MethodKind::kKnBest:
      return "KnBest";
    case MethodKind::kSqlbEconomic:
      return "SQLB-Economic";
  }
  return "?";
}

std::unique_ptr<AllocationMethod> MakeMethod(MethodKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case MethodKind::kSqlb:
      return std::make_unique<SqlbMethod>();
    case MethodKind::kCapacityBased:
      return std::make_unique<CapacityBasedMethod>(
          CapacityRanking::kLeastUtilized);
    case MethodKind::kCapacityMaxAvailable:
      return std::make_unique<CapacityBasedMethod>(
          CapacityRanking::kMaxAvailableCapacity);
    case MethodKind::kMariposa:
      return std::make_unique<MariposaMethod>();
    case MethodKind::kRandom:
      return std::make_unique<RandomMethod>(seed ^ 0xbadc0ffeULL);
    case MethodKind::kRoundRobin:
      return std::make_unique<RoundRobinMethod>();
    case MethodKind::kKnBest:
      return std::make_unique<KnBestMethod>();
    case MethodKind::kSqlbEconomic:
      return std::make_unique<SqlbEconomicMethod>();
  }
  SQLB_CHECK(false, "unknown method kind");
  return nullptr;
}

runtime::RunResult RunMethod(MethodKind kind,
                             const runtime::SystemConfig& config) {
  const std::unique_ptr<AllocationMethod> method =
      MakeMethod(kind, config.seed);
  return runtime::RunScenario(config, method.get());
}

std::vector<MethodKind> PaperTrio() {
  return {MethodKind::kSqlb, MethodKind::kMariposa,
          MethodKind::kCapacityBased};
}

runtime::SystemConfig PaperConfig(std::uint64_t seed) {
  runtime::SystemConfig config;  // struct defaults already mirror Table 2
  config.seed = seed;
  config.duration = 10000.0;
  config.workload = runtime::WorkloadSpec::Ramp(0.3, 1.0);
  return config;
}

void ApplyFastMode(runtime::SystemConfig& config) {
  config.population.num_consumers /= 4;
  config.population.num_providers /= 4;
  config.duration /= 4;
  config.sample_interval /= 2;
}

std::vector<QualityRampResult> RunQualityRamp(
    const runtime::SystemConfig& base,
    const std::vector<MethodKind>& methods) {
  std::vector<QualityRampResult> results;
  results.reserve(methods.size());
  for (MethodKind kind : methods) {
    results.push_back(QualityRampResult{kind, RunMethod(kind, base)});
  }
  return results;
}

std::vector<SweepResult> RunWorkloadSweep(
    const runtime::SystemConfig& base, const SweepOptions& options,
    const std::vector<MethodKind>& methods) {
  SQLB_CHECK(options.repetitions >= 1, "need at least one repetition");
  std::vector<SweepResult> results;
  results.reserve(methods.size());

  for (MethodKind kind : methods) {
    SweepResult sweep;
    sweep.method = kind;
    for (double workload : options.workloads) {
      SweepPoint point;
      point.workload_fraction = workload;
      for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
        runtime::SystemConfig config = base;
        config.workload = runtime::WorkloadSpec::Constant(workload);
        config.duration = options.duration;
        config.stats_warmup = options.warmup;
        config.departures = options.departures;
        config.seed = options.seed + 7919 * rep;

        runtime::RunResult run = RunMethod(kind, config);

        point.mean_response_time += run.response_time.mean();
        point.rt_p50 += run.ResponseTimeQuantile(0.5);
        point.rt_p99 += run.ResponseTimeQuantile(0.99);
        point.rt_p999 += run.ResponseTimeQuantile(0.999);
        point.provider_departure_percent += run.ProviderDeparturePercent();
        point.consumer_departure_percent += run.ConsumerDeparturePercent();
        point.queries_issued += run.queries_issued;
        point.queries_completed += run.queries_completed;
        if (const auto* s = run.series.Find(
                runtime::MediationSystem::kSeriesProvSatIntMean)) {
          point.mean_provider_satisfaction +=
              s->MeanOver(options.warmup, config.duration);
        }
        if (const auto* s = run.series.Find(
                runtime::MediationSystem::kSeriesConsAllocSatMean)) {
          point.mean_consumer_allocsat +=
              s->MeanOver(options.warmup, config.duration);
        }
      }
      const double reps = static_cast<double>(options.repetitions);
      point.mean_response_time /= reps;
      point.rt_p50 /= reps;
      point.rt_p99 /= reps;
      point.rt_p999 /= reps;
      point.provider_departure_percent /= reps;
      point.consumer_departure_percent /= reps;
      point.mean_provider_satisfaction /= reps;
      point.mean_consumer_allocsat /= reps;
      sweep.points.push_back(point);
    }
    results.push_back(std::move(sweep));
  }
  return results;
}

std::vector<DepartureBreakdown> RunDepartureBreakdown(
    const runtime::SystemConfig& base, const BreakdownOptions& options,
    const std::vector<MethodKind>& methods) {
  SQLB_CHECK(options.repetitions >= 1, "need at least one repetition");
  std::vector<DepartureBreakdown> results;
  results.reserve(methods.size());

  for (MethodKind kind : methods) {
    DepartureBreakdown breakdown;
    breakdown.method = kind;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      runtime::SystemConfig config = base;
      config.workload = runtime::WorkloadSpec::Constant(options.workload);
      config.duration = options.duration;
      config.departures = runtime::DepartureConfig::AllEnabled();
      config.departures.grace_period = options.grace_period;
      config.departures.check_interval = options.check_interval;
      config.seed = options.seed + 104729 * rep;

      runtime::RunResult run = RunMethod(kind, config);

      const double scale =
          100.0 / static_cast<double>(run.initial_providers);
      for (std::size_t r = 0; r < runtime::kNumDepartureReasons; ++r) {
        const auto reason = static_cast<runtime::DepartureReason>(r);
        breakdown.total[r] +=
            scale * static_cast<double>(run.tally.ByReason(reason));
        for (std::size_t level = 0; level < 3; ++level) {
          const auto lvl = static_cast<Level>(level);
          breakdown.percent[r][0][level] +=
              scale *
              static_cast<double>(run.tally.ByReasonInterest(reason, lvl));
          breakdown.percent[r][1][level] +=
              scale *
              static_cast<double>(run.tally.ByReasonAdaptation(reason, lvl));
          breakdown.percent[r][2][level] +=
              scale *
              static_cast<double>(run.tally.ByReasonCapacity(reason, lvl));
        }
      }
      breakdown.consumer_departure_percent +=
          run.ConsumerDeparturePercent();
    }
    const double reps = static_cast<double>(options.repetitions);
    for (std::size_t r = 0; r < runtime::kNumDepartureReasons; ++r) {
      breakdown.total[r] /= reps;
      for (std::size_t d = 0; d < 3; ++d) {
        for (std::size_t l = 0; l < 3; ++l) {
          breakdown.percent[r][d][l] /= reps;
        }
      }
    }
    breakdown.consumer_departure_percent /= reps;
    results.push_back(breakdown);
  }
  return results;
}

}  // namespace sqlb::experiments
