#ifndef SQLB_EXPERIMENTS_EXPERIMENTS_H_
#define SQLB_EXPERIMENTS_EXPERIMENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "runtime/mediation_system.h"

/// \file
/// The experiment harness behind every figure and table of Section 6 (see
/// DESIGN.md's per-experiment index):
///
///  - PaperConfig(): the Table 2 simulation setup.
///  - RunQualityRamp(): one captive run per method with the 30% -> 100%
///    workload ramp (Figures 4(a)-(h)).
///  - RunWorkloadSweep(): steady-state runs over a workload grid, captive or
///    autonomous (Figures 4(i), 5(a)-(c), 6), averaged over repetitions.
///  - RunDepartureBreakdown(): the Table 3 accounting at one workload.

namespace sqlb::experiments {

/// The allocation methods the harness can instantiate.
enum class MethodKind {
  kSqlb,
  kCapacityBased,          // least-utilized (the paper's reading)
  kCapacityMaxAvailable,   // ablation variant
  kMariposa,
  kRandom,
  kRoundRobin,
  kKnBest,
  kSqlbEconomic,
};

/// Stable display name ("SQLB", "CapacityBased", "Mariposa-like", ...).
std::string MethodName(MethodKind kind);

/// Fresh method instance (methods are stateful: one per run).
std::unique_ptr<AllocationMethod> MakeMethod(MethodKind kind,
                                             std::uint64_t seed);

/// The one run-setup every harness loop and example driver shares: builds a
/// fresh method for `kind` (seeded from the config) and drives one full
/// scenario through the ScenarioEngine entry point
/// (runtime::RunScenario). Replaces the copy-pasted
/// make-method-then-run boilerplate that used to live in each caller.
runtime::RunResult RunMethod(MethodKind kind,
                             const runtime::SystemConfig& config);

/// The three methods the paper evaluates, in its plotting order.
std::vector<MethodKind> PaperTrio();

/// Table 2 defaults: 200 consumers, 400 providers, k = 200/500, prior 0.5,
/// q.n = 1, upsilon = 1 (preference-only intentions), 10,000-second runs.
runtime::SystemConfig PaperConfig(std::uint64_t seed);

/// Scales a config down for quick runs (SQLB_FAST=1): quarter population,
/// shorter duration. Shapes survive; absolute values shift.
void ApplyFastMode(runtime::SystemConfig& config);

// ---------------------------------------------------------------------------
// Quality ramp (Figures 4(a)-(h))
// ---------------------------------------------------------------------------

struct QualityRampResult {
  MethodKind method;
  runtime::RunResult run;
};

/// Runs each method once, captive participants, workload ramping
/// 0.3 -> 1.0 over config.duration. The returned RunResult series carry the
/// MediationSystem::kSeries* keys.
std::vector<QualityRampResult> RunQualityRamp(
    const runtime::SystemConfig& base, const std::vector<MethodKind>& methods);

// ---------------------------------------------------------------------------
// Workload sweeps (Figures 4(i), 5(a)-(c), 6)
// ---------------------------------------------------------------------------

struct SweepPoint {
  double workload_fraction = 0.0;
  double mean_response_time = 0.0;       // post-warmup completions
  /// Response-time tail, from the run's merged latency histogram (log-scale
  /// buckets, ~11% relative resolution). Repetition-averaged like the mean.
  double rt_p50 = 0.0;
  double rt_p99 = 0.0;
  double rt_p999 = 0.0;
  double provider_departure_percent = 0.0;
  double consumer_departure_percent = 0.0;
  double mean_provider_satisfaction = 0.0;  // intention channel, final value
  double mean_consumer_allocsat = 0.0;
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_completed = 0;
};

struct SweepResult {
  MethodKind method;
  std::vector<SweepPoint> points;  // one per workload, repetition-averaged
};

struct SweepOptions {
  /// Workload fractions to visit (paper: up to 100% of system capacity).
  std::vector<double> workloads{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  /// Steady-state run length and measurement warmup per point.
  SimTime duration = 3000.0;
  SimTime warmup = 500.0;
  /// Departure regime (defaults: captive).
  runtime::DepartureConfig departures;
  /// Repetitions per (method, workload) cell; seeds vary per repetition.
  std::size_t repetitions = 1;
  std::uint64_t seed = 42;
};

std::vector<SweepResult> RunWorkloadSweep(
    const runtime::SystemConfig& base, const SweepOptions& options,
    const std::vector<MethodKind>& methods);

// ---------------------------------------------------------------------------
// Departure breakdown (Table 3)
// ---------------------------------------------------------------------------

struct DepartureBreakdown {
  MethodKind method;
  /// percent[reason][dimension][level]: percentage of the initial provider
  /// population, where dimension 0 = consumer-interest class,
  /// 1 = adaptation class, 2 = capacity class (Table 3's three row groups).
  double percent[runtime::kNumDepartureReasons][3][3] = {};
  /// Total percentage per reason.
  double total[runtime::kNumDepartureReasons] = {};
  double consumer_departure_percent = 0.0;
};

struct BreakdownOptions {
  double workload = 0.8;  // the paper reports Table 3 at 80%
  SimTime duration = 3000.0;
  /// Departure-check schedule (see DepartureConfig).
  SimTime grace_period = 600.0;
  SimTime check_interval = 300.0;
  std::size_t repetitions = 1;
  std::uint64_t seed = 42;
};

std::vector<DepartureBreakdown> RunDepartureBreakdown(
    const runtime::SystemConfig& base, const BreakdownOptions& options,
    const std::vector<MethodKind>& methods);

}  // namespace sqlb::experiments

#endif  // SQLB_EXPERIMENTS_EXPERIMENTS_H_
