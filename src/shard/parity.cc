#include "shard/parity.h"

#include "common/status.h"

namespace sqlb::shard {

const char* ParityModeName(ParityMode mode) {
  switch (mode) {
    case ParityMode::kStrict:
      return "strict";
    case ParityMode::kRelaxed:
      return "relaxed";
  }
  return "?";
}

void ValidateParallelRun(ParityMode mode, const ParallelRunShape& shape) {
  // Couplings no parity mode can merge away.
  SQLB_CHECK(!shape.reputation_feedback,
             "parallel shard execution requires reputation_feedback off");
  SQLB_CHECK(shape.num_shards == 1 || !shape.rerouting_enabled,
             "parallel shard execution requires rerouting disabled");

  switch (mode) {
    case ParityMode::kStrict:
      // Bit-identity needs state-disjoint lanes: one lane per consumer.
      SQLB_CHECK(shape.num_shards == 1 ||
                     shape.routing == RoutingPolicy::kLocality,
                 "strict-parity parallel execution requires consumer-affine "
                 "(kLocality) routing; use ParityMode::kRelaxed for "
                 "load-aware policies");
      break;
    case ParityMode::kRelaxed:
      // Any routing policy: cross-shard consumer access is serialized
      // through the per-consumer sequence locks.
      break;
  }
}

bool ParallelRunNeedsConsumerLocks(ParityMode mode,
                                   const ParallelRunShape& shape) {
  return mode == ParityMode::kRelaxed && shape.num_shards > 1;
}

}  // namespace sqlb::shard
