#include "shard/shard_router.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb::shard {
namespace {

// Key-space salts so ring points, provider keys, query keys and consumer
// keys hash into unrelated streams of the same CounterRng.
constexpr std::uint64_t kRingSalt = 0x72696e67ULL;      // "ring"
constexpr std::uint64_t kProviderSalt = 0x70726f76ULL;  // "prov"
constexpr std::uint64_t kQuerySalt = 0x71757279ULL;     // "qury"
constexpr std::uint64_t kConsumerSalt = 0x636f6e73ULL;  // "cons"

}  // namespace

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHash:
      return "hash";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
    case RoutingPolicy::kLocality:
      return "locality";
  }
  return "unknown";
}

ShardRouter::ShardRouter(const RouterConfig& config)
    : config_(config), hash_(config.seed ^ 0x5da4d00dULL) {
  SQLB_CHECK(config_.num_shards >= 1, "router needs at least one shard");
  SQLB_CHECK(config_.virtual_nodes >= 1,
             "router needs at least one virtual node per shard");

  ring_.reserve(config_.num_shards * config_.virtual_nodes);
  for (std::uint32_t shard = 0; shard < config_.num_shards; ++shard) {
    for (std::uint64_t vnode = 0; vnode < config_.virtual_nodes; ++vnode) {
      ring_.emplace_back(hash_.Uint64(kRingSalt ^ (vnode << 8), shard),
                         shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  loads_.resize(config_.num_shards);
}

std::uint32_t ShardRouter::RingLookup(std::uint64_t hash) const {
  // First ring point clockwise of `hash`, wrapping at the top.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), hash,
      [](std::uint64_t h, const std::pair<std::uint64_t, std::uint32_t>& p) {
        return h < p.first;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::uint32_t ShardRouter::ShardOfProvider(ProviderId id) const {
  return RingLookup(hash_.Uint64(kProviderSalt, id.index()));
}

std::vector<std::vector<std::uint32_t>> ShardRouter::PartitionProviders(
    const std::vector<ProviderProfile>& providers) const {
  std::vector<std::vector<std::uint32_t>> partition(config_.num_shards);
  for (const ProviderProfile& profile : providers) {
    partition[ShardOfProvider(profile.id)].push_back(profile.id.index());
  }
  return partition;
}

std::uint32_t ShardRouter::FreshLeastLoaded(
    SimTime now, const std::vector<bool>& exclude) const {
  std::uint32_t best = static_cast<std::uint32_t>(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    if (s < exclude.size() && exclude[s]) continue;
    if (!HasFreshReport(s, now)) continue;
    // An idle shard with no providers left is not a routing target.
    if (loads_[s].active_providers == 0) continue;
    if (best == config_.num_shards ||
        loads_[s].utilization < loads_[best].utilization) {
      best = s;
    }
  }
  return best;
}

std::uint32_t ShardRouter::Route(const Query& query, SimTime now) {
  switch (config_.policy) {
    case RoutingPolicy::kHash:
      break;
    case RoutingPolicy::kLocality:
      return RingLookup(hash_.Uint64(kConsumerSalt, query.consumer.index()));
    case RoutingPolicy::kLeastLoaded: {
      const std::uint32_t best = FreshLeastLoaded(now, {});
      if (best < config_.num_shards) return best;
      // Every report expired (gossip disabled, partitioned, or not yet
      // warmed up): degrade to the stateless spread rather than hammering
      // shard 0.
      ++stale_fallbacks_;
      break;
    }
  }
  return RingLookup(hash_.Uint64(kQuerySalt, query.id));
}

std::uint32_t ShardRouter::NextShard(std::uint32_t shard, SimTime now,
                                     const std::vector<bool>& tried) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  if (config_.num_shards == 1) return shard;
  const std::uint32_t best = FreshLeastLoaded(now, tried);
  if (best < config_.num_shards) return best;
  // No load view (or every fresh shard already tried): walk the index ring
  // to the next untried shard, so a re-route visits each shard at most
  // once instead of bouncing between two bad ones.
  const std::uint32_t m = static_cast<std::uint32_t>(config_.num_shards);
  for (std::uint32_t step = 1; step < m; ++step) {
    const std::uint32_t candidate = (shard + step) % m;
    if (candidate < tried.size() && tried[candidate]) continue;
    return candidate;
  }
  return shard;
}

std::uint32_t ShardRouter::NextShard(std::uint32_t shard, SimTime now) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  std::vector<bool> tried(config_.num_shards, false);
  tried[shard] = true;
  return NextShard(shard, now, tried);
}

void ShardRouter::ReportLoad(std::uint32_t shard, double utilization,
                             std::size_t active_providers,
                             SimTime measured_at) {
  SQLB_CHECK(shard < config_.num_shards, "load report for unknown shard");
  ++reports_;
  // Delayed deliveries may arrive out of order; keep the newest view.
  if (measured_at >= loads_[shard].measured_at) {
    loads_[shard].utilization = utilization;
    loads_[shard].active_providers = active_providers;
    loads_[shard].measured_at = measured_at;
  }
}

double ShardRouter::LoadOf(std::uint32_t shard) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  return loads_[shard].utilization;
}

bool ShardRouter::HasFreshReport(std::uint32_t shard, SimTime now) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  if (loads_[shard].measured_at == -kSimTimeInfinity) return false;
  if (config_.report_staleness <= 0.0) return true;
  return now - loads_[shard].measured_at <= config_.report_staleness;
}

}  // namespace sqlb::shard
