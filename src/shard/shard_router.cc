#include "shard/shard_router.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sqlb::shard {
namespace {

// Key-space salts so ring points, provider keys, query keys and consumer
// keys hash into unrelated streams of the same CounterRng.
constexpr std::uint64_t kRingSalt = 0x72696e67ULL;      // "ring"
constexpr std::uint64_t kProviderSalt = 0x70726f76ULL;  // "prov"
constexpr std::uint64_t kQuerySalt = 0x71757279ULL;     // "qury"
constexpr std::uint64_t kConsumerSalt = 0x636f6e73ULL;  // "cons"

}  // namespace

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kHash:
      return "hash";
    case RoutingPolicy::kLeastLoaded:
      return "least-loaded";
    case RoutingPolicy::kLocality:
      return "locality";
  }
  return "unknown";
}

ShardRouter::ShardRouter(const RouterConfig& config)
    : config_(config), hash_(config.seed ^ 0x5da4d00dULL) {
  SQLB_CHECK(config_.num_shards >= 1, "router needs at least one shard");
  SQLB_CHECK(config_.virtual_nodes >= 1,
             "router needs at least one virtual node per shard");
  SQLB_CHECK(config_.max_virtual_nodes >= config_.virtual_nodes,
             "max_virtual_nodes must admit the initial allocation");

  vnodes_.assign(config_.num_shards, config_.virtual_nodes);
  RebuildPartitionRing();
  ring_epoch_ = 0;  // construction is epoch 0, not a rebalance
  // The routing ring is the epoch-0 partition ring, frozen: consumer
  // affinity and query spread stay put while the partition migrates.
  routing_ring_ = ring_;
  loads_.resize(config_.num_shards);
  dead_.assign(config_.num_shards, false);
}

void ShardRouter::MarkShardDead(std::uint32_t shard) {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  SQLB_CHECK(!dead_[shard], "shard is already dead");
  SQLB_CHECK(dead_count_ + 1 < config_.num_shards,
             "cannot kill the last live shard (restart it instead)");
  dead_[shard] = true;
  ++dead_count_;
}

bool ShardRouter::IsShardDead(std::uint32_t shard) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  return dead_[shard];
}

std::uint64_t ShardRouter::PointHash(std::uint32_t shard,
                                     std::uint64_t vnode) const {
  return hash_.Uint64(kRingSalt ^ (vnode << 8), shard);
}

void ShardRouter::RebuildPartitionRing() {
  ring_.clear();
  std::size_t total = 0;
  for (std::uint32_t shard = 0; shard < config_.num_shards; ++shard) {
    total += vnodes_[shard];
    for (std::uint64_t vnode = 0; vnode < vnodes_[shard]; ++vnode) {
      ring_.emplace_back(PointHash(shard, vnode), shard);
    }
  }
  SQLB_CHECK(total >= 1, "partition ring needs at least one vnode");
  std::sort(ring_.begin(), ring_.end());
}

void ShardRouter::SetShardVnodes(std::vector<std::size_t> vnodes) {
  SQLB_CHECK(vnodes.size() == config_.num_shards,
             "vnode allocation must cover every shard");
  vnodes_ = std::move(vnodes);
  RebuildPartitionRing();
  ++ring_epoch_;
}

std::vector<std::size_t> ShardRouter::RebalancedVnodes(
    const std::vector<std::size_t>& active_counts) const {
  SQLB_CHECK(active_counts.size() == config_.num_shards,
             "active counts must cover every shard");
  const std::size_t m = config_.num_shards;
  const std::size_t live = m - dead_count_;
  if (live <= 1) return vnodes_;

  // Dead shards are out of the partition entirely: they contribute nothing
  // to the balance target and their zero vnodes stay zero below.
  std::size_t total = 0;
  std::size_t max_count = 0;
  std::size_t min_count = ~static_cast<std::size_t>(0);
  for (std::size_t s = 0; s < m; ++s) {
    if (dead_[s]) continue;
    total += active_counts[s];
    max_count = std::max(max_count, active_counts[s]);
    min_count = std::min(min_count, active_counts[s]);
  }
  if (total == 0) return vnodes_;  // nothing left to balance

  const double mean = static_cast<double>(total) / static_cast<double>(live);
  const double threshold =
      std::max(1.0, config_.rebalance_imbalance_threshold);
  if (static_cast<double>(max_count) <= threshold * mean &&
      static_cast<double>(min_count) * threshold >= mean) {
    return vnodes_;  // within tolerance: leave the partition alone
  }

  // Multiplicative correction toward equal counts: a shard owning twice the
  // mean halves its keyspace, a depleted shard grows (a zero-count shard is
  // treated as holding half a provider so the correction stays finite).
  // The per-tick step cap keeps one correction from jumping a shard's
  // keyspace by more than rebalance_max_vnode_step in either direction —
  // the uncapped jump after a mass departure overshoots the target
  // ownership and then oscillates back over the next ticks, each swing
  // moving (and re-moving) providers.
  const double step = config_.rebalance_max_vnode_step;
  std::vector<std::size_t> corrected(m);
  for (std::size_t s = 0; s < m; ++s) {
    if (dead_[s]) {
      // The 1-vnode floor below must not resurrect a crashed shard's
      // keyspace.
      corrected[s] = 0;
      continue;
    }
    const double count = std::max(0.5, static_cast<double>(active_counts[s]));
    const double scaled = static_cast<double>(vnodes_[s]) * mean / count;
    auto rounded = static_cast<std::size_t>(std::llround(scaled));
    if (step > 1.0) {
      const auto current = vnodes_[s];
      const auto lo = std::min(
          current - std::min<std::size_t>(current, 1),
          static_cast<std::size_t>(std::llround(
              static_cast<double>(current) / step)));
      const auto hi = std::max(
          current + 1, static_cast<std::size_t>(std::llround(
                           static_cast<double>(current) * step)));
      rounded = std::clamp(rounded, lo, hi);
    }
    corrected[s] = std::clamp<std::size_t>(rounded, 1,
                                           config_.max_virtual_nodes);
  }
  return corrected;
}

std::uint32_t ShardRouter::RingLookup(const Ring& ring, std::uint64_t hash) {
  // First ring point clockwise of `hash`, wrapping at the top.
  auto it = std::upper_bound(
      ring.begin(), ring.end(), hash,
      [](std::uint64_t h, const std::pair<std::uint64_t, std::uint32_t>& p) {
        return h < p.first;
      });
  if (it == ring.end()) it = ring.begin();
  return it->second;
}

std::uint32_t ShardRouter::RingLookupLive(const Ring& ring,
                                          std::uint64_t hash) const {
  auto it = std::upper_bound(
      ring.begin(), ring.end(), hash,
      [](std::uint64_t h, const std::pair<std::uint64_t, std::uint32_t>& p) {
        return h < p.first;
      });
  if (it == ring.end()) it = ring.begin();
  if (dead_count_ == 0) return it->second;  // the pre-failover fast path
  // Clockwise walk past dead shards' points: the remap is a pure function
  // of (key, dead set), so every key lands on the same live shard in every
  // execution mode — and keys whose first point is live keep routing
  // exactly where they always did.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (!dead_[it->second]) return it->second;
    ++it;
    if (it == ring.end()) it = ring.begin();
  }
  SQLB_CHECK(false, "no live shard left on the ring");
  return 0;
}

std::uint32_t ShardRouter::ShardOfProvider(ProviderId id) const {
  return RingLookup(ring_, hash_.Uint64(kProviderSalt, id.index()));
}

std::vector<std::vector<std::uint32_t>> ShardRouter::PartitionProviders(
    const std::vector<ProviderProfile>& providers) const {
  std::vector<std::vector<std::uint32_t>> partition(config_.num_shards);
  for (const ProviderProfile& profile : providers) {
    partition[ShardOfProvider(profile.id)].push_back(profile.id.index());
  }
  return partition;
}

std::uint32_t ShardRouter::FreshLeastLoaded(
    SimTime now, const std::vector<bool>& exclude) const {
  std::uint32_t best = static_cast<std::uint32_t>(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    if (dead_[s]) continue;  // a crashed shard serves nothing
    if (s < exclude.size() && exclude[s]) continue;
    if (!HasFreshReport(s, now)) continue;
    // A report measured against an older partition no longer describes the
    // shard's load; wait for the epoch to gossip out.
    if (loads_[s].ring_epoch != ring_epoch_) continue;
    // An idle shard with no providers left is not a routing target.
    if (loads_[s].active_providers == 0) continue;
    if (best == config_.num_shards ||
        loads_[s].utilization < loads_[best].utilization) {
      best = s;
    }
  }
  return best;
}

std::uint32_t ShardRouter::Route(const Query& query, SimTime now) {
  switch (config_.policy) {
    case RoutingPolicy::kHash:
      break;
    case RoutingPolicy::kLocality:
      return RingLookupLive(
          routing_ring_, hash_.Uint64(kConsumerSalt, query.consumer.index()));
    case RoutingPolicy::kLeastLoaded: {
      const std::uint32_t best = FreshLeastLoaded(now, {});
      if (best < config_.num_shards) {
        if (staleness_histogram_ != nullptr) {
          // Age of the load view this decision acted on.
          staleness_histogram_->Record(now - loads_[best].measured_at);
        }
        return best;
      }
      // Every report expired (gossip disabled, partitioned, lagging a ring
      // rebalance, or not yet warmed up): degrade to the stateless spread
      // rather than hammering shard 0.
      ++stale_fallbacks_;
      break;
    }
  }
  return RingLookupLive(routing_ring_, hash_.Uint64(kQuerySalt, query.id));
}

std::uint32_t ShardRouter::NextShard(std::uint32_t shard, SimTime now,
                                     const std::vector<bool>& tried) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  if (config_.num_shards == 1) return shard;
  const std::uint32_t best = FreshLeastLoaded(now, tried);
  if (best < config_.num_shards) return best;
  // No load view (or every fresh shard already tried): walk the index ring
  // to the next untried shard, so a re-route visits each shard at most
  // once instead of bouncing between two bad ones.
  const std::uint32_t m = static_cast<std::uint32_t>(config_.num_shards);
  for (std::uint32_t step = 1; step < m; ++step) {
    const std::uint32_t candidate = (shard + step) % m;
    if (dead_[candidate]) continue;
    if (candidate < tried.size() && tried[candidate]) continue;
    return candidate;
  }
  return shard;
}

std::uint32_t ShardRouter::NextShard(std::uint32_t shard, SimTime now) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  std::vector<bool> tried(config_.num_shards, false);
  tried[shard] = true;
  return NextShard(shard, now, tried);
}

void ShardRouter::ReportLoad(std::uint32_t shard, double utilization,
                             std::size_t active_providers,
                             SimTime measured_at, std::uint64_t ring_epoch) {
  SQLB_CHECK(shard < config_.num_shards, "load report for unknown shard");
  ++reports_;
  if (ring_epoch < ring_epoch_) ++epoch_lagged_;
  // Delayed deliveries may arrive out of order; keep the newest view.
  if (measured_at >= loads_[shard].measured_at) {
    loads_[shard].utilization = utilization;
    loads_[shard].active_providers = active_providers;
    loads_[shard].measured_at = measured_at;
    loads_[shard].ring_epoch = ring_epoch;
  }
}

void ShardRouter::SetMetricsRegistry(obs::MetricsRegistry* metrics) {
  staleness_histogram_ =
      metrics != nullptr ? &metrics->GetHistogram(obs::kMetricGossipStaleness)
                         : nullptr;
}

double ShardRouter::LoadOf(std::uint32_t shard) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  return loads_[shard].utilization;
}

bool ShardRouter::HasFreshReport(std::uint32_t shard, SimTime now) const {
  SQLB_CHECK(shard < config_.num_shards, "unknown shard");
  if (loads_[shard].measured_at == -kSimTimeInfinity) return false;
  if (config_.report_staleness <= 0.0) return true;
  return now - loads_[shard].measured_at <= config_.report_staleness;
}

runtime::ChurnSchedule ShardChurnSchedule(const RouterConfig& config,
                                          std::uint32_t shard,
                                          std::size_t num_providers,
                                          SimTime leave_at,
                                          SimTime rejoin_at) {
  SQLB_CHECK(shard < config.num_shards, "unknown shard");
  const ShardRouter preview(config);
  runtime::ChurnSchedule schedule;
  for (std::uint32_t p = 0; p < num_providers; ++p) {
    if (preview.ShardOfProvider(ProviderId(p)) != shard) continue;
    schedule.events.push_back({leave_at, /*join=*/false, p});
    if (rejoin_at >= 0.0) {
      schedule.events.push_back({rejoin_at, /*join=*/true, p});
    }
  }
  return schedule;
}

}  // namespace sqlb::shard
