#ifndef SQLB_SHARD_GOSSIP_TOPOLOGY_H_
#define SQLB_SHARD_GOSSIP_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Gossip dissemination topologies for the sharded tier's load reports.
///
/// The original design ships every shard's report straight to the router
/// (kDirect): M messages per round, one hop each — fine at the paper's
/// scale, and kept as the default because its byte-for-byte behaviour is
/// part of the bit-identity pins. At fleet scale the interesting regimes
/// are:
///
///  - kAllToAll: every shard broadcasts its report to every live peer and
///    the router. Theta(M^2) messages per round — the naive full-mesh
///    baseline bench/micro_gossip.cc measures against.
///  - kHierarchical: live shards form a k-ary aggregation tree in rank
///    order (rank = position in the ascending live-shard list). Each shard
///    sends its report one hop up the tree; interior shards forward
///    hop-by-hop (no buffering, no timers — forwarding is deterministic
///    and latency-only) until the root, which hands reports to the router.
///    A report from tree depth d costs d + 1 messages, so a round costs
///    sum over ranks of (depth + 1) = O(M log_k M); with M = 64, k = 4
///    that is 229 messages against the all-to-all's 4096. The price is
///    staleness: each hop adds one network latency, which the existing
///    gossip.staleness_seconds histogram surfaces (measured_at rides the
///    report unchanged through every hop).
///
/// Dead shards are skipped by rank construction each round, so the tree
/// heals itself on the next cadence; a report in flight toward a relay
/// that died mid-hop is dropped and counted (gossip.relay_drops).

namespace sqlb::shard {

enum class GossipTopologyKind : std::uint8_t {
  /// Every live shard reports straight to the router: M messages, one hop.
  /// The default, byte-identical to the pre-topology code path.
  kDirect = 0,
  /// k-ary aggregation tree over the live shards; O(M log M) messages.
  kHierarchical = 1,
  /// Full mesh; Theta(M^2) messages. Baseline for the micro bench.
  kAllToAll = 2,
};

const char* GossipTopologyName(GossipTopologyKind kind);

/// Parent of tree rank `rank` in a k-ary heap layout (rank 0 is the root;
/// precondition rank > 0): (rank - 1) / fanout.
std::size_t GossipParentRank(std::size_t rank, std::size_t fanout);

/// Hops from `rank` to the root (0 for the root itself).
std::size_t GossipDepthOfRank(std::size_t rank, std::size_t fanout);

/// Exact messages one hierarchical round costs over `live` shards: each
/// rank's report travels depth hops to the root plus one hop to the
/// router, so the total is sum_{r < live} (depth(r) + 1).
std::size_t HierarchicalMessagesPerRound(std::size_t live, std::size_t fanout);

/// Messages one all-to-all round costs: every live shard sends to its
/// live - 1 peers and the router.
inline std::size_t AllToAllMessagesPerRound(std::size_t live) {
  return live * live;
}

/// The ascending list of live shard indices ("ranks"): rank r of the
/// round's tree is `live[r]`. Rebuilt per round, which is how the tree
/// routes around shards that died since the last cadence.
std::vector<std::uint32_t> LiveGossipRanks(
    std::size_t num_shards, const std::vector<std::uint8_t>& dead);

}  // namespace sqlb::shard

#endif  // SQLB_SHARD_GOSSIP_TOPOLOGY_H_
