#ifndef SQLB_SHARD_PARITY_H_
#define SQLB_SHARD_PARITY_H_

#include <cstdint>

#include "shard/shard_router.h"

/// \file
/// The parity policy of the parallel mediation tier: what a wall-clock-
/// parallel run is allowed to diverge from its serial twin, and which
/// configurations each mode therefore admits.
///
/// Strict mode is PR 2's contract — a parallel run is bit-identical to the
/// serial run for a fixed seed at any thread count — which is only possible
/// when lanes are state-disjoint between barriers: consumer-affine
/// (kLocality) routing, no re-routing, no reputation feedback. Relaxed mode
/// trades bit-identity for policy freedom: load-aware routing (least-loaded,
/// hash) may spread one consumer across shards, with every lane-side
/// consumer access serialized through per-consumer sequence locks
/// (des/seqlock.h). The divergence is bounded, not open-ended:
///
///   - queries issued are identical to serial (arrivals are drawn on the
///     coordinator from the same RNG stream);
///   - every counter is conserved exactly — completions + infeasibles
///     still merge deterministically from the per-lane effect logs in
///     (time, lane, seq) order, none are lost or double-counted;
///   - only the *interleaving* of same-epoch, same-consumer mediations may
///     differ from serial, so per-consumer window state — and through it
///     response times and satisfaction — may drift within the epoch
///     length; tests/shard/parallel_execution_test.cc pins the resulting
///     aggregate tolerance.
///
/// Both modes still require reputation feedback off under parallel
/// execution (completion-time reputation writes are read by every shard's
/// intention computation — a global coupling neither mode's merge covers)
/// and re-routing off for M > 1 (a mid-epoch bounce would hand a query to
/// a lane that already drained past its time).

namespace sqlb::shard {

enum class ParityMode : std::uint8_t {
  /// Parallel == serial, bit for bit. Requires consumer-affine routing.
  kStrict = 0,
  /// Any routing policy; per-consumer sequence locks; bounded divergence.
  kRelaxed = 1,
};

/// "strict", "relaxed".
const char* ParityModeName(ParityMode mode);

/// What the parity policy needs to know about a run to admit it.
struct ParallelRunShape {
  std::size_t num_shards = 1;
  RoutingPolicy routing = RoutingPolicy::kHash;
  bool rerouting_enabled = false;
  bool reputation_feedback = false;
};

/// Validates `shape` against `mode`'s contract; aborts (SQLB_CHECK) on a
/// configuration the mode cannot execute correctly. Serial runs never call
/// this — every configuration is serially executable.
void ValidateParallelRun(ParityMode mode, const ParallelRunShape& shape);

/// True when a parallel run of this shape must route lane-side consumer
/// access through a SeqLockTable: relaxed mode with more than one shard.
/// (At M = 1 or under strict/affine routing one lane owns each consumer,
/// and the locks would be pure overhead. Relaxed mode locks even under
/// kLocality routing — the locks are semantically inert there, which is
/// exactly what the relaxed-affine bit-identity pin exercises.)
bool ParallelRunNeedsConsumerLocks(ParityMode mode,
                                   const ParallelRunShape& shape);

}  // namespace sqlb::shard

#endif  // SQLB_SHARD_PARITY_H_
