#include "shard/gossip_topology.h"

#include "common/status.h"

namespace sqlb::shard {

const char* GossipTopologyName(GossipTopologyKind kind) {
  switch (kind) {
    case GossipTopologyKind::kDirect:
      return "direct";
    case GossipTopologyKind::kHierarchical:
      return "hierarchical";
    case GossipTopologyKind::kAllToAll:
      return "all-to-all";
  }
  return "?";
}

std::size_t GossipParentRank(std::size_t rank, std::size_t fanout) {
  SQLB_CHECK(rank > 0, "the tree root has no parent");
  SQLB_CHECK(fanout >= 1, "gossip fanout must be >= 1");
  return (rank - 1) / fanout;
}

std::size_t GossipDepthOfRank(std::size_t rank, std::size_t fanout) {
  std::size_t depth = 0;
  while (rank > 0) {
    rank = GossipParentRank(rank, fanout);
    ++depth;
  }
  return depth;
}

std::size_t HierarchicalMessagesPerRound(std::size_t live,
                                         std::size_t fanout) {
  std::size_t total = 0;
  for (std::size_t r = 0; r < live; ++r) {
    total += GossipDepthOfRank(r, fanout) + 1;
  }
  return total;
}

std::vector<std::uint32_t> LiveGossipRanks(
    std::size_t num_shards, const std::vector<std::uint8_t>& dead) {
  std::vector<std::uint32_t> live;
  live.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (s < dead.size() && dead[s]) continue;
    live.push_back(static_cast<std::uint32_t>(s));
  }
  return live;
}

}  // namespace sqlb::shard
