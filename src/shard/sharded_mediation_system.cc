#include "shard/sharded_mediation_system.h"

#include <algorithm>
#include <any>
#include <string>
#include <utility>

#include "common/status.h"
#include "des/worker_pool.h"
#include "model/metrics.h"

namespace sqlb::shard {
namespace {

/// Protocol message kinds for shard <-> router gossip.
constexpr std::uint32_t kLoadReportKind = 1;
constexpr std::uint32_t kRingUpdateKind = 2;

/// Gossip payload: one shard's self-measured load at `measured_at`. By the
/// time the network delivers it, the measurement is already stale — which
/// is the point: routing decisions run on the same bounded-staleness view a
/// real mediator fleet would have. `ring_epoch` is the partition epoch the
/// shard had acknowledged when measuring; the router discounts reports that
/// describe a superseded partition.
struct LoadReport {
  std::uint32_t shard = 0;
  double utilization = 0.0;
  std::size_t active_providers = 0;
  SimTime measured_at = 0.0;
  std::uint64_t ring_epoch = 0;
};

/// Gossip payload announcing a partition-ring rebalance to one shard. Until
/// it is delivered, the shard keeps stamping its old epoch onto load
/// reports — the propagation window during which load-aware routing runs on
/// the hash fallback.
struct RingUpdate {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
};

}  // namespace

/// Router-side network node: folds delivered load reports into the router's
/// load table. Also lends its OnMessage-less shard sender addresses their
/// identity (the per-shard mediation loops are not message-driven nodes;
/// only their reports travel the network).
class ShardedMediationSystem::GossipSink final : public msg::Node {
 public:
  GossipSink(ShardRouter* router, ShardedMediationSystem* system)
      : router_(router), system_(system) {}

  void OnMessage(msg::Network& network, const msg::Message& message) override {
    (void)network;
    if (message.kind == kLoadReportKind) {
      // A report addressed to a shard (not the router-side sink) is an
      // aggregation-tree hop: the shard forwards it one hop up (or, under
      // all-to-all, is simply a broadcast recipient and folds it too).
      if (message.to != system_->sink_address_ &&
          system_->config_.gossip_topology ==
              GossipTopologyKind::kHierarchical) {
        system_->RelayLoadReport(system_->ShardOfAddress(message.to),
                                 message);
        return;
      }
      const auto& report = std::any_cast<const LoadReport&>(message.payload);
      router_->ReportLoad(report.shard, report.utilization,
                          report.active_providers, report.measured_at,
                          report.ring_epoch);
    } else if (message.kind == kRingUpdateKind) {
      const auto& update = std::any_cast<const RingUpdate&>(message.payload);
      system_->OnRingEpochSeen(update.shard, update.epoch);
    }
  }

 private:
  ShardRouter* router_;
  ShardedMediationSystem* system_;
};

double ShardedRunResult::RouteImbalance() const {
  std::vector<double> routed;
  routed.reserve(shards.size());
  for (const ShardStats& s : shards) {
    routed.push_back(static_cast<double>(s.routed));
  }
  return LoadImbalance(routed);
}

ShardedMediationSystem::ShardedMediationSystem(
    const ShardedSystemConfig& config, MethodFactory factory)
    : config_(config),
      // The engine owns the shared streams and forks them in the
      // mono-mediator's order, which is what makes an M = 1 run replay the
      // mono system query for query. Everything shard-tier (ring hashing,
      // network latency) draws from independent generators.
      engine_(config.base),
      router_(config.router),
      network_(engine_.sim(), config.gossip_latency,
               Rng(config.base.seed ^ 0x60551bULL)) {
  SQLB_CHECK(factory != nullptr, "sharded system needs a method factory");
  SQLB_CHECK(config.router.num_shards >= 1, "need at least one shard");

  // Partition the provider population and raise one pipeline per shard.
  // Scheduled joiners (engine holdouts) stay out of every initial member
  // list; they enter through OnProviderChurn at their join time.
  std::vector<std::vector<std::uint32_t>> partition =
      router_.PartitionProviders(engine_.population().providers());
  for (std::vector<std::uint32_t>& members : partition) {
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [this](std::uint32_t index) {
                                   return engine_.held_out()[index];
                                 }),
                  members.end());
  }

  const std::size_t num_shards = config_.router.num_shards;
  // One flight-recorder lane per shard plus the coordinator lane. Must
  // precede core construction: the cores capture their lane pointers.
  engine_.ConfigureObservability(num_shards);
  obs::FlightRecorder& recorder = engine_.recorder();
  const std::size_t coord = recorder.coordinator_lane();
  coord_trace_ = recorder.trace_lane(coord);
  router_.SetMetricsRegistry(recorder.hot_metrics(coord));
  {
    obs::MetricsRegistry& coord_registry = recorder.registry(coord);
    reroutes_counter_ = &coord_registry.GetCounter(obs::kMetricReroutes);
    rescues_counter_ = &coord_registry.GetCounter(obs::kMetricRerouteRescues);
    handoffs_started_counter_ =
        &coord_registry.GetCounter(obs::kMetricHandoffsStarted);
    handoffs_completed_counter_ =
        &coord_registry.GetCounter(obs::kMetricHandoffsCompleted);
    handoffs_cancelled_counter_ =
        &coord_registry.GetCounter(obs::kMetricHandoffsCancelled);
    rebalances_damped_counter_ =
        &coord_registry.GetCounter(obs::kMetricRebalancesDamped);
    ring_rebalances_counter_ =
        &coord_registry.GetCounter(obs::kMetricRingRebalances);
    // Failover accounting lives on the coordinator lane: crashes,
    // adoptions and re-issues all happen in barrier context.
    shard_crashes_counter_ =
        &coord_registry.GetCounter(obs::kMetricShardCrashes);
    reissued_counter_ =
        &coord_registry.GetCounter(obs::kMetricReissuedQueries);
    for (std::size_t r = 0; r < runtime::kNumReissueReasons; ++r) {
      reissued_reason_counters_[r] = &coord_registry.GetCounter(
          std::string(obs::kMetricReissuedPrefix) +
          runtime::ReissueReasonName(static_cast<runtime::ReissueReason>(r)));
    }
    restored_counter_ =
        &coord_registry.GetCounter(obs::kMetricRestoredProviders);
    orphaned_counter_ =
        &coord_registry.GetCounter(obs::kMetricOrphanedProviders);
    drain_ticks_counter_ =
        &coord_registry.GetCounter(obs::kMetricFailoverDrainTicks);
    snapshots_counter_ = &coord_registry.GetCounter(obs::kMetricSnapshots);
    ring_retries_counter_ =
        &coord_registry.GetCounter(obs::kMetricGossipRingRetries);
    gossip_load_messages_counter_ =
        &coord_registry.GetCounter(obs::kMetricGossipLoadMessages);
    relay_forwards_counter_ =
        &coord_registry.GetCounter(obs::kMetricGossipRelayForwards);
    relay_drops_counter_ =
        &coord_registry.GetCounter(obs::kMetricGossipRelayDrops);
    if (obs::MetricsRegistry* hot = recorder.hot_metrics(coord)) {
      handoff_drain_hist_ = &hot->GetHistogram(obs::kMetricHandoffDrain);
      reissue_delay_hist_ = &hot->GetHistogram(obs::kMetricReissueDelay);
    }
  }
  flush_counters_.resize(num_shards);
  batched_query_counters_.resize(num_shards);
  batch_wait_hists_.assign(num_shards, nullptr);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Lane-side tallies go to the shard's own registry (single writer per
    // lane thread); the run-level totals come out of the merged snapshot.
    flush_counters_[s] =
        &recorder.registry(s).GetCounter(obs::kMetricBatchFlushes);
    batched_query_counters_[s] =
        &recorder.registry(s).GetCounter(obs::kMetricBatchedQueries);
    if (obs::MetricsRegistry* hot = recorder.hot_metrics(s)) {
      batch_wait_hists_[s] = &hot->GetHistogram(obs::kMetricBatchWait);
    }
  }

  parallel_ = config_.worker_threads > 0;
  batching_enabled_ =
      config_.batch_window > 0.0 || config_.adaptive_batch.enabled;
  if (config_.adaptive_batch.enabled) {
    window_controllers_.assign(
        num_shards, runtime::BatchWindowController(config_.adaptive_batch));
  }
  if (parallel_) {
    lane_sims_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      lane_sims_.push_back(std::make_unique<des::Simulator>());
    }
    effect_logs_.resize(num_shards);
    if (ParallelRunNeedsConsumerLocks(config_.parity, RunShape())) {
      consumer_locks_ =
          std::make_unique<des::SeqLockTable>(engine_.consumers().size());
    }
  }
  batch_buffers_.resize(num_shards);
  flush_due_.assign(num_shards, -kSimTimeInfinity);
  flush_scratch_.resize(num_shards);
  outcome_scratch_.resize(num_shards);

  // One agent arena per shard lane (pooled storage only): each core homes
  // its members' chunks on its own arena, so a lane thread allocates and
  // frees from lane-local pages. Must precede core construction — the
  // cores re-home their initial members in their constructors.
  engine_.agent_store().ConfigureArenas(num_shards);

  runtime::MediationCore::Shared shared = engine_.CoreSharedState();
  methods_.reserve(num_shards);
  cores_.reserve(num_shards);
  result_.shards.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    methods_.push_back(factory(s));
    SQLB_CHECK(methods_.back() != nullptr, "method factory returned null");
    // In parallel mode each core sinks its cross-shard effects into its
    // own log, merged at epoch barriers; in serial mode it writes the
    // shared sinks directly (bit-identical to PR 1). Relaxed parity adds
    // the per-consumer sequence locks on every lane-side consumer access.
    shared.effects = parallel_ ? &effect_logs_[s] : nullptr;
    shared.consumer_locks = consumer_locks_.get();
    // Each core records spans and histograms into its own shard lane, in
    // serial and parallel mode alike — the lane's record sequence is the
    // trace-determinism contract.
    shared.trace = recorder.trace_lane(s);
    shared.metrics = recorder.hot_metrics(s);
    shared.arena = engine_.agent_store().arena(s);
    cores_.push_back(std::make_unique<runtime::MediationCore>(
        shared, methods_.back().get(), partition[s]));
    result_.shards[s].initial_providers = partition[s].size();
  }

  // Gossip endpoints: one sender address per shard, one router-side sink.
  gossip_sink_ = std::make_unique<GossipSink>(&router_, this);
  shard_addresses_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shard_addresses_.push_back(network_.Register(gossip_sink_.get()));
  }
  sink_address_ = network_.Register(gossip_sink_.get());
  shard_epoch_seen_.assign(num_shards, 0);
  if (config_.network_faults.enabled()) {
    network_.SetFaultPolicy(config_.network_faults);
  }

  // Failover state: one (initially empty) snapshot slot per shard — a kill
  // before the first snapshot tick re-admits every member fresh. The
  // engine validates times and cadences; only this driver knows M.
  snapshots_.resize(num_shards);
  for (const runtime::ShardFaultEvent& event :
       config_.base.shard_faults.events) {
    SQLB_CHECK(event.shard < num_shards,
               "fault event names an unknown shard");
  }

  engine_.SetMethodName(methods_.front()->name());
}

ShardedMediationSystem::~ShardedMediationSystem() = default;

ParallelRunShape ShardedMediationSystem::RunShape() const {
  ParallelRunShape shape;
  shape.num_shards = config_.router.num_shards;
  shape.routing = config_.router.policy;
  shape.rerouting_enabled = config_.rerouting_enabled;
  shape.reputation_feedback = config_.base.reputation_feedback;
  return shape;
}

ShardedRunResult ShardedMediationSystem::Run() {
  SQLB_CHECK(!ran_, "ShardedMediationSystem::Run may only be called once");
  ran_ = true;

  // The parity policy decides which configurations a parallel run admits —
  // strict demands state-disjoint lanes, relaxed swaps that for the
  // per-consumer sequence locks (shard/parity.h).
  if (parallel_) {
    ValidateParallelRun(config_.parity, RunShape());
  }

  result_.run = engine_.Run(*this);

  // (run.remaining_providers is already the cross-shard sum: the engine
  // filled it through ActiveProviderCount().)
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    result_.shards[s].remaining_providers = cores_[s]->active_provider_count();
    result_.shards[s].allocated = cores_[s]->allocated_queries();
  }
  result_.gossip_sent = network_.sent_messages();
  result_.gossip_delivered = network_.delivered_messages();
  result_.ring_epoch = router_.ring_epoch();

  // Fold the router's internal tallies into the run-level registry, then
  // fill every mirror field from it — the registry is the single source of
  // truth for the bench counters (rows and JSON read the same numbers).
  obs::MetricsRegistry& metrics = result_.run.metrics;
  metrics.GetCounter(obs::kMetricStaleFallbacks).Inc(router_.stale_fallbacks());
  metrics.GetCounter(obs::kMetricEpochLaggedReports)
      .Inc(router_.epoch_lagged_reports());
  result_.stale_fallbacks = metrics.CounterValue(obs::kMetricStaleFallbacks);
  result_.epoch_lagged_reports =
      metrics.CounterValue(obs::kMetricEpochLaggedReports);
  result_.reroutes = metrics.CounterValue(obs::kMetricReroutes);
  result_.reroute_rescues = metrics.CounterValue(obs::kMetricRerouteRescues);
  result_.batch_flushes = metrics.CounterValue(obs::kMetricBatchFlushes);
  result_.batched_queries = metrics.CounterValue(obs::kMetricBatchedQueries);
  result_.ring_rebalances = metrics.CounterValue(obs::kMetricRingRebalances);
  result_.rebalances_damped =
      metrics.CounterValue(obs::kMetricRebalancesDamped);
  result_.handoffs_started = metrics.CounterValue(obs::kMetricHandoffsStarted);
  result_.handoffs_completed =
      metrics.CounterValue(obs::kMetricHandoffsCompleted);
  result_.handoffs_cancelled =
      metrics.CounterValue(obs::kMetricHandoffsCancelled);

  // Failover and message-substrate folds: the core-side suppression tally
  // and the network counters enter the registry here, then every mirror
  // field reads back out of it.
  std::uint64_t dropped_completions = 0;
  for (const auto& core : cores_) {
    dropped_completions += core->dropped_completions();
  }
  metrics.GetCounter(obs::kMetricDroppedCompletions).Inc(dropped_completions);
  metrics.GetCounter(obs::kMetricNetSent).Inc(network_.sent_messages());
  metrics.GetCounter(obs::kMetricNetDelivered)
      .Inc(network_.delivered_messages());
  metrics.GetCounter(obs::kMetricNetDropped).Inc(network_.dropped_messages());
  metrics.GetCounter(obs::kMetricNetInjectedDrops)
      .Inc(network_.injected_drops());
  metrics.GetCounter(obs::kMetricNetInjectedDelays)
      .Inc(network_.injected_delays());
  result_.shard_crashes = metrics.CounterValue(obs::kMetricShardCrashes);
  result_.reissued_queries =
      metrics.CounterValue(obs::kMetricReissuedQueries);
  result_.restored_providers =
      metrics.CounterValue(obs::kMetricRestoredProviders);
  result_.orphaned_providers =
      metrics.CounterValue(obs::kMetricOrphanedProviders);
  result_.failover_drain_ticks =
      metrics.CounterValue(obs::kMetricFailoverDrainTicks);
  result_.dropped_completions =
      metrics.CounterValue(obs::kMetricDroppedCompletions);
  result_.snapshots_taken = metrics.CounterValue(obs::kMetricSnapshots);
  result_.gossip_ring_retries =
      metrics.CounterValue(obs::kMetricGossipRingRetries);
  result_.gossip_load_messages =
      metrics.CounterValue(obs::kMetricGossipLoadMessages);
  result_.gossip_relay_forwards =
      metrics.CounterValue(obs::kMetricGossipRelayForwards);
  result_.gossip_relay_drops =
      metrics.CounterValue(obs::kMetricGossipRelayDrops);
  result_.net_sent = metrics.CounterValue(obs::kMetricNetSent);
  result_.net_delivered = metrics.CounterValue(obs::kMetricNetDelivered);
  result_.net_dropped = metrics.CounterValue(obs::kMetricNetDropped);
  result_.net_injected_drops =
      metrics.CounterValue(obs::kMetricNetInjectedDrops);
  result_.net_injected_delays =
      metrics.CounterValue(obs::kMetricNetInjectedDelays);

  if (consumer_locks_ != nullptr) {
    result_.consumer_lock_contention = consumer_locks_->contended_acquires();
  }

  // End-of-run agent-state residency: columns are layout-independent, the
  // per-agent term is where eager heap containers and lazy pooled chunks
  // diverge (the number the memory scale gate divides by the population).
  const runtime::AgentStore& store = engine_.agent_store();
  std::size_t agent_bytes = store.columns_bytes();
  for (const runtime::ProviderAgent& agent : engine_.providers()) {
    agent_bytes += agent.ResidentBytes();
  }
  result_.agent_state_bytes = agent_bytes;
  result_.arena_bytes_reserved = store.arena_bytes_reserved();
  return std::move(result_);
}

void ShardedMediationSystem::Execute(des::Simulator& sim, SimTime duration) {
  if (!parallel_) {
    // Classic single-threaded run: the engine's default loop.
    Driver::Execute(sim, duration);
    return;
  }
  des::WorkerPoolOptions pool_options;
  pool_options.pin_threads = config_.pin_worker_threads;
  pool_options.topology_aware = config_.topology_aware_workers;
  pool_options.static_schedule = config_.topology_aware_workers;
  des::WorkerPool pool(config_.worker_threads, pool_options);
  std::vector<des::Simulator*> lanes;
  lanes.reserve(lane_sims_.size());
  for (const auto& lane : lane_sims_) lanes.push_back(lane.get());
  des::LaneGroup group(std::move(lanes), &pool,
                       [this](SimTime, des::BarrierKind kind) {
                         // Record what this sync licenses: only a rebalance
                         // or failover barrier may be followed by membership
                         // moves (the transfer and adoption paths check this
                         // flag).
                         lanes_at_membership_barrier_ =
                             kind == des::BarrierKind::kRebalance ||
                             kind == des::BarrierKind::kFailover;
                         MergeEffects();
                       });
  sim.RunUntilParallel(duration, group);
  // Drain in-flight service past the horizon: lane completions first
  // (deterministic merge), then the coordinator's remaining gossip
  // deliveries — the two sets are disjoint, so the order between them
  // cannot matter.
  group.DrainAll();
  sim.RunAll();
}

void ShardedMediationSystem::OnQueryArrival(des::Simulator& sim,
                                            const Query& query) {
  const SimTime now = sim.Now();
  const std::uint32_t shard = router_.Route(query, now);
  ++result_.shards[shard].routed;
  if (coord_trace_ != nullptr && coord_trace_->SamplesQuery(query.id)) {
    coord_trace_->RecordInstant(obs::SpanKind::kRoute, now, query.id,
                                static_cast<double>(shard));
  }
  if (!window_controllers_.empty()) {
    // Adaptive intake: feed the shard's arrival-rate EWMA (coordinator
    // event — deterministic under any thread count).
    window_controllers_[shard].OnArrival(now);
  }

  if (!parallel_ && !batching_enabled_) {
    // Classic path: mediate inline, inside the arrival event.
    RouteWalk(sim, query, shard, 0);
    return;
  }
  EnqueueForMediation(query, shard, now);
}

void ShardedMediationSystem::RouteWalk(des::Simulator& sim, const Query& query,
                                       std::uint32_t shard,
                                       std::size_t attempt) {
  const SimTime now = sim.Now();
  std::size_t attempts = 1;
  if (config_.rerouting_enabled && cores_.size() > 1) {
    attempts = std::min<std::size_t>(
        std::max<std::size_t>(config_.max_route_attempts, 1), cores_.size());
  }

  // Shards this query has bounced off, so the re-route walk visits each
  // shard at most once (sized lazily: most queries never bounce).
  const bool traced =
      coord_trace_ != nullptr && coord_trace_->SamplesQuery(query.id);
  std::vector<bool> tried;
  if (attempt > 0) {
    // Resuming after a bounced batch attempt on `shard` (attempt 0).
    if (attempt >= attempts) {
      ++engine_.result().queries_infeasible;
      if (traced) {
        coord_trace_->RecordInstant(obs::SpanKind::kReject, now, query.id,
                                    static_cast<double>(shard));
      }
      return;
    }
    tried.assign(cores_.size(), false);
    tried[shard] = true;
    shard = router_.NextShard(shard, now, tried);
    reroutes_counter_->Inc();
    if (traced) {
      coord_trace_->RecordInstant(obs::SpanKind::kReroute, now, query.id,
                                  static_cast<double>(shard));
    }
  }
  for (; attempt < attempts; ++attempt) {
    const bool final_attempt = attempt + 1 == attempts;
    // The last shard tried must mediate even past the saturation bound: a
    // system that is saturated everywhere still has to serve its queries.
    const double saturation_bound =
        final_attempt ? 0.0 : config_.saturation_backlog_seconds;
    const runtime::MediationCore::Outcome outcome =
        cores_[shard]->Allocate(sim, query, saturation_bound);
    switch (outcome) {
      case runtime::MediationCore::Outcome::kAllocated:
        if (attempt > 0) rescues_counter_->Inc();
        return;
      case runtime::MediationCore::Outcome::kUnallocated:
        // The method saw the full candidate set and refused (strict
        // economic broker). That mediation round happened — providers and
        // the consumer recorded it — so replaying the query on another
        // shard would double-count; the mono system treats it the same.
        ++engine_.result().queries_infeasible;
        return;
      case runtime::MediationCore::Outcome::kNoCandidates:
      case runtime::MediationCore::Outcome::kSaturated:
        break;  // bounce to the next shard, if any attempt remains
    }
    if (!final_attempt) {
      if (tried.empty()) tried.assign(cores_.size(), false);
      tried[shard] = true;
      shard = router_.NextShard(shard, now, tried);
      reroutes_counter_->Inc();
      if (traced) {
        coord_trace_->RecordInstant(obs::SpanKind::kReroute, now, query.id,
                                    static_cast<double>(shard));
      }
    }
  }
  ++engine_.result().queries_infeasible;
  if (traced) {
    coord_trace_->RecordInstant(obs::SpanKind::kReject, now, query.id,
                                static_cast<double>(shard));
  }
}

double ShardedMediationSystem::BatchWindowFor(std::uint32_t shard) const {
  return window_controllers_.empty() ? config_.batch_window
                                     : window_controllers_[shard].Window();
}

void ShardedMediationSystem::SampleShardBacklogs() {
  // Barrier context (gossip task or the dedicated sampling task): the lanes
  // are quiescent, so reading the member providers' queue state from the
  // coordinator is race-free and deterministic.
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    window_controllers_[s].OnBacklogSample(cores_[s]->MeanBacklogSeconds());
  }
}

void ShardedMediationSystem::EnqueueForMediation(const Query& query,
                                                 std::uint32_t shard,
                                                 SimTime now) {
  // Lane intake: the shard's own queue under parallel execution, the
  // shared kernel otherwise (serial batching).
  des::Simulator& lane = parallel_ ? *lane_sims_[shard] : engine_.sim();
  if (batching_enabled_) {
    std::vector<Query>& buffer = batch_buffers_[shard];
    buffer.push_back(query);
    // Arm a flush when no pending flush covers this arrival: either the
    // buffer was empty, or the pending flush's due time is at or before
    // `now` (under parallel execution the coordinator runs ahead of the
    // lanes, so a flush can be due but not yet executed — it will only
    // consume the arrivals that preceded it).
    if (buffer.size() == 1 || now >= flush_due_[shard]) {
      flush_due_[shard] = now + BatchWindowFor(shard);
      lane.ScheduleAt(flush_due_[shard],
                      [this, shard](des::Simulator& lane_sim) {
                        FlushBatch(lane_sim, shard);
                      });
    }
    return;
  }
  // Parallel, unbatched: one single-query mediation event on the lane, at
  // the arrival time (the lane has not advanced past it — lanes only run
  // up to the coordinator's clock).
  lane.ScheduleAt(now, [this, shard, query](des::Simulator& lane_sim) {
    const runtime::MediationCore::Outcome outcome =
        cores_[shard]->Allocate(lane_sim, query, 0.0);
    if (outcome != runtime::MediationCore::Outcome::kAllocated) {
      CountInfeasible(lane_sim, shard, query);
    }
  });
}

void ShardedMediationSystem::FlushBatch(des::Simulator& sim,
                                        std::uint32_t shard) {
  // Consume only the arrivals this flush covers (issue_time <= flush time);
  // later arrivals already armed their own flush. Arrivals append in time
  // order, so that is a prefix of the buffer.
  std::vector<Query>& buffer = batch_buffers_[shard];
  std::vector<Query>& burst = flush_scratch_[shard];
  burst.clear();
  const SimTime flush_time = sim.Now();
  std::size_t covered = 0;
  while (covered < buffer.size() &&
         buffer[covered].issue_time <= flush_time) {
    ++covered;
  }
  if (covered == 0) return;
  burst.assign(buffer.begin(), buffer.begin() + covered);
  buffer.erase(buffer.begin(), buffer.begin() + covered);
  // Lane-side registry tallies: FlushBatch runs on the shard's lane thread
  // under parallel execution, so these write the shard's own registry; the
  // merged snapshot sums them at Run() end.
  flush_counters_[shard]->Inc();
  batched_query_counters_[shard]->Inc(burst.size());
  obs::TraceLane* lane_trace = engine_.recorder().trace_lane(shard);
  for (const Query& q : burst) {
    const double wait = flush_time - q.issue_time;
    if (batch_wait_hists_[shard] != nullptr) {
      batch_wait_hists_[shard]->Record(wait);
    }
    if (lane_trace != nullptr && lane_trace->SamplesQuery(q.id)) {
      lane_trace->Record(obs::SpanKind::kBatchWait, q.issue_time, flush_time,
                         q.id, static_cast<double>(burst.size()));
    }
  }

  std::size_t attempts = 1;
  if (!parallel_ && config_.rerouting_enabled && cores_.size() > 1) {
    attempts = std::min<std::size_t>(
        std::max<std::size_t>(config_.max_route_attempts, 1), cores_.size());
  }
  // Mirrors the walk's final-attempt rule: without a second attempt the
  // burst must mediate even past the saturation bound.
  const double saturation_bound =
      attempts > 1 ? config_.saturation_backlog_seconds : 0.0;

  std::vector<runtime::MediationCore::Outcome>& outcomes =
      outcome_scratch_[shard];
  cores_[shard]->AllocateBatch(sim, burst, saturation_bound, &outcomes);

  for (std::size_t i = 0; i < burst.size(); ++i) {
    switch (outcomes[i]) {
      case runtime::MediationCore::Outcome::kAllocated:
        break;
      case runtime::MediationCore::Outcome::kUnallocated:
        CountInfeasible(sim, shard, burst[i]);
        break;
      case runtime::MediationCore::Outcome::kNoCandidates:
      case runtime::MediationCore::Outcome::kSaturated:
        if (attempts > 1) {
          // Serial rerouting: resume the walk past the bounced batch
          // attempt, query by query.
          RouteWalk(sim, burst[i], shard, 1);
        } else {
          CountInfeasible(sim, shard, burst[i]);
        }
        break;
    }
  }
}

void ShardedMediationSystem::CountInfeasible(des::Simulator& sim,
                                             std::uint32_t shard,
                                             const Query& query) {
  if (parallel_) {
    effect_logs_[shard].RecordInfeasible(sim.Now());
  } else {
    ++engine_.result().queries_infeasible;
  }
  // Lane-side rejection span: this runs on the shard's lane thread under
  // parallel execution, so it records into the shard's own trace lane.
  if (obs::TraceLane* lane_trace = engine_.recorder().trace_lane(shard);
      lane_trace != nullptr && lane_trace->SamplesQuery(query.id)) {
    lane_trace->RecordInstant(obs::SpanKind::kReject, sim.Now(), query.id,
                              static_cast<double>(shard));
  }
}

void ShardedMediationSystem::MergeEffects() {
  runtime::MergeEffectLogs(effect_logs_, &engine_.result(),
                           &engine_.response_window());
  // Lanes are quiescent at a barrier: move their pending spans into the
  // recorder's merged stream before the rings can overflow.
  engine_.recorder().DrainSpans();
}

void ShardedMediationSystem::StartAuxiliaryTasks(des::Simulator& sim) {
  // Cross-shard load gossip (a barrier under parallel execution: reports
  // read core state, so the lanes drain and merge first).
  if (config_.gossip_enabled) {
    gossip_task_.Start(sim, config_.gossip_interval, config_.gossip_interval,
                       config_.base.duration,
                       [this](des::Simulator& s) { SendLoadReports(s); },
                       /*barrier=*/parallel_);
  } else if (!window_controllers_.empty()) {
    // No gossip to piggyback on: the adaptive controllers still need their
    // queue-debt signal, on the same cadence and with the same barrier
    // semantics the load reports would have had.
    backlog_sample_task_.Start(sim, config_.gossip_interval,
                               config_.gossip_interval, config_.base.duration,
                               [this](des::Simulator&) {
                                 SampleShardBacklogs();
                               },
                               /*barrier=*/parallel_);
  }
  // Crash-consistent snapshots on the fault schedule's cadence, armed only
  // when kills are scheduled. An epoch barrier under parallel execution:
  // the cut reads core state over quiescent, merged lanes.
  if (!config_.base.shard_faults.empty()) {
    const SimTime cadence = config_.base.shard_faults.snapshot_interval;
    snapshot_task_.Start(sim, cadence, cadence, config_.base.duration,
                         [this](des::Simulator& s) { OnSnapshotTick(s); },
                         /*barrier=*/parallel_);
  }
  // The re-partitioning schedule: a kRebalance barrier, so under parallel
  // execution the lanes are quiescent and merged — and the merge hook knows
  // membership may move — before any provider changes hands.
  if (config_.rebalance_enabled && cores_.size() > 1) {
    rebalance_task_.Start(sim, config_.rebalance_interval,
                          config_.rebalance_interval, config_.base.duration,
                          [this](des::Simulator& s) { OnRebalanceTick(s); },
                          parallel_ ? des::BarrierKind::kRebalance
                                    : des::BarrierKind::kNone);
  }
}

std::vector<std::uint32_t> ShardedMediationSystem::LiveShardRanks() const {
  std::vector<std::uint32_t> live;
  live.reserve(cores_.size());
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    if (!router_.IsShardDead(s)) live.push_back(s);
  }
  return live;
}

std::uint32_t ShardedMediationSystem::ShardOfAddress(NodeId address) const {
  const auto it =
      std::find(shard_addresses_.begin(), shard_addresses_.end(), address);
  SQLB_CHECK(it != shard_addresses_.end(),
             "load report relayed to an unknown shard address");
  return static_cast<std::uint32_t>(it - shard_addresses_.begin());
}

void ShardedMediationSystem::RelayLoadReport(std::uint32_t shard,
                                             const msg::Message& message) {
  // The relay died with the report in flight: drop it. The origin is still
  // alive and reports again next round, over a tree rebuilt without the
  // corpse — one round of extra staleness, never a lost shard.
  if (router_.IsShardDead(shard)) {
    relay_drops_counter_->Inc();
    return;
  }
  const std::vector<std::uint32_t> live = LiveShardRanks();
  const auto it = std::find(live.begin(), live.end(), shard);
  SQLB_CHECK(it != live.end(), "live relay shard missing from rank list");
  const std::size_t rank = static_cast<std::size_t>(it - live.begin());
  // One hop up the current tree. Hops always move to a strictly smaller
  // shard index, so a report can never cycle even while membership churns
  // under it; rank 0 hands it to the router.
  msg::Message forward;
  forward.from = shard_addresses_[shard];
  forward.to = rank == 0
                   ? sink_address_
                   : shard_addresses_[live[GossipParentRank(
                         rank, config_.gossip_fanout)]];
  forward.kind = kLoadReportKind;
  forward.correlation = message.correlation;
  forward.payload = message.payload;  // measured_at rides through unchanged
  relay_forwards_counter_->Inc();
  gossip_load_messages_counter_->Inc();
  network_.Send(std::move(forward));
}

void ShardedMediationSystem::SendLoadReports(des::Simulator& sim) {
  const SimTime now = sim.Now();
  if (!window_controllers_.empty()) {
    SampleShardBacklogs();
  }
  // In serial runs no barrier merge ever fires; draining on the gossip
  // cadence keeps the per-lane rings from overflowing on long runs.
  engine_.recorder().DrainSpans();
  const std::vector<std::uint32_t> live =
      config_.gossip_topology == GossipTopologyKind::kDirect
          ? std::vector<std::uint32_t>{}
          : LiveShardRanks();
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    if (router_.IsShardDead(s)) continue;  // dead mediators report nothing
    LoadReport report;
    report.shard = s;
    report.utilization = cores_[s]->MeanCommittedUtilization(now);
    report.active_providers = cores_[s]->active_provider_count();
    report.measured_at = now;
    report.ring_epoch = shard_epoch_seen_[s];
    if (coord_trace_ != nullptr) {
      // Gossip spans are not query-scoped: ref = reporting shard, detail =
      // the utilization it reported. Always recorded while tracing is on.
      coord_trace_->RecordInstant(obs::SpanKind::kGossip, now, s,
                                  report.utilization);
    }

    switch (config_.gossip_topology) {
      case GossipTopologyKind::kDirect: {
        msg::Message message;
        message.from = shard_addresses_[s];
        message.to = sink_address_;
        message.kind = kLoadReportKind;
        message.correlation = s;
        message.payload = report;
        gossip_load_messages_counter_->Inc();
        network_.Send(std::move(message));
        break;
      }
      case GossipTopologyKind::kHierarchical: {
        // One hop up the round's aggregation tree; the root reports to the
        // router directly. Interior hops happen at delivery time
        // (RelayLoadReport), so every hop costs one network latency of
        // added staleness — surfaced by gossip.staleness_seconds.
        const auto rank_it = std::find(live.begin(), live.end(), s);
        const std::size_t rank =
            static_cast<std::size_t>(rank_it - live.begin());
        msg::Message message;
        message.from = shard_addresses_[s];
        message.to = rank == 0
                         ? sink_address_
                         : shard_addresses_[live[GossipParentRank(
                               rank, config_.gossip_fanout)]];
        message.kind = kLoadReportKind;
        message.correlation = s;
        message.payload = report;
        gossip_load_messages_counter_->Inc();
        network_.Send(std::move(message));
        break;
      }
      case GossipTopologyKind::kAllToAll: {
        // Full mesh: the router plus every live peer hears every report
        // first-hand. Theta(M^2) messages — the baseline the hierarchical
        // topology exists to beat.
        for (std::uint32_t t : live) {
          msg::Message message;
          message.from = shard_addresses_[s];
          message.to = t == s ? sink_address_ : shard_addresses_[t];
          message.kind = kLoadReportKind;
          message.correlation = s;
          message.payload = report;
          gossip_load_messages_counter_->Inc();
          network_.Send(std::move(message));
        }
        break;
      }
    }
  }

  // The retry half of loss tolerance: a shard still acknowledging an older
  // partition epoch (its ring update was dropped or delayed by the network)
  // gets the current epoch re-announced on this cadence until it converges.
  // Until then its load reports stay epoch-lagged and load-aware routing
  // falls back to hashing for it — stale but safe.
  const std::uint64_t epoch = router_.ring_epoch();
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    if (router_.IsShardDead(s) || shard_epoch_seen_[s] >= epoch) continue;
    ring_retries_counter_->Inc();
    RingUpdate update;
    update.shard = s;
    update.epoch = epoch;
    msg::Message message;
    message.from = sink_address_;
    message.to = shard_addresses_[s];
    message.kind = kRingUpdateKind;
    message.correlation = epoch;
    message.payload = update;
    network_.Send(std::move(message));
  }
}

void ShardedMediationSystem::VisitActiveProviders(
    const std::function<void(runtime::ProviderAgent&)>& fn) {
  // Shard order, then each shard's active list: at M = 1 this is exactly
  // the mono-mediator's iteration order, which the parity pins rely on.
  std::vector<runtime::ProviderAgent>& providers = engine_.providers();
  for (const auto& core : cores_) {
    for (std::uint32_t index : core->active_providers()) {
      fn(providers[index]);
    }
  }
}

std::size_t ShardedMediationSystem::ActiveProviderCount() const {
  std::size_t active = 0;
  for (const auto& core : cores_) active += core->active_provider_count();
  return active;
}

void ShardedMediationSystem::ExtendMetricsSample(SimTime now,
                                                 des::SeriesSet& series) {
  // The shard-tier view: per-shard load and membership, appended after the
  // engine's mono-compatible keys.
  for (std::size_t shard = 0; shard < cores_.size(); ++shard) {
    series.Add(kSeriesShardUtPrefix + std::to_string(shard), now,
               cores_[shard]->MeanCommittedUtilization(now));
    series.Add(kSeriesShardActivePrefix + std::to_string(shard), now,
               static_cast<double>(cores_[shard]->active_provider_count()));
  }
}

void ShardedMediationSystem::RunProviderDepartureChecks(SimTime now,
                                                        double optimal_ut) {
  // Section 6.3.2 provider rules, shard by shard: each mediator assesses
  // only its own members; consumers are system-global (the engine runs
  // their rule right after this hook).
  for (const auto& core : cores_) {
    core->RunProviderDepartureChecks(now, optimal_ut);
  }
}

runtime::ChurnOutcome ShardedMediationSystem::OnProviderChurn(
    des::Simulator& sim, const runtime::ProviderChurnEvent& event) {
  // Fires at an epoch barrier under parallel execution: admitting a member
  // touches no lane-pending events, and a leave behaves exactly like a
  // rule-based departure (queued work drains on its lane, nothing new
  // arrives).
  const SimTime now = sim.Now();
  if (event.join) {
    for (const auto& core : cores_) {
      if (core->IsMember(event.provider_index)) {
        return runtime::ChurnOutcome::kNoOp;
      }
    }
    // A dead shard's provider awaiting adoption is a member nowhere, but it
    // is still in the system (active, draining toward its new owner): the
    // join is as redundant as it would have been without the crash.
    if (std::any_of(pending_adoptions_.begin(), pending_adoptions_.end(),
                    [&event](const PendingAdoption& a) {
                      return a.provider == event.provider_index;
                    })) {
      return runtime::ChurnOutcome::kNoOp;
    }
    // A rejoining provider must have drained its previous life's queue
    // first: its in-flight service chain lives on the lane of the shard
    // that enqueued it, and the current ring may home the provider
    // elsewhere — admitting it there would split its state across two
    // lanes, exactly what the handoff protocol's drain rule forbids. The
    // engine retries the join until the drain completes.
    if (!engine_.providers()[event.provider_index].Idle()) {
      return runtime::ChurnOutcome::kDeferred;
    }
    // A handoff sealed for a previous membership incarnation must not
    // attach to this one (the provider may be rejoining the very shard the
    // old seal names as its source, which the IsMember drain check cannot
    // distinguish from the seal never having been resolved).
    DropPendingHandoff(event.provider_index);
    const std::uint32_t shard =
        router_.ShardOfProvider(ProviderId(event.provider_index));
    cores_[shard]->AdmitMember(event.provider_index, now);
    ++result_.shards[shard].joined;
    return runtime::ChurnOutcome::kApplied;
  }
  for (const auto& core : cores_) {
    if (core->DepartMemberForChurn(event.provider_index, now)) {
      // The member this seal was draining is gone; nothing left to move.
      DropPendingHandoff(event.provider_index);
      return runtime::ChurnOutcome::kApplied;
    }
  }
  // A provider awaiting failover adoption is a member of no core, but the
  // scheduled leave still binds: it departs directly (the accounting a
  // DepartMemberForChurn would have done) and the adoption is annulled.
  const auto pending = std::find_if(
      pending_adoptions_.begin(), pending_adoptions_.end(),
      [&event](const PendingAdoption& a) {
        return a.provider == event.provider_index;
      });
  if (pending != pending_adoptions_.end()) {
    pending_adoptions_.erase(pending);
    runtime::ProviderAgent& agent = engine_.providers()[event.provider_index];
    agent.Depart();
    runtime::DepartureEvent departure;
    departure.time = now;
    departure.is_provider = true;
    departure.reason = runtime::DepartureReason::kChurn;
    departure.participant_index = event.provider_index;
    departure.capacity_class = agent.profile().capacity_class;
    departure.interest_class = agent.profile().interest_class;
    departure.adaptation_class = agent.profile().adaptation_class;
    engine_.result().departures.push_back(departure);
    engine_.result().tally.Add(departure);
    return runtime::ChurnOutcome::kApplied;
  }
  // Already gone (departure rules beat the schedule to it).
  return runtime::ChurnOutcome::kNoOp;
}

void ShardedMediationSystem::DropPendingHandoff(std::uint32_t provider) {
  const auto it =
      std::find_if(pending_handoffs_.begin(), pending_handoffs_.end(),
                   [provider](const PendingHandoff& h) {
                     return h.provider == provider;
                   });
  if (it == pending_handoffs_.end()) return;
  pending_handoffs_.erase(it);
  handoffs_cancelled_counter_->Inc();
}

void ShardedMediationSystem::OnRebalanceTick(des::Simulator& sim) {
  // Pass 1: transfer whatever drained since the last tick (and drop
  // handoffs whose provider departed mid-drain); learn current ownership.
  std::vector<std::uint32_t> owner = ProcessPendingHandoffs(sim.Now());

  // Effective member counts, with still-pending moves credited to their
  // target shard so an in-progress migration is not corrected twice.
  std::vector<std::size_t> counts(cores_.size(), 0);
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    counts[s] = cores_[s]->active_provider_count();
  }
  for (const PendingHandoff& h : pending_handoffs_) {
    --counts[h.from];
    ++counts[h.to];
  }

  // Reweight the partition ring past the imbalance threshold and gossip
  // the new epoch out — damped two ways. Settle gate: while any handoff of
  // the previous correction is still draining, the member counts are a
  // moving target and a fresh correction would chase them (the reweigh
  // cascade a mass departure used to trigger), so the ring holds still
  // until the moves land. Hysteresis: the imbalance must then persist
  // rebalance_hysteresis_ticks consecutive ticks, and the streak restarts
  // after every applied reweigh.
  if (!pending_handoffs_.empty()) {
    if (router_.RebalancedVnodes(counts) != router_.shard_vnodes()) {
      rebalances_damped_counter_->Inc();
    }
    imbalance_streak_ = 0;
  } else {
    std::vector<std::size_t> vnodes = router_.RebalancedVnodes(counts);
    if (vnodes != router_.shard_vnodes()) {
      ++imbalance_streak_;
      if (imbalance_streak_ >=
          std::max<std::size_t>(1,
                                config_.router.rebalance_hysteresis_ticks)) {
        router_.SetShardVnodes(std::move(vnodes));
        ring_rebalances_counter_->Inc();
        AnnounceRingEpoch();
        imbalance_streak_ = 0;
      } else {
        rebalances_damped_counter_->Inc();
      }
    } else {
      imbalance_streak_ = 0;
    }
  }

  // Reconcile ownership with the (possibly rebuilt) ring: seal new movers
  // at their source, retarget in-flight moves, cancel moves the ring
  // flapped back on. Provider index order keeps the sequence deterministic.
  for (std::uint32_t p = 0; p < owner.size(); ++p) {
    if (owner[p] == kNoShard) continue;
    const std::uint32_t desired = router_.ShardOfProvider(ProviderId(p));
    const auto pending =
        std::find_if(pending_handoffs_.begin(), pending_handoffs_.end(),
                     [p](const PendingHandoff& h) { return h.provider == p; });
    if (desired == owner[p]) {
      if (pending != pending_handoffs_.end()) {
        cores_[owner[p]]->UnsealMember(p);
        pending_handoffs_.erase(pending);
        handoffs_cancelled_counter_->Inc();
      }
      continue;
    }
    if (pending != pending_handoffs_.end()) {
      pending->to = desired;
      continue;
    }
    cores_[owner[p]]->SealMember(p);
    pending_handoffs_.push_back(
        PendingHandoff{p, owner[p], desired, sim.Now()});
    handoffs_started_counter_->Inc();
  }

  // Pass 2: movers that were already idle transfer within this barrier.
  owner = ProcessPendingHandoffs(sim.Now());

  // Ownership digest (FNV-1a over ring epoch + owner of every provider):
  // the determinism pin compares these sequences across thread counts.
  std::uint64_t digest = 1469598103934665603ULL;
  const auto mix = [&digest](std::uint64_t v) {
    digest ^= v;
    digest *= 1099511628211ULL;
  };
  mix(router_.ring_epoch());
  for (std::uint32_t o : owner) mix(o);
  result_.ownership_digests.push_back(digest);
}

std::vector<std::uint32_t> ShardedMediationSystem::ProcessPendingHandoffs(
    SimTime now) {
  // Under parallel execution a transfer is only safe with every lane
  // quiescent at a *membership* barrier (kRebalance or kFailover) — the
  // kind the lane group's merge hook recorded. A plain epoch barrier (or no
  // barrier) must never reach this point with work to move.
  SQLB_CHECK(!parallel_ || pending_handoffs_.empty() ||
                 lanes_at_membership_barrier_,
             "re-partitioning handoffs require a rebalance or failover "
             "barrier");
  std::vector<runtime::ProviderAgent>& providers = engine_.providers();
  for (auto it = pending_handoffs_.begin(); it != pending_handoffs_.end();) {
    if (!cores_[it->from]->IsMember(it->provider)) {
      // Departed (rules or schedule) while draining: nothing left to move.
      it = pending_handoffs_.erase(it);
      handoffs_cancelled_counter_->Inc();
      continue;
    }
    if (!providers[it->provider].Idle()) {
      ++it;  // still draining its queue on the source lane
      continue;
    }
    const runtime::MediationCore::ProviderHandoff handoff =
        cores_[it->from]->ExportMember(it->provider);
    cores_[it->to]->ImportMember(handoff);
    ++result_.shards[it->from].providers_out;
    ++result_.shards[it->to].providers_in;
    handoffs_completed_counter_->Inc();
    // Seal-to-transfer drain latency, and the handoff span covering it
    // (ref = the migrating provider, detail = destination shard).
    if (handoff_drain_hist_ != nullptr) {
      handoff_drain_hist_->Record(now - it->sealed_at);
    }
    if (coord_trace_ != nullptr) {
      coord_trace_->Record(obs::SpanKind::kHandoff, it->sealed_at, now,
                           it->provider, static_cast<double>(it->to));
    }
    it = pending_handoffs_.erase(it);
  }

  std::vector<std::uint32_t> owner(providers.size(), kNoShard);
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    for (std::uint32_t index : cores_[s]->active_providers()) {
      owner[index] = s;
    }
  }
  return owner;
}

void ShardedMediationSystem::AnnounceRingEpoch() {
  const std::uint64_t epoch = router_.ring_epoch();
  if (!config_.gossip_enabled) {
    // No gossip substrate to ride: the fleet learns the epoch instantly.
    for (std::uint64_t& seen : shard_epoch_seen_) {
      seen = std::max(seen, epoch);
    }
    return;
  }
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    RingUpdate update;
    update.shard = s;
    update.epoch = epoch;
    msg::Message message;
    message.from = sink_address_;
    message.to = shard_addresses_[s];
    message.kind = kRingUpdateKind;
    message.correlation = epoch;
    message.payload = update;
    network_.Send(std::move(message));
  }
}

void ShardedMediationSystem::OnRingEpochSeen(std::uint32_t shard,
                                             std::uint64_t epoch) {
  shard_epoch_seen_[shard] = std::max(shard_epoch_seen_[shard], epoch);
}

void ShardedMediationSystem::OnSnapshotTick(des::Simulator& sim) {
  const SimTime now = sim.Now();
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    if (router_.IsShardDead(s)) continue;
    snapshots_[s] = cores_[s]->ExportSnapshot(now);
    snapshots_counter_->Inc();
  }
}

void ShardedMediationSystem::OnShardFault(
    des::Simulator& sim, const runtime::ShardFaultEvent& event) {
  const std::uint32_t dead = event.shard;
  if (router_.IsShardDead(dead)) return;  // killing the dead twice: no-op
  if (router_.live_shard_count() == 1) {
    // No survivor to fail over to (M = 1, or every sibling already died):
    // the mediator crashes and restarts in place — the mono semantics.
    RestartShard(sim, dead);
    return;
  }
  const SimTime now = sim.Now();
  shard_crashes_counter_->Inc();
  if (coord_trace_ != nullptr) {
    coord_trace_->RecordInstant(obs::SpanKind::kGossip, now, dead, -1.0);
  }

  // 1. The crash: membership, matchmaking and in-flight tracking die with
  //    the core; completions already scheduled on its providers will drop
  //    against the bumped crash epoch when they fire.
  runtime::MediationCore::CrashReport report = cores_[dead]->Crash();

  // 2. Take the dead shard off every routing surface and off the partition
  //    ring (epoch bump), and tell the fleet. Survivor ownership follows
  //    the rebuilt ring.
  router_.MarkShardDead(dead);
  std::vector<std::size_t> vnodes = router_.shard_vnodes();
  vnodes[dead] = 0;
  router_.SetShardVnodes(std::move(vnodes));
  AnnounceRingEpoch();

  // 3. Cancel handoffs touching the dead shard: a move out of it is moot
  //    (the member died with the core and re-enters through adoption); a
  //    move into it releases the seal so the live source resumes matching.
  for (auto it = pending_handoffs_.begin(); it != pending_handoffs_.end();) {
    if (it->from == dead) {
      it = pending_handoffs_.erase(it);
      handoffs_cancelled_counter_->Inc();
    } else if (it->to == dead) {
      cores_[it->from]->UnsealMember(it->provider);
      it = pending_handoffs_.erase(it);
      handoffs_cancelled_counter_->Inc();
    } else {
      ++it;
    }
  }

  // 4. Queue every lost member for adoption — snapshot baselines when the
  //    last snapshot has them, fresh admission otherwise — and adopt the
  //    already-idle ones within this barrier. Non-idle ones keep draining
  //    their service chains on the dead lane and are retried at kFailover
  //    barriers every drain_retry_interval (the handoff drain rule's twin).
  const runtime::MediationCore::CoreSnapshot& snapshot = snapshots_[dead];
  for (std::uint32_t p : report.members) {
    PendingAdoption adoption;
    adoption.provider = p;
    const auto snap = std::lower_bound(
        snapshot.members.begin(), snapshot.members.end(), p,
        [](const runtime::MediationCore::ProviderHandoff& h,
           std::uint32_t value) { return h.provider_index < value; });
    if (snap != snapshot.members.end() && snap->provider_index == p) {
      adoption.baseline = *snap;
      adoption.restored = true;
    } else {
      adoption.baseline.provider_index = p;  // baseline set at adoption time
      adoption.restored = false;
    }
    pending_adoptions_.push_back(adoption);
  }
  ProcessPendingAdoptions(now);
  if (!pending_adoptions_.empty()) {
    drain_ticks_counter_->Inc();
    ScheduleAdoptionRetry(sim);
  }

  // 5. Re-issue what the crash lost, ascending query id: in-flight
  //    mediations (their completion callbacks died with the core), then the
  //    intake buffer (routed but never mediated).
  for (const Query& q : report.lost_queries) {
    ReissueQuery(sim, q, runtime::ReissueReason::kInFlight);
  }
  std::vector<Query> intake;
  intake.swap(batch_buffers_[dead]);
  flush_due_[dead] = -kSimTimeInfinity;
  for (const Query& q : intake) {
    ReissueQuery(sim, q, runtime::ReissueReason::kIntake);
  }
}

void ShardedMediationSystem::RestartShard(des::Simulator& sim,
                                          std::uint32_t shard) {
  const SimTime now = sim.Now();
  shard_crashes_counter_->Inc();
  runtime::MediationCore::CrashReport report = cores_[shard]->Crash();
  // Same core, same lane: the restart re-installs the snapshot in place, so
  // even non-idle members keep their service chain on the one lane that
  // ever touched them — no drain wait, unlike cross-shard adoption.
  restored_counter_->Inc(cores_[shard]->RestoreSnapshot(snapshots_[shard]));
  // Members the snapshot predates (admitted after it was taken) re-enter
  // fresh: chronic baseline at current totals, departure grace restarted.
  for (std::uint32_t p : report.members) {
    if (cores_[shard]->IsMember(p)) continue;
    if (!engine_.providers()[p].active()) continue;
    runtime::MediationCore::ProviderHandoff fresh;
    fresh.provider_index = p;
    fresh.units_at_last_check =
        engine_.providers()[p].total_allocated_units();
    fresh.member_since = now;
    cores_[shard]->ImportMember(fresh);
    orphaned_counter_->Inc();
  }
  for (const Query& q : report.lost_queries) {
    ReissueQuery(sim, q, runtime::ReissueReason::kInFlight);
  }
  std::vector<Query> intake;
  intake.swap(batch_buffers_[shard]);
  flush_due_[shard] = -kSimTimeInfinity;
  for (const Query& q : intake) {
    ReissueQuery(sim, q, runtime::ReissueReason::kIntake);
  }
}

void ShardedMediationSystem::ProcessPendingAdoptions(SimTime now) {
  // Adoptions move membership between lanes, exactly like handoff
  // transfers: legal only with every lane quiescent at a membership
  // barrier.
  SQLB_CHECK(!parallel_ || pending_adoptions_.empty() ||
                 lanes_at_membership_barrier_,
             "failover adoptions require a failover barrier");
  std::vector<runtime::ProviderAgent>& providers = engine_.providers();
  for (auto it = pending_adoptions_.begin();
       it != pending_adoptions_.end();) {
    runtime::ProviderAgent& agent = providers[it->provider];
    if (!agent.active()) {
      // Departed while waiting (a scheduled leave): nothing to adopt.
      it = pending_adoptions_.erase(it);
      continue;
    }
    if (!agent.Idle()) {
      ++it;  // still draining its dead-lane service chain
      continue;
    }
    const std::uint32_t target =
        router_.ShardOfProvider(ProviderId(it->provider));
    runtime::MediationCore::ProviderHandoff baseline = it->baseline;
    if (it->restored) {
      restored_counter_->Inc();
    } else {
      // Orphan: the crash predates its first snapshot. Fresh admission.
      baseline.units_at_last_check = agent.total_allocated_units();
      baseline.member_since = now;
      orphaned_counter_->Inc();
    }
    cores_[target]->ImportMember(baseline);
    ++result_.shards[target].providers_in;
    if (coord_trace_ != nullptr) {
      coord_trace_->Record(obs::SpanKind::kHandoff, now, now, it->provider,
                           static_cast<double>(target));
    }
    it = pending_adoptions_.erase(it);
  }
}

void ShardedMediationSystem::ScheduleAdoptionRetry(des::Simulator& sim) {
  if (adoption_retry_armed_) return;
  const SimTime next =
      sim.Now() + config_.base.shard_faults.drain_retry_interval;
  // Past the horizon: the drain never completed in time — the providers
  // stay outside every membership this run (deterministic in every
  // execution mode, mirroring deferred churn joins).
  if (next > config_.base.duration) return;
  adoption_retry_armed_ = true;
  sim.ScheduleBarrierAt(next,
                        [this](des::Simulator& s) {
                          adoption_retry_armed_ = false;
                          ProcessPendingAdoptions(s.Now());
                          if (!pending_adoptions_.empty()) {
                            drain_ticks_counter_->Inc();
                            ScheduleAdoptionRetry(s);
                          }
                        },
                        des::BarrierKind::kFailover);
}

void ShardedMediationSystem::ReissueQuery(des::Simulator& sim,
                                          const Query& query,
                                          runtime::ReissueReason reason) {
  // Each re-issue is a fresh issue — that is what keeps the accounting
  // identity exact: completed + infeasible + reissued == issued.
  ++engine_.result().queries_issued;
  ++engine_.result().queries_reissued;
  reissued_counter_->Inc();
  reissued_reason_counters_[static_cast<std::size_t>(reason)]->Inc();
  if (reissue_delay_hist_ != nullptr) {
    reissue_delay_hist_->Record(sim.Now() - query.issue_time);
  }
  if (coord_trace_ != nullptr && coord_trace_->SamplesQuery(query.id)) {
    coord_trace_->RecordInstant(obs::SpanKind::kIntake, sim.Now(), query.id,
                                static_cast<double>(reason));
  }
  // The query keeps its id and original issue time, so the crash-to-
  // reissue gap rides into its response time: the availability penalty is
  // charged, not hidden. Routing sees the post-crash ring (the dead shard
  // is excluded everywhere).
  OnQueryArrival(sim, query);
}

ShardedRunResult RunShardedScenario(
    const ShardedSystemConfig& config,
    ShardedMediationSystem::MethodFactory factory) {
  ShardedMediationSystem system(config, std::move(factory));
  return system.Run();
}

}  // namespace sqlb::shard
