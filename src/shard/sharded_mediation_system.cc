#include "shard/sharded_mediation_system.h"

#include <algorithm>
#include <any>
#include <string>
#include <utility>

#include "common/status.h"
#include "des/worker_pool.h"
#include "model/metrics.h"
#include "runtime/mediation_system.h"

namespace sqlb::shard {
namespace {

/// Protocol message kind for shard -> router load gossip.
constexpr std::uint32_t kLoadReportKind = 1;

/// Gossip payload: one shard's self-measured load at `measured_at`. By the
/// time the network delivers it, the measurement is already stale — which
/// is the point: routing decisions run on the same bounded-staleness view a
/// real mediator fleet would have.
struct LoadReport {
  std::uint32_t shard = 0;
  double utilization = 0.0;
  std::size_t active_providers = 0;
  SimTime measured_at = 0.0;
};

}  // namespace

/// Router-side network node: folds delivered load reports into the router's
/// load table. Also lends its OnMessage-less shard sender addresses their
/// identity (the per-shard mediation loops are not message-driven nodes;
/// only their reports travel the network).
class ShardedMediationSystem::GossipSink final : public msg::Node {
 public:
  explicit GossipSink(ShardRouter* router) : router_(router) {}

  void OnMessage(msg::Network& network, const msg::Message& message) override {
    (void)network;
    if (message.kind != kLoadReportKind) return;
    const auto& report = std::any_cast<const LoadReport&>(message.payload);
    router_->ReportLoad(report.shard, report.utilization,
                        report.active_providers, report.measured_at);
  }

 private:
  ShardRouter* router_;
};

double ShardedRunResult::RouteImbalance() const {
  std::vector<double> routed;
  routed.reserve(shards.size());
  for (const ShardStats& s : shards) {
    routed.push_back(static_cast<double>(s.routed));
  }
  return LoadImbalance(routed);
}

ShardedMediationSystem::ShardedMediationSystem(
    const ShardedSystemConfig& config, MethodFactory factory)
    : config_(config),
      population_(config.base.population, config.base.seed),
      // The shared streams fork in the same order as the mono-mediator's
      // (11, 12 here, 13 for arrivals in Run), which is what makes an M = 1
      // run replay the mono system query for query. Everything shard-tier
      // (ring hashing, network latency) draws from independent generators.
      rng_(config.base.seed ^ 0x5e5703a7ULL),
      query_class_rng_(rng_.Fork(11)),
      consumer_pick_rng_(rng_.Fork(12)),
      reputation_(config.base.population.num_providers, 0.0, 0.1),
      router_(config.router),
      network_(sim_, config.gossip_latency,
               Rng(config.base.seed ^ 0x60551bULL)),
      response_window_(500) {
  SQLB_CHECK(factory != nullptr, "sharded system needs a method factory");
  SQLB_CHECK(config.base.duration > 0.0, "run duration must be positive");
  SQLB_CHECK(config.base.query_n >= 1, "q.n must be >= 1");
  SQLB_CHECK(config.router.num_shards >= 1, "need at least one shard");

  providers_.reserve(population_.num_providers());
  for (const ProviderProfile& profile : population_.providers()) {
    providers_.emplace_back(profile, config_.base.provider);
  }
  consumers_.reserve(population_.num_consumers());
  for (std::size_t c = 0; c < population_.num_consumers(); ++c) {
    consumers_.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                            config_.base.consumer);
    active_consumers_.push_back(static_cast<std::uint32_t>(c));
  }

  // Partition the provider population and raise one pipeline per shard.
  const std::vector<std::vector<std::uint32_t>> partition =
      router_.PartitionProviders(population_.providers());
  runtime::MediationCore::Shared shared;
  shared.config = &config_.base;
  shared.population = &population_;
  shared.providers = &providers_;
  shared.consumers = &consumers_;
  shared.reputation = &reputation_;
  shared.result = &result_.run;
  shared.response_window = &response_window_;

  const std::size_t num_shards = config_.router.num_shards;
  parallel_ = config_.worker_threads > 0;
  if (parallel_) {
    lane_sims_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      lane_sims_.push_back(std::make_unique<des::Simulator>());
    }
    effect_logs_.resize(num_shards);
  }
  batch_buffers_.resize(num_shards);
  flush_due_.assign(num_shards, -kSimTimeInfinity);
  flush_scratch_.resize(num_shards);
  outcome_scratch_.resize(num_shards);

  methods_.reserve(num_shards);
  cores_.reserve(num_shards);
  result_.shards.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    methods_.push_back(factory(s));
    SQLB_CHECK(methods_.back() != nullptr, "method factory returned null");
    // In parallel mode each core sinks its cross-shard effects into its
    // own log, merged at epoch barriers; in serial mode it writes the
    // shared sinks directly (bit-identical to PR 1).
    shared.effects = parallel_ ? &effect_logs_[s] : nullptr;
    cores_.push_back(std::make_unique<runtime::MediationCore>(
        shared, methods_.back().get(), partition[s]));
    result_.shards[s].initial_providers = partition[s].size();
  }

  // Gossip endpoints: one sender address per shard, one router-side sink.
  gossip_sink_ = std::make_unique<GossipSink>(&router_);
  shard_addresses_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shard_addresses_.push_back(network_.Register(gossip_sink_.get()));
  }
  sink_address_ = network_.Register(gossip_sink_.get());

  result_.run.method_name = methods_.front()->name();
  result_.run.duration = config_.base.duration;
  result_.run.initial_providers = providers_.size();
  result_.run.initial_consumers = consumers_.size();
}

ShardedMediationSystem::~ShardedMediationSystem() = default;

double ShardedMediationSystem::ArrivalRateAt(SimTime t) const {
  return runtime::ScaledArrivalRate(config_.base, population_,
                                    active_consumers_.size(),
                                    result_.run.initial_consumers, t);
}

ShardedRunResult ShardedMediationSystem::Run() {
  SQLB_CHECK(!ran_, "ShardedMediationSystem::Run may only be called once");
  ran_ = true;
  const runtime::SystemConfig& base = config_.base;

  // Epoch-parallel preconditions: between barriers, a lane may only touch
  // state no other lane (and no coordinator event) reads. See the
  // worker_threads comment in ShardedSystemConfig.
  if (parallel_) {
    SQLB_CHECK(!base.reputation_feedback,
               "parallel shard execution requires reputation_feedback off");
    SQLB_CHECK(cores_.size() == 1 ||
                   config_.router.policy == RoutingPolicy::kLocality,
               "parallel shard execution requires consumer-affine "
               "(kLocality) routing");
    SQLB_CHECK(cores_.size() == 1 || !config_.rerouting_enabled,
               "parallel shard execution requires rerouting disabled");
  }

  // Arrival process over the whole run (fork 13, as in the mono system).
  const double max_rate = runtime::NominalMaxArrivalRate(base, population_);
  des::PoissonArrivalProcess arrivals(
      [this](SimTime t) { return ArrivalRateAt(t); }, max_rate,
      rng_.Fork(13));
  arrivals.Start(sim_, 0.0, base.duration,
                 [this](des::Simulator& sim) { OnArrival(sim); });

  // Metric probes, load gossip and departure checks all read (and, for
  // departures, mutate) shard state, so under parallel execution each of
  // their firings is an epoch barrier: the lanes drain up to the event's
  // time and merge before the callback runs.
  des::PeriodicTask probe;
  if (base.record_series) {
    probe.Start(sim_, base.sample_interval, base.sample_interval,
                base.duration,
                [this](des::Simulator& sim) { SampleMetrics(sim); },
                /*barrier=*/parallel_);
  }

  // Cross-shard load gossip.
  des::PeriodicTask gossip;
  if (config_.gossip_enabled) {
    gossip.Start(sim_, config_.gossip_interval, config_.gossip_interval,
                 base.duration,
                 [this](des::Simulator& sim) { SendLoadReports(sim); },
                 /*barrier=*/parallel_);
  }

  // Departure checks.
  des::PeriodicTask departure_task;
  const runtime::DepartureConfig& dep = base.departures;
  const bool departures_enabled =
      dep.consumers_may_leave || dep.provider_dissatisfaction ||
      dep.provider_starvation || dep.provider_overutilization;
  if (departures_enabled) {
    departure_task.Start(sim_, dep.grace_period, dep.check_interval,
                         base.duration,
                         [this](des::Simulator& sim) {
                           RunDepartureChecks(sim);
                         },
                         /*barrier=*/parallel_);
  }

  if (parallel_) {
    des::WorkerPool pool(config_.worker_threads);
    std::vector<des::Simulator*> lanes;
    lanes.reserve(lane_sims_.size());
    for (const auto& lane : lane_sims_) lanes.push_back(lane.get());
    des::LaneGroup group(std::move(lanes), &pool,
                         [this](SimTime) { MergeEffects(); });
    sim_.RunUntilParallel(base.duration, group);
    // Drain in-flight service past the horizon: lane completions first
    // (deterministic merge), then the coordinator's remaining gossip
    // deliveries — the two sets are disjoint, so the order between them
    // cannot matter.
    group.DrainAll();
    sim_.RunAll();
  } else {
    sim_.RunUntil(base.duration);
    // Drain in-flight service (and gossip) so every allocated query
    // completes.
    sim_.RunAll();
  }

  std::size_t remaining = 0;
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    result_.shards[s].remaining_providers = cores_[s]->active_provider_count();
    result_.shards[s].allocated = cores_[s]->allocated_queries();
    remaining += cores_[s]->active_provider_count();
  }
  result_.run.remaining_providers = remaining;
  result_.run.remaining_consumers = active_consumers_.size();
  result_.gossip_sent = network_.sent_messages();
  result_.gossip_delivered = network_.delivered_messages();
  result_.stale_fallbacks = router_.stale_fallbacks();
  return std::move(result_);
}

void ShardedMediationSystem::OnArrival(des::Simulator& sim) {
  if (active_consumers_.empty()) return;
  const Query query = runtime::DrawArrivalQuery(
      config_.base, population_, active_consumers_, consumer_pick_rng_,
      query_class_rng_, next_query_id_++, sim.Now());

  ++result_.run.queries_issued;

  const SimTime now = sim.Now();
  const std::uint32_t shard = router_.Route(query, now);
  ++result_.shards[shard].routed;

  if (!parallel_ && config_.batch_window <= 0.0) {
    // Classic path: mediate inline, inside the arrival event.
    RouteWalk(sim, query, shard, 0);
    return;
  }
  EnqueueForMediation(query, shard, now);
}

void ShardedMediationSystem::RouteWalk(des::Simulator& sim, const Query& query,
                                       std::uint32_t shard,
                                       std::size_t attempt) {
  const SimTime now = sim.Now();
  std::size_t attempts = 1;
  if (config_.rerouting_enabled && cores_.size() > 1) {
    attempts = std::min<std::size_t>(
        std::max<std::size_t>(config_.max_route_attempts, 1), cores_.size());
  }

  // Shards this query has bounced off, so the re-route walk visits each
  // shard at most once (sized lazily: most queries never bounce).
  std::vector<bool> tried;
  if (attempt > 0) {
    // Resuming after a bounced batch attempt on `shard` (attempt 0).
    if (attempt >= attempts) {
      ++result_.run.queries_infeasible;
      return;
    }
    tried.assign(cores_.size(), false);
    tried[shard] = true;
    shard = router_.NextShard(shard, now, tried);
    ++result_.reroutes;
  }
  for (; attempt < attempts; ++attempt) {
    const bool final_attempt = attempt + 1 == attempts;
    // The last shard tried must mediate even past the saturation bound: a
    // system that is saturated everywhere still has to serve its queries.
    const double saturation_bound =
        final_attempt ? 0.0 : config_.saturation_backlog_seconds;
    const runtime::MediationCore::Outcome outcome =
        cores_[shard]->Allocate(sim, query, saturation_bound);
    switch (outcome) {
      case runtime::MediationCore::Outcome::kAllocated:
        if (attempt > 0) ++result_.reroute_rescues;
        return;
      case runtime::MediationCore::Outcome::kUnallocated:
        // The method saw the full candidate set and refused (strict
        // economic broker). That mediation round happened — providers and
        // the consumer recorded it — so replaying the query on another
        // shard would double-count; the mono system treats it the same.
        ++result_.run.queries_infeasible;
        return;
      case runtime::MediationCore::Outcome::kNoCandidates:
      case runtime::MediationCore::Outcome::kSaturated:
        break;  // bounce to the next shard, if any attempt remains
    }
    if (!final_attempt) {
      if (tried.empty()) tried.assign(cores_.size(), false);
      tried[shard] = true;
      shard = router_.NextShard(shard, now, tried);
      ++result_.reroutes;
    }
  }
  ++result_.run.queries_infeasible;
}

void ShardedMediationSystem::EnqueueForMediation(const Query& query,
                                                 std::uint32_t shard,
                                                 SimTime now) {
  // Lane intake: the shard's own queue under parallel execution, the
  // shared kernel otherwise (serial batching).
  des::Simulator& lane = parallel_ ? *lane_sims_[shard] : sim_;
  if (config_.batch_window > 0.0) {
    std::vector<Query>& buffer = batch_buffers_[shard];
    buffer.push_back(query);
    // Arm a flush when no pending flush covers this arrival: either the
    // buffer was empty, or the pending flush's due time is at or before
    // `now` (under parallel execution the coordinator runs ahead of the
    // lanes, so a flush can be due but not yet executed — it will only
    // consume the arrivals that preceded it).
    if (buffer.size() == 1 || now >= flush_due_[shard]) {
      flush_due_[shard] = now + config_.batch_window;
      lane.ScheduleAt(flush_due_[shard],
                      [this, shard](des::Simulator& lane_sim) {
                        FlushBatch(lane_sim, shard);
                      });
    }
    return;
  }
  // Parallel, unbatched: one single-query mediation event on the lane, at
  // the arrival time (the lane has not advanced past it — lanes only run
  // up to the coordinator's clock).
  lane.ScheduleAt(now, [this, shard, query](des::Simulator& lane_sim) {
    const runtime::MediationCore::Outcome outcome =
        cores_[shard]->Allocate(lane_sim, query, 0.0);
    if (outcome != runtime::MediationCore::Outcome::kAllocated) {
      CountInfeasible(lane_sim, shard);
    }
  });
}

void ShardedMediationSystem::FlushBatch(des::Simulator& sim,
                                        std::uint32_t shard) {
  // Consume only the arrivals this flush covers (issue_time <= flush time);
  // later arrivals already armed their own flush. Arrivals append in time
  // order, so that is a prefix of the buffer.
  std::vector<Query>& buffer = batch_buffers_[shard];
  std::vector<Query>& burst = flush_scratch_[shard];
  burst.clear();
  const SimTime flush_time = sim.Now();
  std::size_t covered = 0;
  while (covered < buffer.size() &&
         buffer[covered].issue_time <= flush_time) {
    ++covered;
  }
  if (covered == 0) return;
  burst.assign(buffer.begin(), buffer.begin() + covered);
  buffer.erase(buffer.begin(), buffer.begin() + covered);

  std::size_t attempts = 1;
  if (!parallel_ && config_.rerouting_enabled && cores_.size() > 1) {
    attempts = std::min<std::size_t>(
        std::max<std::size_t>(config_.max_route_attempts, 1), cores_.size());
  }
  // Mirrors the walk's final-attempt rule: without a second attempt the
  // burst must mediate even past the saturation bound.
  const double saturation_bound =
      attempts > 1 ? config_.saturation_backlog_seconds : 0.0;

  std::vector<runtime::MediationCore::Outcome>& outcomes =
      outcome_scratch_[shard];
  cores_[shard]->AllocateBatch(sim, burst, saturation_bound, &outcomes);

  for (std::size_t i = 0; i < burst.size(); ++i) {
    switch (outcomes[i]) {
      case runtime::MediationCore::Outcome::kAllocated:
        break;
      case runtime::MediationCore::Outcome::kUnallocated:
        CountInfeasible(sim, shard);
        break;
      case runtime::MediationCore::Outcome::kNoCandidates:
      case runtime::MediationCore::Outcome::kSaturated:
        if (attempts > 1) {
          // Serial rerouting: resume the walk past the bounced batch
          // attempt, query by query.
          RouteWalk(sim, burst[i], shard, 1);
        } else {
          CountInfeasible(sim, shard);
        }
        break;
    }
  }
}

void ShardedMediationSystem::CountInfeasible(des::Simulator& sim,
                                             std::uint32_t shard) {
  if (parallel_) {
    effect_logs_[shard].RecordInfeasible(sim.Now());
  } else {
    ++result_.run.queries_infeasible;
  }
}

void ShardedMediationSystem::MergeEffects() {
  runtime::MergeEffectLogs(effect_logs_, &result_.run, &response_window_);
}

void ShardedMediationSystem::SendLoadReports(des::Simulator& sim) {
  const SimTime now = sim.Now();
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    LoadReport report;
    report.shard = s;
    report.utilization = cores_[s]->MeanCommittedUtilization(now);
    report.active_providers = cores_[s]->active_provider_count();
    report.measured_at = now;

    msg::Message message;
    message.from = shard_addresses_[s];
    message.to = sink_address_;
    message.kind = kLoadReportKind;
    message.correlation = s;
    message.payload = report;
    network_.Send(std::move(message));
  }
}

void ShardedMediationSystem::SampleMetrics(des::Simulator& sim) {
  using runtime::MediationSystem;
  const SimTime now = sim.Now();
  des::SeriesSet& s = result_.run.series;

  // Aggregate the provider metrics across shards in shard order, so an
  // M = 1 run samples in exactly the mono-mediator's iteration order.
  std::vector<double> sat_int, sat_pref, adq_int, adq_pref;
  std::vector<double> allocsat_int, allocsat_pref, ut;
  sat_int.reserve(providers_.size());
  for (std::size_t shard = 0; shard < cores_.size(); ++shard) {
    for (std::uint32_t index : cores_[shard]->active_providers()) {
      runtime::ProviderAgent& p = providers_[index];
      sat_int.push_back(p.SatisfactionOnIntentions());
      sat_pref.push_back(p.SatisfactionOnPreferences());
      adq_int.push_back(p.AdequationOnIntentions());
      adq_pref.push_back(p.AdequationOnPreferences());
      allocsat_int.push_back(p.window().AllocationSatisfactionValue(
          ProviderWindow::Channel::kIntention));
      allocsat_pref.push_back(p.window().AllocationSatisfactionValue(
          ProviderWindow::Channel::kPreference));
      ut.push_back(p.Utilization(now));
    }
  }
  s.Add(MediationSystem::kSeriesProvSatIntMean, now, Mean(sat_int));
  s.Add(MediationSystem::kSeriesProvSatPrefMean, now, Mean(sat_pref));
  s.Add(MediationSystem::kSeriesProvAdqIntMean, now, Mean(adq_int));
  s.Add(MediationSystem::kSeriesProvAdqPrefMean, now, Mean(adq_pref));
  s.Add(MediationSystem::kSeriesProvAllocSatIntMean, now, Mean(allocsat_int));
  s.Add(MediationSystem::kSeriesProvAllocSatPrefMean, now,
        Mean(allocsat_pref));
  s.Add(MediationSystem::kSeriesProvSatIntFair, now, JainFairness(sat_int));
  s.Add(MediationSystem::kSeriesProvSatPrefFair, now, JainFairness(sat_pref));
  s.Add(MediationSystem::kSeriesUtMean, now, Mean(ut));
  s.Add(MediationSystem::kSeriesUtFair, now, JainFairness(ut));

  std::vector<double> csat, cadq, callocsat;
  csat.reserve(active_consumers_.size());
  for (std::uint32_t index : active_consumers_) {
    runtime::ConsumerAgent& c = consumers_[index];
    csat.push_back(c.Satisfaction());
    cadq.push_back(c.Adequation());
    callocsat.push_back(c.AllocationSatisfactionValue());
  }
  s.Add(MediationSystem::kSeriesConsSatMean, now, Mean(csat));
  s.Add(MediationSystem::kSeriesConsAdqMean, now, Mean(cadq));
  s.Add(MediationSystem::kSeriesConsAllocSatMean, now, Mean(callocsat));
  s.Add(MediationSystem::kSeriesConsSatFair, now, JainFairness(csat));

  s.Add(MediationSystem::kSeriesResponseTime, now, response_window_.Mean());
  std::size_t active_providers = 0;
  for (const auto& core : cores_) active_providers += core->active_provider_count();
  s.Add(MediationSystem::kSeriesActiveProviders, now,
        static_cast<double>(active_providers));
  s.Add(MediationSystem::kSeriesActiveConsumers, now,
        static_cast<double>(active_consumers_.size()));
  s.Add(MediationSystem::kSeriesWorkloadFraction, now,
        config_.base.workload.FractionAt(now, config_.base.duration));

  // The shard-tier view: per-shard load and membership.
  for (std::size_t shard = 0; shard < cores_.size(); ++shard) {
    s.Add(kSeriesShardUtPrefix + std::to_string(shard), now,
          cores_[shard]->MeanCommittedUtilization(now));
    s.Add(kSeriesShardActivePrefix + std::to_string(shard), now,
          static_cast<double>(cores_[shard]->active_provider_count()));
  }
}

void ShardedMediationSystem::RunDepartureChecks(des::Simulator& sim) {
  const SimTime now = sim.Now();
  const runtime::DepartureConfig& dep = config_.base.departures;
  const double optimal_ut =
      config_.base.workload.FractionAt(now, config_.base.duration);

  // Section 6.3.2 provider rules, shard by shard: each mediator assesses
  // only its own members; consumers are system-global.
  for (const auto& core : cores_) {
    core->RunProviderDepartureChecks(now, optimal_ut);
  }
  runtime::RunConsumerDepartureChecks(dep, consumers_, active_consumers_,
                                      consumer_violations_, now,
                                      &result_.run);
}

ShardedRunResult RunShardedScenario(
    const ShardedSystemConfig& config,
    ShardedMediationSystem::MethodFactory factory) {
  ShardedMediationSystem system(config, std::move(factory));
  return system.Run();
}

}  // namespace sqlb::shard
