#ifndef SQLB_SHARD_SHARDED_MEDIATION_SYSTEM_H_
#define SQLB_SHARD_SHARDED_MEDIATION_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/allocation.h"
#include "des/seqlock.h"
#include "des/simulator.h"
#include "msg/network.h"
#include "runtime/batch_window.h"
#include "runtime/mediation_core.h"
#include "runtime/scenario.h"
#include "runtime/scenario_engine.h"
#include "shard/gossip_topology.h"
#include "shard/parity.h"
#include "shard/shard_router.h"

/// \file
/// The sharded mediation tier: M mediators, each running the Algorithm-1
/// pipeline (runtime/mediation_core.h) over a consistent-hash partition of
/// the provider population, as one configuration of the shared scenario
/// driver (runtime/scenario_engine.h). The engine owns the population, the
/// arrival pump, the metric probes and the departure schedule; this class
/// supplies the policies — routing, batching, the execution substrate
/// (serial kernel vs epoch-parallel lanes) and the parity mode.
///
/// Cross-shard load visibility travels as periodic load-report gossip over
/// the simulated network (msg/network.h), so the routing policies observe a
/// stale-but-bounded view of per-shard utilization — exactly the signal the
/// market-style deployments of PAPERS.md (Mariposa's load-scaled bidding,
/// consumer-centric brokered pools) need at scale. Queries bounced by a
/// shard (no active candidate after matchmaking, or every candidate past
/// the saturation bound) are re-routed to the next shard instead of being
/// dropped.
///
/// With M = 1 the tier reduces to the mono-mediator `MediationSystem` —
/// same engine, same pipeline code — and reproduces its RunResult
/// bit-for-bit, which tests/shard/sharded_mediation_test.cc pins.

namespace sqlb::shard {

struct ShardedSystemConfig {
  /// The scenario itself: population, workload, durations, agent configs,
  /// departure rules — identical in meaning to the mono-mediator run.
  runtime::SystemConfig base;
  /// Shard count, routing policy, ring geometry, staleness bound.
  RouterConfig router;

  /// Periodic per-shard load reports to the router, over the simulated
  /// network (delivery latency makes the router's view stale).
  bool gossip_enabled = true;
  SimTime gossip_interval = 5.0;
  msg::LatencyModel gossip_latency{0.005, 0.005};

  /// How load reports travel (shard/gossip_topology.h): kDirect (default,
  /// byte-identical to the classic path — every shard straight to the
  /// router, M messages/round), kHierarchical (k-ary aggregation tree over
  /// the live shards, O(M log M) messages/round, one extra network latency
  /// of staleness per hop), or kAllToAll (full mesh, Theta(M^2) — the
  /// scaling baseline). Routing semantics are identical in all three; only
  /// message count and report staleness differ.
  GossipTopologyKind gossip_topology = GossipTopologyKind::kDirect;
  /// Tree fanout k of the hierarchical topology.
  std::size_t gossip_fanout = 4;

  /// Deterministic message loss/delay injected into the gossip network
  /// (msg/network.h). The gossip protocol is proven safe under it: lost
  /// load reports age into the router's staleness fallback, and lost
  /// ring-epoch announcements are re-sent on the gossip cadence until the
  /// shard acknowledges the current epoch (counted in gossip_ring_retries).
  msg::FaultPolicy network_faults;

  /// Re-route a bounced query to another shard (M > 1 only). A query is
  /// bounced when its shard has no active candidate, or — when
  /// `saturation_backlog_seconds` > 0 — every candidate drags more queued
  /// work than that bound. The final attempt always mediates, saturated or
  /// not: a fully loaded system must still serve.
  bool rerouting_enabled = true;
  double saturation_backlog_seconds = 0.0;
  /// Total shards tried per query (clamped to M).
  std::size_t max_route_attempts = 2;

  // --- Wall-clock execution ------------------------------------------------

  /// 0 = classic single-threaded run (every pipeline on the shared kernel,
  /// bit-identical to PR 1). >= 1 = epoch-stepped parallel execution: each
  /// shard's mediation + service events drain on their own lane queue, the
  /// lanes run on a fixed pool of this many threads between barriers
  /// (gossip/probe/departure events), and the cross-shard sinks are merged
  /// deterministically at each barrier. Which configurations a parallel
  /// run admits — and how far it may diverge from its serial twin — is the
  /// parity policy below (shard/parity.h), validated at Run().
  std::size_t worker_threads = 0;

  /// What a parallel run promises relative to serial (shard/parity.h):
  /// kStrict (default) is bit-identity and requires consumer-affine
  /// routing; kRelaxed admits load-aware routing (least-loaded, hash) by
  /// serializing lane-side consumer access through per-consumer sequence
  /// locks, with bounded aggregate divergence. Ignored by serial runs.
  ParityMode parity = ParityMode::kStrict;

  /// Pin each worker-pool thread to one CPU core (des/worker_pool.h) —
  /// opt-in, Linux-only (silently inert elsewhere). First step of the
  /// NUMA roadmap item: a pinned lane worker stops migrating between
  /// cores, so a shard's working set stays in one core's cache.
  bool pin_worker_threads = false;

  /// Topology-aware worker placement (des/hw_topo.h): pin lane workers
  /// along the host's detected CPU topology — physical cores before SMT
  /// siblings, one socket filled before the next — and run lanes on a
  /// static lane->thread schedule so each shard's arena pages stay on the
  /// socket that first touched them. Supersedes pin_worker_threads when
  /// set; falls back to the legacy round-robin pinning when /sys topology
  /// is unreadable. Scheduling order within a lane is unchanged, so
  /// strict parity holds exactly as with the atomic schedule.
  bool topology_aware_workers = false;

  /// Seconds each shard coalesces arrivals before mediating them as one
  /// MediationCore::AllocateBatch burst (one matchmaking pass, one provider
  /// characterization snapshot, one scoring pass per burst). 0 disables
  /// coalescing: every arrival mediates inline, exactly as before. Queries
  /// keep their true issue times, so the coalescing delay shows up in
  /// response time — the classic batching latency/throughput trade.
  /// Works in both serial and parallel execution.
  double batch_window = 0.0;

  /// Per-shard adaptive window sizing (runtime/batch_window.h): when
  /// enabled, the static `batch_window` above is ignored and each shard
  /// recomputes its coalescing window per arrival from its own arrival-rate
  /// EWMA and barrier-sampled queue debt, bounded by
  /// [adaptive_batch.min_window, adaptive_batch.max_window]. Signals update
  /// only on coordinator arrival events and at barrier tasks, so adaptive
  /// windows keep strict-parity parallel runs bit-identical to serial. The
  /// queue-debt sample rides the load-report cadence (gossip_interval) and
  /// is taken even when gossip delivery itself is disabled.
  runtime::AdaptiveBatchConfig adaptive_batch;

  // --- Runtime re-partitioning (provider churn) ----------------------------

  /// Adapt the provider partition to churn: every `rebalance_interval`
  /// seconds (a kRebalance barrier under parallel execution) the system
  /// compares per-shard active-provider counts and, past the router's
  /// imbalance threshold, reweights the consistent-hash partition ring
  /// (ShardRouter::RebalancedVnodes + SetShardVnodes, bumping the ring
  /// epoch), announces the new epoch to the shards over the gossip network,
  /// and migrates every provider whose owner changed through the
  /// seal -> drain -> transfer handoff: the source shard stops matching it
  /// immediately, its queued work drains in place, and its core state
  /// (chronic-utilization baseline, admission time) moves to the new owner
  /// at the first rebalance barrier that finds it idle. Membership only
  /// ever changes at barriers, which is what keeps strict-parity parallel
  /// runs bit-identical to serial under churn. Inert at M = 1.
  bool rebalance_enabled = false;
  SimTime rebalance_interval = 50.0;
};

/// Per-shard accounting of one run.
struct ShardStats {
  std::size_t initial_providers = 0;
  std::size_t remaining_providers = 0;
  /// Queries whose first-choice route was this shard.
  std::uint64_t routed = 0;
  /// Queries this shard actually dispatched to providers.
  std::uint64_t allocated = 0;
  /// Scheduled churn joins admitted here.
  std::uint64_t joined = 0;
  /// Providers received from / handed to another shard by re-partitioning.
  std::uint64_t providers_in = 0;
  std::uint64_t providers_out = 0;
};

/// Everything a sharded run produces: the mono-compatible RunResult
/// (counters, response times, departures, aggregated series) plus the
/// shard-tier view.
struct ShardedRunResult {
  runtime::RunResult run;
  std::vector<ShardStats> shards;

  /// Mediation attempts made on a non-first-choice shard.
  std::uint64_t reroutes = 0;
  /// Queries that a re-route saved from infeasibility.
  std::uint64_t reroute_rescues = 0;
  /// Load reports delivered to the router over the network.
  std::uint64_t gossip_delivered = 0;
  std::uint64_t gossip_sent = 0;
  /// Routing decisions that found every load report expired.
  std::uint64_t stale_fallbacks = 0;
  /// Load-report messages on the wire (origin sends + relay forwards; the
  /// O(M log M) scale gate bounds this against rounds x budget).
  std::uint64_t gossip_load_messages = 0;
  /// Hierarchical relay hops forwarded / dropped on a dead relay shard.
  std::uint64_t gossip_relay_forwards = 0;
  std::uint64_t gossip_relay_drops = 0;
  /// Relaxed-parity runs: acquires that found a consumer's sequence lock
  /// held by another lane (0 under strict parity and serial execution).
  std::uint64_t consumer_lock_contention = 0;

  // --- Re-partitioning under churn -----------------------------------------
  /// Final partition-ring epoch (0 = the ring never changed).
  std::uint64_t ring_epoch = 0;
  /// Rebalance ticks that actually reweighted the ring.
  std::uint64_t ring_rebalances = 0;
  /// Provider migrations: sealed for handoff / transferred / dropped
  /// (departed while draining, or the ring flapped back first).
  std::uint64_t handoffs_started = 0;
  std::uint64_t handoffs_completed = 0;
  std::uint64_t handoffs_cancelled = 0;
  /// Load reports that arrived carrying an already-superseded ring epoch.
  std::uint64_t epoch_lagged_reports = 0;
  /// Batched-intake accounting: bursts flushed and queries they carried
  /// (batched_queries / batch_flushes = realized mean burst length; both 0
  /// under unbatched intake).
  std::uint64_t batch_flushes = 0;
  std::uint64_t batched_queries = 0;
  /// Rebalance ticks suppressed by the damping hysteresis (the imbalance
  /// had not yet persisted RouterConfig::rebalance_hysteresis_ticks ticks).
  std::uint64_t rebalances_damped = 0;

  // --- Failover (runtime/faults.h) -----------------------------------------
  /// Scheduled kills that actually crashed a live shard (no-op kills on an
  /// already-dead shard are not counted).
  std::uint64_t shard_crashes = 0;
  /// Queries re-issued after a crash (mirror of run.queries_reissued; the
  /// identity completed + infeasible + reissued == issued is exact).
  std::uint64_t reissued_queries = 0;
  /// Dead-shard providers adopted from the last snapshot's baselines vs
  /// re-admitted fresh (they joined after the snapshot was taken).
  std::uint64_t restored_providers = 0;
  std::uint64_t orphaned_providers = 0;
  /// Drain-retry ticks at which some dead-shard provider still had
  /// in-flight work and could not be adopted yet.
  std::uint64_t failover_drain_ticks = 0;
  /// Completion callbacks dropped because their dispatching shard
  /// incarnation crashed before they fired.
  std::uint64_t dropped_completions = 0;
  /// Crash-consistent snapshots exported (all shards, whole run).
  std::uint64_t snapshots_taken = 0;

  // --- Message substrate (msg/network.h) -----------------------------------
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
  /// Drops/delays charged to ShardedSystemConfig::network_faults.
  std::uint64_t net_injected_drops = 0;
  std::uint64_t net_injected_delays = 0;
  /// Ring-epoch re-announcements to shards whose acknowledged epoch lagged
  /// (the gossip-retry half of loss tolerance).
  std::uint64_t gossip_ring_retries = 0;
  /// One digest per rebalance tick over (ring epoch, owner of every
  /// provider): the ownership sequence of the run. Identical digests across
  /// thread counts are the re-partitioning determinism pin.
  std::vector<std::uint64_t> ownership_digests;

  // --- Agent-state residency (runtime/agent_store.h, mem/) -----------------
  /// End-of-run agent-state footprint: the store's SoA columns plus every
  /// provider's resident window/queue chunks. Divided by the provider count
  /// this is the bytes-per-provider figure the memory scale gate compares
  /// between the pooled and the eager heap layout.
  std::size_t agent_state_bytes = 0;
  /// Bytes of arena pages reserved by the pooled layout (0 when
  /// SystemConfig::agent_pool is off and chunks live on the heap).
  std::size_t arena_bytes_reserved = 0;

  /// max/mean ratio of first-choice routes per shard (1 = perfectly even).
  double RouteImbalance() const;
};

/// M mediators + router + gossip + one allocation method per shard = one
/// run. Mirrors `runtime::MediationSystem`'s lifecycle: construct, Run()
/// once, read the result.
class ShardedMediationSystem : private runtime::ScenarioEngine::Driver {
 public:
  /// Fresh method instance per shard (methods are stateful; shards must not
  /// share a cursor or window). Called once per shard at construction.
  using MethodFactory =
      std::function<std::unique_ptr<AllocationMethod>(std::uint32_t shard)>;

  ShardedMediationSystem(const ShardedSystemConfig& config,
                         MethodFactory factory);
  ~ShardedMediationSystem();

  /// Executes the full scenario and returns the result. Call once.
  ShardedRunResult Run();

  // --- Extra series keys (per-shard load, on top of the mono keys) --------
  /// Per-shard mean committed utilization; the shard index is appended
  /// ("shard.ut.0", "shard.ut.1", ...).
  static constexpr const char* kSeriesShardUtPrefix = "shard.ut.";
  /// Active providers per shard ("shard.active.0", ...).
  static constexpr const char* kSeriesShardActivePrefix = "shard.active.";

  // Introspection for tests.
  std::size_t num_shards() const { return cores_.size(); }
  const ShardRouter& router() const { return router_; }
  const runtime::MediationCore& core(std::size_t shard) const {
    return *cores_[shard];
  }
  const Population& population() const { return engine_.population(); }
  const msg::Network& network() const { return network_; }

 private:
  class GossipSink;  // router-side msg::Node ingesting load reports

  // ScenarioEngine::Driver — the sharded policies.
  void OnQueryArrival(des::Simulator& sim, const Query& query) override;
  void RunProviderDepartureChecks(SimTime now, double optimal_ut) override;
  runtime::ChurnOutcome OnProviderChurn(
      des::Simulator& sim, const runtime::ProviderChurnEvent& event) override;
  void OnShardFault(des::Simulator& sim,
                    const runtime::ShardFaultEvent& event) override;
  void VisitActiveProviders(
      const std::function<void(runtime::ProviderAgent&)>& fn) override;
  std::size_t ActiveProviderCount() const override;
  void ExtendMetricsSample(SimTime now, des::SeriesSet& series) override;
  void StartAuxiliaryTasks(des::Simulator& sim) override;
  bool TasksAreBarriers() const override { return parallel_; }
  void Execute(des::Simulator& sim, SimTime duration) override;

  /// Serial mediation walk: tries `shard` and, on a bounce, up to
  /// max_route_attempts - 1 alternatives. `attempt` > 0 resumes the walk
  /// after a bounced batch attempt (the batch was attempt 0).
  void RouteWalk(des::Simulator& sim, const Query& query, std::uint32_t shard,
                 std::size_t attempt);
  /// Hands a routed query to its shard's intake: appends to the shard's
  /// coalescing buffer (static or adaptive batching) or schedules an
  /// immediate single-query mediation on the shard's lane (parallel,
  /// unbatched).
  void EnqueueForMediation(const Query& query, std::uint32_t shard,
                           SimTime now);
  /// The coalescing window an arrival on `shard` is held for right now:
  /// the adaptive controller's answer, or the static batch_window.
  double BatchWindowFor(std::uint32_t shard) const;
  /// Barrier-sampled queue-debt feed of the adaptive controllers.
  void SampleShardBacklogs();
  /// Mediates a shard's coalesced burst (lane context in parallel mode).
  void FlushBatch(des::Simulator& sim, std::uint32_t shard);
  void CountInfeasible(des::Simulator& sim, std::uint32_t shard,
                       const Query& query);
  /// Folds every lane's effect log into the shared sinks (epoch barrier).
  void MergeEffects();
  void SendLoadReports(des::Simulator& sim);
  /// Ascending live shard indices — the round's gossip tree ranks.
  std::vector<std::uint32_t> LiveShardRanks() const;
  /// The shard owning sender address `address` (addresses are registered
  /// in shard order at construction).
  std::uint32_t ShardOfAddress(NodeId address) const;
  /// Hierarchical relay hook: a load report delivered to shard `shard`'s
  /// address is forwarded one hop up the current tree (or to the router
  /// when `shard` is the root); dropped and counted when `shard` is dead.
  void RelayLoadReport(std::uint32_t shard, const msg::Message& message);
  /// The parity policy's view of this run's configuration.
  ParallelRunShape RunShape() const;

  // --- Re-partitioning protocol --------------------------------------------
  /// One rebalance barrier: reconcile ownership with the ring, reweight the
  /// ring past the imbalance threshold, seal movers, transfer drained ones.
  void OnRebalanceTick(des::Simulator& sim);
  /// Transfers every pending handoff whose provider has drained; drops the
  /// ones whose provider departed while draining. Returns the shard owning
  /// each provider after the pass (kNoShard = not a member anywhere).
  /// `now` stamps the handoff-drain histogram and spans.
  std::vector<std::uint32_t> ProcessPendingHandoffs(SimTime now);
  /// Gossips the router's current ring epoch to every shard (or applies it
  /// immediately when gossip is disabled).
  void AnnounceRingEpoch();
  /// Delivery hook for ring-update gossip (called by the GossipSink).
  void OnRingEpochSeen(std::uint32_t shard, std::uint64_t epoch);
  /// Discards `provider`'s pending handoff, if any (its membership
  /// incarnation ended: a scheduled leave, or a rejoin that must not
  /// inherit the old seal). Counts as a cancelled handoff.
  void DropPendingHandoff(std::uint32_t provider);

  // --- Failover protocol ----------------------------------------------------
  /// Periodic crash-consistent snapshot of every live shard's core (armed
  /// iff config.base.shard_faults is non-empty; an epoch barrier under
  /// parallel execution, so the cut is taken over quiescent lanes).
  void OnSnapshotTick(des::Simulator& sim);
  /// The crash-and-restart path of a shard with no survivor to fail over
  /// to (the last live shard, M = 1 included): crash the core, restore the
  /// last snapshot onto it, re-admit post-snapshot members fresh, re-issue
  /// what the crash lost. Mirrors MediationSystem's mono restart exactly.
  void RestartShard(des::Simulator& sim, std::uint32_t shard);
  /// Adopts every dead-shard provider whose agent has drained its in-flight
  /// work (snapshot baselines when present, fresh otherwise); the rest stay
  /// queued for the next drain-retry tick.
  void ProcessPendingAdoptions(SimTime now);
  /// Arms the next kFailover-barrier drain-retry tick, if none is armed and
  /// the horizon allows one.
  void ScheduleAdoptionRetry(des::Simulator& sim);
  /// Issues `query` again after its mediation died with a crashed shard:
  /// counts it (issued, reissued, per-reason), charges the availability
  /// penalty into the reissue-delay histogram, and routes it like a fresh
  /// arrival (the dead shard is already off the ring).
  void ReissueQuery(des::Simulator& sim, const Query& query,
                    runtime::ReissueReason reason);

  ShardedSystemConfig config_;
  /// The shared scenario driver: population, agents, RNG streams, arrival
  /// pump, metric probes, departure schedule, RunResult sinks.
  runtime::ScenarioEngine engine_;

  ShardRouter router_;
  std::vector<std::unique_ptr<AllocationMethod>> methods_;
  std::vector<std::unique_ptr<runtime::MediationCore>> cores_;

  msg::Network network_;
  std::unique_ptr<GossipSink> gossip_sink_;
  /// Network addresses: one sender per shard plus the router-side sink.
  std::vector<NodeId> shard_addresses_;
  NodeId sink_address_;
  /// The periodic load-report schedule (outlives StartAuxiliaryTasks).
  des::PeriodicTask gossip_task_;

  // Re-partitioning state (rebalance_enabled, M > 1). A pending handoff is
  // a provider sealed on its source shard and draining toward transfer.
  struct PendingHandoff {
    std::uint32_t provider = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    /// When the provider was sealed (the handoff span's start; the drain
    /// histogram records transfer time minus this).
    SimTime sealed_at = 0.0;
  };
  static constexpr std::uint32_t kNoShard = ~0u;
  des::PeriodicTask rebalance_task_;
  std::vector<PendingHandoff> pending_handoffs_;
  /// Damping hysteresis: consecutive rebalance ticks whose proposed vnode
  /// allocation differed from the current ring (reset on apply and on any
  /// tick back within tolerance).
  std::size_t imbalance_streak_ = 0;
  /// What the last lane sync licensed (set by the merge hook): moving a
  /// provider's membership between cores — re-partitioning transfers and
  /// failover adoptions alike — is only legal when the lanes drained at a
  /// kRebalance or kFailover barrier.
  bool lanes_at_membership_barrier_ = false;
  /// Ring epoch each shard has acknowledged (via ring-update gossip);
  /// stamped onto that shard's load reports.
  std::vector<std::uint64_t> shard_epoch_seen_;

  // Failover state (config.base.shard_faults non-empty). A pending adoption
  // is a dead shard's provider still draining in-flight completions on the
  // dead lane; its new owner imports it at the first drain-retry tick that
  // finds it idle — the failover twin of the handoff drain rule, needed for
  // the same reason (an agent's service chain must never span two lanes).
  struct PendingAdoption {
    std::uint32_t provider = 0;
    /// Baseline to restore: the last snapshot's handoff payload when the
    /// provider was in it, a fresh one (admission at adoption time)
    /// otherwise.
    runtime::MediationCore::ProviderHandoff baseline;
    bool restored = false;
  };
  /// Last crash-consistent snapshot per shard (empty default = nothing
  /// snapshotted yet: a crash then re-admits every member fresh).
  std::vector<runtime::MediationCore::CoreSnapshot> snapshots_;
  des::PeriodicTask snapshot_task_;
  std::vector<PendingAdoption> pending_adoptions_;
  bool adoption_retry_armed_ = false;

  // Epoch-parallel execution state (worker_threads > 0): one lane event
  // queue and one effect log per shard, plus — under relaxed parity — the
  // per-consumer sequence locks. Batch buffers exist in both modes
  // (batch_window > 0); the per-shard flush scratch keeps lane threads from
  // sharing a burst vector.
  bool parallel_ = false;
  /// Batched intake active (static batch_window > 0 or adaptive enabled).
  bool batching_enabled_ = false;
  std::vector<std::unique_ptr<des::Simulator>> lane_sims_;
  std::vector<runtime::EffectLog> effect_logs_;
  std::unique_ptr<des::SeqLockTable> consumer_locks_;
  /// One adaptive window controller per shard (empty when the adaptive
  /// mode is off). Updated only from coordinator events and barriers.
  std::vector<runtime::BatchWindowController> window_controllers_;
  /// Queue-debt sampling schedule for the controllers when gossip is off
  /// (with gossip on, the sample rides SendLoadReports).
  des::PeriodicTask backlog_sample_task_;
  std::vector<std::vector<Query>> batch_buffers_;
  /// When the next armed flush fires, per shard (-inf = none armed). An
  /// arrival at or past this time is not covered by the pending flush —
  /// the coordinator may run ahead of the lanes — and arms the next one.
  std::vector<SimTime> flush_due_;
  std::vector<std::vector<Query>> flush_scratch_;
  std::vector<std::vector<runtime::MediationCore::Outcome>> outcome_scratch_;

  // Observability plumbing (obs/), hoisted from the engine's flight
  // recorder at construction so the record sites pay a pointer deref (or
  // one null check) instead of a name lookup. Structural counters replace
  // the former ad-hoc tallies and live in the always-on registries — the
  // shard's own lane registry for lane-side sites (flushes), the
  // coordinator registry for coordinator/barrier sites (reroutes,
  // rebalances, handoffs) — and the ShardedRunResult mirror fields are
  // filled from the merged registry at Run() end (one source of truth).
  obs::Counter* reroutes_counter_ = nullptr;
  obs::Counter* rescues_counter_ = nullptr;
  obs::Counter* handoffs_started_counter_ = nullptr;
  obs::Counter* handoffs_completed_counter_ = nullptr;
  obs::Counter* handoffs_cancelled_counter_ = nullptr;
  obs::Counter* rebalances_damped_counter_ = nullptr;
  obs::Counter* ring_rebalances_counter_ = nullptr;
  obs::Counter* shard_crashes_counter_ = nullptr;
  obs::Counter* reissued_counter_ = nullptr;
  obs::Counter* reissued_reason_counters_[runtime::kNumReissueReasons] = {};
  obs::Counter* restored_counter_ = nullptr;
  obs::Counter* orphaned_counter_ = nullptr;
  obs::Counter* drain_ticks_counter_ = nullptr;
  obs::Counter* snapshots_counter_ = nullptr;
  obs::Counter* ring_retries_counter_ = nullptr;
  obs::Counter* gossip_load_messages_counter_ = nullptr;
  obs::Counter* relay_forwards_counter_ = nullptr;
  obs::Counter* relay_drops_counter_ = nullptr;
  std::vector<obs::Counter*> flush_counters_;
  std::vector<obs::Counter*> batched_query_counters_;
  /// Per-shard batch-wait histograms; null entries when histograms are off.
  std::vector<obs::Histogram*> batch_wait_hists_;
  obs::Histogram* handoff_drain_hist_ = nullptr;
  /// Availability penalty per re-issued query; null when histograms are off.
  obs::Histogram* reissue_delay_hist_ = nullptr;
  /// Coordinator-lane span recorder (routing, gossip, handoffs); null when
  /// tracing is off.
  obs::TraceLane* coord_trace_ = nullptr;

  ShardedRunResult result_;
  bool ran_ = false;
};

/// Builds a sharded system, runs it, returns the result.
ShardedRunResult RunShardedScenario(const ShardedSystemConfig& config,
                                    ShardedMediationSystem::MethodFactory factory);

}  // namespace sqlb::shard

#endif  // SQLB_SHARD_SHARDED_MEDIATION_SYSTEM_H_
