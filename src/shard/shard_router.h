#ifndef SQLB_SHARD_SHARD_ROUTER_H_
#define SQLB_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/query.h"
#include "workload/population.h"

/// \file
/// Query-to-shard routing for the sharded mediation tier (src/shard/).
///
/// Providers are partitioned onto M shards with a consistent-hash ring
/// (virtual nodes per shard), so growing or shrinking the mediator fleet
/// moves only ~1/M of the provider population instead of reshuffling all of
/// it. Arriving queries are routed by one of three policies:
///
///   - kHash:        ring lookup of the query id — stateless uniform spread;
///   - kLeastLoaded: lowest gossip-reported utilization — load-aware, on a
///                   stale-but-bounded view (reports older than the
///                   staleness bound are ignored; when every report has
///                   expired the router falls back to hash routing, the
///                   timeout path a silent gossip partition exercises);
///   - kLocality:    ring lookup of the consumer id — session affinity, so
///                   a consumer's queries keep hitting the same shard and
///                   its preference/characterization state stays hot there.

namespace sqlb::shard {

enum class RoutingPolicy : std::uint8_t {
  kHash = 0,
  kLeastLoaded = 1,
  kLocality = 2,
};

/// "hash", "least-loaded", "locality".
const char* RoutingPolicyName(RoutingPolicy policy);

struct RouterConfig {
  std::size_t num_shards = 1;
  RoutingPolicy policy = RoutingPolicy::kHash;
  /// Ring points per shard. More virtual nodes even out the provider
  /// partition at the cost of a larger (still tiny) ring.
  std::size_t virtual_nodes = 64;
  /// Seeds the ring and key hashing; routing is a pure function of
  /// (seed, key), independent of call order.
  std::uint64_t seed = 42;
  /// A load report measured more than this many seconds ago no longer
  /// informs least-loaded routing. <= 0 means reports never expire.
  SimTime report_staleness = 30.0;
};

class ShardRouter {
 public:
  explicit ShardRouter(const RouterConfig& config);

  std::size_t num_shards() const { return config_.num_shards; }
  RoutingPolicy policy() const { return config_.policy; }

  /// Consistent-hash home shard of a provider.
  std::uint32_t ShardOfProvider(ProviderId id) const;

  /// Splits the provider population into per-shard member lists (global
  /// provider indices, ascending within each shard).
  std::vector<std::vector<std::uint32_t>> PartitionProviders(
      const std::vector<ProviderProfile>& providers) const;

  /// Routes an arriving query under the configured policy. `now` bounds the
  /// staleness of the load view least-loaded routing may use.
  std::uint32_t Route(const Query& query, SimTime now);

  /// Rebalance target when `shard` bounced a query (empty candidate set or
  /// saturation): the least-loaded untried shard with a fresh load view,
  /// the next untried shard in index order otherwise. `tried` (indexed by
  /// shard, `tried[shard]` included) keeps one query's re-route walk from
  /// ping-ponging between two unusable shards. Returns `shard` itself only
  /// when every shard has been tried.
  std::uint32_t NextShard(std::uint32_t shard, SimTime now,
                          const std::vector<bool>& tried) const;
  /// Convenience for a first bounce: only `shard` counts as tried.
  std::uint32_t NextShard(std::uint32_t shard, SimTime now) const;

  /// Ingests one (possibly delayed) load report for `shard`. A shard
  /// reporting zero active providers is skipped by load-aware routing — it
  /// cannot serve, however idle it looks.
  void ReportLoad(std::uint32_t shard, double utilization,
                  std::size_t active_providers, SimTime measured_at);

  /// Last reported utilization (0 before any report).
  double LoadOf(std::uint32_t shard) const;
  /// True when `shard`'s last report is within the staleness bound.
  bool HasFreshReport(std::uint32_t shard, SimTime now) const;

  std::uint64_t reports_received() const { return reports_; }
  /// Least-loaded routing decisions that fell back to hashing because every
  /// load report had expired.
  std::uint64_t stale_fallbacks() const { return stale_fallbacks_; }

 private:
  std::uint32_t RingLookup(std::uint64_t hash) const;
  /// Least-loaded provider-bearing shard with a fresh report, skipping
  /// shards marked in `exclude` (may be empty = exclude none). Returns
  /// num_shards() when no such shard exists.
  std::uint32_t FreshLeastLoaded(SimTime now,
                                 const std::vector<bool>& exclude) const;

  struct LoadEntry {
    double utilization = 0.0;
    std::size_t active_providers = 0;
    SimTime measured_at = -kSimTimeInfinity;
  };

  RouterConfig config_;
  CounterRng hash_;
  /// (point hash, shard) sorted by hash — the consistent-hash ring.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::vector<LoadEntry> loads_;
  std::uint64_t reports_ = 0;
  std::uint64_t stale_fallbacks_ = 0;
};

}  // namespace sqlb::shard

#endif  // SQLB_SHARD_SHARD_ROUTER_H_
