#ifndef SQLB_SHARD_SHARD_ROUTER_H_
#define SQLB_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/query.h"
#include "obs/metrics.h"
#include "runtime/departures.h"
#include "workload/population.h"

/// \file
/// Query-to-shard routing for the sharded mediation tier (src/shard/).
///
/// Providers are partitioned onto M shards with a consistent-hash ring
/// (virtual nodes per shard), so growing or shrinking the mediator fleet
/// moves only ~1/M of the provider population instead of reshuffling all of
/// it. Arriving queries are routed by one of three policies:
///
///   - kHash:        ring lookup of the query id — stateless uniform spread;
///   - kLeastLoaded: lowest gossip-reported utilization — load-aware, on a
///                   stale-but-bounded view (reports older than the
///                   staleness bound are ignored; when every report has
///                   expired the router falls back to hash routing, the
///                   timeout path a silent gossip partition exercises);
///   - kLocality:    ring lookup of the consumer id — session affinity, so
///                   a consumer's queries keep hitting the same shard and
///                   its preference/characterization state stays hot there.
///
/// Two rings share one point-hash function:
///
///   - the *partition ring* maps providers to owning shards. It is mutable
///     and versioned: SetShardVnodes() rebuilds it with a new vnode count
///     per shard and bumps ring_epoch(), which is how the runtime
///     re-partitioning protocol adapts the provider partition to churn
///     (RebalancedVnodes() is the deterministic reweighting policy).
///   - the *routing ring* maps query/consumer keys to shards. It is frozen
///     at construction: consumer affinity must not silently migrate between
///     shards (the strict-parity contract pins each consumer to one lane),
///     and query-id hashing wants a uniform spread over shards, not one
///     proportional to the reweighted partition keyspace.
///
/// Load reports carry the ring epoch their shard had seen when measuring:
/// after a rebalance, reports describing the pre-rebalance partition are
/// excluded from load-aware routing until the shard acknowledges the new
/// epoch (routing degrades to the hash fallback meanwhile — the bounded
/// window a real fleet pays while a membership change gossips out).

namespace sqlb::shard {

enum class RoutingPolicy : std::uint8_t {
  kHash = 0,
  kLeastLoaded = 1,
  kLocality = 2,
};

/// "hash", "least-loaded", "locality".
const char* RoutingPolicyName(RoutingPolicy policy);

struct RouterConfig {
  std::size_t num_shards = 1;
  RoutingPolicy policy = RoutingPolicy::kHash;
  /// Ring points per shard. More virtual nodes even out the provider
  /// partition at the cost of a larger (still tiny) ring.
  std::size_t virtual_nodes = 64;
  /// Seeds the ring and key hashing; routing is a pure function of
  /// (seed, key), independent of call order.
  std::uint64_t seed = 42;
  /// A load report measured more than this many seconds ago no longer
  /// informs least-loaded routing. <= 0 means reports never expire.
  SimTime report_staleness = 30.0;
  /// RebalancedVnodes() leaves the partition alone while every shard's
  /// active-provider count stays within this factor of the mean (both
  /// max/mean and mean/min are bounded by it). Values <= 1 rebalance on any
  /// imbalance.
  double rebalance_imbalance_threshold = 1.5;
  /// Ceiling on the per-shard vnode count a rebalance may assign (floor is
  /// 1: a shard never leaves the partition ring entirely on its own —
  /// SetShardVnodes may still assign 0 explicitly).
  std::size_t max_virtual_nodes = 1024;
  /// Rebalance damping, half 1 (the runtime system applies it): the
  /// imbalance must persist this many consecutive rebalance ticks before a
  /// reweigh fires, and the streak restarts after every applied reweigh —
  /// in-flight seal/drain/transfer handoffs get at least one full interval
  /// to land before the next correction. 1 = reweigh immediately (the
  /// pre-damping behaviour).
  std::size_t rebalance_hysteresis_ticks = 2;
  /// Rebalance damping, half 2 (RebalancedVnodes applies it): one reweigh
  /// may scale a shard's vnode count by at most this factor in either
  /// direction (always by at least +-1 so progress never stalls). Bounds
  /// the keyspace jump of the multiplicative correction after a mass
  /// departure, which is what used to overshoot and then oscillate: a
  /// gutted shard must *steal* keyspace where the survivors actually sit,
  /// and doubling its vnodes already claims ~an eighth of an 8-shard
  /// ring's survivor mass — the uncapped correction (mean over ~0 members)
  /// claimed several times that and then had to hand most of it back.
  /// Values <= 1 disable the cap.
  double rebalance_max_vnode_step = 2.0;
};

class ShardRouter {
 public:
  explicit ShardRouter(const RouterConfig& config);

  std::size_t num_shards() const { return config_.num_shards; }
  RoutingPolicy policy() const { return config_.policy; }

  /// Consistent-hash home shard of a provider, on the current partition
  /// ring (epoch-dependent).
  std::uint32_t ShardOfProvider(ProviderId id) const;

  /// Splits the provider population into per-shard member lists (global
  /// provider indices, ascending within each shard).
  std::vector<std::vector<std::uint32_t>> PartitionProviders(
      const std::vector<ProviderProfile>& providers) const;

  // --- Ring versioning (runtime re-partitioning) ---------------------------

  /// Partition-ring version: 0 at construction, +1 per SetShardVnodes().
  std::uint64_t ring_epoch() const { return ring_epoch_; }
  /// Current vnode count per shard on the partition ring.
  const std::vector<std::size_t>& shard_vnodes() const { return vnodes_; }

  /// Rebuilds the partition ring with `vnodes[s]` points for shard s and
  /// bumps ring_epoch(). Point hashes are a pure function of (seed, shard,
  /// vnode index), so the rebuild is deterministic and growing a shard's
  /// weight only adds points. A shard with 0 vnodes owns no providers. At
  /// least one vnode must remain in total. The routing ring (query/consumer
  /// keys) is not touched.
  void SetShardVnodes(std::vector<std::size_t> vnodes);

  /// The deterministic reweighting policy: given the active-provider count
  /// per shard, returns the vnode allocation that moves the partition
  /// toward equal counts (multiplicative correction, clamped to
  /// [1, max_virtual_nodes]), or the current allocation unchanged when the
  /// imbalance is within rebalance_imbalance_threshold (or every count is
  /// zero). Pure — does not touch the ring; pass the result to
  /// SetShardVnodes() if it differs.
  std::vector<std::size_t> RebalancedVnodes(
      const std::vector<std::size_t>& active_counts) const;

  // --- Query routing -------------------------------------------------------

  /// Routes an arriving query under the configured policy. `now` bounds the
  /// staleness of the load view least-loaded routing may use. Key hashing
  /// runs on the frozen routing ring: consumer affinity never migrates with
  /// partition rebalances.
  std::uint32_t Route(const Query& query, SimTime now);

  /// Rebalance target when `shard` bounced a query (empty candidate set or
  /// saturation): the least-loaded untried shard with a fresh load view,
  /// the next untried shard in index order otherwise. `tried` (indexed by
  /// shard, `tried[shard]` included) keeps one query's re-route walk from
  /// ping-ponging between two unusable shards. Returns `shard` itself only
  /// when every shard has been tried.
  std::uint32_t NextShard(std::uint32_t shard, SimTime now,
                          const std::vector<bool>& tried) const;
  /// Convenience for a first bounce: only `shard` counts as tried.
  std::uint32_t NextShard(std::uint32_t shard, SimTime now) const;

  // --- Failover (dead shards) ----------------------------------------------

  /// Removes `shard` from every routing decision after a mediator crash:
  /// frozen-ring lookups walk clockwise to the next live shard's point (a
  /// pure function of (key, dead set) — identical across execution modes
  /// and thread counts), load-aware routing and re-route walks skip it,
  /// and RebalancedVnodes pins its vnode count at zero instead of applying
  /// the 1-vnode floor. At least one shard must stay live. The caller
  /// zeroes the dead shard's partition vnodes (SetShardVnodes, same
  /// failover barrier) so provider ownership agrees with routing.
  void MarkShardDead(std::uint32_t shard);
  bool IsShardDead(std::uint32_t shard) const;
  std::size_t live_shard_count() const {
    return config_.num_shards - dead_count_;
  }

  /// Ingests one (possibly delayed) load report for `shard`. A shard
  /// reporting zero active providers is skipped by load-aware routing — it
  /// cannot serve, however idle it looks. `ring_epoch` is the partition
  /// epoch the shard had seen when it measured: reports from an older epoch
  /// describe a partition that no longer exists and are excluded from
  /// load-aware routing (but still counted and stored).
  void ReportLoad(std::uint32_t shard, double utilization,
                  std::size_t active_providers, SimTime measured_at,
                  std::uint64_t ring_epoch = 0);

  /// Last reported utilization (0 before any report).
  double LoadOf(std::uint32_t shard) const;
  /// True when `shard`'s last report is within the staleness bound.
  bool HasFreshReport(std::uint32_t shard, SimTime now) const;

  /// Wires the coordinator-lane metrics registry (may be null): every
  /// least-loaded routing decision then records the age of the load report
  /// it acted on into the "gossip.staleness_seconds" histogram — the
  /// staleness the router's bounded view actually operated at, as opposed
  /// to the configured bound.
  void SetMetricsRegistry(obs::MetricsRegistry* metrics);

  std::uint64_t reports_received() const { return reports_; }
  /// Least-loaded routing decisions that fell back to hashing because every
  /// load report had expired (or lagged the ring epoch).
  std::uint64_t stale_fallbacks() const { return stale_fallbacks_; }
  /// Reports ingested whose ring epoch already lagged the current one.
  std::uint64_t epoch_lagged_reports() const { return epoch_lagged_; }

 private:
  using Ring = std::vector<std::pair<std::uint64_t, std::uint32_t>>;

  /// First ring point clockwise of `hash` on `ring`, wrapping at the top.
  static std::uint32_t RingLookup(const Ring& ring, std::uint64_t hash);
  /// RingLookup that skips points of dead shards (clockwise walk to the
  /// next live one). Equals RingLookup while no shard is dead.
  std::uint32_t RingLookupLive(const Ring& ring, std::uint64_t hash) const;
  std::uint64_t PointHash(std::uint32_t shard, std::uint64_t vnode) const;
  void RebuildPartitionRing();
  /// Least-loaded provider-bearing shard with a fresh, epoch-current
  /// report, skipping shards marked in `exclude` (may be empty = exclude
  /// none). Returns num_shards() when no such shard exists.
  std::uint32_t FreshLeastLoaded(SimTime now,
                                 const std::vector<bool>& exclude) const;

  struct LoadEntry {
    double utilization = 0.0;
    std::size_t active_providers = 0;
    SimTime measured_at = -kSimTimeInfinity;
    std::uint64_t ring_epoch = 0;
  };

  RouterConfig config_;
  CounterRng hash_;
  /// The mutable, versioned provider-partition ring.
  Ring ring_;
  std::vector<std::size_t> vnodes_;
  std::uint64_t ring_epoch_ = 0;
  /// The frozen query/consumer-key routing ring.
  Ring routing_ring_;
  std::vector<LoadEntry> loads_;
  /// `dead_[s]` — shard s crashed and routes nowhere (see MarkShardDead).
  std::vector<bool> dead_;
  std::size_t dead_count_ = 0;
  std::uint64_t reports_ = 0;
  std::uint64_t stale_fallbacks_ = 0;
  std::uint64_t epoch_lagged_ = 0;
  /// Hoisted from the registry SetMetricsRegistry received; null = off.
  obs::Histogram* staleness_histogram_ = nullptr;
};

/// The churn script that empties one shard: every provider (of
/// `num_providers`) that the epoch-0 ring geometry of `config` assigns to
/// `shard` leaves at `leave_at` and — when `rejoin_at` >= 0 — rejoins at
/// that time, landing wherever the then-current ring epoch puts it. Events
/// come in provider-index order (leave, then its rejoin). This is the
/// scenario the churn tests, bench arm and example all drive; building it
/// here keeps their ring previews from drifting out of sync with the
/// system's actual geometry.
runtime::ChurnSchedule ShardChurnSchedule(const RouterConfig& config,
                                          std::uint32_t shard,
                                          std::size_t num_providers,
                                          SimTime leave_at,
                                          SimTime rejoin_at = -1.0);

}  // namespace sqlb::shard

#endif  // SQLB_SHARD_SHARD_ROUTER_H_
