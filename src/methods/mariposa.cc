#include "methods/mariposa.h"

#include <algorithm>
#include <numeric>

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb {

MariposaMethod::MariposaMethod(MariposaOptions options) : options_(options) {
  SQLB_CHECK(options_.max_price > 0.0, "bid curve needs max_price > 0");
  SQLB_CHECK(options_.max_delay > 0.0, "bid curve needs max_delay > 0");
  SQLB_CHECK(options_.load_factor >= 0.0, "load factor must be >= 0");
}

double MariposaMethod::EffectivePrice(const CandidateProvider& p) const {
  return EffectivePrice(p.bid_price, p.backlog_seconds);
}

double MariposaMethod::EffectivePrice(double bid_price,
                                      double backlog_seconds) const {
  return bid_price *
         (1.0 + options_.load_factor * std::max(0.0, backlog_seconds));
}

bool MariposaMethod::UnderBidCurve(double effective_price,
                                   double delay) const {
  if (delay >= options_.max_delay) return false;
  return effective_price <=
         options_.max_price * (1.0 - delay / options_.max_delay);
}

AllocationDecision MariposaMethod::Allocate(
    const AllocationRequest& request) {
  const std::size_t count = request.candidates.size();
  std::vector<double> price(count);
  std::vector<bool> acceptable(count);
  bool any_acceptable = false;
  for (std::size_t i = 0; i < count; ++i) {
    const CandidateProvider& p = request.candidates[i];
    price[i] = EffectivePrice(p);
    acceptable[i] = UnderBidCurve(price[i], p.estimated_delay);
    any_acceptable = any_acceptable || acceptable[i];
  }
  return Decide(price, acceptable, any_acceptable, SelectionCount(request));
}

AllocationDecision MariposaMethod::AllocateColumns(
    const ColumnarRequest& request) {
  const CandidateColumns& columns = *request.candidates;
  const std::size_t count = columns.size();
  std::vector<double> price(count);
  std::vector<bool> acceptable(count);
  bool any_acceptable = false;
  for (std::size_t i = 0; i < count; ++i) {
    price[i] = EffectivePrice(columns.bid_price[i], columns.backlog_seconds[i]);
    acceptable[i] = UnderBidCurve(price[i], columns.estimated_delay[i]);
    any_acceptable = any_acceptable || acceptable[i];
  }
  return Decide(price, acceptable, any_acceptable,
                SelectionCount(*request.query, count));
}

AllocationDecision MariposaMethod::Decide(const std::vector<double>& price,
                                          const std::vector<bool>& acceptable,
                                          bool any_acceptable, std::size_t n) {
  AllocationDecision decision;
  const std::size_t count = price.size();

  // Scores are negated prices so that "higher is better" holds for the
  // diagnostics; unacceptable bids are pushed below every acceptable one.
  const double penalty =
      2.0 * (options_.max_price +
             *std::max_element(price.begin(), price.end()) + 1.0);
  decision.scores.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    decision.scores[i] = -(price[i] + (acceptable[i] ? 0.0 : penalty));
  }

  if (!any_acceptable) {
    ++unacceptable_;
    if (!options_.allocate_when_no_acceptable_bid) {
      return decision;  // strict broker: query goes untreated
    }
  }

  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t take = std::min(n, count);
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&decision](std::size_t a, std::size_t b) {
                      if (decision.scores[a] != decision.scores[b]) {
                        return decision.scores[a] > decision.scores[b];
                      }
                      return a < b;
                    });
  order.resize(take);
  decision.selected = std::move(order);
  return decision;
}

double MariposaAskingPrice(double preference, double price_floor) {
  const double prf = Clamp(preference, -1.0, 1.0);
  // preference 1 -> floor (eager); preference -1 -> 1 + floor (reluctant).
  return price_floor + (1.0 - prf) / 2.0;
}

}  // namespace sqlb
