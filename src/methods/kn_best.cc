#include "methods/kn_best.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "core/scoring.h"

namespace sqlb {

KnBestMethod::KnBestMethod(KnBestOptions options)
    : options_(options), scorer_(options.sqlb) {
  SQLB_CHECK(options_.shortlist_fraction > 0.0 &&
                 options_.shortlist_fraction <= 1.0,
             "shortlist fraction must lie in (0, 1]");
}

AllocationDecision KnBestMethod::Allocate(const AllocationRequest& request) {
  const std::size_t count = request.candidates.size();
  const std::size_t n = SelectionCount(request);
  const std::size_t k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(options_.shortlist_fraction * static_cast<double>(count))),
      n, count);

  // Stage 1: SQLB scores, shortlist the K best.
  AllocationDecision scored = scorer_.Allocate(request);
  std::vector<std::size_t> shortlist = SelectTopN(scored.scores, k);

  // Stage 2: among the shortlist, take the n least utilized.
  std::sort(shortlist.begin(), shortlist.end(),
            [&request](std::size_t a, std::size_t b) {
              const double ua = request.candidates[a].utilization;
              const double ub = request.candidates[b].utilization;
              if (ua != ub) return ua < ub;
              return a < b;
            });
  shortlist.resize(n);

  AllocationDecision decision;
  decision.scores = std::move(scored.scores);
  decision.selected = std::move(shortlist);
  return decision;
}

}  // namespace sqlb
