#ifndef SQLB_METHODS_CAPACITY_BASED_H_
#define SQLB_METHODS_CAPACITY_BASED_H_

#include <string>

#include "core/allocation.h"

/// \file
/// The Capacity based baseline (Section 6.2.1): allocate each query to the
/// providers "that have the highest available capacity (i.e. the least
/// utilized)" among P_q, ignoring all intentions. The classic QLB approach
/// of [13, 18, 21], known to work well in heterogeneous systems.
///
/// The paper's parenthetical names two rankings that differ under
/// heterogeneous capacity, so both are provided (ablation
/// `bench/ablation_capacity_variant` compares them):
///   - kLeastUtilized: rank by -Ut, the relative load (default — it
///     equalizes utilization across heterogeneous providers, which matches
///     the paper's "optimal utilization = workload fraction" premise and
///     its observation that Capacity based does not starve anyone).
///   - kMaxAvailableCapacity: rank by capacity * (1 - Ut), the absolute
///     spare processing rate. Greedier response times, but it starves
///     low-capacity providers at moderate load (they are never the max).

namespace sqlb {

enum class CapacityRanking {
  kLeastUtilized,
  kMaxAvailableCapacity,
};

class CapacityBasedMethod final : public AllocationMethod {
 public:
  explicit CapacityBasedMethod(
      CapacityRanking ranking = CapacityRanking::kLeastUtilized);

  std::string name() const override;

  AllocationDecision Allocate(const AllocationRequest& request) override;

  /// Same ranking over the SoA layout: the score loop reads only the
  /// contiguous utilization (and, for max-available, capacity) columns.
  AllocationDecision AllocateColumns(const ColumnarRequest& request) override;

  CandidateColumnNeeds RequiredColumns() const override {
    CandidateColumnNeeds needs = CandidateColumnNeeds::None();
    needs.utilization = true;
    needs.capacity = ranking_ == CapacityRanking::kMaxAvailableCapacity;
    return needs;
  }

 private:
  CapacityRanking ranking_;
};

}  // namespace sqlb

#endif  // SQLB_METHODS_CAPACITY_BASED_H_
