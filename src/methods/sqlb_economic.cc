#include "methods/sqlb_economic.h"

#include <algorithm>

#include "common/status.h"
#include "core/scoring.h"

namespace sqlb {

SqlbEconomicMethod::SqlbEconomicMethod(SqlbEconomicOptions options)
    : options_(options), scorer_(options.sqlb) {
  SQLB_CHECK(options_.price_weight >= 0.0, "price weight must be >= 0");
  SQLB_CHECK(options_.load_factor >= 0.0, "load factor must be >= 0");
}

AllocationDecision SqlbEconomicMethod::Allocate(
    const AllocationRequest& request) {
  AllocationDecision decision = scorer_.Allocate(request);

  // Normalize effective prices to [0, 1] over this candidate set so the
  // discount is scale-free, then re-rank.
  double max_price = 0.0;
  std::vector<double> price(request.candidates.size());
  for (std::size_t i = 0; i < request.candidates.size(); ++i) {
    const CandidateProvider& p = request.candidates[i];
    price[i] = p.bid_price * (1.0 + options_.load_factor *
                                        std::max(0.0, p.backlog_seconds));
    max_price = std::max(max_price, price[i]);
  }
  if (max_price > 0.0) {
    for (std::size_t i = 0; i < decision.scores.size(); ++i) {
      decision.scores[i] -= options_.price_weight * price[i] / max_price;
    }
  }
  decision.selected = SelectTopN(decision.scores, SelectionCount(request));
  return decision;
}

}  // namespace sqlb
