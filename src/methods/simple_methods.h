#ifndef SQLB_METHODS_SIMPLE_METHODS_H_
#define SQLB_METHODS_SIMPLE_METHODS_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "core/allocation.h"

/// \file
/// Two reference methods that bound the design space in the ablations:
/// uniform random allocation (no information at all) and round-robin
/// (perfectly even spread in query count, blind to capacity and intentions).
/// Neither is evaluated in the paper, but both make useful control points
/// for the metrics of Section 4: random/round-robin should be neutral
/// (allocation satisfaction ~ 1) and capacity-unaware.

namespace sqlb {

/// Allocates to q.n candidates drawn uniformly without replacement.
class RandomMethod final : public AllocationMethod {
 public:
  explicit RandomMethod(std::uint64_t seed = 0xdecafbadULL);

  std::string name() const override { return "Random"; }
  AllocationDecision Allocate(const AllocationRequest& request) override;

 private:
  Rng rng_;
};

/// Cycles deterministically over candidate positions.
class RoundRobinMethod final : public AllocationMethod {
 public:
  RoundRobinMethod() = default;

  std::string name() const override { return "RoundRobin"; }
  AllocationDecision Allocate(const AllocationRequest& request) override;

 private:
  std::uint64_t cursor_ = 0;
};

}  // namespace sqlb

#endif  // SQLB_METHODS_SIMPLE_METHODS_H_
