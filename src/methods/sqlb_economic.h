#ifndef SQLB_METHODS_SQLB_ECONOMIC_H_
#define SQLB_METHODS_SQLB_ECONOMIC_H_

#include <string>

#include "core/sqlb_method.h"

/// \file
/// An economic variant of SQLB — the paper's stated future work
/// (Section 7: "one can combine them to obtain an economic version of SQLB,
/// by computing bids w.r.t. intentions"). Each provider's Mariposa-style
/// load-scaled bid is folded into the SQLB score: the score of Definition 9
/// is discounted by the effective price, so between two providers of equal
/// intention alignment the cheaper/less loaded one wins, and a high enough
/// mutual intention can still outbid a cheaper but unwilling provider.

namespace sqlb {

struct SqlbEconomicOptions {
  /// Weight of the price discount: score' = score - price_weight *
  /// normalized_effective_price. 0 recovers plain SQLB ranking.
  double price_weight = 0.5;
  /// Load scaling of the asking price (as in Mariposa's "bid x load").
  double load_factor = 1.0;
  /// Options of the inner SQLB scorer (adaptive omega by default).
  SqlbOptions sqlb;
};

class SqlbEconomicMethod final : public AllocationMethod {
 public:
  explicit SqlbEconomicMethod(SqlbEconomicOptions options = {});

  std::string name() const override { return "SQLB-Economic"; }

  AllocationDecision Allocate(const AllocationRequest& request) override;

  const SqlbEconomicOptions& options() const { return options_; }

 private:
  SqlbEconomicOptions options_;
  SqlbMethod scorer_;
};

}  // namespace sqlb

#endif  // SQLB_METHODS_SQLB_ECONOMIC_H_
