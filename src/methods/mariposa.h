#ifndef SQLB_METHODS_MARIPOSA_H_
#define SQLB_METHODS_MARIPOSA_H_

#include <cstdint>
#include <string>

#include "core/allocation.h"

/// \file
/// The Mariposa-like economic baseline (Section 6.2.2), modelled on
/// Mariposa's bidding protocol [22]: providers bid for queries; the broker
/// accepts the cheapest bids whose (price, delay) lies under the consumer's
/// bid curve; bids are scaled by current load ("bid x load") as Mariposa's
/// crude form of load balancing.
///
/// Provider agents compute the asking price from their preference — a
/// provider that wants a query bids aggressively low — which is exactly why
/// the method concentrates load on the most adapted providers and
/// overutilizes them (Section 6.3). The price lands in
/// CandidateProvider::bid_price; this class implements the broker side.

namespace sqlb {

struct MariposaOptions {
  /// Consumer bid curve: a bid is acceptable when
  ///   price <= max_price * (1 - delay / max_delay)   (delay < max_delay).
  double max_price = 2.0;
  double max_delay = 60.0;
  /// Load scaling of the raw asking price: effective = price * (1 +
  /// load_factor * backlog_seconds). Mariposa's "bid x load" feedback is
  /// deliberately crude (Section 6.2.2): the default lets an eager
  /// provider accumulate a minute of backlog before a reluctant idle one
  /// underbids it, reproducing the paper's overutilization of the most
  /// adapted providers (Figure 4(g), Table 3) and its ~3x response time
  /// penalty (Figure 4(i)).
  double load_factor = 0.05;
  /// When true, queries with no acceptable bid are still allocated to the
  /// cheapest bidder (the paper's setup treats every feasible query; pure
  /// Mariposa could leave them untreated — that count is reported).
  bool allocate_when_no_acceptable_bid = true;
};

class MariposaMethod final : public AllocationMethod {
 public:
  explicit MariposaMethod(MariposaOptions options = {});

  std::string name() const override { return "Mariposa-like"; }

  AllocationDecision Allocate(const AllocationRequest& request) override;

  /// The broker over the SoA layout: prices and the bid-curve check read
  /// only the contiguous bid_price/backlog/estimated_delay columns.
  AllocationDecision AllocateColumns(const ColumnarRequest& request) override;

  CandidateColumnNeeds RequiredColumns() const override {
    CandidateColumnNeeds needs = CandidateColumnNeeds::None();
    needs.bid_price = true;
    needs.backlog_seconds = true;
    needs.estimated_delay = true;
    return needs;
  }

  /// Computes the effective (load-scaled) price of a candidate's bid.
  double EffectivePrice(const CandidateProvider& p) const;
  double EffectivePrice(double bid_price, double backlog_seconds) const;

  /// True when the bid lies under the consumer's bid curve.
  bool UnderBidCurve(double effective_price, double delay) const;

  /// Queries for which no bid was under the curve (would be rejected by a
  /// strict Mariposa broker).
  std::uint64_t unacceptable_queries() const { return unacceptable_; }

  const MariposaOptions& options() const { return options_; }

 private:
  /// The broker tail shared by both layouts: penalty scoring of
  /// unacceptable bids, the strict/lenient no-acceptable-bid policy, and
  /// the cheapest-first partial sort.
  AllocationDecision Decide(const std::vector<double>& price,
                            const std::vector<bool>& acceptable,
                            bool any_acceptable, std::size_t n);

  MariposaOptions options_;
  std::uint64_t unacceptable_ = 0;
};

/// The provider-side asking price used by the runtime's provider agents:
/// maps preference in [-1, 1] to a price in [price_floor, 1 + price_floor]
/// that decreases with preference (providers bid low for queries they
/// want).
double MariposaAskingPrice(double preference, double price_floor = 0.05);

}  // namespace sqlb

#endif  // SQLB_METHODS_MARIPOSA_H_
