#include "methods/simple_methods.h"

#include <algorithm>
#include <numeric>

namespace sqlb {

RandomMethod::RandomMethod(std::uint64_t seed) : rng_(seed) {}

AllocationDecision RandomMethod::Allocate(const AllocationRequest& request) {
  AllocationDecision decision;
  const std::size_t count = request.candidates.size();
  const std::size_t n = SelectionCount(request);
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  // Partial Fisher-Yates: draw n positions without replacement.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.NextBounded(count - i));
    std::swap(order[i], order[j]);
  }
  order.resize(n);
  decision.selected = std::move(order);
  decision.scores.assign(count, 0.0);
  for (std::size_t rank = 0; rank < decision.selected.size(); ++rank) {
    decision.scores[decision.selected[rank]] =
        1.0 - static_cast<double>(rank) / static_cast<double>(count);
  }
  return decision;
}

AllocationDecision RoundRobinMethod::Allocate(
    const AllocationRequest& request) {
  AllocationDecision decision;
  const std::size_t count = request.candidates.size();
  const std::size_t n = SelectionCount(request);
  decision.scores.assign(count, 0.0);
  decision.selected.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pick = static_cast<std::size_t>(cursor_ % count);
    ++cursor_;
    decision.selected.push_back(pick);
    decision.scores[pick] = 1.0 - static_cast<double>(i) /
                                      static_cast<double>(count);
  }
  return decision;
}

}  // namespace sqlb
