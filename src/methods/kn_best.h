#ifndef SQLB_METHODS_KN_BEST_H_
#define SQLB_METHODS_KN_BEST_H_

#include <string>

#include "core/sqlb_method.h"

/// \file
/// A KnBest-style hybrid, after the authors' companion work [17]
/// ("KnBest - A Balanced Request Allocation Method", DASFAA 2007), which
/// the paper cites as a complementary set of strategies: first shortlist
/// the K best providers by one criterion, then pick the q.n final providers
/// from the shortlist by another. Here the shortlist is by SQLB score
/// (interest alignment) and the final pick is by least utilization (load
/// balance) — trading a little satisfaction for smoother QLB.

namespace sqlb {

struct KnBestOptions {
  /// Shortlist size as a fraction of |P_q| (at least q.n providers are
  /// always shortlisted).
  double shortlist_fraction = 0.1;
  /// Options of the inner SQLB scorer.
  SqlbOptions sqlb;
};

class KnBestMethod final : public AllocationMethod {
 public:
  explicit KnBestMethod(KnBestOptions options = {});

  std::string name() const override { return "KnBest"; }

  AllocationDecision Allocate(const AllocationRequest& request) override;

  const KnBestOptions& options() const { return options_; }

 private:
  KnBestOptions options_;
  SqlbMethod scorer_;
};

}  // namespace sqlb

#endif  // SQLB_METHODS_KN_BEST_H_
