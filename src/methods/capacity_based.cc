#include "methods/capacity_based.h"

#include "core/scoring.h"

namespace sqlb {

CapacityBasedMethod::CapacityBasedMethod(CapacityRanking ranking)
    : ranking_(ranking) {}

std::string CapacityBasedMethod::name() const {
  return ranking_ == CapacityRanking::kLeastUtilized
             ? "CapacityBased"
             : "CapacityBased(max-available)";
}

AllocationDecision CapacityBasedMethod::Allocate(
    const AllocationRequest& request) {
  AllocationDecision decision;
  decision.scores.reserve(request.candidates.size());
  for (const CandidateProvider& p : request.candidates) {
    // Available capacity may go negative under overload; overloaded
    // providers then rank last, which is the intended behaviour.
    const double score = ranking_ == CapacityRanking::kMaxAvailableCapacity
                             ? p.capacity * (1.0 - p.utilization)
                             : -p.utilization;
    decision.scores.push_back(score);
  }
  decision.selected = SelectTopN(decision.scores, SelectionCount(request));
  return decision;
}

AllocationDecision CapacityBasedMethod::AllocateColumns(
    const ColumnarRequest& request) {
  const CandidateColumns& columns = *request.candidates;
  AllocationDecision decision;
  decision.scores.reserve(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const double score =
        ranking_ == CapacityRanking::kMaxAvailableCapacity
            ? columns.capacity[i] * (1.0 - columns.utilization[i])
            : -columns.utilization[i];
    decision.scores.push_back(score);
  }
  decision.selected = SelectTopN(
      decision.scores, SelectionCount(*request.query, columns.size()));
  return decision;
}

}  // namespace sqlb
