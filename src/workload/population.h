#ifndef SQLB_WORKLOAD_POPULATION_H_
#define SQLB_WORKLOAD_POPULATION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

/// \file
/// The participant population of Section 6.1 / Table 2.
///
/// Providers carry three independent class labels:
///  - capacity class (from [20]): 10% low / 60% medium / 30% high, with
///    speed ratio high = 3x medium = 7x low;
///  - consumer-interest class: 60% high / 30% medium / 10% low, fixing the
///    range each consumer draws its persistent preference for the provider
///    from ([.34, 1], [-.54, .34], [-1, -.54] respectively);
///  - adaptation class: 35% high / 60% medium / 5% low, fixing the range
///    the provider draws its per-query preference from ([-.2, 1],
///    [-.6, .6], [-1, .2] respectively).
///
/// Consumer preferences are persistent (drawn once per run: long-term
/// interests); provider preferences are drawn per (provider, query) with an
/// order-independent counter RNG (DESIGN.md fidelity decision 5).

namespace sqlb {

/// Three-level class label; the semantics depend on the dimension.
enum class Level : std::uint8_t { kLow = 0, kMedium = 1, kHigh = 2 };

/// Human-readable label ("low", "medium", "high").
const char* LevelName(Level level);

/// Inclusive value range for preference draws.
struct PrefRange {
  double lo;
  double hi;
};

struct PopulationConfig {
  std::size_t num_consumers = 200;
  std::size_t num_providers = 400;

  /// Capacity classes: fractions must sum to 1.
  std::array<double, 3> capacity_fractions{0.10, 0.60, 0.30};
  /// Units/second of a high-capacity provider. 100 performs the paper's
  /// 130-unit query in 1.3 s and the 150-unit one in 1.5 s.
  double high_capacity_units_per_second = 100.0;
  /// high = medium_ratio x medium = low_ratio x low.
  double medium_capacity_ratio = 3.0;
  double low_capacity_ratio = 7.0;

  /// Consumer-interest classes over providers (low, medium, high).
  std::array<double, 3> interest_fractions{0.10, 0.30, 0.60};
  std::array<PrefRange, 3> interest_ranges{
      PrefRange{-1.0, -0.54}, PrefRange{-0.54, 0.34}, PrefRange{0.34, 1.0}};

  /// Adaptation classes over providers (low, medium, high).
  std::array<double, 3> adaptation_fractions{0.05, 0.60, 0.35};
  std::array<PrefRange, 3> adaptation_ranges{
      PrefRange{-1.0, 0.2}, PrefRange{-0.6, 0.6}, PrefRange{-0.2, 1.0}};

  /// Query classes: treatment units, uniformly chosen per query.
  std::vector<double> query_class_units{130.0, 150.0};

  /// When true, the persistent consumer->provider preference matrix is
  /// never materialized: each prf_c(p) is drawn on demand from an
  /// order-independent counter RNG keyed on (c, p), still uniform within
  /// the provider's interest-class range and stable across calls. The
  /// draws differ in value from the eager matrix's sequential fill, so
  /// this is an opt-in for populations where C x P doubles cannot fit in
  /// memory (the million-provider scale arm), not a transparent switch.
  bool lazy_consumer_preferences = false;
};

/// Immutable per-provider facts.
struct ProviderProfile {
  ProviderId id;
  Level capacity_class = Level::kMedium;
  Level interest_class = Level::kHigh;
  Level adaptation_class = Level::kMedium;
  /// Processing rate in treatment units per second.
  double capacity = 0.0;
};

/// The generated population: provider profiles, the consumer->provider
/// preference matrix, and the per-query preference source.
class Population {
 public:
  Population(const PopulationConfig& config, std::uint64_t seed);

  const PopulationConfig& config() const { return config_; }
  std::size_t num_consumers() const { return config_.num_consumers; }
  std::size_t num_providers() const { return providers_.size(); }

  const ProviderProfile& provider(ProviderId id) const;
  const std::vector<ProviderProfile>& providers() const { return providers_; }

  /// Aggregate capacity of all providers, in units/second ("total system
  /// capacity", the workload denominator of Section 6.1).
  double total_capacity() const { return total_capacity_; }

  /// Mean treatment units over the query classes (the arrival-rate
  /// conversion factor: rate = fraction * total_capacity / mean_units).
  double mean_query_units() const { return mean_query_units_; }

  /// The persistent preference of consumer `c` for provider `p`
  /// (prf_c(q, p) of Definition 7 with the setup's query-independent
  /// preferences), in the provider's interest-class range.
  double ConsumerPreference(ConsumerId c, ProviderId p) const;

  /// The preference of provider `p` for query `q` (prf_p(q) of
  /// Definition 8), drawn from the provider's adaptation-class range;
  /// stable across calls and call order.
  double ProviderPreference(ProviderId p, QueryId q) const;

  /// Treatment units of query class `class_index`.
  double QueryUnits(std::uint32_t class_index) const;
  std::size_t num_query_classes() const {
    return config_.query_class_units.size();
  }

 private:
  PopulationConfig config_;
  std::vector<ProviderProfile> providers_;
  std::vector<double> consumer_pref_;  // [c * num_providers + p]; empty
                                       // under lazy_consumer_preferences
  CounterRng provider_pref_rng_;
  CounterRng consumer_pref_rng_;
  double total_capacity_ = 0.0;
  double mean_query_units_ = 0.0;
};

/// Splits `total` into three class counts matching `fractions` exactly
/// (largest-remainder rounding), then returns per-element labels shuffled
/// with `rng` so classes are not correlated with id order.
std::vector<Level> AssignLevels(std::size_t total,
                                const std::array<double, 3>& fractions,
                                Rng& rng);

}  // namespace sqlb

#endif  // SQLB_WORKLOAD_POPULATION_H_
