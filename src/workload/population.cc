#include "workload/population.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace sqlb {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kLow:
      return "low";
    case Level::kMedium:
      return "medium";
    case Level::kHigh:
      return "high";
  }
  return "?";
}

std::vector<Level> AssignLevels(std::size_t total,
                                const std::array<double, 3>& fractions,
                                Rng& rng) {
  const double sum = fractions[0] + fractions[1] + fractions[2];
  SQLB_CHECK(std::fabs(sum - 1.0) < 1e-9, "class fractions must sum to 1");

  // Largest-remainder rounding so counts match fractions exactly.
  std::array<std::size_t, 3> counts{};
  std::array<double, 3> remainders{};
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double exact = fractions[i] * static_cast<double>(total);
    counts[i] = static_cast<std::size_t>(exact);
    remainders[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  while (assigned < total) {
    const std::size_t i = static_cast<std::size_t>(std::distance(
        remainders.begin(),
        std::max_element(remainders.begin(), remainders.end())));
    ++counts[i];
    remainders[i] = -1.0;
    ++assigned;
  }

  std::vector<Level> levels;
  levels.reserve(total);
  for (std::size_t i = 0; i < 3; ++i) {
    levels.insert(levels.end(), counts[i], static_cast<Level>(i));
  }
  rng.Shuffle(levels);
  return levels;
}

Population::Population(const PopulationConfig& config, std::uint64_t seed)
    : config_(config),
      provider_pref_rng_(seed ^ 0xa11c0de5ULL),
      consumer_pref_rng_(seed ^ 0x10e6c0deULL) {
  SQLB_CHECK(config_.num_consumers >= 1, "need at least one consumer");
  SQLB_CHECK(config_.num_providers >= 1, "need at least one provider");
  SQLB_CHECK(!config_.query_class_units.empty(), "need >= 1 query class");
  SQLB_CHECK(config_.high_capacity_units_per_second > 0.0,
             "capacity must be positive");
  SQLB_CHECK(config_.medium_capacity_ratio >= 1.0 &&
                 config_.low_capacity_ratio >= config_.medium_capacity_ratio,
             "capacity ratios must satisfy high >= medium >= low");

  Rng rng(seed);
  Rng capacity_rng = rng.Fork(1);
  Rng interest_rng = rng.Fork(2);
  Rng adaptation_rng = rng.Fork(3);
  Rng pref_rng = rng.Fork(4);

  const auto capacity_levels =
      AssignLevels(config_.num_providers, config_.capacity_fractions,
                   capacity_rng);
  const auto interest_levels =
      AssignLevels(config_.num_providers, config_.interest_fractions,
                   interest_rng);
  const auto adaptation_levels =
      AssignLevels(config_.num_providers, config_.adaptation_fractions,
                   adaptation_rng);

  const double high = config_.high_capacity_units_per_second;
  providers_.reserve(config_.num_providers);
  for (std::size_t i = 0; i < config_.num_providers; ++i) {
    ProviderProfile profile;
    profile.id = ProviderId(static_cast<std::uint32_t>(i));
    profile.capacity_class = capacity_levels[i];
    profile.interest_class = interest_levels[i];
    profile.adaptation_class = adaptation_levels[i];
    switch (profile.capacity_class) {
      case Level::kHigh:
        profile.capacity = high;
        break;
      case Level::kMedium:
        profile.capacity = high / config_.medium_capacity_ratio;
        break;
      case Level::kLow:
        profile.capacity = high / config_.low_capacity_ratio;
        break;
    }
    total_capacity_ += profile.capacity;
    providers_.push_back(profile);
  }

  // Persistent consumer preferences, drawn within each provider's
  // interest-class range. Lazy mode skips the C x P matrix entirely and
  // serves each cell from the keyed counter RNG on demand.
  if (!config_.lazy_consumer_preferences) {
    consumer_pref_.resize(config_.num_consumers * config_.num_providers);
    for (std::size_t c = 0; c < config_.num_consumers; ++c) {
      for (std::size_t p = 0; p < config_.num_providers; ++p) {
        const PrefRange range =
            config_.interest_ranges[static_cast<std::size_t>(
                providers_[p].interest_class)];
        consumer_pref_[c * config_.num_providers + p] =
            pref_rng.Uniform(range.lo, range.hi);
      }
    }
  }

  mean_query_units_ =
      std::accumulate(config_.query_class_units.begin(),
                      config_.query_class_units.end(), 0.0) /
      static_cast<double>(config_.query_class_units.size());
}

const ProviderProfile& Population::provider(ProviderId id) const {
  SQLB_CHECK(id.index() < providers_.size(), "unknown provider id");
  return providers_[id.index()];
}

double Population::ConsumerPreference(ConsumerId c, ProviderId p) const {
  SQLB_CHECK(c.index() < config_.num_consumers, "unknown consumer id");
  SQLB_CHECK(p.index() < providers_.size(), "unknown provider id");
  if (config_.lazy_consumer_preferences) {
    const PrefRange range = config_.interest_ranges[static_cast<std::size_t>(
        providers_[p.index()].interest_class)];
    return consumer_pref_rng_.Uniform(range.lo, range.hi, c.index(),
                                      p.index());
  }
  return consumer_pref_[static_cast<std::size_t>(c.index()) *
                            config_.num_providers +
                        p.index()];
}

double Population::ProviderPreference(ProviderId p, QueryId q) const {
  SQLB_CHECK(p.index() < providers_.size(), "unknown provider id");
  const PrefRange range = config_.adaptation_ranges[static_cast<std::size_t>(
      providers_[p.index()].adaptation_class)];
  return provider_pref_rng_.Uniform(range.lo, range.hi, p.index(), q);
}

double Population::QueryUnits(std::uint32_t class_index) const {
  SQLB_CHECK(class_index < config_.query_class_units.size(),
             "unknown query class");
  return config_.query_class_units[class_index];
}

}  // namespace sqlb
