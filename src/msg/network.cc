#include "msg/network.h"

#include <utility>

#include "common/status.h"

namespace sqlb::msg {

Network::Network(des::Simulator& sim, LatencyModel latency, Rng rng)
    : sim_(sim), latency_(latency), rng_(rng) {
  SQLB_CHECK(latency.base >= 0.0 && latency.jitter >= 0.0,
             "latency must be non-negative");
}

NodeId Network::Register(Node* node) {
  SQLB_CHECK(node != nullptr, "cannot register a null node");
  const NodeId id(next_node_++);
  nodes_.emplace(id, node);
  return id;
}

void Network::Unregister(NodeId id) { nodes_.erase(id); }

void Network::SetFaultPolicy(const FaultPolicy& policy) {
  SQLB_CHECK(policy.drop_probability >= 0.0 && policy.drop_probability <= 1.0,
             "drop probability must be in [0, 1]");
  SQLB_CHECK(policy.delay_probability >= 0.0 &&
                 policy.delay_probability <= 1.0,
             "delay probability must be in [0, 1]");
  SQLB_CHECK(policy.extra_delay_min >= 0.0 &&
                 policy.extra_delay_max >= policy.extra_delay_min,
             "extra delay bounds must be ordered and non-negative");
  faults_ = policy;
  fault_rng_.Reseed(policy.seed ^ 0xfa01c0ffeeULL);
}

void Network::Send(Message message) {
  SQLB_CHECK(message.to.valid(), "message needs a destination");
  ++sent_;
  // Fault injection happens before the latency draw, on its own stream: a
  // dropped message consumes no latency randomness, and a disabled policy
  // consumes no randomness at all — zero-policy runs are bit-identical to
  // runs that predate fault injection.
  SimTime injected_delay = 0.0;
  if (faults_.enabled()) {
    if (faults_.drop_probability > 0.0 &&
        fault_rng_.Bernoulli(faults_.drop_probability)) {
      ++dropped_;
      ++injected_drops_;
      return;
    }
    if (faults_.delay_probability > 0.0 &&
        fault_rng_.Bernoulli(faults_.delay_probability)) {
      injected_delay = faults_.extra_delay_max > faults_.extra_delay_min
                           ? fault_rng_.Uniform(faults_.extra_delay_min,
                                                faults_.extra_delay_max)
                           : faults_.extra_delay_min;
      ++injected_delays_;
    }
  }
  const SimTime delay =
      injected_delay + latency_.base +
      (latency_.jitter > 0.0 ? rng_.Uniform(0.0, latency_.jitter) : 0.0);
  sim_.ScheduleAfter(
      delay, [this, msg = std::move(message)](des::Simulator&) {
        auto it = nodes_.find(msg.to);
        if (it == nodes_.end()) {
          ++dropped_;  // destination departed while the message was in flight
          return;
        }
        ++delivered_;
        it->second->OnMessage(*this, msg);
      });
}

}  // namespace sqlb::msg
