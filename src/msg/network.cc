#include "msg/network.h"

#include <utility>

#include "common/status.h"

namespace sqlb::msg {

Network::Network(des::Simulator& sim, LatencyModel latency, Rng rng)
    : sim_(sim), latency_(latency), rng_(rng) {
  SQLB_CHECK(latency.base >= 0.0 && latency.jitter >= 0.0,
             "latency must be non-negative");
}

NodeId Network::Register(Node* node) {
  SQLB_CHECK(node != nullptr, "cannot register a null node");
  const NodeId id(next_node_++);
  nodes_.emplace(id, node);
  return id;
}

void Network::Unregister(NodeId id) { nodes_.erase(id); }

void Network::Send(Message message) {
  SQLB_CHECK(message.to.valid(), "message needs a destination");
  ++sent_;
  const SimTime delay =
      latency_.base +
      (latency_.jitter > 0.0 ? rng_.Uniform(0.0, latency_.jitter) : 0.0);
  sim_.ScheduleAfter(
      delay, [this, msg = std::move(message)](des::Simulator&) {
        auto it = nodes_.find(msg.to);
        if (it == nodes_.end()) {
          ++dropped_;  // destination departed while the message was in flight
          return;
        }
        ++delivered_;
        it->second->OnMessage(*this, msg);
      });
}

}  // namespace sqlb::msg
