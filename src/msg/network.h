#ifndef SQLB_MSG_NETWORK_H_
#define SQLB_MSG_NETWORK_H_

#include <any>
#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "des/simulator.h"

/// \file
/// In-process message-passing runtime over the discrete-event kernel: the
/// distributed-system boilerplate behind Figure 1's architecture. Nodes
/// (mediator, consumers, providers) exchange asynchronous messages through a
/// simulated network with configurable latency; Algorithm 1's "fork ask /
/// waituntil ... or timeout" lines run literally on this substrate
/// (runtime/async_mediator.h).
///
/// The experiment harness uses the synchronous pipeline instead (zero
/// mediation latency, Section 6.1 ignores bandwidth); this layer exists so
/// the timeout/partial-response code paths are real, tested code, and so the
/// examples can show a genuinely distributed mediation round.

namespace sqlb::msg {

/// An asynchronous message. `kind` identifies the protocol message type
/// (each protocol defines its own enum); `correlation` ties responses to
/// requests; `payload` carries the protocol struct.
struct Message {
  NodeId from;
  NodeId to;
  std::uint32_t kind = 0;
  std::uint64_t correlation = 0;
  std::any payload;
};

class Network;

/// A participant in the message runtime.
class Node {
 public:
  virtual ~Node() = default;
  /// Delivery callback; runs at the simulated delivery time.
  virtual void OnMessage(Network& network, const Message& message) = 0;
};

/// Message transfer delay: uniform in [base, base + jitter] seconds. The
/// paper assumes homogeneous network capacity (Section 6.1), which a shared
/// latency model reflects.
struct LatencyModel {
  SimTime base = 0.005;
  SimTime jitter = 0.0;
};

/// The simulated network: registration, routing, latency, loss accounting.
class Network {
 public:
  Network(des::Simulator& sim, LatencyModel latency, Rng rng);

  /// Registers a node and assigns its address. The node must outlive the
  /// network or unregister first.
  NodeId Register(Node* node);

  /// Removes a node; messages in flight towards it are dropped on arrival
  /// (counted in dropped_messages()).
  void Unregister(NodeId id);

  /// Sends `message` (from/to must be set); delivery is scheduled after a
  /// latency sample.
  void Send(Message message);

  des::Simulator& sim() { return sim_; }

  std::uint64_t sent_messages() const { return sent_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  std::uint64_t dropped_messages() const { return dropped_; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  des::Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::uint32_t next_node_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sqlb::msg

#endif  // SQLB_MSG_NETWORK_H_
