#ifndef SQLB_MSG_NETWORK_H_
#define SQLB_MSG_NETWORK_H_

#include <any>
#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "des/simulator.h"

/// \file
/// In-process message-passing runtime over the discrete-event kernel: the
/// distributed-system boilerplate behind Figure 1's architecture. Nodes
/// (mediator, consumers, providers) exchange asynchronous messages through a
/// simulated network with configurable latency; the sharded tier's gossip
/// and ring announcements run on this substrate, with seeded drop/delay
/// injection as the chaos proxy for real transport.
///
/// The experiment harness uses the synchronous pipeline instead (zero
/// mediation latency, Section 6.1 ignores bandwidth); queries that arrive
/// from outside the simulation enter through the wall-clock serving tier
/// (runtime/serving_mediator.h), whose real-thread intake queues replace
/// the old in-simulation async-mediator seam.

namespace sqlb::msg {

/// An asynchronous message. `kind` identifies the protocol message type
/// (each protocol defines its own enum); `correlation` ties responses to
/// requests; `payload` carries the protocol struct.
struct Message {
  NodeId from;
  NodeId to;
  std::uint32_t kind = 0;
  std::uint64_t correlation = 0;
  std::any payload;
};

class Network;

/// A participant in the message runtime.
class Node {
 public:
  virtual ~Node() = default;
  /// Delivery callback; runs at the simulated delivery time.
  virtual void OnMessage(Network& network, const Message& message) = 0;
};

/// Message transfer delay: uniform in [base, base + jitter] seconds. The
/// paper assumes homogeneous network capacity (Section 6.1), which a shared
/// latency model reflects.
struct LatencyModel {
  SimTime base = 0.005;
  SimTime jitter = 0.0;
};

/// Deterministic message-fault injection. Every Send consults this policy:
/// the message is dropped with `drop_probability`; otherwise it is delayed
/// by an extra uniform [extra_delay_min, extra_delay_max] seconds with
/// `delay_probability`. Decisions come from a dedicated stream seeded by
/// `seed` — independent of the latency jitter stream, so a zero policy run
/// is bit-identical to a network without fault injection at all, and
/// enabling faults never perturbs the latency draws of surviving messages.
struct FaultPolicy {
  double drop_probability = 0.0;
  double delay_probability = 0.0;
  SimTime extra_delay_min = 0.0;
  SimTime extra_delay_max = 0.0;
  std::uint64_t seed = 0x10557ULL;

  bool enabled() const {
    return drop_probability > 0.0 || delay_probability > 0.0;
  }
};

/// The simulated network: registration, routing, latency, loss accounting.
class Network {
 public:
  Network(des::Simulator& sim, LatencyModel latency, Rng rng);

  /// Installs (or replaces) the fault-injection policy. Reseeds the fault
  /// stream from the policy's seed, so installing the same policy twice
  /// reproduces the same drop/delay sequence.
  void SetFaultPolicy(const FaultPolicy& policy);

  /// Registers a node and assigns its address. The node must outlive the
  /// network or unregister first.
  NodeId Register(Node* node);

  /// Removes a node; messages in flight towards it are dropped on arrival
  /// (counted in dropped_messages()).
  void Unregister(NodeId id);

  /// Sends `message` (from/to must be set); delivery is scheduled after a
  /// latency sample.
  void Send(Message message);

  des::Simulator& sim() { return sim_; }

  std::uint64_t sent_messages() const { return sent_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  /// Messages that never reached a handler: destination gone on arrival,
  /// plus injected drops.
  std::uint64_t dropped_messages() const { return dropped_; }
  /// Drops charged to the fault policy (subset of dropped_messages()).
  std::uint64_t injected_drops() const { return injected_drops_; }
  /// Messages the fault policy delayed beyond the latency model.
  std::uint64_t injected_delays() const { return injected_delays_; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  des::Simulator& sim_;
  LatencyModel latency_;
  Rng rng_;
  FaultPolicy faults_;
  Rng fault_rng_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::uint32_t next_node_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_delays_ = 0;
};

}  // namespace sqlb::msg

#endif  // SQLB_MSG_NETWORK_H_
