#ifndef SQLB_DES_HW_TOPO_H_
#define SQLB_DES_HW_TOPO_H_

#include <cstddef>
#include <vector>

/// \file
/// Host CPU topology for placement-aware worker pinning. The legacy
/// pin_threads mode round-robins workers over logical CPUs 1..hw-1 blindly
/// — on a multi-socket or SMT host that interleaves lane workers across
/// sockets and doubles them onto hyperthread siblings before physical
/// cores are exhausted. This module reads the kernel's topology export
/// (/sys/devices/system/cpu/cpu*/topology) and orders logical CPUs so
/// that:
///
///  1. every physical core is used once before any SMT sibling (smt_rank
///     ascending), and
///  2. within one SMT rank, CPUs fill socket by socket (adjacent lane
///     workers land on one socket and share its cache/memory controller —
///     with the pool's static lane schedule, a lane's arena pages are
///     first-touched and re-touched from the same socket every epoch).
///
/// Detection degrades gracefully: when /sys is absent (non-Linux,
/// containers with masked sysfs) every CPU reports socket 0 / distinct
/// cores, and the placement order collapses to the legacy round-robin
/// sequence.

namespace sqlb::des {

/// One logical CPU's position in the machine.
struct CpuInfo {
  unsigned cpu = 0;       // logical CPU number (cpuN)
  unsigned socket = 0;    // physical_package_id
  unsigned core_id = 0;   // core_id within the socket
  unsigned smt_rank = 0;  // 0 = first sibling of its core, 1 = second, ...
};

/// The detected host topology.
struct HwTopology {
  std::vector<CpuInfo> cpus;
  std::size_t num_sockets = 1;
  /// True when /sys topology files were readable; false = flat fallback
  /// (socket 0, core_id = cpu, smt_rank 0 for every CPU).
  bool detected = false;

  /// Reads /sys/devices/system/cpu/cpu*/topology for every online CPU.
  static HwTopology Detect();

  /// Logical CPU numbers in pinning order: sorted by (smt_rank, socket,
  /// core_id, cpu), optionally skipping CPU 0 (left to the unpinned
  /// calling thread). Empty when the host has <= 1 usable CPU.
  std::vector<unsigned> PlacementOrder(bool skip_cpu0) const;

  /// Socket of a logical CPU (0 when unknown).
  unsigned SocketOf(unsigned cpu) const;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_HW_TOPO_H_
