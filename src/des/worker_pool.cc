#include "des/worker_pool.h"

#include "des/hw_topo.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sqlb::des {
namespace {

/// Pins `thread` to `core` (Linux). Returns false when unsupported or the
/// kernel refused (cpuset restrictions, core offline) — callers degrade to
/// unpinned workers, never fail the run.
bool PinThreadToCore(std::thread& thread, std::size_t core) {
#if defined(__linux__)
  cpu_set_t cpuset;
  CPU_ZERO(&cpuset);
  CPU_SET(core % CPU_SETSIZE, &cpuset);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(cpuset),
                                &cpuset) == 0;
#else
  (void)thread;
  (void)core;
  return false;
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t concurrency,
                       const WorkerPoolOptions& options)
    : static_schedule_(options.static_schedule) {
  const std::size_t spawned = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(spawned);
  thread_sockets_.assign(spawned + 1, 0);  // slot 0 = the calling thread
  const unsigned hardware = std::thread::hardware_concurrency();

  // Topology-aware placement order, computed once. Empty when the mode is
  // off or the host has a single usable CPU; the legacy round-robin covers
  // those cases.
  std::vector<unsigned> placement;
  HwTopology topo;
  if (options.topology_aware && hardware > 1) {
    topo = HwTopology::Detect();
    placement = topo.PlacementOrder(/*skip_cpu0=*/true);
  }

  for (std::size_t i = 0; i < spawned; ++i) {
    const std::size_t rank = i + 1;  // rank 0 is the caller
    workers_.emplace_back([this, rank] { WorkerLoop(rank); });
    if (!placement.empty()) {
      const unsigned cpu = placement[i % placement.size()];
      if (PinThreadToCore(workers_.back(), cpu)) {
        ++pinned_workers_;
        thread_sockets_[rank] = topo.SocketOf(cpu);
      }
    } else if ((options.pin_threads || options.topology_aware) &&
               hardware > 1) {
      // Round-robin over cores 1..hw-1, leaving core 0 to the (unpinned)
      // calling thread; on a single-core host there is nothing to spread.
      const std::size_t core = 1 + (i % (hardware - 1));
      if (PinThreadToCore(workers_.back(), core)) ++pinned_workers_;
    }
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is one of the pool's threads: rank 0. Under the static
  // schedule it owns indices i with i % concurrency == 0; otherwise it
  // grabs indices from the shared counter like everyone.
  if (static_schedule_) {
    const std::size_t stride = concurrency();
    for (std::size_t i = 0; i < count; i += stride) fn(i);
  } else {
    std::size_t i;
    while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) < count) {
      fn(i);
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop(std::size_t rank) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    if (static_schedule_) {
      // Fixed stride by thread rank: index i always runs on the same
      // thread across epochs, so a lane's memory stays where it was
      // first touched.
      const std::size_t stride = workers_.size() + 1;
      for (std::size_t i = rank; i < count; i += stride) (*job)(i);
    } else {
      std::size_t i;
      while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) <
             count) {
        (*job)(i);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace sqlb::des
