#include "des/worker_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sqlb::des {
namespace {

/// Pins `thread` to `core` (Linux). Returns false when unsupported or the
/// kernel refused (cpuset restrictions, core offline) — callers degrade to
/// unpinned workers, never fail the run.
bool PinThreadToCore(std::thread& thread, std::size_t core) {
#if defined(__linux__)
  cpu_set_t cpuset;
  CPU_ZERO(&cpuset);
  CPU_SET(core % CPU_SETSIZE, &cpuset);
  return pthread_setaffinity_np(thread.native_handle(), sizeof(cpuset),
                                &cpuset) == 0;
#else
  (void)thread;
  (void)core;
  return false;
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t concurrency,
                       const WorkerPoolOptions& options) {
  const std::size_t spawned = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(spawned);
  const unsigned hardware = std::thread::hardware_concurrency();
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    // Round-robin over cores 1..hw-1, leaving core 0 to the (unpinned)
    // calling thread; on a single-core host there is nothing to spread.
    if (options.pin_threads && hardware > 1) {
      const std::size_t core = 1 + (i % (hardware - 1));
      if (PinThreadToCore(workers_.back(), core)) ++pinned_workers_;
    }
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is one of the pool's threads: grab indices like everyone.
  std::size_t i;
  while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) < count) {
    fn(i);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    std::size_t i;
    while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) < count) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace sqlb::des
