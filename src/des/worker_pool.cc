#include "des/worker_pool.h"

namespace sqlb::des {

WorkerPool::WorkerPool(std::size_t concurrency) {
  const std::size_t spawned = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is one of the pool's threads: grab indices like everyone.
  std::size_t i;
  while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) < count) {
    fn(i);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    std::size_t i;
    while ((i = next_index_.fetch_add(1, std::memory_order_relaxed)) < count) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace sqlb::des
