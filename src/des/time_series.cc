#include "des/time_series.h"

#include <algorithm>
#include <set>

namespace sqlb::des {

double TimeSeries::MeanOver(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : samples) {
    if (t >= from && t <= to) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::ValueAt(SimTime t, double fallback) const {
  double value = fallback;
  for (const auto& [time, v] : samples) {
    if (time > t) break;
    value = v;
  }
  return value;
}

double TimeSeries::Max() const {
  double best = 0.0;
  for (const auto& [t, v] : samples) best = std::max(best, v);
  return best;
}

TimeSeries& SeriesSet::Get(const std::string& name) {
  auto [it, inserted] = series_.try_emplace(name);
  if (inserted) it->second.name = name;
  return it->second;
}

const TimeSeries* SeriesSet::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void SeriesSet::Add(const std::string& name, SimTime t, double value) {
  Get(name).Add(t, value);
}

std::vector<std::string> SeriesSet::Names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

CsvWriter SeriesSet::ToCsv() const {
  std::vector<std::string> header{"time"};
  for (const auto& [name, unused] : series_) header.push_back(name);
  CsvWriter csv(std::move(header));

  std::set<SimTime> times;
  for (const auto& [name, s] : series_) {
    for (const auto& [t, v] : s.samples) times.insert(t);
  }

  // Per-series cursor for step interpolation.
  std::map<std::string, std::size_t> cursor;
  std::map<std::string, double> last;
  for (SimTime t : times) {
    csv.BeginRow();
    csv.AddCell(FormatNumber(t));
    for (const auto& [name, s] : series_) {
      std::size_t& i = cursor[name];
      while (i < s.samples.size() && s.samples[i].first <= t) {
        last[name] = s.samples[i].second;
        ++i;
      }
      auto it = last.find(name);
      csv.AddCell(it == last.end() ? std::string("")
                                   : FormatNumber(it->second));
    }
  }
  return csv;
}

}  // namespace sqlb::des
