#ifndef SQLB_DES_SIMULATOR_H_
#define SQLB_DES_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

/// \file
/// Discrete-event simulation kernel.
///
/// The paper's evaluation (Section 6.1) runs a Java simulator of a
/// mono-mediator distributed information system; this kernel is its C++
/// substrate. Events are closures ordered by (time, sequence number), so
/// simultaneous events fire in scheduling order and runs are deterministic
/// for a fixed seed.
///
/// Two execution modes share one queue implementation:
///
///  - RunUntil / RunAll: the classic single-threaded loop.
///  - RunUntilParallel: epoch-stepped execution for state-disjoint "lanes"
///    (per-shard event queues). The coordinator queue runs single-threaded
///    as usual, but events scheduled with `barrier = true` act as epoch
///    boundaries: before such an event fires, every lane simulator is
///    drained up to the barrier time on a worker pool (see LaneGroup), and
///    the caller's merge hook folds the lanes' accumulated effects back
///    into shared state in a deterministic (time, lane, seq) order. Between
///    barriers the lanes never touch shared state, which is what makes a
///    parallel run reproduce the serial one.

namespace sqlb::des {

class LaneGroup;
class WorkerPool;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// What kind of epoch boundary an event is for RunUntilParallel. Plain
/// events (kNone) run on the coordinator without touching the lanes; any
/// other kind drains and merges every lane first. The kinds only differ in
/// what the merge hook is told: a kRebalance barrier announces that the
/// caller is about to mutate the lane *partition itself* (shard membership
/// moves between lanes), not just read merged state — the sync point the
/// runtime re-partitioning protocol in src/shard/ hands provider state off
/// at.
enum class BarrierKind : std::uint8_t {
  kNone = 0,
  /// Ordinary epoch boundary: probes, gossip, departure checks.
  kEpoch = 1,
  /// Re-partitioning boundary: lane membership may change once merged.
  kRebalance = 2,
  /// Failover boundary: a lane's owner may be crashed or restored once
  /// merged. Like kRebalance it licenses the event to move state between
  /// lanes; it additionally announces that a lane may stop participating
  /// (its queue keeps draining already-scheduled completions, but the
  /// owner's shared-state writes are suppressed from here on).
  kFailover = 3,
};

/// The event queue + clock. Single-threaded by design: mediation is an
/// inherently serialized decision point in the paper's architecture, and a
/// deterministic kernel makes every experiment reproducible bit-for-bit.
/// (RunUntilParallel keeps that contract: only whole lane *queues* run
/// concurrently; each individual Simulator is still stepped by one thread
/// at a time.)
class Simulator {
 public:
  using Callback = std::function<void(Simulator&)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds). Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= Now()). Returns an id
  /// usable with Cancel(). `barrier` marks the event as an epoch boundary
  /// for RunUntilParallel (ignored — semantically inert — by the serial run
  /// loops, so serial callers can schedule barrier events unconditionally).
  EventId ScheduleAt(SimTime t, Callback cb, bool barrier = false) {
    return ScheduleBarrierAt(t, std::move(cb),
                             barrier ? BarrierKind::kEpoch : BarrierKind::kNone);
  }

  /// ScheduleAt with an explicit barrier kind (kRebalance marks the sync
  /// points at which lane membership may be re-partitioned).
  EventId ScheduleBarrierAt(SimTime t, Callback cb, BarrierKind kind);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false when the event already fired,
  /// was cancelled before, or never existed. Amortized O(1): the heap entry
  /// becomes a tombstone that the run loop skips.
  bool Cancel(EventId id);

  /// Runs events with time <= `end` (events at exactly `end` still fire),
  /// then advances the clock to `end` even if the queue drained early, so
  /// periodic probes observe a consistent final time.
  void RunUntil(SimTime end);

  /// Epoch-stepped variant of RunUntil for a coordinator queue with
  /// state-disjoint lane queues attached: identical event ordering on this
  /// queue, but immediately before an event scheduled with `barrier = true`
  /// fires — and once more at `end` — every lane in `lanes` is drained up
  /// to that time (in parallel on the group's worker pool) and the group's
  /// merge hook runs. Events on this queue must not mutate state a lane
  /// reads mid-epoch; barrier events may read and mutate everything, since
  /// the lanes are quiescent and merged when they fire.
  void RunUntilParallel(SimTime end, LaneGroup& lanes);

  /// Runs until the queue is empty.
  void RunAll();

  /// Executes at most one event. Returns false when no live event remains.
  bool Step();

  /// Time of the earliest live event, or kSimTimeInfinity when none is
  /// pending. Tombstoned heap entries are discarded on the way (amortized
  /// against the Cancel that created them). The serving tier's idle parking
  /// reads this to bound how long a mediator may sleep before the next
  /// completion is due.
  SimTime NextEventTime();

  /// Number of scheduled-but-unfired events (tombstones excluded).
  std::size_t pending_events() const { return callbacks_.size(); }
  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;  // also the tie-breaking sequence number
    // std::priority_queue is a max-heap; invert for earliest-first order.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  struct Stored {
    Callback cb;
    BarrierKind barrier = BarrierKind::kNone;
  };

  /// Pops heap entries until a live one is found. Returns false when none.
  bool PopLive(Entry* out, Callback* cb);

  SimTime now_ = 0.0;
  EventId next_id_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, Stored> callbacks_;
  std::uint64_t executed_ = 0;
};

/// The lane set of one epoch-stepped run: per-shard Simulators whose events
/// never touch each other's state, a worker pool that drains them, and a
/// merge hook that folds their per-lane effect accumulators into the shared
/// sinks once the lanes are quiescent.
///
/// The merge hook runs on the coordinating thread with every lane stopped at
/// the sync time; implementations must apply accumulated effects in
/// (time, lane, seq) order so that the merged result is independent of the
/// worker count — that ordering contract is what the parallel-equals-serial
/// pin in tests/shard/ rests on.
class LaneGroup {
 public:
  /// `kind` tells the hook which barrier forced the sync: kEpoch syncs may
  /// only read merged state; after a kRebalance sync the caller may also
  /// move state between lanes (the handoff window of the re-partitioning
  /// protocol).
  using MergeFn = std::function<void(SimTime, BarrierKind)>;

  /// Lanes and pool are borrowed and must outlive the group. `on_sync` may
  /// be null when the lanes have no shared sinks to merge.
  LaneGroup(std::vector<Simulator*> lanes, WorkerPool* pool, MergeFn on_sync);

  /// Drains every lane up to and including `t` (lane events at exactly `t`
  /// fire), then runs the merge hook. Lanes advance their clocks to `t`.
  void SyncTo(SimTime t, BarrierKind kind = BarrierKind::kEpoch);

  /// Runs every lane to queue exhaustion (the end-of-run drain of in-flight
  /// service), then merges. Lane clocks end at their last event.
  void DrainAll();

  std::size_t size() const { return lanes_.size(); }
  /// Syncs performed so far at epoch / rebalance / failover barriers,
  /// respectively.
  std::uint64_t epoch_syncs() const { return epoch_syncs_; }
  std::uint64_t rebalance_syncs() const { return rebalance_syncs_; }
  std::uint64_t failover_syncs() const { return failover_syncs_; }

 private:
  std::vector<Simulator*> lanes_;
  WorkerPool* pool_;
  MergeFn on_sync_;
  std::uint64_t epoch_syncs_ = 0;
  std::uint64_t rebalance_syncs_ = 0;
  std::uint64_t failover_syncs_ = 0;
};

/// Periodically invokes fn(sim) every `interval` seconds, starting at
/// `start`, until `stop` (inclusive) or until Cancel(). Used for the metric
/// probes that sample the figure time series.
class PeriodicTask {
 public:
  using Callback = std::function<void(Simulator&)>;

  PeriodicTask() = default;

  /// Begins the schedule. Must not already be running. `barrier` marks
  /// every invocation as an epoch boundary for RunUntilParallel (inert
  /// under the serial run loops).
  void Start(Simulator& sim, SimTime start, SimTime interval, SimTime stop,
             Callback fn, bool barrier = false) {
    Start(sim, start, interval, stop, std::move(fn),
          barrier ? BarrierKind::kEpoch : BarrierKind::kNone);
  }

  /// Start with an explicit barrier kind (the rebalance task of the sharded
  /// tier runs at kRebalance barriers).
  void Start(Simulator& sim, SimTime start, SimTime interval, SimTime stop,
             Callback fn, BarrierKind barrier);

  /// Stops future invocations.
  void Cancel(Simulator& sim);

  bool running() const { return running_; }

 private:
  void Arm(Simulator& sim, SimTime t);

  Callback fn_;
  SimTime interval_ = 0.0;
  SimTime stop_ = 0.0;
  EventId pending_ = 0;
  bool running_ = false;
  BarrierKind barrier_ = BarrierKind::kNone;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_SIMULATOR_H_
