#ifndef SQLB_DES_SIMULATOR_H_
#define SQLB_DES_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "common/types.h"

/// \file
/// Discrete-event simulation kernel.
///
/// The paper's evaluation (Section 6.1) runs a Java simulator of a
/// mono-mediator distributed information system; this kernel is its C++
/// substrate. Events are closures ordered by (time, sequence number), so
/// simultaneous events fire in scheduling order and runs are deterministic
/// for a fixed seed.

namespace sqlb::des {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// The event queue + clock. Single-threaded by design: mediation is an
/// inherently serialized decision point in the paper's architecture, and a
/// deterministic kernel makes every experiment reproducible bit-for-bit.
class Simulator {
 public:
  using Callback = std::function<void(Simulator&)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds). Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= Now()). Returns an id
  /// usable with Cancel().
  EventId ScheduleAt(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false when the event already fired,
  /// was cancelled before, or never existed. Amortized O(1): the heap entry
  /// becomes a tombstone that the run loop skips.
  bool Cancel(EventId id);

  /// Runs events with time <= `end` (events at exactly `end` still fire),
  /// then advances the clock to `end` even if the queue drained early, so
  /// periodic probes observe a consistent final time.
  void RunUntil(SimTime end);

  /// Runs until the queue is empty.
  void RunAll();

  /// Executes at most one event. Returns false when no live event remains.
  bool Step();

  /// Number of scheduled-but-unfired events (tombstones excluded).
  std::size_t pending_events() const { return callbacks_.size(); }
  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;  // also the tie-breaking sequence number
    // std::priority_queue is a max-heap; invert for earliest-first order.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Pops heap entries until a live one is found. Returns false when none.
  bool PopLive(Entry* out, Callback* cb);

  SimTime now_ = 0.0;
  EventId next_id_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t executed_ = 0;
};

/// Periodically invokes fn(sim) every `interval` seconds, starting at
/// `start`, until `stop` (inclusive) or until Cancel(). Used for the metric
/// probes that sample the figure time series.
class PeriodicTask {
 public:
  using Callback = std::function<void(Simulator&)>;

  PeriodicTask() = default;

  /// Begins the schedule. Must not already be running.
  void Start(Simulator& sim, SimTime start, SimTime interval, SimTime stop,
             Callback fn);

  /// Stops future invocations.
  void Cancel(Simulator& sim);

  bool running() const { return running_; }

 private:
  void Arm(Simulator& sim, SimTime t);

  Callback fn_;
  SimTime interval_ = 0.0;
  SimTime stop_ = 0.0;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_SIMULATOR_H_
