#ifndef SQLB_DES_TIME_SERIES_H_
#define SQLB_DES_TIME_SERIES_H_

#include <map>
#include <string>
#include <vector>

#include "common/reporting.h"
#include "common/status.h"
#include "common/types.h"

/// \file
/// Named (time, value) series collected by the metric probes; one SeriesSet
/// per simulation run, exportable as a single CSV whose rows are sample
/// times and whose columns are the series (gnuplot/pandas friendly).

namespace sqlb::des {

/// A single named series of (time, value) samples in arrival order.
struct TimeSeries {
  std::string name;
  std::vector<std::pair<SimTime, double>> samples;

  void Add(SimTime t, double v) { samples.emplace_back(t, v); }
  std::size_t size() const { return samples.size(); }

  /// Mean of the sample values in [from, to]; 0 when no samples fall there.
  double MeanOver(SimTime from, SimTime to) const;
  /// Value of the last sample at or before `t`; `fallback` when none.
  double ValueAt(SimTime t, double fallback = 0.0) const;
  /// Maximum sample value; 0 when empty.
  double Max() const;
};

/// A keyed collection of series sampled on a shared probe schedule.
class SeriesSet {
 public:
  /// Returns the series with `name`, creating it on first use.
  TimeSeries& Get(const std::string& name);
  const TimeSeries* Find(const std::string& name) const;

  /// Adds one sample to series `name` at time `t`.
  void Add(const std::string& name, SimTime t, double value);

  std::vector<std::string> Names() const;
  bool empty() const { return series_.empty(); }

  /// Writes all series as one CSV: first column "time", one column per
  /// series. Rows are the union of sample times; a series missing a sample
  /// at a given time reuses its previous value (step interpolation).
  CsvWriter ToCsv() const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_TIME_SERIES_H_
