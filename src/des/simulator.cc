#include "des/simulator.h"

#include <utility>

#include "common/status.h"
#include "des/worker_pool.h"

namespace sqlb::des {

EventId Simulator::ScheduleBarrierAt(SimTime t, Callback cb,
                                     BarrierKind kind) {
  SQLB_CHECK(t >= now_, "cannot schedule an event in the past");
  SQLB_CHECK(static_cast<bool>(cb), "cannot schedule an empty callback");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, Stored{std::move(cb), kind});
  return id;
}

bool Simulator::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::PopLive(Entry* out, Callback* cb) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // tombstone from Cancel()
      continue;
    }
    *out = top;
    *cb = std::move(it->second.cb);
    heap_.pop();
    callbacks_.erase(it);
    return true;
  }
  return false;
}

SimTime Simulator::NextEventTime() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    if (callbacks_.find(top.id) != callbacks_.end()) return top.time;
    heap_.pop();  // tombstone from Cancel()
  }
  return kSimTimeInfinity;
}

bool Simulator::Step() {
  Entry entry;
  Callback cb;
  if (!PopLive(&entry, &cb)) return false;
  now_ = entry.time;
  ++executed_;
  cb(*this);
  return true;
}

void Simulator::RunUntil(SimTime end) {
  SQLB_CHECK(end >= now_, "RunUntil target is in the past");
  while (!heap_.empty()) {
    // Peek for the next live entry without consuming it.
    Entry top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > end) break;
    Step();
  }
  now_ = end;
}

void Simulator::RunUntilParallel(SimTime end, LaneGroup& lanes) {
  SQLB_CHECK(end >= now_, "RunUntilParallel target is in the past");
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > end) break;
    // Epoch boundary: drain the lanes up to the barrier's time and merge
    // their effects before the barrier event observes shared state. The
    // coordinator's own event order is untouched, so this loop replays the
    // serial RunUntil schedule exactly. Rebalance barriers additionally
    // license the event to re-partition lane membership once merged.
    if (it->second.barrier != BarrierKind::kNone) {
      lanes.SyncTo(top.time, it->second.barrier);
    }
    Step();
  }
  now_ = end;
  lanes.SyncTo(end);
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

LaneGroup::LaneGroup(std::vector<Simulator*> lanes, WorkerPool* pool,
                     MergeFn on_sync)
    : lanes_(std::move(lanes)), pool_(pool), on_sync_(std::move(on_sync)) {
  SQLB_CHECK(pool_ != nullptr, "LaneGroup needs a worker pool");
  for (Simulator* lane : lanes_) {
    SQLB_CHECK(lane != nullptr, "LaneGroup lane is null");
  }
}

void LaneGroup::SyncTo(SimTime t, BarrierKind kind) {
  pool_->ParallelFor(lanes_.size(),
                     [this, t](std::size_t i) { lanes_[i]->RunUntil(t); });
  if (kind == BarrierKind::kRebalance) {
    ++rebalance_syncs_;
  } else if (kind == BarrierKind::kFailover) {
    ++failover_syncs_;
  } else {
    ++epoch_syncs_;
  }
  if (on_sync_) on_sync_(t, kind);
}

void LaneGroup::DrainAll() {
  pool_->ParallelFor(lanes_.size(),
                     [this](std::size_t i) { lanes_[i]->RunAll(); });
  ++epoch_syncs_;
  if (on_sync_) on_sync_(kSimTimeInfinity, BarrierKind::kEpoch);
}

void PeriodicTask::Start(Simulator& sim, SimTime start, SimTime interval,
                         SimTime stop, Callback fn, BarrierKind barrier) {
  SQLB_CHECK(!running_, "PeriodicTask already running");
  SQLB_CHECK(interval > 0.0, "PeriodicTask interval must be positive");
  fn_ = std::move(fn);
  interval_ = interval;
  stop_ = stop;
  running_ = true;
  barrier_ = barrier;
  Arm(sim, start);
}

void PeriodicTask::Arm(Simulator& sim, SimTime t) {
  if (t > stop_) {
    running_ = false;
    return;
  }
  pending_ = sim.ScheduleBarrierAt(
      t,
      [this](Simulator& s) {
        fn_(s);
        if (running_) Arm(s, s.Now() + interval_);
      },
      barrier_);
}

void PeriodicTask::Cancel(Simulator& sim) {
  if (!running_) return;
  running_ = false;
  sim.Cancel(pending_);
}

}  // namespace sqlb::des
