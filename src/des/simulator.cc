#include "des/simulator.h"

#include <utility>

#include "common/status.h"

namespace sqlb::des {

EventId Simulator::ScheduleAt(SimTime t, Callback cb) {
  SQLB_CHECK(t >= now_, "cannot schedule an event in the past");
  SQLB_CHECK(static_cast<bool>(cb), "cannot schedule an empty callback");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::PopLive(Entry* out, Callback* cb) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // tombstone from Cancel()
      continue;
    }
    *out = top;
    *cb = std::move(it->second);
    heap_.pop();
    callbacks_.erase(it);
    return true;
  }
  return false;
}

bool Simulator::Step() {
  Entry entry;
  Callback cb;
  if (!PopLive(&entry, &cb)) return false;
  now_ = entry.time;
  ++executed_;
  cb(*this);
  return true;
}

void Simulator::RunUntil(SimTime end) {
  SQLB_CHECK(end >= now_, "RunUntil target is in the past");
  while (!heap_.empty()) {
    // Peek for the next live entry without consuming it.
    Entry top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > end) break;
    Step();
  }
  now_ = end;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

void PeriodicTask::Start(Simulator& sim, SimTime start, SimTime interval,
                         SimTime stop, Callback fn) {
  SQLB_CHECK(!running_, "PeriodicTask already running");
  SQLB_CHECK(interval > 0.0, "PeriodicTask interval must be positive");
  fn_ = std::move(fn);
  interval_ = interval;
  stop_ = stop;
  running_ = true;
  Arm(sim, start);
}

void PeriodicTask::Arm(Simulator& sim, SimTime t) {
  if (t > stop_) {
    running_ = false;
    return;
  }
  pending_ = sim.ScheduleAt(t, [this](Simulator& s) {
    fn_(s);
    if (running_) Arm(s, s.Now() + interval_);
  });
}

void PeriodicTask::Cancel(Simulator& sim) {
  if (!running_) return;
  running_ = false;
  sim.Cancel(pending_);
}

}  // namespace sqlb::des
