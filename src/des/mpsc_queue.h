#ifndef SQLB_DES_MPSC_QUEUE_H_
#define SQLB_DES_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>

#include "common/status.h"
#include "mem/page_pool.h"

/// \file
/// Lock-free multi-producer single-consumer intake queue — the wall-clock
/// serving tier's bridge between real producer threads and the mediator
/// thread (runtime/serving_mediator.h). Everything under the DES is
/// single-threaded by design; this queue is the one place where arrivals
/// cross from arbitrary threads into that world.
///
/// Design:
///  - The queue itself is Vyukov's intrusive MPSC linked queue: producers
///    publish with one atomic exchange on the tail plus one release store
///    on the predecessor's next link (wait-free per push); the consumer
///    walks next links with acquire loads. No CAS loops on the hot path.
///  - Nodes are carved from fixed-size chunks drawn from the existing
///    mem::SlabPool (kNodesPerChunk nodes per block, pages recycled
///    forever, never returned to the OS), and recycle through a
///    version-tagged index freelist: a 64-bit (index, version) head makes
///    the freelist pop CAS ABA-safe without double-wide atomics. Steady
///    state touches no mutex; only chunk growth — freelist empty — takes
///    the growth lock around one SlabPool::Allocate.
///  - Capacity is bounded (max_chunks x kNodesPerChunk live nodes, plus
///    whatever byte budget the backing PagePool enforces): Push returns
///    false instead of blocking or allocating unboundedly, which is the
///    backpressure signal an open-loop load generator sheds on.
///
/// Contract: any number of producer threads may call Push concurrently;
/// exactly one thread (the mediator) calls TryPop/Empty. Destruction
/// requires all producers to have stopped.

namespace sqlb::des {

template <typename T>
class MpscQueue {
 public:
  /// Nodes carved per SlabPool block. The owning tier sizes its slab as
  /// SlabPool(pages, MpscQueue<T>::ChunkBytes()).
  static constexpr std::size_t kNodesPerChunk = 8;
  static constexpr std::size_t kDefaultMaxChunks = 1u << 16;

  static constexpr std::size_t ChunkBytes() {
    return sizeof(Node) * kNodesPerChunk;
  }

  /// `slab` must outlive the queue and hand out blocks of at least
  /// ChunkBytes(). `max_chunks` bounds live nodes (and the directory the
  /// index freelist resolves through).
  explicit MpscQueue(mem::SlabPool* slab,
                     std::size_t max_chunks = kDefaultMaxChunks)
      : slab_(slab),
        max_chunks_(max_chunks),
        chunks_(new Node*[max_chunks]()) {
    SQLB_CHECK(slab != nullptr, "MpscQueue needs a slab pool");
    SQLB_CHECK(slab->block_bytes() >= ChunkBytes(),
               "slab blocks too small for a node chunk");
    SQLB_CHECK(max_chunks >= 1 && max_chunks <= (kNilIndex / kNodesPerChunk),
               "max_chunks out of range");
    Node* stub = AcquireNode();
    SQLB_CHECK(stub != nullptr, "slab pool exhausted at construction");
    stub->next.store(nullptr, std::memory_order_relaxed);
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    // No producers may be live here. Destroy undelivered payloads, then
    // return every chunk to the slab.
    T drained;
    while (TryPop(&drained)) {
    }
    const std::size_t chunks = num_chunks_.load(std::memory_order_acquire);
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < kNodesPerChunk; ++i) {
        chunks_[c][i].~Node();
      }
      slab_->Free(chunks_[c]);
    }
  }

  /// Multi-producer. False when the node budget (max_chunks or the backing
  /// pool's byte cap) is exhausted — the caller's backpressure signal; the
  /// queue itself is unchanged.
  bool Push(T value) {
    Node* node = AcquireNode();
    if (node == nullptr) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    new (node->storage) T(std::move(value));
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    // Publication point: until this store, the consumer sees prev->next ==
    // nullptr and treats the push as in flight.
    prev->next.store(node, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Multi-producer batch push: enqueues `values[0..count)` in order with
  /// ONE freelist reservation per acquired chain and ONE tail exchange per
  /// call, instead of one of each per value — the enqueue-amortization path
  /// behind ServingMediator::SubmitMany. Returns how many values were
  /// enqueued (a prefix of the input); fewer than `count` means the node
  /// budget ran out mid-batch, and the refused tail is counted in shed().
  /// FIFO order within the batch is preserved, and the whole accepted
  /// prefix becomes visible to the consumer atomically with respect to this
  /// producer (one publication store).
  std::size_t PushMany(const T* values, std::size_t count) {
    if (count == 0) return 0;
    Node* first = nullptr;
    Node* last = nullptr;
    const std::size_t got = AcquireChain(count, &first, &last);
    if (got < count) {
      shed_.fetch_add(count - got, std::memory_order_relaxed);
      if (got == 0) return 0;
    }
    // Construct payloads and stitch the queue links locally; the terminal
    // null and every interior link are published by the single release
    // store below (happens-before via the consumer's acquire of prev->next).
    Node* node = first;
    for (std::size_t i = 0; i < got; ++i) {
      new (node->storage) T(values[i]);
      node = node->next.load(std::memory_order_relaxed);
    }
    last->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = tail_.exchange(last, std::memory_order_acq_rel);
    prev->next.store(first, std::memory_order_release);
    pushed_.fetch_add(got, std::memory_order_relaxed);
    return got;
  }

  /// Single consumer. False when the queue is empty. A push caught between
  /// its tail exchange and its next-link publication is waited out with a
  /// bounded spin (the window is two instructions on the producer side).
  bool TryPop(T* out) {
    Node* head = head_;
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      if (tail_.load(std::memory_order_acquire) == head) {
        return false;  // truly empty
      }
      do {  // producer mid-publication
        next = head->next.load(std::memory_order_acquire);
      } while (next == nullptr);
    }
    T* value = std::launder(reinterpret_cast<T*>(next->storage));
    *out = std::move(*value);
    value->~T();
    head_ = next;
    ReleaseNode(head);
    popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side emptiness: no published node and no push in flight.
  bool Empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr &&
           tail_.load(std::memory_order_acquire) == head_;
  }

  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  /// Pushes refused for want of a node (the shed/backpressure tally).
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  std::size_t chunks_allocated() const {
    return num_chunks_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    /// Queue link (Vyukov next pointer).
    std::atomic<Node*> next{nullptr};
    /// Freelist link, as a node index (kNilIndex terminates).
    std::atomic<std::uint32_t> free_next{kNilIndex};
    /// This node's own dense index (chunk * kNodesPerChunk + offset).
    std::uint32_t self = 0;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  static std::uint64_t PackHead(std::uint32_t index, std::uint32_t version) {
    return (static_cast<std::uint64_t>(version) << 32) | index;
  }
  static std::uint32_t HeadIndex(std::uint64_t head) {
    return static_cast<std::uint32_t>(head & 0xffffffffu);
  }
  static std::uint32_t HeadVersion(std::uint64_t head) {
    return static_cast<std::uint32_t>(head >> 32);
  }

  Node* NodeAt(std::uint32_t index) const {
    // chunks_[c] was written before the freelist CAS that published any
    // index into chunk c (release), and the caller read that index with an
    // acquire load — the happens-before edge that makes this plain read
    // race-free.
    return chunks_[index / kNodesPerChunk] + (index % kNodesPerChunk);
  }

  /// Pops one node off the version-tagged freelist, growing a chunk when
  /// it runs dry. Null when the budget is exhausted.
  Node* AcquireNode() {
    for (;;) {
      std::uint64_t head = free_head_.load(std::memory_order_acquire);
      const std::uint32_t index = HeadIndex(head);
      if (index == kNilIndex) {
        if (!Grow()) return nullptr;
        continue;
      }
      Node* node = NodeAt(index);
      const std::uint32_t next = node->free_next.load(std::memory_order_relaxed);
      // The version tag defeats ABA: if this node was popped and re-pushed
      // since `head` was read, the version moved and the CAS fails.
      if (free_head_.compare_exchange_weak(
              head, PackHead(next, HeadVersion(head) + 1),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        return node;
      }
    }
  }

  /// Pops up to `want` nodes with one head CAS per acquired run: walk the
  /// freelist chain from the head, then CAS the head past the whole run.
  /// While the head (index, version) is unchanged the chain hanging off it
  /// is immutable — every freelist mutation goes through a head CAS — so a
  /// successful CAS hands the entire walked run to this producer. The run
  /// is relinked into a queue-order chain through the nodes' `next` fields
  /// (relaxed; published later by PushMany's release store). Grows when the
  /// freelist runs dry; returns fewer than `want` only when the node budget
  /// is exhausted.
  std::size_t AcquireChain(std::size_t want, Node** first, Node** last) {
    std::size_t total = 0;
    while (total < want) {
      std::uint64_t head = free_head_.load(std::memory_order_acquire);
      const std::uint32_t head_index = HeadIndex(head);
      if (head_index == kNilIndex) {
        if (!Grow()) break;
        continue;
      }
      // Walk up to the remaining need. A concurrent pop/release moves the
      // head version and fails the CAS below, so a stale walk never leaks
      // nodes; indices read mid-walk are always in-range (free_next only
      // ever holds indices this queue wrote).
      std::size_t run = 1;
      std::uint32_t run_last = head_index;
      std::uint32_t after = NodeAt(run_last)->free_next.load(
          std::memory_order_relaxed);
      while (run < want - total && after != kNilIndex) {
        run_last = after;
        after = NodeAt(run_last)->free_next.load(std::memory_order_relaxed);
        ++run;
      }
      if (!free_head_.compare_exchange_weak(
              head, PackHead(after, HeadVersion(head) + 1),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        continue;
      }
      // The run is ours and its free_next links are now private; convert it
      // into a queue-order `next` chain appended to what we have so far.
      std::uint32_t index = head_index;
      for (std::size_t i = 0; i < run; ++i) {
        Node* node = NodeAt(index);
        if (*first == nullptr) {
          *first = node;
        } else {
          (*last)->next.store(node, std::memory_order_relaxed);
        }
        *last = node;
        index = node->free_next.load(std::memory_order_relaxed);
      }
      total += run;
    }
    return total;
  }

  void ReleaseNode(Node* node) {
    std::uint64_t head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      node->free_next.store(HeadIndex(head), std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(
              head, PackHead(node->self, HeadVersion(head) + 1),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Carves one more chunk onto the freelist. Serialized by growth_mu_ —
  /// growth is the amortized slow path; steady-state Push never gets here.
  bool Grow() {
    std::lock_guard<std::mutex> lock(growth_mu_);
    if (HeadIndex(free_head_.load(std::memory_order_acquire)) != kNilIndex) {
      return true;  // another producer grew while we waited on the lock
    }
    const std::size_t chunk = num_chunks_.load(std::memory_order_relaxed);
    if (chunk >= max_chunks_) return false;
    void* block = slab_->Allocate();
    if (block == nullptr) return false;  // PagePool byte budget exhausted
    Node* nodes = static_cast<Node*>(block);
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunk * kNodesPerChunk);
    for (std::size_t i = 0; i < kNodesPerChunk; ++i) {
      new (&nodes[i]) Node();
      nodes[i].self = base + static_cast<std::uint32_t>(i);
      nodes[i].free_next.store(
          i + 1 < kNodesPerChunk ? base + static_cast<std::uint32_t>(i) + 1
                                 : kNilIndex,
          std::memory_order_relaxed);
    }
    chunks_[chunk] = nodes;
    num_chunks_.store(chunk + 1, std::memory_order_release);
    // Splice the whole chain in with one CAS per retry; the release makes
    // the chunk directory entry visible to whoever pops these indices.
    std::uint64_t head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      nodes[kNodesPerChunk - 1].free_next.store(HeadIndex(head),
                                                std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(
              head, PackHead(base, HeadVersion(head) + 1),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  mem::SlabPool* const slab_;
  const std::size_t max_chunks_;
  /// Chunk directory (fixed size, entries written once under growth_mu_).
  std::unique_ptr<Node*[]> chunks_;
  std::atomic<std::size_t> num_chunks_{0};
  std::mutex growth_mu_;

  /// (index, version)-tagged freelist head.
  alignas(64) std::atomic<std::uint64_t> free_head_{
      PackHead(kNilIndex, 0)};
  /// Producer end: exchanged by every Push.
  alignas(64) std::atomic<Node*> tail_{nullptr};
  /// Consumer end: touched only by the consumer thread.
  alignas(64) Node* head_ = nullptr;

  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace sqlb::des

#endif  // SQLB_DES_MPSC_QUEUE_H_
