#include "des/hw_topo.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>
#include <utility>

namespace sqlb::des {
namespace {

/// Reads a small non-negative integer from a sysfs file; -1 on any failure.
long ReadSysfsLong(const char* path) {
#if defined(__linux__)
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  long value = -1;
  if (std::fscanf(f, "%ld", &value) != 1) value = -1;
  std::fclose(f);
  return value;
#else
  (void)path;
  return -1;
#endif
}

}  // namespace

HwTopology HwTopology::Detect() {
  HwTopology topo;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  topo.cpus.reserve(hardware);

  bool any_detected = false;
  for (unsigned cpu = 0; cpu < hardware; ++cpu) {
    char path[128];
    CpuInfo info;
    info.cpu = cpu;
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%u/topology/physical_package_id",
                  cpu);
    const long socket = ReadSysfsLong(path);
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu%u/topology/core_id", cpu);
    const long core = ReadSysfsLong(path);
    if (socket >= 0 && core >= 0) {
      info.socket = static_cast<unsigned>(socket);
      info.core_id = static_cast<unsigned>(core);
      any_detected = true;
    } else {
      // Flat fallback: every CPU its own core on socket 0.
      info.socket = 0;
      info.core_id = cpu;
    }
    topo.cpus.push_back(info);
  }
  topo.detected = any_detected;

  // SMT rank: among the logical CPUs sharing one (socket, core), rank by
  // CPU number. Sockets counted along the way.
  std::map<std::pair<unsigned, unsigned>, unsigned> siblings_seen;
  unsigned max_socket = 0;
  for (CpuInfo& info : topo.cpus) {
    info.smt_rank = siblings_seen[{info.socket, info.core_id}]++;
    max_socket = std::max(max_socket, info.socket);
  }
  topo.num_sockets = static_cast<std::size_t>(max_socket) + 1;
  return topo;
}

std::vector<unsigned> HwTopology::PlacementOrder(bool skip_cpu0) const {
  std::vector<CpuInfo> order = cpus;
  std::stable_sort(order.begin(), order.end(),
                   [](const CpuInfo& a, const CpuInfo& b) {
                     if (a.smt_rank != b.smt_rank) {
                       return a.smt_rank < b.smt_rank;
                     }
                     if (a.socket != b.socket) return a.socket < b.socket;
                     if (a.core_id != b.core_id) return a.core_id < b.core_id;
                     return a.cpu < b.cpu;
                   });
  std::vector<unsigned> result;
  result.reserve(order.size());
  for (const CpuInfo& info : order) {
    if (skip_cpu0 && info.cpu == 0) continue;
    result.push_back(info.cpu);
  }
  return result;
}

unsigned HwTopology::SocketOf(unsigned cpu) const {
  for (const CpuInfo& info : cpus) {
    if (info.cpu == cpu) return info.socket;
  }
  return 0;
}

}  // namespace sqlb::des
