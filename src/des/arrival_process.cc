#include "des/arrival_process.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb::des {

ConstantWorkload::ConstantWorkload(double fraction) : fraction_(fraction) {
  SQLB_CHECK(fraction >= 0.0, "workload fraction must be >= 0");
}

RampWorkload::RampWorkload(double start_fraction, double end_fraction,
                           SimTime duration)
    : start_(start_fraction), end_(end_fraction), duration_(duration) {
  SQLB_CHECK(start_fraction >= 0.0 && end_fraction >= 0.0,
             "workload fractions must be >= 0");
  SQLB_CHECK(duration > 0.0, "ramp duration must be positive");
}

double RampWorkload::FractionAt(SimTime t) const {
  if (t <= 0.0) return start_;
  if (t >= duration_) return end_;
  return Lerp(start_, end_, t / duration_);
}

double RampWorkload::MaxFraction(SimTime horizon) const {
  return std::max(start_, FractionAt(horizon));
}

PoissonArrivalProcess::PoissonArrivalProcess(RateFn rate_at, double max_rate,
                                             Rng rng)
    : rate_at_(std::move(rate_at)), max_rate_(max_rate), rng_(rng) {
  SQLB_CHECK(max_rate_ > 0.0, "max arrival rate must be positive");
}

void PoissonArrivalProcess::Start(Simulator& sim, SimTime start, SimTime stop,
                                  ArrivalFn on_arrival) {
  SQLB_CHECK(!running_, "arrival process already running");
  SQLB_CHECK(stop > start, "empty arrival horizon");
  on_arrival_ = std::move(on_arrival);
  stop_ = stop;
  running_ = true;
  // The first candidate is an exponential step after `start`.
  const SimTime first = start + rng_.Exponential(max_rate_);
  if (first >= stop_) {
    running_ = false;
    return;
  }
  sim.ScheduleAt(first, [this](Simulator& s) {
    if (!running_) return;
    // Thinning: accept with probability rate(t) / max_rate.
    const double rate = rate_at_(s.Now());
    SQLB_CHECK(rate <= max_rate_ * (1.0 + 1e-9),
               "rate function exceeds the declared max_rate");
    if (rng_.NextDouble() < rate / max_rate_) {
      ++arrivals_;
      on_arrival_(s);
    }
    ScheduleNextCandidate(s);
  });
}

void PoissonArrivalProcess::ScheduleNextCandidate(Simulator& sim) {
  const SimTime next = sim.Now() + rng_.Exponential(max_rate_);
  if (next >= stop_) {
    running_ = false;
    return;
  }
  sim.ScheduleAt(next, [this](Simulator& s) {
    if (!running_) return;
    const double rate = rate_at_(s.Now());
    SQLB_CHECK(rate <= max_rate_ * (1.0 + 1e-9),
               "rate function exceeds the declared max_rate");
    if (rng_.NextDouble() < rate / max_rate_) {
      ++arrivals_;
      on_arrival_(s);
    }
    ScheduleNextCandidate(s);
  });
}

void PoissonArrivalProcess::Stop() { running_ = false; }

}  // namespace sqlb::des
