#ifndef SQLB_DES_ARRIVAL_PROCESS_H_
#define SQLB_DES_ARRIVAL_PROCESS_H_

#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "des/simulator.h"

/// \file
/// Poisson arrival generation (Section 6.1: "queries arrive to the system in
/// a Poisson distribution, as found in dynamic autonomous environments"),
/// with either a constant rate (workload sweeps, Figures 4(i), 5, 6) or a
/// linear ramp (the 30% -> 100% captive experiments behind Figure 4(a)-(h)).

namespace sqlb::des {

/// Workload intensity as a function of time, expressed as a fraction of the
/// total system capacity (0.8 = 80% of aggregate provider capacity).
class WorkloadProfile {
 public:
  virtual ~WorkloadProfile() = default;
  /// Workload fraction at time t; must be >= 0.
  virtual double FractionAt(SimTime t) const = 0;
  /// Upper bound of FractionAt over [0, horizon]; used for thinning.
  virtual double MaxFraction(SimTime horizon) const = 0;
};

/// Constant workload fraction.
class ConstantWorkload final : public WorkloadProfile {
 public:
  explicit ConstantWorkload(double fraction);
  double FractionAt(SimTime) const override { return fraction_; }
  double MaxFraction(SimTime) const override { return fraction_; }

 private:
  double fraction_;
};

/// Linear ramp from `start_fraction` at t=0 to `end_fraction` at t=duration,
/// constant afterwards. The paper's quality experiments ramp 0.3 -> 1.0.
class RampWorkload final : public WorkloadProfile {
 public:
  RampWorkload(double start_fraction, double end_fraction, SimTime duration);
  double FractionAt(SimTime t) const override;
  double MaxFraction(SimTime horizon) const override;

 private:
  double start_;
  double end_;
  SimTime duration_;
};

/// Non-homogeneous Poisson process via Lewis-Shedler thinning: candidate
/// events are generated at the profile's maximum rate and accepted with
/// probability rate(t) / max_rate, which yields an exact NHPP.
class PoissonArrivalProcess {
 public:
  /// `rate_at` maps time -> instantaneous arrival rate (events/second);
  /// `max_rate` must dominate it over the run horizon.
  using RateFn = std::function<double(SimTime)>;
  using ArrivalFn = std::function<void(Simulator&)>;

  PoissonArrivalProcess(RateFn rate_at, double max_rate, Rng rng);

  /// Starts generating arrivals in [start, stop); each accepted arrival
  /// invokes `on_arrival`.
  void Start(Simulator& sim, SimTime start, SimTime stop,
             ArrivalFn on_arrival);

  /// Stops the process after the current event.
  void Stop();

  std::uint64_t arrivals() const { return arrivals_; }

 private:
  void ScheduleNextCandidate(Simulator& sim);

  RateFn rate_at_;
  double max_rate_;
  Rng rng_;
  ArrivalFn on_arrival_;
  SimTime stop_ = 0.0;
  bool running_ = false;
  std::uint64_t arrivals_ = 0;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_ARRIVAL_PROCESS_H_
