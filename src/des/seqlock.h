#ifndef SQLB_DES_SEQLOCK_H_
#define SQLB_DES_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

/// \file
/// Per-slot sequence locks for relaxed-parity parallel execution.
///
/// Strict epoch-parallel runs (des/simulator.h, LaneGroup) keep lanes
/// state-disjoint by contract: consumer-affine routing guarantees that one
/// consumer's agent state is only ever touched by one lane, so no
/// synchronization is needed and the merged result is bit-identical to
/// serial. Load-aware routing (least-loaded, hash) breaks that contract on
/// purpose — one consumer's queries may mediate on several shards inside
/// one epoch — and this table is what makes that safe: every lane-side
/// access to a consumer's agent goes through the consumer's slot here.
///
/// Each slot is the write side of a classic sequence lock: an even counter
/// means unlocked, odd means a writer is inside, and the counter increments
/// twice per critical section. Lanes are symmetric writers (mediation both
/// reads and updates the consumer window), so Acquire() is an exclusive
/// spin acquire; the sequence numbers additionally expose a cheap
/// monotonic witness of how many critical sections a slot completed
/// (`SequenceOf` — consumed by tests and diagnostics today). The
/// divergence this permits is bounded: aggregate counters are conserved
/// exactly (the effect logs are still merged in (time, lane, seq) order),
/// and per-consumer state sees every update exactly once, just possibly
/// in a different same-epoch order than the serial run.
///
/// The acquire/release pairs establish the happens-before edges
/// ThreadSanitizer (and the hardware) need; slots are cache-line padded so
/// two consumers' locks never share a line.

namespace sqlb::des {

class SeqLockTable {
 public:
  /// RAII critical section over one slot. Default-constructed = no-op,
  /// which lets callers guard conditionally without branching at unlock.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(std::atomic<std::uint32_t>* seq) : seq_(seq) {}
    Guard(Guard&& other) noexcept : seq_(other.seq_) { other.seq_ = nullptr; }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        seq_ = other.seq_;
        other.seq_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    bool holds_lock() const { return seq_ != nullptr; }

   private:
    void Release() {
      if (seq_ != nullptr) {
        // Leave the critical section: odd -> even, publishing every write
        // made inside it to the next acquirer.
        seq_->fetch_add(1, std::memory_order_release);
        seq_ = nullptr;
      }
    }

    std::atomic<std::uint32_t>* seq_ = nullptr;
  };

  explicit SeqLockTable(std::size_t slots) : slots_(slots) {}

  std::size_t size() const { return slots_.size(); }

  /// Enters `slot`'s critical section, spinning while another lane is
  /// inside. Contention is rare by construction — it takes two shards
  /// mediating the same consumer in the same epoch — so a CAS spin beats
  /// anything heavier; the yield keeps an oversubscribed host (more lanes
  /// than cores) from burning a scheduling quantum against a preempted
  /// holder.
  Guard Acquire(std::size_t slot) {
    std::atomic<std::uint32_t>& seq = slots_[slot].seq;
    bool contended = false;
    for (;;) {
      std::uint32_t observed = seq.load(std::memory_order_relaxed);
      if ((observed & 1u) == 0u &&
          seq.compare_exchange_weak(observed, observed + 1,
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
        if (contended) contended_.fetch_add(1, std::memory_order_relaxed);
        return Guard(&seq);
      }
      if ((observed & 1u) != 0u) {
        // Count each contended acquire once (not once per spin), and only
        // on a genuinely held lock — spurious weak-CAS failures are not
        // contention.
        contended = true;
        std::this_thread::yield();
      }
    }
  }

  /// Current sequence value of a slot: half of it is the number of
  /// completed critical sections (odd while one is running).
  std::uint32_t SequenceOf(std::size_t slot) const {
    return slots_[slot].seq.load(std::memory_order_acquire);
  }

  /// Acquires that found their slot held (counted once per acquire) —
  /// how often two lanes actually met on one consumer. Purely diagnostic.
  std::uint64_t contended_acquires() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> seq{0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> contended_{0};
};

}  // namespace sqlb::des

#endif  // SQLB_DES_SEQLOCK_H_
