#ifndef SQLB_DES_WORKER_POOL_H_
#define SQLB_DES_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Fixed worker-thread pool behind the epoch-stepped parallel execution mode
/// (Simulator::RunUntilParallel). One pool is raised per run and reused for
/// every epoch, so the per-barrier cost is a condition-variable round trip,
/// not thread creation.

namespace sqlb::des {

struct WorkerPoolOptions {
  /// Pin each spawned worker to one CPU core (round-robin over the host's
  /// cores, skipping core 0 for the calling thread). Opt-in and
  /// Linux-only — silently inert on other platforms and on hosts with a
  /// single core. First step of the NUMA roadmap item: a pinned lane
  /// worker stops migrating, so its shard's working set stays in one
  /// core's cache. The calling thread is never pinned (it belongs to the
  /// application).
  bool pin_threads = false;

  /// Placement-aware pinning (des/hw_topo.h): instead of the blind
  /// round-robin above, workers are pinned along the detected topology's
  /// placement order — every physical core before any SMT sibling, one
  /// socket filled before the next — so adjacent workers share a socket's
  /// cache and memory controller. Implies pinning; falls back to the
  /// legacy order when /sys topology is unreadable.
  bool topology_aware = false;

  /// Deterministic index->thread schedule for ParallelFor: index i always
  /// runs on pool thread i % concurrency (the caller is thread 0) instead
  /// of atomic work-stealing. With topology-aware pinning this keeps every
  /// lane on the same socket across epochs, so its first-touch arena pages
  /// stay local; without it, page homing decays as lanes migrate between
  /// sockets. Costs load balance when per-index work is uneven.
  bool static_schedule = false;
};

/// A fixed set of worker threads executing index-based parallel-for jobs.
///
/// `concurrency` is the total number of threads that work on a job,
/// including the calling thread: a pool of concurrency C spawns C - 1
/// workers, and ParallelFor(n, fn) runs fn(0) ... fn(n-1) across all C.
/// With concurrency <= 1 no thread is spawned and jobs run inline, which
/// keeps the parallel code path exercisable (and deterministic to test)
/// on a single-core host.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t concurrency,
                      const WorkerPoolOptions& options = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Threads participating in each job (callers + workers), >= 1.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Workers successfully pinned to a core (0 when pinning is off, not
  /// supported on this platform, or every pthread_setaffinity_np failed).
  std::size_t pinned_workers() const { return pinned_workers_; }

  /// Runs fn(i) for i in [0, count), potentially concurrently, and returns
  /// once every call finished. Indices are handed out atomically, so an
  /// uneven per-index cost still balances. Must not be called reentrantly
  /// from inside a job.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Socket each pool thread was pinned to (index 0 = the calling thread,
  /// always socket 0 / unpinned; workers follow). Used by tests and by
  /// NUMA-aware callers that want to home per-lane memory.
  const std::vector<unsigned>& thread_sockets() const {
    return thread_sockets_;
  }

 private:
  void WorkerLoop(std::size_t rank);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for workers to finish
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t active_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_index_{0};
  std::vector<std::thread> workers_;
  std::size_t pinned_workers_ = 0;
  bool static_schedule_ = false;
  std::vector<unsigned> thread_sockets_;
};

}  // namespace sqlb::des

#endif  // SQLB_DES_WORKER_POOL_H_
