#ifndef SQLB_COMMON_TYPES_H_
#define SQLB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

/// \file
/// Strongly typed identifiers and the simulation time type used across the
/// whole library. Participant identifiers are small dense integers so that
/// per-participant state can live in flat vectors.

namespace sqlb {

/// Simulated wall-clock time, in seconds. The discrete-event kernel advances
/// this; nothing in the library reads real time.
using SimTime = double;

/// Sentinel meaning "no deadline" / "never".
inline constexpr SimTime kSimTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

namespace internal {

/// CRTP-free strongly typed integer id. Distinct Tag types do not convert
/// into one another, which keeps consumer/provider/query ids from mixing.
template <typename Tag>
struct TypedId {
  using ValueType = std::uint32_t;

  static constexpr ValueType kInvalidValue =
      std::numeric_limits<ValueType>::max();

  constexpr TypedId() = default;
  constexpr explicit TypedId(ValueType v) : value(v) {}

  /// Dense index for flat-vector storage.
  constexpr ValueType index() const { return value; }
  constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value < b.value;
  }

  ValueType value = kInvalidValue;
};

}  // namespace internal

struct ConsumerIdTag {};
struct ProviderIdTag {};
struct NodeIdTag {};

/// Identifier of a consumer registered at the mediator.
using ConsumerId = internal::TypedId<ConsumerIdTag>;
/// Identifier of a provider registered at the mediator.
using ProviderId = internal::TypedId<ProviderIdTag>;
/// Identifier of a node in the message-passing runtime.
using NodeId = internal::TypedId<NodeIdTag>;

/// Queries get 64-bit monotonically increasing ids; they are never recycled
/// within a run, so they double as an arrival sequence number.
using QueryId = std::uint64_t;

inline constexpr QueryId kInvalidQueryId =
    std::numeric_limits<QueryId>::max();

}  // namespace sqlb

namespace std {

template <typename Tag>
struct hash<sqlb::internal::TypedId<Tag>> {
  size_t operator()(sqlb::internal::TypedId<Tag> id) const noexcept {
    return std::hash<typename sqlb::internal::TypedId<Tag>::ValueType>{}(
        id.value);
  }
};

}  // namespace std

#endif  // SQLB_COMMON_TYPES_H_
