#ifndef SQLB_COMMON_REPORTING_H_
#define SQLB_COMMON_REPORTING_H_

#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Output helpers for the experiment harness: CSV files (one per figure /
/// table, gnuplot-friendly) and fixed-width console tables that mirror the
/// rows the paper reports.

namespace sqlb {

/// Accumulates rows and writes them as an RFC-4180-ish CSV file. Values are
/// quoted only when needed; numeric cells are formatted with up to six
/// significant digits.
class CsvWriter {
 public:
  /// Column headers, written as the first row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Starts a new row; cells are appended with Add*().
  void BeginRow();
  void AddCell(const std::string& value);
  void AddCell(double value);
  void AddCell(std::size_t value);

  /// Convenience: appends a full row at once.
  void AddRow(const std::vector<std::string>& cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the full document (header + rows).
  std::string ToString() const;

  /// Writes the document to `path`, creating parent directories if needed.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits, trimming trailing
/// zeros ("0.5", "1.33", "12000").
std::string FormatNumber(double value, int precision = 6);

/// Fixed-width console table: column sizing from content, right-aligned
/// numeric-looking cells.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Renders the table with a header separator line.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Returns `directory` + "/" + `filename`, creating `directory` (and
/// parents) when missing. Used by benches to drop CSVs under results/.
Result<std::string> EnsureOutputPath(const std::string& directory,
                                     const std::string& filename);

}  // namespace sqlb

#endif  // SQLB_COMMON_REPORTING_H_
