#ifndef SQLB_COMMON_STATUS_H_
#define SQLB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

/// \file
/// Status / Result<T> error handling in the RocksDB/Arrow idiom: operations
/// that can fail return a Status (or a Result<T> carrying a value), never
/// throw. Programming errors use SQLB_CHECK, which aborts.

namespace sqlb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kTimedOut,
  kUnavailable,
  kInternal,
};

/// Returns a short stable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
class Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sqlb

/// Aborts the process with a message when `condition` is false. For
/// programming errors only; recoverable failures use Status.
#define SQLB_CHECK(condition, message)                            \
  do {                                                            \
    if (!(condition)) {                                           \
      ::sqlb::internal::CheckFailed(__FILE__, __LINE__, #condition, \
                                    (message));                   \
    }                                                             \
  } while (false)

namespace sqlb::internal {
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition, const char* message);
}  // namespace sqlb::internal

#endif  // SQLB_COMMON_STATUS_H_
