#ifndef SQLB_COMMON_RING_BUFFER_H_
#define SQLB_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file
/// Fixed-capacity ring buffer. Backs the "k last interactions" windows of the
/// satisfaction model (Section 3 of the paper): pushing beyond capacity
/// evicts the oldest element.

namespace sqlb {

template <typename T>
class RingBuffer {
 public:
  /// Capacity must be at least 1.
  explicit RingBuffer(std::size_t capacity)
      : buffer_(capacity), capacity_(capacity) {
    SQLB_CHECK(capacity >= 1, "RingBuffer capacity must be >= 1");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends `value`; if full, evicts and returns the oldest element.
  /// Returns true when an eviction happened and stores it in *evicted
  /// (when evicted != nullptr).
  bool Push(T value, T* evicted = nullptr) {
    if (size_ < capacity_) {
      buffer_[(head_ + size_) % capacity_] = std::move(value);
      ++size_;
      return false;
    }
    if (evicted != nullptr) *evicted = std::move(buffer_[head_]);
    buffer_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    return true;
  }

  /// Element i = 0 is the oldest retained element.
  const T& at(std::size_t i) const {
    SQLB_CHECK(i < size_, "RingBuffer index out of range");
    return buffer_[(head_ + i) % capacity_];
  }

  const T& newest() const {
    SQLB_CHECK(size_ > 0, "RingBuffer::newest on empty buffer");
    return buffer_[(head_ + size_ - 1) % capacity_];
  }

  const T& oldest() const {
    SQLB_CHECK(size_ > 0, "RingBuffer::oldest on empty buffer");
    return buffer_[head_];
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Hints the prefetcher at the slot the next Push will write (and, when
  /// full, read the evicted value from). The windows' backing rings are
  /// scattered heap blocks — one per provider — so a gather/notify sweep
  /// over a large candidate set eats one cache miss per ring without this.
  void PrefetchPushSlot() const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t slot =
        size_ < capacity_ ? (head_ + size_) % capacity_ : head_;
    __builtin_prefetch(&buffer_[slot], 1 /*write*/, 1);
#endif
  }

  /// Calls fn(const T&) for each retained element, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(at(i));
  }

 private:
  std::vector<T> buffer_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sqlb

#endif  // SQLB_COMMON_RING_BUFFER_H_
