#include "common/reporting.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sqlb {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != 'e' && s[i] != 'E' && s[i] != '-' &&
               s[i] != '+' && s[i] != '%') {
      return false;
    }
  }
  return digit;
}

}  // namespace

std::string FormatNumber(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::BeginRow() { rows_.emplace_back(); }

void CsvWriter::AddCell(const std::string& value) {
  SQLB_CHECK(!rows_.empty(), "BeginRow() before AddCell()");
  rows_.back().push_back(value);
}

void CsvWriter::AddCell(double value) { AddCell(FormatNumber(value)); }

void CsvWriter::AddCell(std::size_t value) {
  AddCell(std::to_string(value));
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteCell(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << QuoteCell(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::Internal("cannot create directory " + parent.string() +
                              ": " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << ToString();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      const std::size_t pad = widths[i] - row[i].size();
      if (LooksNumeric(row[i])) {
        out << std::string(pad, ' ') << row[i];
      } else {
        out << row[i] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

Result<std::string> EnsureOutputPath(const std::string& directory,
                                     const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + directory + ": " +
                            ec.message());
  }
  return directory + "/" + filename;
}

}  // namespace sqlb
