#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sqlb {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

WindowedSum::WindowedSum(SimTime width) : width_(width) {
  SQLB_CHECK(width > 0.0, "WindowedSum width must be positive");
}

void WindowedSum::Add(SimTime t, double value) {
  SQLB_CHECK(t >= last_time_, "WindowedSum times must be non-decreasing");
  last_time_ = t;
  events_.push_back(Event{t, value});
  sum_ += value;
  ++revision_;
}

double WindowedSum::SumAt(SimTime t) {
  bool evicted = false;
  while (!events_.empty() && events_.front().time <= t - width_) {
    sum_ -= events_.front().value;
    events_.pop_front();
    evicted = true;
  }
  // Guard against drift from repeated subtraction.
  if (events_.empty()) sum_ = 0.0;
  if (evicted) ++revision_;
  return sum_;
}

void WindowedSum::Clear() {
  events_.clear();
  sum_ = 0.0;
  last_time_ = -kSimTimeInfinity;
  ++revision_;
}

WindowedMean::WindowedMean(std::size_t capacity) : capacity_(capacity) {
  SQLB_CHECK(capacity >= 1, "WindowedMean capacity must be >= 1");
}

void WindowedMean::Add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double WindowedMean::Mean(double empty_value) const {
  if (values_.empty()) return empty_value;
  return sum_ / static_cast<double>(values_.size());
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace sqlb
