#ifndef SQLB_COMMON_ENV_CONFIG_H_
#define SQLB_COMMON_ENV_CONFIG_H_

#include <cstdint>
#include <string>

/// \file
/// Environment-variable overrides for the bench harness. The paper's full
/// configuration (10 repetitions of 10,000-second simulations) is expensive;
/// these knobs let CI and quick local runs scale it down without code edits:
///
///   SQLB_REPEAT  — repetition count override (default: per-bench)
///   SQLB_FAST    — when set to 1/true, benches shrink durations/populations
///   SQLB_SEED    — base RNG seed override
///   SQLB_RESULTS — output directory for CSVs (default "results")

namespace sqlb {

/// Returns the env var value, or `fallback` when unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Parses the env var as a non-negative integer; returns `fallback` when
/// unset or unparseable.
std::uint64_t GetEnvUint64(const char* name, std::uint64_t fallback);

/// Parses the env var as a double; returns `fallback` when unset/unparseable.
double GetEnvDouble(const char* name, double fallback);

/// True when the env var is "1", "true", "yes" or "on" (case-insensitive).
bool GetEnvBool(const char* name, bool fallback);

/// True when SQLB_FAST requests scaled-down benches.
bool FastBenchMode();

/// Repetition count for benches: SQLB_REPEAT override or `fallback`.
std::uint64_t BenchRepetitions(std::uint64_t fallback);

/// Base seed: SQLB_SEED override or `fallback`.
std::uint64_t BenchSeed(std::uint64_t fallback);

/// Results directory: SQLB_RESULTS override or "results".
std::string ResultsDirectory();

}  // namespace sqlb

#endif  // SQLB_COMMON_ENV_CONFIG_H_
