#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace sqlb {

double Rng::Exponential(double rate) {
  SQLB_CHECK(rate > 0.0, "Exponential() requires a positive rate");
  // Avoid log(0): NextDouble() is in [0, 1), so 1 - NextDouble() is in (0, 1].
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Normal(double mean, double stddev) {
  // Marsaglia polar method; one of the pair is discarded to keep the
  // generator stateless beyond the xoshiro words.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace sqlb
