#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace sqlb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* condition,
                 const char* message) {
  std::fprintf(stderr, "SQLB_CHECK failed at %s:%d: %s (%s)\n", file, line,
               condition, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace sqlb
