#ifndef SQLB_COMMON_STATS_H_
#define SQLB_COMMON_STATS_H_

#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

#include "common/types.h"

/// \file
/// Generic descriptive-statistics helpers: streaming accumulators, a
/// time-windowed sum (used for the utilization definition, DESIGN.md fidelity
/// decision 1), and a windowed mean for response-time series.

namespace sqlb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  std::size_t count() const { return count_; }
  /// Mean of the added values; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 with fewer than two values.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sum of (time, value) events inside a sliding time window [t - width, t].
///
/// Add() must be called with non-decreasing timestamps. SumAt(t) evicts
/// expired events and returns the remaining sum; it is O(evicted).
class WindowedSum {
 public:
  /// `width` is the window length in simulated seconds (must be > 0).
  explicit WindowedSum(SimTime width);

  /// Records `value` at time `t`. Times must be non-decreasing.
  void Add(SimTime t, double value);

  /// Sum of events with timestamp > t - width.
  double SumAt(SimTime t);

  /// Average rate over the window: SumAt(t) / width.
  double RateAt(SimTime t) { return SumAt(t) / width_; }

  SimTime width() const { return width_; }
  std::size_t pending_events() const { return events_.size(); }

  /// Bumped whenever the windowed sum's value may have changed: on every
  /// Add, on every SumAt that evicted at least one expired event, and on
  /// Clear. A caller holding a cached SumAt result can treat an unchanged
  /// revision (plus WouldExpireAt == false) as proof the cached value is
  /// still exact — the basis of the mediation tier's event-driven
  /// characterization cache.
  std::uint64_t revision() const { return revision_; }

  /// True when SumAt(t) would evict (and therefore change the sum): the
  /// exact eviction predicate, so a staleness check built on it can never
  /// disagree with SumAt about window membership.
  bool WouldExpireAt(SimTime t) const {
    return !events_.empty() && events_.front().time <= t - width_;
  }

  /// Timestamp of the oldest retained event (+inf when empty): as long as
  /// revision() is unchanged, `FrontEventTime() <= t - width()` is exactly
  /// WouldExpireAt(t) — a caller may cache this one double and evaluate the
  /// decay predicate without touching the deque.
  SimTime FrontEventTime() const {
    return events_.empty() ? kSimTimeInfinity : events_.front().time;
  }

  void Clear();

 private:
  struct Event {
    SimTime time;
    double value;
  };

  SimTime width_;
  SimTime last_time_ = -kSimTimeInfinity;
  double sum_ = 0.0;
  std::uint64_t revision_ = 0;
  std::deque<Event> events_;
};

/// Mean of the last `capacity` observations (response-time smoothing for the
/// figure series). O(1) per update.
class WindowedMean {
 public:
  explicit WindowedMean(std::size_t capacity);

  void Add(double x);
  /// Mean of retained observations; `empty_value` when none were added.
  double Mean(double empty_value = 0.0) const;
  std::size_t count() const { return values_.size(); }

 private:
  std::size_t capacity_;
  double sum_ = 0.0;
  std::deque<double> values_;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by sorting a copy;
/// linear interpolation between order statistics. Returns 0 when empty.
double Quantile(std::vector<double> values, double q);

}  // namespace sqlb

#endif  // SQLB_COMMON_STATS_H_
