#ifndef SQLB_COMMON_MATH_UTIL_H_
#define SQLB_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>

/// \file
/// Small numeric helpers shared by the intention/score formulas (Section 5 of
/// the paper), which are products of powers with exponents in [0, 1].

namespace sqlb {

/// Clamps `x` to [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

/// Clamps an intention-like value to the paper's nominal range [-1, 1]
/// (Section 2). Definitions 7-9 can overshoot this range with epsilon = 1;
/// values recorded into satisfaction windows are clamped so the (x+1)/2
/// mapping stays in [0, 1] (DESIGN.md, fidelity decision 2).
inline double ClampIntention(double x) { return Clamp(x, -1.0, 1.0); }

/// x^e for x >= 0, e in [0, 1]; the common factor shape in Defs. 7-9.
/// Short-circuits the frequent e == 0 and e == 1 cases (exact powers), which
/// the adaptive-omega score hits whenever one side's satisfaction saturates.
inline double BoundedPow(double x, double e) {
  if (e == 0.0) return 1.0;
  if (e == 1.0) return x;
  return std::pow(x, e);
}

/// True when |a - b| <= eps.
inline bool ApproxEqual(double a, double b, double eps = 1e-12) {
  return std::fabs(a - b) <= eps;
}

/// Linear interpolation between a (t = 0) and b (t = 1).
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Maps an intention in [-1, 1] to the satisfaction scale [0, 1] via
/// (x + 1) / 2, the transform used in Eqs. 1-2 and Defs. 4-5.
inline double IntentionToUnit(double intention) {
  return (ClampIntention(intention) + 1.0) / 2.0;
}

}  // namespace sqlb

#endif  // SQLB_COMMON_MATH_UTIL_H_
