#include "common/env_config.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sqlb {
namespace {

const char* RawEnv(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

}  // namespace

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = RawEnv(name);
  return v != nullptr ? std::string(v) : fallback;
}

std::uint64_t GetEnvUint64(const char* name, std::uint64_t fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || (end != nullptr && *end != '\0')) return fallback;
  return parsed;
}

bool GetEnvBool(const char* name, bool fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

bool FastBenchMode() { return GetEnvBool("SQLB_FAST", false); }

std::uint64_t BenchRepetitions(std::uint64_t fallback) {
  return GetEnvUint64("SQLB_REPEAT", fallback);
}

std::uint64_t BenchSeed(std::uint64_t fallback) {
  return GetEnvUint64("SQLB_SEED", fallback);
}

std::string ResultsDirectory() {
  return GetEnvString("SQLB_RESULTS", "results");
}

}  // namespace sqlb
