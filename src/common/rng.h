#ifndef SQLB_COMMON_RNG_H_
#define SQLB_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

/// \file
/// Deterministic random number generation.
///
/// Two generators are provided:
///  - Rng: a sequential xoshiro256++ stream, seeded via SplitMix64. Used where
///    draws happen in a fixed order (arrival processes, population building).
///  - CounterRng: a stateless counter-based generator. A draw is a pure
///    function of (seed, key1, key2), so results do not depend on call order.
///    Used for per-(provider, query) preferences, which may be evaluated
///    lazily and in any order without breaking reproducibility.
///
/// Neither is cryptographic; both are fast and adequate for simulation.

namespace sqlb {

/// Advances `state` and returns the next SplitMix64 output. Good seeder and
/// the mixing core of CounterRng.
inline std::uint64_t SplitMix64Next(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ sequential generator.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x5317b00cafef00dULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(&sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// `rate` must be > 0.
  double Exponential(double rate);

  /// Standard normal via Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; `label` distinguishes siblings.
  Rng Fork(std::uint64_t label) {
    std::uint64_t sm = NextUint64() ^ (label * 0x9e3779b97f4a7c15ULL);
    return Rng(SplitMix64Next(&sm));
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Stateless, order-independent generator: every draw is a pure function of
/// (seed, key1, key2).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  /// Uniform 64-bit value for the given key pair.
  std::uint64_t Uint64(std::uint64_t key1, std::uint64_t key2 = 0) const {
    std::uint64_t s = seed_ ^ (key1 * 0x9e3779b97f4a7c15ULL);
    s = SplitMix64Next(&s) ^ (key2 * 0xc2b2ae3d27d4eb4fULL);
    return SplitMix64Next(&s);
  }

  /// Uniform double in [0, 1) for the given key pair.
  double Double(std::uint64_t key1, std::uint64_t key2 = 0) const {
    return static_cast<double>(Uint64(key1, key2) >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi) for the given key pair.
  double Uniform(double lo, double hi, std::uint64_t key1,
                 std::uint64_t key2 = 0) const {
    return lo + (hi - lo) * Double(key1, key2);
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace sqlb

#endif  // SQLB_COMMON_RNG_H_
