#include "runtime/consumer_agent.h"

namespace sqlb::runtime {

ConsumerAgent::ConsumerAgent(ConsumerId id, const ConsumerAgentConfig& config)
    : id_(id), config_(config), window_(config.window) {}

double ConsumerAgent::ComputeIntention(double preference,
                                       double reputation) const {
  return ConsumerIntention(preference, reputation, config_.intention);
}

void ConsumerAgent::OnAllocated(double adequation, double satisfaction) {
  window_.Record(adequation, satisfaction);
}

void ConsumerAgent::OnResult(double response_time_seconds) {
  response_times_.Add(response_time_seconds);
}

}  // namespace sqlb::runtime
