#include "runtime/consumer_agent.h"

namespace sqlb::runtime {

ConsumerAgent::ConsumerAgent(ConsumerId id, const ConsumerAgentConfig& config)
    : id_(id), config_(config), window_(config.window) {}

void ConsumerAgent::OnAllocated(double adequation, double satisfaction) {
  window_.Record(adequation, satisfaction);
}

void ConsumerAgent::OnResult(double response_time_seconds) {
  response_times_.Add(response_time_seconds);
}

}  // namespace sqlb::runtime
