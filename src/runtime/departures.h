#ifndef SQLB_RUNTIME_DEPARTURES_H_
#define SQLB_RUNTIME_DEPARTURES_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "workload/population.h"

/// \file
/// Participant autonomy (Section 6.3.2): thresholds under (or over) which a
/// participant decides to leave the system. The paper's choices, which the
/// defaults mirror:
///
///   - a consumer leaves by dissatisfaction when its satisfaction drops
///     below its adequation (the allocation method punishes it);
///   - a provider leaves by dissatisfaction when satisfaction < adequation
///     - 0.15; by starvation when Ut < 20% of its optimal utilization; by
///     overutilization when Ut > 220% of its optimal utilization — with the
///     optimal utilization equal to the nominal workload fraction (0.8 at a
///     workload of 80% of total system capacity).
///
/// The check cadence and grace period are reproduction parameters (the
/// paper does not specify them); see DESIGN.md fidelity decision 6 and the
/// calibration notes in EXPERIMENTS.md.

namespace sqlb::runtime {

enum class DepartureReason : std::uint8_t {
  kDissatisfaction = 0,
  kStarvation = 1,
  kOverutilization = 2,
  /// A scheduled leave from an explicit churn schedule (the provider's
  /// autonomy exercised by the scenario, not by the Section 6.3.2 rules).
  kChurn = 3,
};

inline constexpr std::size_t kNumDepartureReasons = 4;

/// "dissatisfaction", "starvation", "overutilization", "churn".
const char* DepartureReasonName(DepartureReason reason);

struct DepartureConfig {
  /// Master switches per departure cause.
  bool consumers_may_leave = false;
  bool provider_dissatisfaction = false;
  bool provider_starvation = false;
  bool provider_overutilization = false;

  /// Provider leaves when sat < adq - margin (on its private preferences).
  double provider_dissat_margin = 0.15;
  /// Consumer leaves when sat < adq - margin on
  /// `consumer_hysteresis_checks` consecutive assessments. The paper
  /// states margin 0 and no cadence; with this simulator's window noise
  /// (sigma ~ 0.02 for k = 200) a zero-margin single-assessment rule makes
  /// half the consumers cross on any check and the exodus collapses the
  /// workload (EXPERIMENTS.md records the calibration). The defaults —
  /// half a noise sigma of margin plus two consecutive violations — read
  /// as "participants support high degrees of dissatisfaction"
  /// (Section 6.3.2) while keeping the paper's shape: baselines bleed
  /// consumers, SQLB loses none.
  double consumer_dissat_margin = 0.01;
  std::uint32_t consumer_hysteresis_checks = 2;
  /// Starvation when Ut < starvation_fraction * optimal utilization.
  double starvation_fraction = 0.2;
  /// Overutilization when Ut > overutilization_fraction * optimal.
  double overutilization_fraction = 2.2;
  /// Overutilization also fires when the provider's queued work exceeds
  /// this many seconds at its own capacity, regardless of the rate-based
  /// reading: a saturated provider's intake rate plateaus at ~1x capacity
  /// while its queue — the thing that actually hurts it and its consumers
  /// — keeps growing (the Mariposa concentration pattern, Section 6.3).
  /// The default sits above the queues of a balanced system at 80% load
  /// (a few seconds) and below a concentrating method's winner queues
  /// (tens of seconds). This is also why departures under SQLB
  /// concentrate on low-capacity providers — their queues cross the
  /// patience bound first — matching the paper's Table 3 observation.
  double overutilization_backlog_patience = 30.0;

  /// No departures before this simulated time (windows must hold real
  /// evidence before anyone can judge the system).
  SimTime grace_period = 1000.0;
  /// How often participants reassess (the paper's "regular assessment over
  /// their k last interactions"). A reproduction parameter: since each
  /// check is a fresh draw of mostly-new window content, the total
  /// departure probability compounds per check; the default gives a
  /// handful of assessments per run (EXPERIMENTS.md records the
  /// calibration).
  SimTime check_interval = 500.0;

  /// Convenience: enable every provider cause plus consumer departures.
  static DepartureConfig AllEnabled();
  /// Figure 5(a)'s regime: dissatisfaction + starvation only.
  static DepartureConfig DissatisfactionAndStarvation();
};

// ---------------------------------------------------------------------------
// Explicit provider churn (scheduled joins and leaves)
// ---------------------------------------------------------------------------

/// One scheduled membership change of the provider population. Leaves model
/// a provider exercising its autonomy on a schedule the scenario fixes
/// (instead of — or on top of — the Section 6.3.2 rules); joins model a
/// provider arriving after the run started, or a departed one returning
/// with its characterization memory intact. A provider whose *first*
/// scheduled event is a join is held out of the initial membership.
struct ProviderChurnEvent {
  SimTime time = 0.0;
  bool join = true;  // false = scheduled leave
  std::uint32_t provider_index = 0;
};

/// The scenario's churn script, executed by the ScenarioEngine: every event
/// fires at its time (an epoch barrier under parallel execution — membership
/// changes while the lanes are quiescent and merged). Events need not be
/// pre-sorted; the engine orders them by (time, list position).
struct ChurnSchedule {
  std::vector<ProviderChurnEvent> events;

  bool empty() const { return events.empty(); }

  /// Providers whose first scheduled event is a join: they start outside
  /// the system and enter at that time. Ascending, unique, validated
  /// against `num_providers`.
  std::vector<std::uint32_t> InitialHoldouts(std::size_t num_providers) const;

  /// `count` providers starting at index `first` all join at `at` — the
  /// flash-join burst scenario.
  static ChurnSchedule FlashJoin(SimTime at, std::uint32_t first,
                                 std::uint32_t count);
  /// `count` providers starting at index `first` all leave at `at` — the
  /// mass-departure scenario.
  static ChurnSchedule MassDeparture(SimTime at, std::uint32_t first,
                                     std::uint32_t count);
  /// `count` providers starting at `first` leave at `leave_at` and rejoin
  /// at `rejoin_at` — one flap of the ring-flapping scenario family.
  static ChurnSchedule LeaveAndRejoin(SimTime leave_at, SimTime rejoin_at,
                                      std::uint32_t first,
                                      std::uint32_t count);

  /// Appends `other`'s events after this schedule's.
  ChurnSchedule& Append(const ChurnSchedule& other);
};

/// One recorded departure, carrying the class labels Table 3 breaks down.
struct DepartureEvent {
  SimTime time = 0.0;
  bool is_provider = false;
  DepartureReason reason = DepartureReason::kDissatisfaction;
  std::uint32_t participant_index = 0;
  // Provider class labels (meaningful when is_provider).
  Level capacity_class = Level::kMedium;
  Level interest_class = Level::kMedium;
  Level adaptation_class = Level::kMedium;
};

/// Aggregated Table-3-style accounting: departures[reason][dimension][level]
/// where dimension 0 = consumer-interest class, 1 = adaptation class,
/// 2 = capacity class.
class DepartureTally {
 public:
  void Add(const DepartureEvent& event);

  std::uint64_t ByReason(DepartureReason reason) const;
  std::uint64_t ByReasonInterest(DepartureReason reason, Level level) const;
  std::uint64_t ByReasonAdaptation(DepartureReason reason, Level level) const;
  std::uint64_t ByReasonCapacity(DepartureReason reason, Level level) const;
  std::uint64_t providers_total() const { return providers_total_; }
  std::uint64_t consumers_total() const { return consumers_total_; }

 private:
  std::uint64_t interest_[kNumDepartureReasons][3] = {};
  std::uint64_t adaptation_[kNumDepartureReasons][3] = {};
  std::uint64_t capacity_[kNumDepartureReasons][3] = {};
  std::uint64_t providers_total_ = 0;
  std::uint64_t consumers_total_ = 0;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_DEPARTURES_H_
