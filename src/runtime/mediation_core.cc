#include "runtime/mediation_core.h"

#include <algorithm>
#include <string>

#include "common/math_util.h"
#include "common/status.h"
#include "model/characterization.h"

namespace sqlb::runtime {

MediationCore::MediationCore(const Shared& shared, AllocationMethod* method,
                             std::vector<std::uint32_t> member_providers)
    : shared_(shared),
      method_(method),
      active_providers_(std::move(member_providers)),
      initial_members_(active_providers_.size()) {
  SQLB_CHECK(method_ != nullptr, "mediation core needs a method");
  SQLB_CHECK(shared_.config != nullptr && shared_.population != nullptr &&
                 shared_.providers != nullptr && shared_.consumers != nullptr &&
                 shared_.reputation != nullptr && shared_.result != nullptr &&
                 shared_.response_window != nullptr,
             "mediation core shared state is incomplete");
  cache_enabled_ = shared_.config->characterization_cache;
  utilization_window_width_ = shared_.config->provider.utilization_window;
  column_needs_ = method_->RequiredColumns();

  // Membership state — the chronic-utilization baselines and the
  // characterization cache — is member-slot indexed and member-sized: a
  // core over 1/M of a million-provider population carries O(members)
  // state, not O(population). Slots recycle through a freelist on
  // departure/export with their cache stamps reset, so a member imported
  // by a churn handoff always starts never-characterized.
  units_at_last_check_.reserve(active_providers_.size());
  member_since_.reserve(active_providers_.size());
  member_cache_.reserve(active_providers_.size());
  for (std::uint32_t index : active_providers_) {
    SQLB_CHECK(index < shared_.providers->size(),
               "member provider index out of range");
    ProviderAgent& agent = (*shared_.providers)[index];
    matchmaker_.Register(agent.id(), Capability{});
    AllocMemberSlot(index);
    if (shared_.arena != nullptr) agent.SetArena(shared_.arena);
  }

  // Pre-size the hot-path scratch to the member count: every candidate set
  // is a subset of the members, so no allocation loop ever regrows these.
  const std::size_t members = active_providers_.size();
  scratch_columns_.Reserve(members);
  scratch_provider_pref_.reserve(members);
  scratch_selected_ci_.reserve(std::min<std::size_t>(
      members, shared_.config->query_n));
  scratch_selected_mask_.reserve(members);
  // In-flight responses track queries dispatched but not yet completed;
  // under the paper's near-capacity workloads that is a few queued queries
  // per member provider. Reserving a small multiple up front keeps the
  // pending map from rehashing during the measured region.
  pending_.reserve(members * 4 + 64);

  // Hoist the hot-path histogram references once: the record sites then pay
  // a null check instead of a map lookup per query.
  if (shared_.metrics != nullptr) {
    rt_histogram_ = &shared_.metrics->GetHistogram(obs::kMetricResponseTime);
    candidates_histogram_ =
        &shared_.metrics->GetHistogram(obs::kMetricMediationCandidates);
  }
}

std::uint32_t MediationCore::AllocMemberSlot(std::uint32_t provider_index) {
  std::uint32_t slot;
  if (!free_member_slots_.empty()) {
    slot = free_member_slots_.back();
    free_member_slots_.pop_back();
    units_at_last_check_[slot] = 0.0;
    member_since_[slot] = 0.0;
    member_cache_[slot] = MemberCharacterization{};
  } else {
    slot = static_cast<std::uint32_t>(member_cache_.size());
    units_at_last_check_.push_back(0.0);
    member_since_.push_back(0.0);
    member_cache_.emplace_back();
  }
  (*shared_.providers)[provider_index].set_core_slot(slot);
  return slot;
}

void MediationCore::FreeMemberSlot(std::uint32_t provider_index) {
  ProviderAgent& agent = (*shared_.providers)[provider_index];
  const std::uint32_t slot = agent.core_slot();
  SQLB_CHECK(slot < member_cache_.size(), "freeing a slotless member");
  free_member_slots_.push_back(slot);
  agent.set_core_slot(AgentStore::kNoCoreSlot);
}

const MediationCore::MemberCharacterization&
MediationCore::RefreshCharacterization(std::uint32_t provider_index,
                                       SimTime now) {
  ProviderAgent& agent = (*shared_.providers)[provider_index];
  MemberCharacterization& mc = member_cache_[agent.core_slot()];

  // Staleness per field, against the agent's event stamps. The decay check
  // (UtilizationWouldDecay) is the *exact* eviction predicate of the
  // agent's windowed sum, so the cached path evicts at precisely the call
  // sites the uncached path would — the floating-point add/evict sequence
  // inside the agent is identical either way, which is what makes cached
  // runs bit-identical to cache-disabled twins rather than merely close.
  const bool never = mc.load_revision == kNeverCharacterized;
  const bool ut_stale =
      !cache_enabled_ || never ||
      mc.utilization_revision != agent.utilization_revision() ||
      agent.UtilizationWouldDecay(now);
  const bool load_stale =
      !cache_enabled_ || never || mc.load_revision != agent.load_revision();
  const bool sat_stale = !cache_enabled_ || never ||
                         mc.satisfaction_revision !=
                             agent.satisfaction_revision();

  if (ut_stale) {
    mc.snap.utilization = agent.Utilization(now);
    // Read the stamp after the call: the eviction it performed bumped it.
    mc.utilization_revision = agent.utilization_revision();
    ++cache_stats_.utilization_refreshes;
  }
  if (load_stale) {
    mc.snap.id = agent.id();
    mc.snap.capacity = agent.capacity();
    mc.snap.backlog_seconds = agent.BacklogSeconds();
    mc.load_revision = agent.load_revision();
    ++cache_stats_.backlog_refreshes;
  }
  if (sat_stale) {
    mc.snap.satisfaction_intentions = agent.SatisfactionOnIntentions();
    mc.snap.satisfaction_preferences = agent.SatisfactionOnPreferences();
    mc.satisfaction_revision = agent.satisfaction_revision();
    ++cache_stats_.satisfaction_refreshes;
  }
  if (ut_stale || sat_stale) {
    // The Definition-8 state factors (two pows) depend on utilization and
    // preference-based satisfaction only; rebuild exactly when either
    // moved. Eval() then costs one pow per (query, candidate).
    mc.evaluator = ProviderIntentionEvaluator(
        mc.snap.utilization, mc.snap.satisfaction_preferences,
        shared_.config->provider.intention);
    ++cache_stats_.evaluator_rebuilds;
  }
  // Re-arm the coarse hit check: the refresh above consumed every pending
  // invalidation (including the eviction Utilization just performed).
  mc.char_revision = agent.characterization_revision();
  mc.decay_front_time = agent.UtilizationFrontEventTime();
  return mc;
}

void MediationCore::GatherCandidates(const Query& query,
                                     const std::vector<ProviderId>& pq,
                                     SimTime now, CandidateColumns* columns,
                                     std::vector<double>* prefs) {
  ConsumerAgent& consumer = (*shared_.consumers)[query.consumer.index()];
  std::vector<ProviderAgent>& providers = *shared_.providers;

  // Lines 2-5 of Algorithm 1: gather the consumer's and the providers'
  // intentions (synchronously here; the wall-clock serving tier —
  // runtime/serving_mediator.h — feeds this same pipeline from real-thread
  // intake queues and uses the DES as its replay oracle). The
  // query-independent provider state comes from the characterization cache;
  // only the per-(query, provider) terms — preferences, consumer intention,
  // the preference pow of Definition 8, the asking price — are computed
  // fresh, straight into the SoA columns the scoring kernels consume.
  columns->Clear();
  columns->Reserve(pq.size());
  prefs->clear();
  prefs->reserve(pq.size());
  cache_stats_.lookups += pq.size();
  const CandidateColumnNeeds& needs = column_needs_;
  // With upsilon = 1 preference-only consumer intentions (the paper's
  // setup) the registry read is dead weight per candidate; Get is pure, so
  // skipping it cannot change any value.
  const bool read_reputation = consumer.IntentionUsesReputation();
  constexpr std::size_t kPrefetchAhead = 8;
  for (std::size_t c = 0; c < pq.size(); ++c) {
    const ProviderId pid = pq[c];
    if (c + kPrefetchAhead < pq.size()) {
      // The cache entries are indexed by provider — sequential for the
      // AcceptAll member walk — but each agent's stamp line is scattered.
      providers[pq[c + kPrefetchAhead].index()].PrefetchCharacterizationStamp();
    }
    const MemberCharacterization& mc = Characterize(pid.index(), now);
    const double consumer_pref =
        shared_.population->ConsumerPreference(query.consumer, pid);
    const double provider_pref =
        shared_.population->ProviderPreference(pid, query.id);
    columns->ids.push_back(pid);
    columns->consumer_intention.push_back(consumer.ComputeIntention(
        consumer_pref,
        read_reputation ? shared_.reputation->Get(pid) : 0.0));
    columns->provider_intention.push_back(mc.evaluator.Eval(provider_pref));
    columns->provider_satisfaction.push_back(mc.snap.satisfaction_intentions);
    if (needs.utilization) {
      columns->utilization.push_back(mc.snap.utilization);
    }
    if (needs.capacity) {
      columns->capacity.push_back(mc.snap.capacity);
    }
    if (needs.backlog_seconds) {
      columns->backlog_seconds.push_back(mc.snap.backlog_seconds);
    }
    if (needs.bid_price) {
      columns->bid_price.push_back(
          providers[pid.index()].ComputeBidPrice(provider_pref));
    }
    if (needs.estimated_delay) {
      columns->estimated_delay.push_back(mc.snap.backlog_seconds +
                                         query.units / mc.snap.capacity);
    }
    prefs->push_back(provider_pref);
  }

  // Mediation cost proxy: Algorithm 1's per-query work is proportional to
  // the candidate count characterized + scored.
  if (candidates_histogram_ != nullptr) {
    candidates_histogram_->Record(static_cast<double>(pq.size()));
  }
  if (shared_.trace != nullptr && shared_.trace->SamplesQuery(query.id)) {
    shared_.trace->RecordInstant(obs::SpanKind::kGather, now, query.id,
                                 static_cast<double>(pq.size()));
  }
}

MediationCore::Outcome MediationCore::Allocate(
    des::Simulator& sim, const Query& query,
    double saturation_backlog_seconds) {
  std::vector<ProviderAgent>& providers = *shared_.providers;
  // AcceptAll's P_q is the member list itself — borrow it (no per-query
  // copy); nothing below mutates the matchmaker.
  const std::vector<ProviderId>& pq = matchmaker_.MatchAll();
  if (pq.empty()) {
    return Outcome::kNoCandidates;
  }

  // Saturation pre-check (sharded deployments only): when every candidate
  // drags more queued work than the bound, bounce the query back to the
  // router *before* any intention gathering so re-routing is side-effect
  // free. A mono-mediator has nowhere else to send the query and passes 0.
  if (saturation_backlog_seconds > 0.0) {
    double min_backlog = kSimTimeInfinity;
    for (ProviderId pid : pq) {
      min_backlog =
          std::min(min_backlog, providers[pid.index()].BacklogSeconds());
    }
    if (min_backlog > saturation_backlog_seconds) {
      return Outcome::kSaturated;
    }
  }

  ConsumerAgent& consumer = (*shared_.consumers)[query.consumer.index()];
  const SimTime now = sim.Now();

  // Relaxed-parity lanes: everything from the intention gathering below
  // through ApplyDecision's consumer characterization reads and writes this
  // consumer's window, so the whole mediation holds its sequence lock.
  const des::SeqLockTable::Guard consumer_guard = LockConsumer(query.consumer);

  GatherCandidates(query, pq, now, &scratch_columns_, &scratch_provider_pref_);

  // Lines 6-10: the method scores, ranks and selects (over the contiguous
  // columns); then the shared post-decision half notifies providers,
  // characterizes the consumer and dispatches.
  ColumnarRequest request;
  request.query = &query;
  request.consumer_satisfaction = consumer.Satisfaction();
  request.candidates = &scratch_columns_;
  const AllocationDecision decision = method_->AllocateColumns(request);
  return ApplyDecision(sim, query, scratch_columns_, scratch_provider_pref_,
                       decision);
}

MediationCore::Outcome MediationCore::ApplyDecision(
    des::Simulator& sim, const Query& query, const CandidateColumns& columns,
    const std::vector<double>& provider_prefs,
    const AllocationDecision& decision) {
  std::vector<ProviderAgent>& providers = *shared_.providers;
  ConsumerAgent& consumer = (*shared_.consumers)[query.consumer.index()];

  // A strict economic broker may select fewer (even zero) providers, but
  // never more than Algorithm 1's min(q.n, N).
  SQLB_CHECK(decision.selected.size() <= SelectionCount(query, columns.size()),
             "allocation produced more selections than min(q.n, N)");

  // Inform every provider of the mediation result (Section 5.4): selected
  // providers record a performed query; the rest record a proposal only.
  scratch_selected_mask_.assign(columns.size(), 0);
  for (std::size_t idx : decision.selected) {
    SQLB_CHECK(idx < scratch_selected_mask_.size(),
               "selection index out of range");
    SQLB_CHECK(!scratch_selected_mask_[idx],
               "provider selected twice for one query");
    scratch_selected_mask_[idx] = 1;
  }
  constexpr std::size_t kPrefetchAhead = 8;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i + kPrefetchAhead < columns.size()) {
      providers[columns.ids[i + kPrefetchAhead].index()]
          .PrefetchProposalSlot();
    }
    ProviderAgent& agent = providers[columns.ids[i].index()];
    agent.OnProposed(columns.provider_intention[i], provider_prefs[i],
                     scratch_selected_mask_[i] != 0);
  }

  // Consumer characterization: Eq. 1 over P_q, Eq. 2 over the selection
  // (the consumer-intention column *is* the CI_q vector).
  const double adequation = QueryAdequation(columns.consumer_intention);
  scratch_selected_ci_.clear();
  for (std::size_t idx : decision.selected) {
    scratch_selected_ci_.push_back(columns.consumer_intention[idx]);
  }
  const double satisfaction =
      QuerySatisfaction(scratch_selected_ci_, query.n);
  consumer.OnAllocated(adequation, satisfaction);

  const bool traced =
      shared_.trace != nullptr && shared_.trace->SamplesQuery(query.id);
  if (traced) {
    shared_.trace->RecordInstant(obs::SpanKind::kScore, sim.Now(), query.id,
                                 static_cast<double>(columns.size()));
  }

  // Replay-oracle stream: the decision is final here (dispatch below never
  // changes it), so record it before either return path.
  if (shared_.decisions != nullptr) {
    DecisionLog::Record record;
    record.query = query.id;
    record.outcome = decision.selected.empty() ? Outcome::kUnallocated
                                               : Outcome::kAllocated;
    record.providers.reserve(decision.selected.size());
    for (std::size_t idx : decision.selected) {
      record.providers.push_back(columns.ids[idx].index());
    }
    shared_.decisions->Append(std::move(record));
  }

  if (decision.selected.empty()) {
    // Strict economic broker may leave a query untreated.
    return Outcome::kUnallocated;
  }

  if (traced) {
    shared_.trace->RecordInstant(obs::SpanKind::kAllocate, sim.Now(),
                                 query.id,
                                 static_cast<double>(decision.selected.size()));
  }

  // Dispatch to the selected providers; the consumer's response arrives
  // when the last of them completes. Completion callbacks carry the crash
  // epoch they were dispatched under: if this core crashes before they
  // fire, the stale callbacks drop themselves (the query was re-issued by
  // the failover path — counting the orphaned completion would break the
  // completed + infeasible + reissued == issued identity).
  pending_.emplace(query.id,
                   PendingResponse{query, sim.Now(),
                                   static_cast<std::uint32_t>(
                                       decision.selected.size())});
  ++allocated_queries_;
  for (std::size_t idx : decision.selected) {
    ProviderAgent& agent = providers[columns.ids[idx].index()];
    agent.Enqueue(sim, query,
                  [this, epoch = crash_epoch_](const Query& q,
                                               ProviderId performer,
                                               SimTime t) {
                    if (epoch != crash_epoch_) {
                      ++dropped_completions_;
                      return;
                    }
                    OnQueryCompleted(q, performer, t);
                  });
  }
  return Outcome::kAllocated;
}

void MediationCore::AllocateBatch(des::Simulator& sim,
                                  const std::vector<Query>& queries,
                                  double saturation_backlog_seconds,
                                  std::vector<Outcome>* outcomes) {
  outcomes->assign(queries.size(), Outcome::kNoCandidates);
  if (queries.empty()) return;

  // One matchmaking pass per burst, borrowed in place. The setup's
  // matchmakers are query-independent over a shard's active members
  // (AcceptAll), so the burst shares one P_q; with a term-index matchmaker
  // a burst would need per-class sub-bursts — the intake only coalesces
  // same-shard arrivals.
  const std::vector<ProviderId>& pq = matchmaker_.MatchAll();
  if (pq.empty()) return;  // every outcome stays kNoCandidates

  const SimTime now = sim.Now();

  // Characterize the burst's shared candidate set once at `now` (cache
  // revalidation; every query in the burst observes the same provider-side
  // state — queries within one burst do not see each other's allocations).
  // The cached backlog also feeds the burst-wide saturation pre-check,
  // which stays side-effect free: the router may replay the whole burst
  // elsewhere as if it never arrived here.
  double min_backlog = kSimTimeInfinity;
  for (ProviderId pid : pq) {
    min_backlog = std::min(
        min_backlog, Characterize(pid.index(), now).snap.backlog_seconds);
  }
  if (saturation_backlog_seconds > 0.0 &&
      min_backlog > saturation_backlog_seconds) {
    outcomes->assign(queries.size(), Outcome::kSaturated);
    return;
  }

  // Build every request of the burst against the shared characterization.
  // No provider state mutates until the post-decision loop below, so the
  // per-query gathers all hit the cache entries the pass above refreshed.
  if (batch_requests_.size() < queries.size()) {
    batch_columns_.resize(queries.size());
    batch_requests_.resize(queries.size());
    batch_provider_prefs_.resize(queries.size());
    batch_decisions_.resize(queries.size());
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Query& query = queries[q];
    ConsumerAgent& consumer = (*shared_.consumers)[query.consumer.index()];
    const des::SeqLockTable::Guard consumer_guard =
        LockConsumer(query.consumer);
    GatherCandidates(query, pq, now, &batch_columns_[q],
                     &batch_provider_prefs_[q]);
    batch_requests_[q].query = &query;
    batch_requests_[q].consumer_satisfaction = consumer.Satisfaction();
    batch_requests_[q].candidates = &batch_columns_[q];
  }

  // One scoring pass over the burst.
  method_->AllocateBatchColumns(batch_requests_.data(), queries.size(),
                                batch_decisions_.data());

  // Apply per query, in burst order (dispatch, windows, characterization —
  // identical to the tail of Allocate()). ApplyDecision writes the query's
  // consumer window, so each application holds that consumer's lock.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const des::SeqLockTable::Guard consumer_guard =
        LockConsumer(queries[q].consumer);
    (*outcomes)[q] =
        ApplyDecision(sim, queries[q], batch_columns_[q],
                      batch_provider_prefs_[q], batch_decisions_[q]);
  }
}

void MediationCore::OnQueryCompleted(const Query& query, ProviderId performer,
                                     SimTime completion_time) {
  if (shared_.config->reputation_feedback) {
    // Satisfaction-of-delivery signal: a response within twice the
    // performer's own service time is good, long queueing is bad (used by
    // the upsilon ablation and examples; the paper's upsilon = 1 setup
    // ignores reputation entirely).
    const double service =
        query.units / (*shared_.providers)[performer.index()].capacity();
    const double this_response = completion_time - query.issue_time;
    const double feedback =
        Clamp(1.0 - (this_response - service) / std::max(service, 1e-9),
              -1.0, 1.0);
    shared_.reputation->AddFeedback(performer, feedback);
  }

  auto it = pending_.find(query.id);
  SQLB_CHECK(it != pending_.end(), "completion for unknown query");
  if (--it->second.outstanding > 0) return;

  const double response_time = completion_time - it->second.query.issue_time;
  const SimTime dispatch_time = it->second.dispatch_time;
  pending_.erase(it);
  const bool post_warmup = query.issue_time >= shared_.config->stats_warmup;
  if (rt_histogram_ != nullptr && post_warmup) {
    // Same population as the headline `response_time` stat, recorded
    // lane-side (histogram merge is commutative, so per-lane recording
    // yields the identical merged histogram in every execution mode).
    rt_histogram_->Record(response_time);
  }
  if (shared_.trace != nullptr && shared_.trace->SamplesQuery(query.id)) {
    shared_.trace->Record(obs::SpanKind::kExecute, dispatch_time,
                          completion_time, query.id,
                          static_cast<double>(performer.index()));
    shared_.trace->RecordInstant(obs::SpanKind::kComplete, completion_time,
                                 query.id, response_time);
  }
  if (shared_.effects != nullptr) {
    // Epoch-parallel lane: cross-shard sinks are merged at the barrier.
    shared_.effects->RecordCompletion(completion_time, response_time,
                                      post_warmup);
  } else {
    RunResult& result = *shared_.result;
    ++result.queries_completed;
    result.response_time_all.Add(response_time);
    if (post_warmup) {
      result.response_time.Add(response_time);
    }
    shared_.response_window->Add(response_time);
  }

  ConsumerAgent& consumer = (*shared_.consumers)[query.consumer.index()];
  const des::SeqLockTable::Guard consumer_guard = LockConsumer(query.consumer);
  consumer.OnResult(response_time);
}

double MediationCore::MeanCommittedUtilization(SimTime now) const {
  if (active_providers_.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint32_t index : active_providers_) {
    sum += (*shared_.providers)[index].CommittedUtilization(now);
  }
  return sum / static_cast<double>(active_providers_.size());
}

double MediationCore::MeanBacklogSeconds() const {
  if (active_providers_.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint32_t index : active_providers_) {
    sum += (*shared_.providers)[index].BacklogSeconds();
  }
  return sum / static_cast<double>(active_providers_.size());
}

void MediationCore::RunProviderDepartureChecks(SimTime now,
                                               double optimal_ut) {
  std::vector<ProviderAgent>& providers = *shared_.providers;
  const DepartureConfig& dep = shared_.config->departures;

  // The paper's order — dissatisfaction, starvation, overutilization; first
  // matching cause wins. Both utilization rules are judged on the chronic
  // utilization — the average allocation rate over capacity since the
  // previous check (or since admission, for a member that joined
  // mid-span) — rather than the instantaneous 60-second window: a provider
  // missing one measurement window has not starved, and a provider riding a
  // short burst is not overutilized; a provider receiving 2.2x its capacity
  // for a whole assessment period is.
  if (dep.provider_dissatisfaction || dep.provider_starvation ||
      dep.provider_overutilization) {
    for (std::size_t i = 0; i < active_providers_.size();) {
      ProviderAgent& p = providers[active_providers_[i]];
      const std::uint32_t slot = p.core_slot();
      // Fresh joiners get the same grace the whole system gets at t = 0:
      // no judgement until their windows hold real evidence.
      if (now - member_since_[slot] < dep.grace_period) {
        ++i;
        continue;
      }
      const SimTime chronic_span =
          now - std::max(last_check_time_, member_since_[slot]);
      const double sat = p.SatisfactionOnPreferences();
      const double adq = p.AdequationOnPreferences();
      const double acute_ut = p.Utilization(now);
      const double chronic_ut =
          chronic_span > 0.0
              ? (p.total_allocated_units() - units_at_last_check_[slot]) /
                    (p.capacity() * chronic_span)
              : acute_ut;
      DepartureReason reason{};
      bool leaves = false;
      if (dep.provider_dissatisfaction &&
          sat < adq - dep.provider_dissat_margin) {
        reason = DepartureReason::kDissatisfaction;
        leaves = true;
      } else if (dep.provider_starvation &&
                 chronic_ut < dep.starvation_fraction * optimal_ut) {
        reason = DepartureReason::kStarvation;
        leaves = true;
      } else if (dep.provider_overutilization &&
                 (chronic_ut >
                      dep.overutilization_fraction * optimal_ut ||
                  p.BacklogSeconds() >
                      dep.overutilization_backlog_patience)) {
        reason = DepartureReason::kOverutilization;
        leaves = true;
      }
      if (leaves) {
        DepartProvider(i, reason, now);  // swap-removes: do not advance i
      } else {
        ++i;
      }
    }
  }
  for (std::uint32_t index : active_providers_) {
    units_at_last_check_[providers[index].core_slot()] =
        providers[index].total_allocated_units();
  }
  last_check_time_ = now;
}

void MediationCore::DepartProvider(std::size_t index, DepartureReason reason,
                                   SimTime now) {
  const std::uint32_t provider_index = active_providers_[index];
  ProviderAgent& agent = (*shared_.providers)[provider_index];
  agent.Depart();
  matchmaker_.Unregister(agent.id());

  DepartureEvent event;
  event.time = now;
  event.is_provider = true;
  event.reason = reason;
  event.participant_index = provider_index;
  event.capacity_class = agent.profile().capacity_class;
  event.interest_class = agent.profile().interest_class;
  event.adaptation_class = agent.profile().adaptation_class;
  shared_.result->departures.push_back(event);
  shared_.result->tally.Add(event);

  FreeMemberSlot(provider_index);
  active_providers_[index] = active_providers_.back();
  active_providers_.pop_back();
}

void MediationCore::AdmitMember(std::uint32_t provider_index, SimTime now) {
  SQLB_CHECK(provider_index < shared_.providers->size(),
             "admitted provider index out of range");
  SQLB_CHECK(!IsMember(provider_index), "provider is already a member here");
  ProviderAgent& agent = (*shared_.providers)[provider_index];
  agent.Rejoin();
  matchmaker_.Register(agent.id(), Capability{});
  active_providers_.push_back(provider_index);
  const std::uint32_t slot = AllocMemberSlot(provider_index);
  if (shared_.arena != nullptr) agent.SetArena(shared_.arena);
  // The chronic-utilization clock starts at admission: whatever the agent
  // allocated in a previous life does not count against this membership.
  units_at_last_check_[slot] = agent.total_allocated_units();
  member_since_[slot] = now;
}

void MediationCore::SealMember(std::uint32_t provider_index) {
  SQLB_CHECK(IsMember(provider_index), "sealing a non-member");
  matchmaker_.Unregister((*shared_.providers)[provider_index].id());
}

void MediationCore::UnsealMember(std::uint32_t provider_index) {
  SQLB_CHECK(IsMember(provider_index), "unsealing a non-member");
  matchmaker_.Register((*shared_.providers)[provider_index].id(),
                       Capability{});
}

MediationCore::ProviderHandoff MediationCore::ExportMember(
    std::uint32_t provider_index) {
  ProviderAgent& agent = (*shared_.providers)[provider_index];
  SQLB_CHECK(agent.Idle(),
             "exporting a provider with in-flight work would leave its "
             "completion events behind");
  auto it = std::find(active_providers_.begin(), active_providers_.end(),
                      provider_index);
  SQLB_CHECK(it != active_providers_.end(), "exporting a non-member");
  *it = active_providers_.back();
  active_providers_.pop_back();
  matchmaker_.Unregister(agent.id());

  ProviderHandoff handoff;
  handoff.provider_index = provider_index;
  handoff.units_at_last_check = units_at_last_check_[agent.core_slot()];
  handoff.member_since = member_since_[agent.core_slot()];
  FreeMemberSlot(provider_index);
  return handoff;
}

void MediationCore::ImportMember(const ProviderHandoff& handoff) {
  SQLB_CHECK(handoff.provider_index < shared_.providers->size(),
             "imported provider index out of range");
  SQLB_CHECK(!IsMember(handoff.provider_index),
             "imported provider is already a member here");
  ProviderAgent& agent = (*shared_.providers)[handoff.provider_index];
  matchmaker_.Register(agent.id(), Capability{});
  active_providers_.push_back(handoff.provider_index);
  const std::uint32_t slot = AllocMemberSlot(handoff.provider_index);
  // Re-home the import on this core's arena: new chunks come from here,
  // chunks carried across the handoff drain back to their origin pool.
  if (shared_.arena != nullptr) agent.SetArena(shared_.arena);
  units_at_last_check_[slot] = handoff.units_at_last_check;
  member_since_[slot] = handoff.member_since;
}

bool MediationCore::DepartMemberForChurn(std::uint32_t provider_index,
                                         SimTime now) {
  auto it = std::find(active_providers_.begin(), active_providers_.end(),
                      provider_index);
  if (it == active_providers_.end()) return false;
  DepartProvider(static_cast<std::size_t>(it - active_providers_.begin()),
                 DepartureReason::kChurn, now);
  return true;
}

bool MediationCore::IsMember(std::uint32_t provider_index) const {
  return std::find(active_providers_.begin(), active_providers_.end(),
                   provider_index) != active_providers_.end();
}

MediationCore::CoreSnapshot MediationCore::ExportSnapshot(SimTime now) const {
  CoreSnapshot snapshot;
  snapshot.taken_at = now;
  // Members sorted by provider index so the snapshot (and any restore
  // order derived from it) is independent of the swap-remove history of
  // the active list.
  std::vector<std::uint32_t> sorted(active_providers_);
  std::sort(sorted.begin(), sorted.end());
  snapshot.members.reserve(sorted.size());
  for (std::uint32_t index : sorted) {
    ProviderHandoff handoff;
    handoff.provider_index = index;
    handoff.units_at_last_check = units_at_last_check_[MemberSlot(index)];
    handoff.member_since = member_since_[MemberSlot(index)];
    snapshot.members.push_back(handoff);
  }
  snapshot.pending_count = pending_.size();
  std::vector<QueryId> ids;
  ids.reserve(pending_.size());
  for (const auto& entry : pending_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
  for (QueryId id : ids) {
    digest ^= static_cast<std::uint64_t>(id);
    digest *= 1099511628211ULL;
  }
  snapshot.pending_digest = digest;
  return snapshot;
}

MediationCore::CrashReport MediationCore::Crash() {
  CrashReport report;
  report.members.assign(active_providers_.begin(), active_providers_.end());
  std::sort(report.members.begin(), report.members.end());
  report.lost_queries.reserve(pending_.size());
  for (const auto& entry : pending_) {
    report.lost_queries.push_back(entry.second.query);
  }
  std::sort(report.lost_queries.begin(), report.lost_queries.end(),
            [](const Query& a, const Query& b) { return a.id < b.id; });

  // Tear down the mediator-owned state. Provider agents are participants,
  // not mediator state: they stay active, keep draining their queues on
  // the dead lane, and will be adopted once Idle(). Their already-scheduled
  // completion callbacks see the bumped epoch and drop themselves.
  for (std::uint32_t index : active_providers_) {
    matchmaker_.Unregister((*shared_.providers)[index].id());
    FreeMemberSlot(index);
  }
  active_providers_.clear();
  pending_.clear();
  ++crash_epoch_;
  return report;
}

std::size_t MediationCore::RestoreSnapshot(const CoreSnapshot& snapshot) {
  SQLB_CHECK(active_providers_.empty(),
             "restoring a snapshot over live membership");
  std::size_t restored = 0;
  for (const ProviderHandoff& handoff : snapshot.members) {
    // A member that departed (Section 6.3.2 or scheduled churn) between the
    // snapshot and the crash stays departed: restoring membership must not
    // resurrect an agent that exercised its autonomy.
    if (!(*shared_.providers)[handoff.provider_index].active()) continue;
    ImportMember(handoff);
    ++restored;
  }
  return restored;
}

double ScaledArrivalRate(const SystemConfig& config,
                         const Population& population,
                         std::size_t active_consumers,
                         std::size_t initial_consumers, SimTime t) {
  const double fraction = config.workload.FractionAt(t, config.duration);
  const double nominal = fraction * population.total_capacity() /
                         population.mean_query_units();
  const double consumer_share = static_cast<double>(active_consumers) /
                                static_cast<double>(initial_consumers);
  return nominal * consumer_share;
}

double NominalMaxArrivalRate(const SystemConfig& config,
                             const Population& population) {
  return config.workload.MaxFraction() * population.total_capacity() /
         population.mean_query_units();
}

Query DrawArrivalQuery(const SystemConfig& config,
                       const Population& population,
                       const std::vector<std::uint32_t>& active_consumers,
                       Rng& consumer_pick_rng, Rng& query_class_rng,
                       QueryId id, SimTime now) {
  SQLB_CHECK(!active_consumers.empty(), "no consumer left to draw from");
  const std::uint32_t consumer_index =
      active_consumers[static_cast<std::size_t>(
          consumer_pick_rng.NextBounded(active_consumers.size()))];

  Query query;
  query.id = id;
  query.consumer = ConsumerId(consumer_index);
  query.n = config.query_n;
  query.class_index = static_cast<std::uint32_t>(
      query_class_rng.NextBounded(population.num_query_classes()));
  query.units = population.QueryUnits(query.class_index);
  query.issue_time = now;
  return query;
}

void RunConsumerDepartureChecks(const DepartureConfig& departures,
                                std::vector<ConsumerAgent>& consumers,
                                std::vector<std::uint32_t>& active_consumers,
                                std::vector<std::uint32_t>& violations,
                                SimTime now, RunResult* result) {
  if (!departures.consumers_may_leave) return;
  if (violations.empty()) {
    violations.assign(consumers.size(), 0);
  }
  for (std::size_t i = 0; i < active_consumers.size();) {
    const std::uint32_t index = active_consumers[i];
    ConsumerAgent& c = consumers[index];
    if (c.Satisfaction() < c.Adequation() - departures.consumer_dissat_margin) {
      ++violations[index];
    } else {
      violations[index] = 0;
    }
    if (violations[index] >=
        std::max<std::uint32_t>(1, departures.consumer_hysteresis_checks)) {
      c.Depart();

      DepartureEvent event;
      event.time = now;
      event.is_provider = false;
      event.reason = DepartureReason::kDissatisfaction;
      event.participant_index = index;
      result->departures.push_back(event);
      result->tally.Add(event);

      active_consumers[i] = active_consumers.back();
      active_consumers.pop_back();
    } else {
      ++i;
    }
  }
}

bool DecisionLog::IdenticalTo(const DecisionLog& other,
                              std::string* diff) const {
  auto mismatch = [diff](std::size_t i, const std::string& what) {
    if (diff != nullptr) {
      *diff = "decision " + std::to_string(i) + ": " + what;
    }
    return false;
  };
  if (records_.size() != other.records_.size()) {
    return mismatch(std::min(records_.size(), other.records_.size()),
                    "log sizes differ (" + std::to_string(records_.size()) +
                        " vs " + std::to_string(other.records_.size()) + ")");
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& a = records_[i];
    const Record& b = other.records_[i];
    if (a.query != b.query) {
      return mismatch(i, "query id " + std::to_string(a.query) + " vs " +
                             std::to_string(b.query));
    }
    if (a.outcome != b.outcome) {
      return mismatch(i, "outcome " +
                             std::to_string(static_cast<int>(a.outcome)) +
                             " vs " +
                             std::to_string(static_cast<int>(b.outcome)) +
                             " for query " + std::to_string(a.query));
    }
    if (a.providers != b.providers) {
      return mismatch(i, "provider selection differs for query " +
                             std::to_string(a.query));
    }
  }
  return true;
}

}  // namespace sqlb::runtime
