#include "runtime/agent_store.h"

#include "common/status.h"

namespace sqlb::runtime {

AgentStore::AgentStore(const mem::AgentPoolConfig& config) : config_(config) {}

void AgentStore::Resize(std::size_t count) {
  backlog_units_.assign(count, 0.0);
  total_allocated_units_.assign(count, 0.0);
  util_sum_.assign(count, 0.0);
  // WindowedSum's "no event yet" sentinel: the first Add always satisfies
  // the non-decreasing-time check.
  util_last_time_.assign(count, -kSimTimeInfinity);
  load_revision_.assign(count, 0);
  char_revision_.assign(count, 0);
  util_revision_.assign(count, 0);
  flags_.assign(count, kActive);
  core_slot_.assign(count, kNoCoreSlot);
  if (config_.enabled && arenas_.empty()) ConfigureArenas(1);
}

void AgentStore::ConfigureArenas(std::size_t lanes) {
  if (!config_.enabled) return;
  SQLB_CHECK(arena_bytes_reserved() == 0,
             "reconfiguring arenas after agents allocated pooled chunks");
  arenas_.clear();
  arenas_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    arenas_.push_back(std::make_unique<mem::AgentArena>(config_));
  }
}

mem::AgentArena* AgentStore::arena(std::size_t lane) {
  if (arenas_.empty()) return nullptr;
  SQLB_CHECK(lane < arenas_.size(), "arena lane out of range");
  return arenas_[lane].get();
}

std::size_t AgentStore::columns_bytes() const {
  const std::size_t n = count();
  return n * (4 * sizeof(double) + 3 * sizeof(std::uint64_t) +
              sizeof(std::uint8_t) + sizeof(std::uint32_t));
}

std::size_t AgentStore::arena_bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& arena : arenas_) total += arena->bytes_reserved();
  return total;
}

std::size_t AgentStore::arena_peak_bytes() const {
  std::size_t total = 0;
  for (const auto& arena : arenas_) total += arena->peak_bytes();
  return total;
}

}  // namespace sqlb::runtime
