#ifndef SQLB_RUNTIME_SCENARIO_ENGINE_H_
#define SQLB_RUNTIME_SCENARIO_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "des/simulator.h"
#include "des/time_series.h"
#include "model/query.h"
#include "obs/observability.h"
#include "runtime/agent_store.h"
#include "runtime/consumer_agent.h"
#include "runtime/mediation_core.h"
#include "runtime/provider_agent.h"
#include "runtime/scenario.h"
#include "workload/population.h"

/// \file
/// The one scenario driver every tier shares. A Section-6 run is always the
/// same loop — populate the participant agents, pump Poisson query arrivals,
/// sample the metric probes, apply the Section 6.3.2 departure rules, drain
/// in-flight service — and only the middle of it differs between the
/// mono-mediator (`runtime::MediationSystem`: allocate on the one core) and
/// the sharded tier (`shard::ShardedMediationSystem`: route, maybe batch,
/// maybe re-route, maybe run shard lanes on worker threads).
///
/// ScenarioEngine owns the invariant part: the population, the agent
/// vectors, every shared RNG stream (and its fork order, which is the
/// bit-identity contract between the tiers), the arrival pump, the metric
/// probes, the consumer-side departure rule and the RunResult sinks. The
/// variable part is a ScenarioEngine::Driver — mediation, routing, batching
/// and the execution substrate (serial kernel vs epoch-parallel lanes) are
/// policies of the driver, not copies of the loop. Deleting the second
/// driver loop is what keeps the two tiers comparable: a policy change
/// cannot silently fork the scenario semantics anymore.

namespace sqlb::runtime {

/// What one scheduled churn event did when the driver was asked to apply it.
enum class ChurnOutcome {
  /// The membership change happened (join admitted / leave departed).
  kApplied,
  /// Nothing to do: a leave for a provider the departure rules already
  /// removed, or a join for one that is still a member.
  kNoOp,
  /// A join for a provider still draining in-flight work from its previous
  /// membership. Admitting it now could place it on a shard other than the
  /// one whose lane its service chain lives on — the exact cross-lane state
  /// sharing the strict-parity contract forbids (and the seal -> drain ->
  /// transfer handoff protocol exists to prevent). The engine re-fires the
  /// event every SystemConfig::churn_retry_interval until the drain
  /// completes (or a later scheduled leave annuls the join). Applies
  /// identically in the mono tier, which keeps M = 1 parity exact.
  kDeferred,
};

/// Owns one scenario's shared state and runs its event loop over a Driver.
class ScenarioEngine {
 public:
  /// The tier-specific half of a run. The engine draws each arriving query
  /// (and counts it issued) before handing it over; everything else the
  /// driver does — mediate, route, batch — happens through these hooks.
  class Driver {
   public:
    virtual ~Driver() = default;

    /// Mediates one drawn arrival. Called inside the arrival event, after
    /// the engine counted the query as issued.
    virtual void OnQueryArrival(des::Simulator& sim, const Query& query) = 0;

    /// The Section 6.3.2 provider-side rules over every mediation core the
    /// driver runs. `optimal_ut` is the nominal workload fraction at `now`.
    virtual void RunProviderDepartureChecks(SimTime now,
                                            double optimal_ut) = 0;

    /// One scheduled churn event (SystemConfig::provider_churn). The driver
    /// admits the provider to (or force-departs it from) whichever core
    /// should own it and reports what happened (ChurnOutcome): a no-op for
    /// redundant events, or a deferral for a join whose provider has not
    /// drained its previous life's queue yet — the engine retries those.
    /// Fired at an epoch barrier under parallel execution: membership
    /// changes only while the lanes are quiescent and merged. The default
    /// refuses churn so drivers that predate it fail loudly instead of
    /// dropping events.
    virtual ChurnOutcome OnProviderChurn(des::Simulator& sim,
                                         const ProviderChurnEvent& event);

    /// One scheduled shard kill (SystemConfig::shard_faults). Fired at a
    /// kFailover barrier under parallel execution: the lanes are quiescent
    /// and merged, so the crash is a clean cut — the driver crashes the
    /// named shard's core, re-partitions its providers to survivors via
    /// the versioned ring, restores them from the last snapshot, and
    /// re-issues the in-flight queries the crash lost (each re-issue also
    /// counts as issued, keeping completed + infeasible + reissued ==
    /// issued exact). Kills naming an already-dead shard are no-ops; the
    /// driver never kills the last live shard. The default refuses faults
    /// so drivers that predate failover fail loudly instead of dropping
    /// kill events.
    virtual void OnShardFault(des::Simulator& sim,
                              const ShardFaultEvent& event);

    /// Visits every still-active provider agent in the tier's metric
    /// sampling order (the mono core's active list; shard order, then each
    /// shard's active list, for the sharded tier — identical at M = 1).
    virtual void VisitActiveProviders(
        const std::function<void(ProviderAgent&)>& fn) = 0;
    virtual std::size_t ActiveProviderCount() const = 0;

    /// Appends tier-specific series samples after the shared keys (the
    /// sharded tier adds its shard.* load series here).
    virtual void ExtendMetricsSample(SimTime now, des::SeriesSet& series) {
      (void)now;
      (void)series;
    }

    /// Starts tier-specific periodic tasks (load-report gossip). Called
    /// between the metric probe and the departure task, so the coordinator
    /// event schedule of the pre-engine systems is reproduced exactly.
    virtual void StartAuxiliaryTasks(des::Simulator& sim) { (void)sim; }

    /// True when the engine's periodic tasks (probe, departures) must be
    /// epoch barriers for RunUntilParallel (inert under serial execution).
    virtual bool TasksAreBarriers() const { return false; }

    /// The run loop itself: the default drains the shared kernel serially
    /// (RunUntil to the horizon, then RunAll for in-flight service); the
    /// epoch-parallel driver overrides this with the lane-group loop.
    virtual void Execute(des::Simulator& sim, SimTime duration);
  };

  explicit ScenarioEngine(const SystemConfig& config);
  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Executes the full scenario over `driver` and returns the result.
  /// Call once.
  RunResult Run(Driver& driver);

  // --- Series keys (Figure 4's subplots map onto these) -------------------
  static constexpr const char* kSeriesProvSatIntMean = "prov.sat.int.mean";
  static constexpr const char* kSeriesProvSatPrefMean = "prov.sat.pref.mean";
  static constexpr const char* kSeriesProvAdqIntMean = "prov.adq.int.mean";
  static constexpr const char* kSeriesProvAdqPrefMean = "prov.adq.pref.mean";
  static constexpr const char* kSeriesProvAllocSatIntMean =
      "prov.allocsat.int.mean";
  static constexpr const char* kSeriesProvAllocSatPrefMean =
      "prov.allocsat.pref.mean";
  static constexpr const char* kSeriesProvSatIntFair = "prov.sat.int.fair";
  static constexpr const char* kSeriesProvSatPrefFair = "prov.sat.pref.fair";
  static constexpr const char* kSeriesUtMean = "prov.ut.mean";
  static constexpr const char* kSeriesUtFair = "prov.ut.fair";
  static constexpr const char* kSeriesConsSatMean = "cons.sat.mean";
  static constexpr const char* kSeriesConsAdqMean = "cons.adq.mean";
  static constexpr const char* kSeriesConsAllocSatMean = "cons.allocsat.mean";
  static constexpr const char* kSeriesConsSatFair = "cons.sat.fair";
  static constexpr const char* kSeriesResponseTime = "rt.window";
  static constexpr const char* kSeriesActiveProviders = "active.providers";
  static constexpr const char* kSeriesActiveConsumers = "active.consumers";
  static constexpr const char* kSeriesWorkloadFraction = "workload.fraction";

  // --- Shared state the drivers build their cores over --------------------

  const SystemConfig& config() const { return config_; }
  const Population& population() const { return population_; }
  des::Simulator& sim() { return sim_; }
  std::vector<ProviderAgent>& providers() { return providers_; }
  const std::vector<ProviderAgent>& providers() const { return providers_; }
  std::vector<ConsumerAgent>& consumers() { return consumers_; }
  const std::vector<ConsumerAgent>& consumers() const { return consumers_; }
  const std::vector<std::uint32_t>& active_consumers() const {
    return active_consumers_;
  }
  /// Provider indices held out of the initial membership because their
  /// first scheduled churn event is a join (ascending). Drivers must
  /// exclude these from every core's initial member list.
  const std::vector<std::uint32_t>& initial_holdouts() const {
    return initial_holdouts_;
  }
  /// `held_out()[i]` — membership-mask form of initial_holdouts().
  const std::vector<bool>& held_out() const { return held_out_; }
  ReputationRegistry& reputation() { return reputation_; }
  RunResult& result() { return result_; }
  WindowedMean& response_window() { return response_window_; }

  /// The run's flight recorder. The engine constructs one for a single
  /// shard lane plus the coordinator lane; the sharded driver calls
  /// ConfigureObservability(M) from its constructor — before building its
  /// cores, which capture lane pointers — to get one lane per shard.
  obs::FlightRecorder& recorder() { return *recorder_; }
  void ConfigureObservability(std::size_t shard_lanes);

  /// The shared-state block a MediationCore needs, pointing into this
  /// engine. Drivers set the per-core fields (`effects`, `consumer_locks`)
  /// on top before constructing each core.
  MediationCore::Shared CoreSharedState();

  /// RunResult::method_name (the engine cannot know it: methods are built
  /// by the driver, per core). Call before Run().
  void SetMethodName(std::string name) { result_.method_name = std::move(name); }

  /// The SoA backing store of every provider agent (hot columns + the
  /// per-lane chunk arenas when SystemConfig::agent_pool is enabled). The
  /// sharded driver calls ConfigureArenas(M) from its constructor — before
  /// any core allocates pooled chunks — to home each lane's chunks on its
  /// own arena; the mono tier keeps the single default arena.
  AgentStore& agent_store() { return agent_store_; }
  const AgentStore& agent_store() const { return agent_store_; }

 private:
  void OnArrival(des::Simulator& sim, Driver& driver);
  void SampleMetrics(des::Simulator& sim, Driver& driver);
  void RunDepartureChecks(des::Simulator& sim, Driver& driver);
  /// Applies one churn event (original firing or deferred retry): counts
  /// applied joins, annuls a deferred join when its leave overtakes it, and
  /// re-schedules deferred joins every churn_retry_interval.
  void FireChurnEvent(des::Simulator& sim, Driver& driver,
                      const ProviderChurnEvent& event, bool barrier,
                      bool retry);
  double ArrivalRateAt(SimTime t) const;

  SystemConfig config_;
  Population population_;
  des::Simulator sim_;
  // The shared stream and its forks, in the fork order every tier
  // reproduces (11: query classes, 12: consumer picks, 13: arrivals at
  // Run) — the root of the M = 1 / mono bit-identity guarantee.
  Rng rng_;
  Rng query_class_rng_;
  Rng consumer_pick_rng_;

  /// Declared before the agent vectors: providers are views over the store
  /// and return their pooled chunks to its arenas on destruction, so the
  /// store must outlive them (members destroy in reverse declaration
  /// order).
  AgentStore agent_store_;
  std::vector<ProviderAgent> providers_;
  std::vector<ConsumerAgent> consumers_;
  /// Indices of still-active consumers (swap-removed on departure); active
  /// provider lists live in the drivers' cores.
  std::vector<std::uint32_t> active_consumers_;
  std::vector<std::uint32_t> initial_holdouts_;
  std::vector<bool> held_out_;
  /// The churn script in firing order (sorted copy of the config's events).
  std::vector<ProviderChurnEvent> churn_events_;
  /// The fault script in firing order (sorted copy of the config's events).
  std::vector<ShardFaultEvent> fault_events_;
  /// `join_waiting_[p]` — a scheduled join for p was deferred (its provider
  /// is still draining) and its retry event is live. A scheduled leave for
  /// p annuls the pending join instead of firing.
  std::vector<std::uint8_t> join_waiting_;

  ReputationRegistry reputation_;

  QueryId next_query_id_ = 0;
  WindowedMean response_window_;

  std::unique_ptr<obs::FlightRecorder> recorder_;

  // Consecutive failed assessments per consumer (hysteresis).
  std::vector<std::uint32_t> consumer_violations_;

  RunResult result_;
  bool ran_ = false;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_SCENARIO_ENGINE_H_
