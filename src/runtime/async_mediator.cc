#include "runtime/async_mediator.h"

#include <any>

#include "common/status.h"
#include "model/characterization.h"

namespace sqlb::runtime {
namespace {

msg::Message Make(NodeId from, NodeId to, MediationMessageKind kind,
                  std::uint64_t correlation, std::any payload) {
  msg::Message m;
  m.from = from;
  m.to = to;
  m.kind = static_cast<std::uint32_t>(kind);
  m.correlation = correlation;
  m.payload = std::move(payload);
  return m;
}

}  // namespace

// --------------------------- AsyncConsumerNode ------------------------------

AsyncConsumerNode::AsyncConsumerNode(ConsumerId id,
                                     const ConsumerAgentConfig& config,
                                     const Population* population,
                                     const ReputationRegistry* reputation)
    : agent_(id, config), population_(population), reputation_(reputation) {
  SQLB_CHECK(population != nullptr, "consumer node needs the population");
}

void AsyncConsumerNode::Submit(msg::Network& network, NodeId mediator,
                               const Query& query) {
  network.Send(Make(address_, mediator, MediationMessageKind::kSubmitQuery,
                    query.id, query));
}

void AsyncConsumerNode::OnMessage(msg::Network& network,
                                  const msg::Message& message) {
  switch (static_cast<MediationMessageKind>(message.kind)) {
    case MediationMessageKind::kConsumerIntentionReq: {
      const auto& req = std::any_cast<const ConsumerIntentionReq&>(
          message.payload);
      ConsumerIntentionRep rep;
      rep.query_id = req.query.id;
      rep.satisfaction = agent_.Satisfaction();
      rep.intentions.reserve(req.candidates.size());
      for (ProviderId p : req.candidates) {
        const double pref =
            population_->ConsumerPreference(agent_.id(), p);
        const double reputation =
            reputation_ != nullptr ? reputation_->Get(p) : 0.0;
        rep.intentions.push_back(agent_.ComputeIntention(pref, reputation));
      }
      network.Send(Make(address_, message.from,
                        MediationMessageKind::kConsumerIntentionRep,
                        message.correlation, std::move(rep)));
      break;
    }
    case MediationMessageKind::kAllocationNotice: {
      const auto& notice =
          std::any_cast<const AllocationNotice&>(message.payload);
      // Eq. 1 over P_q and Eq. 2 over the selection, from the consumer's
      // own echoed intentions.
      const double adequation = QueryAdequation(notice.consumer_intentions);
      std::vector<double> selected_ci;
      selected_ci.reserve(notice.selected.size());
      for (ProviderId chosen : notice.selected) {
        for (std::size_t i = 0; i < notice.candidates.size(); ++i) {
          if (notice.candidates[i] == chosen) {
            selected_ci.push_back(notice.consumer_intentions[i]);
            break;
          }
        }
      }
      // q.n is not echoed; the notice applies to this consumer's query, so
      // the selected count equals min(q.n, N) — use its size as n for the
      // per-query value, which matches Eq. 2 whenever n <= N.
      agent_.OnAllocated(
          adequation,
          QuerySatisfaction(selected_ci,
                            std::max<std::size_t>(1, selected_ci.size())));
      break;
    }
    case MediationMessageKind::kQueryResponse: {
      const auto& response =
          std::any_cast<const QueryResponse&>(message.payload);
      ++responses_;
      agent_.OnResult(network.sim().Now() - response.query.issue_time);
      break;
    }
    default:
      break;  // not addressed to consumers
  }
}

// --------------------------- AsyncProviderNode ------------------------------

AsyncProviderNode::AsyncProviderNode(const ProviderProfile& profile,
                                     const ProviderAgentConfig& config,
                                     const Population* population)
    : agent_(profile, config), population_(population) {
  SQLB_CHECK(population != nullptr, "provider node needs the population");
}

void AsyncProviderNode::OnMessage(msg::Network& network,
                                  const msg::Message& message) {
  switch (static_cast<MediationMessageKind>(message.kind)) {
    case MediationMessageKind::kProviderIntentionReq: {
      if (mute_) return;  // exercise the mediator's timeout path
      const auto& req =
          std::any_cast<const ProviderIntentionReq&>(message.payload);
      const double pref =
          population_->ProviderPreference(agent_.id(), req.query.id);
      ProviderIntentionRep rep;
      rep.query_id = req.query.id;
      rep.provider = agent_.id();
      rep.intention = agent_.ComputeIntention(pref, network.sim().Now());
      rep.satisfaction = agent_.SatisfactionOnIntentions();
      rep.utilization = agent_.Utilization(network.sim().Now());
      rep.capacity = agent_.capacity();
      rep.backlog_seconds = agent_.BacklogSeconds();
      rep.bid_price = agent_.ComputeBidPrice(pref);
      rep.estimated_delay = agent_.EstimateDelay(req.query.units);
      network.Send(Make(address_, message.from,
                        MediationMessageKind::kProviderIntentionRep,
                        message.correlation, std::move(rep)));
      break;
    }
    case MediationMessageKind::kMediationResult: {
      const auto& result =
          std::any_cast<const MediationResult&>(message.payload);
      const double pref =
          population_->ProviderPreference(agent_.id(), result.query_id);
      agent_.OnProposed(result.shown_intention, pref, result.selected);
      break;
    }
    case MediationMessageKind::kGrant: {
      const auto& query = std::any_cast<const Query&>(message.payload);
      agent_.Enqueue(
          network.sim(), query,
          [this, &network](const Query& q, ProviderId performer, SimTime) {
            if (consumer_addresses_ == nullptr) return;
            auto it = consumer_addresses_->find(q.consumer.index());
            if (it == consumer_addresses_->end()) return;
            network.Send(Make(address_, it->second,
                              MediationMessageKind::kQueryResponse, q.id,
                              QueryResponse{q, performer}));
          });
      break;
    }
    default:
      break;  // not addressed to providers
  }
}

// ------------------------------ AsyncMediator -------------------------------

AsyncMediator::AsyncMediator(AsyncMediatorConfig config,
                             AllocationMethod* method, Matchmaker* matchmaker)
    : config_(config), method_(method), matchmaker_(matchmaker) {
  SQLB_CHECK(method != nullptr, "mediator needs an allocation method");
  SQLB_CHECK(matchmaker != nullptr, "mediator needs a matchmaker");
  SQLB_CHECK(config.intention_timeout > 0.0,
             "intention timeout must be positive");
}

void AsyncMediator::RegisterProvider(ProviderId id, NodeId address) {
  provider_addresses_[id.index()] = address;
}

void AsyncMediator::RegisterConsumer(ConsumerId id, NodeId address) {
  consumer_addresses_[id.index()] = address;
}

void AsyncMediator::UnregisterProvider(ProviderId id) {
  provider_addresses_.erase(id.index());
  matchmaker_->Unregister(id);
}

void AsyncMediator::OnMessage(msg::Network& network,
                              const msg::Message& message) {
  switch (static_cast<MediationMessageKind>(message.kind)) {
    case MediationMessageKind::kSubmitQuery:
      StartMediation(network, message);
      break;
    case MediationMessageKind::kConsumerIntentionRep:
      OnConsumerReply(network, message);
      break;
    case MediationMessageKind::kProviderIntentionRep:
      OnProviderReply(network, message);
      break;
    default:
      break;
  }
}

void AsyncMediator::StartMediation(msg::Network& network,
                                   const msg::Message& message) {
  const auto& query = std::any_cast<const Query&>(message.payload);
  const std::uint64_t mediation_id = next_mediation_++;
  ++started_;

  PendingMediation pending;
  pending.query = query;
  pending.consumer_node = message.from;
  pending.candidates = matchmaker_->Match(query);
  if (pending.candidates.empty()) return;  // infeasible: no active provider

  const std::size_t n = pending.candidates.size();
  pending.consumer_intentions.assign(n, 0.0);
  pending.provider_replies.resize(n);
  pending.provider_answered.assign(n, false);
  pending.outstanding = n + 1;  // all providers + the consumer

  // Line 2: fork ask for q.c's intentions.
  ConsumerIntentionReq consumer_req;
  consumer_req.query = query;
  consumer_req.candidates = pending.candidates;
  network.Send(Make(address_, message.from,
                    MediationMessageKind::kConsumerIntentionReq, mediation_id,
                    std::move(consumer_req)));

  // Lines 3-4: fork ask each provider in P_q.
  for (ProviderId p : pending.candidates) {
    auto it = provider_addresses_.find(p.index());
    SQLB_CHECK(it != provider_addresses_.end(),
               "matchmaker returned an unregistered provider");
    network.Send(Make(address_, it->second,
                      MediationMessageKind::kProviderIntentionReq,
                      mediation_id, ProviderIntentionReq{query}));
  }

  // Line 5: waituntil ... or timeout.
  pending.timeout_event = network.sim().ScheduleAfter(
      config_.intention_timeout,
      [this, &network, mediation_id](des::Simulator&) {
        ++timeouts_;
        FinishMediation(network, mediation_id, /*timed_out=*/true);
      });

  pending_.emplace(mediation_id, std::move(pending));
}

void AsyncMediator::OnConsumerReply(msg::Network& network,
                                    const msg::Message& message) {
  auto it = pending_.find(message.correlation);
  if (it == pending_.end()) return;  // mediation already finished (timeout)
  PendingMediation& pending = it->second;
  if (pending.consumer_answered) return;

  const auto& rep =
      std::any_cast<const ConsumerIntentionRep&>(message.payload);
  SQLB_CHECK(rep.intentions.size() == pending.candidates.size(),
             "consumer reply misaligned with the candidate set");
  pending.consumer_intentions = rep.intentions;
  pending.consumer_satisfaction = rep.satisfaction;
  pending.consumer_answered = true;
  if (--pending.outstanding == 0) {
    FinishMediation(network, message.correlation, /*timed_out=*/false);
  }
}

void AsyncMediator::OnProviderReply(msg::Network& network,
                                    const msg::Message& message) {
  auto it = pending_.find(message.correlation);
  if (it == pending_.end()) return;
  PendingMediation& pending = it->second;

  const auto& rep =
      std::any_cast<const ProviderIntentionRep&>(message.payload);
  for (std::size_t i = 0; i < pending.candidates.size(); ++i) {
    if (pending.candidates[i] == rep.provider) {
      if (pending.provider_answered[i]) return;
      pending.provider_answered[i] = true;
      pending.provider_replies[i] = rep;
      if (--pending.outstanding == 0) {
        FinishMediation(network, message.correlation, /*timed_out=*/false);
      }
      return;
    }
  }
}

void AsyncMediator::FinishMediation(msg::Network& network,
                                    std::uint64_t mediation_id,
                                    bool timed_out) {
  auto it = pending_.find(mediation_id);
  if (it == pending_.end()) return;
  PendingMediation pending = std::move(it->second);
  pending_.erase(it);
  if (!timed_out) network.sim().Cancel(pending.timeout_event);

  // Lines 6-8: score and rank with whatever arrived; missing intentions
  // stay at the neutral 0 defaults.
  AllocationRequest request;
  request.query = &pending.query;
  request.consumer_satisfaction = pending.consumer_satisfaction;
  request.candidates.reserve(pending.candidates.size());
  for (std::size_t i = 0; i < pending.candidates.size(); ++i) {
    CandidateProvider candidate;
    candidate.id = pending.candidates[i];
    candidate.consumer_intention = pending.consumer_intentions[i];
    if (pending.provider_answered[i]) {
      const ProviderIntentionRep& rep = pending.provider_replies[i];
      candidate.provider_intention = rep.intention;
      candidate.provider_satisfaction = rep.satisfaction;
      candidate.utilization = rep.utilization;
      candidate.capacity = rep.capacity;
      candidate.backlog_seconds = rep.backlog_seconds;
      candidate.bid_price = rep.bid_price;
      candidate.estimated_delay = rep.estimated_delay;
    }
    request.candidates.push_back(candidate);
  }

  const AllocationDecision decision = method_->Allocate(request);
  ++completed_;

  // Lines 9-10: grant the selected providers, inform every provider of the
  // mediation result, notify the consumer.
  std::vector<bool> selected_mask(pending.candidates.size(), false);
  AllocationNotice notice;
  notice.query_id = pending.query.id;
  notice.candidates = pending.candidates;
  notice.consumer_intentions = pending.consumer_intentions;
  for (std::size_t idx : decision.selected) {
    selected_mask[idx] = true;
    notice.selected.push_back(pending.candidates[idx]);
  }

  for (std::size_t i = 0; i < pending.candidates.size(); ++i) {
    auto address = provider_addresses_.find(pending.candidates[i].index());
    if (address == provider_addresses_.end()) continue;
    MediationResult result;
    result.query_id = pending.query.id;
    result.selected = selected_mask[i];
    result.shown_intention = request.candidates[i].provider_intention;
    network.Send(Make(address_, address->second,
                      MediationMessageKind::kMediationResult, mediation_id,
                      result));
    if (selected_mask[i]) {
      network.Send(Make(address_, address->second,
                        MediationMessageKind::kGrant, mediation_id,
                        pending.query));
    }
  }

  network.Send(Make(address_, pending.consumer_node,
                    MediationMessageKind::kAllocationNotice, mediation_id,
                    std::move(notice)));
}

}  // namespace sqlb::runtime
