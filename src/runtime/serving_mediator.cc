#include "runtime/serving_mediator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/status.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace sqlb::runtime {

namespace {

/// Bursts that never reach ApplyDecision (empty candidate set, saturation
/// bounce) still need decision records — appended at the call site, by the
/// recorder and the replayer alike, so the two logs stay comparable.
void AppendCallSiteRecords(const std::vector<Query>& burst,
                           const std::vector<MediationCore::Outcome>& outcomes,
                           DecisionLog* log) {
  if (log == nullptr) return;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (outcomes[i] != MediationCore::Outcome::kNoCandidates &&
        outcomes[i] != MediationCore::Outcome::kSaturated) {
      continue;  // ApplyDecision already recorded it in-core
    }
    DecisionLog::Record record;
    record.query = burst[i].id;
    record.outcome = outcomes[i];
    log->Append(std::move(record));
  }
}

/// Shard membership of the serving partition: provider p -> shard
/// p % shards, initial holdouts excluded. The replayer must build the
/// identical partition, so both go through here.
std::vector<std::vector<std::uint32_t>> PartitionProviders(
    const ScenarioEngine& engine, std::size_t shards) {
  std::vector<std::vector<std::uint32_t>> members(shards);
  const std::vector<ProviderAgent>& providers = engine.providers();
  for (std::uint32_t p = 0; p < providers.size(); ++p) {
    if (engine.held_out()[p]) continue;
    members[p % shards].push_back(p);
  }
  return members;
}

}  // namespace

void ServingProducer::AwaitMediated(std::uint64_t n) const {
  while (mediated() < n) {
    std::this_thread::yield();
  }
}

ServingMediator::ServingMediator(const SystemConfig& config,
                                 const ServingConfig& serving,
                                 MethodFactory factory)
    : config_(config),
      serving_(serving),
      engine_(config),
      pages_(mem::PagePool::kDefaultPageBytes, 0),
      slab_(&pages_, des::MpscQueue<Intake>::ChunkBytes()) {
  SQLB_CHECK(serving_.shards >= 1, "serving needs at least one shard");
  SQLB_CHECK(serving_.time_scale > 0.0, "time_scale must be positive");
  SQLB_CHECK(serving_.max_burst >= 1, "max_burst must be >= 1");
  const DepartureConfig& dep = config_.departures;
  SQLB_CHECK(!dep.consumers_may_leave && !dep.provider_dissatisfaction &&
                 !dep.provider_starvation && !dep.provider_overutilization,
             "serving mode has no departure-check clock; disable departures");
  SQLB_CHECK(config_.provider_churn.events.empty(),
             "serving mode does not script churn");
  SQLB_CHECK(config_.shard_faults.empty(),
             "serving mode does not script shard faults");

  // Cores capture per-lane recorder pointers, so the recorder must be
  // shaped for `shards` lanes before any core exists.
  engine_.ConfigureObservability(serving_.shards);

  std::vector<std::vector<std::uint32_t>> members =
      PartitionProviders(engine_, serving_.shards);
  obs::FlightRecorder& recorder = engine_.recorder();
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    methods_.push_back(factory(s));
    SQLB_CHECK(methods_.back() != nullptr, "method factory returned null");
    MediationCore::Shared shared = engine_.CoreSharedState();
    shared.trace = recorder.trace_lane(s);
    shared.metrics = recorder.hot_metrics(s);
    if (serving_.record_trace) {
      shared.decisions = &trace_.decisions;
    }
    cores_.push_back(std::make_unique<MediationCore>(
        shared, methods_.back().get(), std::move(members[s])));
  }
  engine_.SetMethodName(methods_[0]->name());

  // One bounded intake queue per shard. chunks * kNodesPerChunk - 1 live
  // payloads fit (the stub node holds no payload), so size the chunk cap
  // to cover max_queued_per_shard.
  const std::size_t nodes_needed = serving_.max_queued_per_shard + 1;
  const std::size_t max_chunks = std::max<std::size_t>(
      1, (nodes_needed + des::MpscQueue<Intake>::kNodesPerChunk - 1) /
             des::MpscQueue<Intake>::kNodesPerChunk);
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    auto state = std::make_unique<ShardState>(serving_.adaptive_batch);
    state->queue =
        std::make_unique<des::MpscQueue<Intake>>(&slab_, max_chunks);
    shards_.push_back(std::move(state));
  }

  // Observability handles, hoisted once (single writer: mediator thread).
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    flush_counters_.push_back(
        &recorder.registry(s).GetCounter(obs::kMetricBatchFlushes));
    batched_query_counters_.push_back(
        &recorder.registry(s).GetCounter(obs::kMetricBatchedQueries));
    obs::MetricsRegistry* hot = recorder.hot_metrics(s);
    batch_wait_hists_.push_back(
        hot != nullptr ? &hot->GetHistogram(obs::kMetricBatchWait) : nullptr);
  }
  coord_trace_ = recorder.trace_lane(recorder.coordinator_lane());
}

ServingMediator::~ServingMediator() {
  if (started_ && !stopped_) {
    Stop();
  }
}

ServingProducer* ServingMediator::RegisterProducer() {
  SQLB_CHECK(!started_, "register producers before Start");
  auto producer = std::make_unique<ServingProducer>();
  producer->index_ = static_cast<std::uint32_t>(producers_.size());
  producers_.push_back(std::move(producer));
  return producers_.back().get();
}

void ServingMediator::Start() {
  SQLB_CHECK(!started_, "Start may only be called once");
  started_ = true;
  t0_ = Clock::now();
  thread_ = std::thread([this] { MediatorLoop(); });
}

bool ServingMediator::Submit(ServingProducer* producer,
                             std::uint32_t consumer_index,
                             std::uint32_t class_index) {
  SQLB_CHECK(consumer_index < engine_.population().num_consumers(),
             "consumer index out of range");
  SQLB_CHECK(class_index < engine_.population().num_query_classes(),
             "query class out of range");
  Intake item;
  item.consumer = consumer_index;
  item.class_index = class_index;
  item.producer = producer->index_;
  item.enqueue_wall = Clock::now();
  const std::uint32_t shard = consumer_index % shards_.size();
  if (!shards_[shard]->queue->Push(item)) {
    producer->shed_.fetch_add(1, std::memory_order_release);
    return false;
  }
  producer->submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

void ServingMediator::Drain() {
  for (;;) {
    std::uint64_t submitted = 0;
    for (const auto& producer : producers_) {
      submitted += producer->submitted();
    }
    if (served_.load(std::memory_order_acquire) >= submitted) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

SimTime ServingMediator::SimNowFromWall(Clock::time_point t) const {
  const double elapsed = std::chrono::duration<double>(t - t0_).count();
  return std::max(0.0, elapsed) * serving_.time_scale;
}

void ServingMediator::MediatorLoop() {
  auto next_housekeeping =
      t0_ + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(serving_.housekeeping_interval));
  while (!stop_.load(std::memory_order_acquire)) {
    const Clock::time_point wall = Clock::now();
    const SimTime now = SimNowFromWall(wall);
    // Fire every due DES event (provider service, completion accounting):
    // the wall clock passing a completion's sim time is what "completes" it.
    engine_.sim().RunUntil(now);
    const std::size_t drained = DrainIntake(now);
    const std::size_t flushed = FlushDue(now, /*force=*/false);
    if (wall >= next_housekeeping) {
      Housekeep();
      next_housekeeping += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(serving_.housekeeping_interval));
    }
    if (drained == 0 && flushed == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(serving_.idle_sleep_us));
    }
  }
}

std::size_t ServingMediator::DrainIntake(SimTime now) {
  std::size_t drained = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    ShardState& state = *shards_[s];
    Intake item;
    // Stop at max_burst: a full buffer flushes before more intake drains,
    // which pushes overload back onto the bounded queue.
    while (state.buffer.size() < serving_.max_burst &&
           state.queue->TryPop(&item)) {
      SimTime arrival = std::min(SimNowFromWall(item.enqueue_wall), now);
      arrival = std::max(arrival, state.last_arrival);
      state.last_arrival = arrival;
      if (serving_.adaptive_batch.enabled) {
        state.controller.OnArrival(arrival);
      }
      Query query;
      query.id = next_query_id_++;
      query.consumer = ConsumerId(item.consumer);
      query.n = config_.query_n;
      query.units = engine_.population().QueryUnits(item.class_index);
      query.class_index = item.class_index;
      query.issue_time = arrival;
      if (state.buffer.empty()) {
        state.earliest_arrival = arrival;
      }
      state.buffer.push_back(query);
      state.meta.emplace_back(item.enqueue_wall, item.producer);
      ++drained;
    }
  }
  return drained;
}

double ServingMediator::WindowFor(const ShardState& state) const {
  return serving_.adaptive_batch.enabled ? state.controller.Window()
                                         : serving_.batch_window;
}

std::size_t ServingMediator::FlushDue(SimTime now, bool force) {
  std::size_t flushed = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const ShardState& state = *shards_[s];
    if (state.buffer.empty()) continue;
    if (force || state.buffer.size() >= serving_.max_burst ||
        now >= state.earliest_arrival + WindowFor(state)) {
      FlushShard(s, now);
      ++flushed;
    }
  }
  return flushed;
}

void ServingMediator::FlushShard(std::uint32_t shard, SimTime now) {
  ShardState& state = *shards_[shard];
  const Clock::time_point flush_wall = Clock::now();

  // Every query in the burst is issued now, and recorded as an intake
  // trace exactly like the DES pump's arrivals (coordinator lane).
  for (const Query& query : state.buffer) {
    ++engine_.result().queries_issued;
    if (coord_trace_ != nullptr && coord_trace_->SamplesQuery(query.id)) {
      coord_trace_->RecordInstant(obs::SpanKind::kIntake, query.issue_time,
                                  query.id,
                                  static_cast<double>(query.consumer.index()));
    }
  }
  if (serving_.record_trace) {
    ServingBurst burst;
    burst.shard = shard;
    burst.flush_time = now;
    burst.first = trace_.queries.size();
    burst.count = state.buffer.size();
    trace_.bursts.push_back(burst);
    trace_.queries.insert(trace_.queries.end(), state.buffer.begin(),
                          state.buffer.end());
  }

  cores_[shard]->AllocateBatch(engine_.sim(), state.buffer, 0.0,
                               &state.outcomes);
  AppendCallSiteRecords(state.buffer, state.outcomes,
                        serving_.record_trace ? &trace_.decisions : nullptr);

  obs::TraceLane* lane = engine_.recorder().trace_lane(shard);
  for (std::size_t i = 0; i < state.buffer.size(); ++i) {
    const Query& query = state.buffer[i];
    if (state.outcomes[i] != MediationCore::Outcome::kAllocated) {
      ++engine_.result().queries_infeasible;
      if (lane != nullptr && lane->SamplesQuery(query.id)) {
        lane->RecordInstant(obs::SpanKind::kReject, now, query.id,
                            static_cast<double>(state.outcomes[i]));
      }
    }
    if (batch_wait_hists_[shard] != nullptr) {
      batch_wait_hists_[shard]->Record(now - query.issue_time);
    }
    // Per-producer wall latency + the closed-loop mediated ack.
    ServingProducer& producer = *producers_[state.meta[i].second];
    producer.intake_wall_.Record(
        std::chrono::duration<double>(flush_wall - state.meta[i].first)
            .count());
    producer.mediated_.fetch_add(1, std::memory_order_release);
  }
  flush_counters_[shard]->Inc();
  batched_query_counters_[shard]->Inc(state.buffer.size());
  ++bursts_flushed_;
  served_.fetch_add(state.buffer.size(), std::memory_order_release);

  state.buffer.clear();
  state.meta.clear();
  state.outcomes.clear();
  state.earliest_arrival = kSimTimeInfinity;
}

void ServingMediator::Housekeep() {
  obs::FlightRecorder& recorder = engine_.recorder();
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    ShardState& state = *shards_[s];
    state.controller.OnBacklogSample(cores_[s]->MeanBacklogSeconds());
    recorder.registry(s)
        .GetGauge(std::string(obs::kMetricBatchWindowPrefix) +
                  std::to_string(s))
        .Set(WindowFor(state));
  }
}

ServingReport ServingMediator::Stop() {
  SQLB_CHECK(started_ && !stopped_, "Stop requires a started, unstopped run");
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  thread_.join();

  // Final pass on the calling thread (the mediator thread is gone): catch
  // the clock up, drain whatever is still queued — repeatedly, since one
  // drain pass stops at max_burst per shard — and flush it all.
  const Clock::time_point end_wall = Clock::now();
  wall_seconds_ = std::chrono::duration<double>(end_wall - t0_).count();
  const SimTime end_sim = SimNowFromWall(end_wall);
  engine_.sim().RunUntil(end_sim);
  while (DrainIntake(end_sim) > 0 || FlushDue(end_sim, /*force=*/true) > 0) {
  }
  // Complete all in-flight provider service.
  engine_.sim().RunAll();

  ServingReport report;
  report.served = served_.load(std::memory_order_acquire);
  for (const auto& producer : producers_) {
    report.submitted += producer->submitted();
    report.shed += producer->shed();
    report.intake_wall.Merge(producer->intake_wall_);
  }
  report.bursts = bursts_flushed_;
  report.wall_seconds = wall_seconds_;

  // Finalization mirrors ScenarioEngine::Run: remaining counts, sealed
  // spans, registries folded in fixed lane order. The per-producer
  // histograms fold into the coordinator registry first so the merged
  // snapshot carries the serving latency under one canonical name.
  obs::FlightRecorder& recorder = engine_.recorder();
  recorder.registry(recorder.coordinator_lane())
      .GetHistogram(obs::kMetricServingIntakeWall)
      .Merge(report.intake_wall);
  std::size_t active = 0;
  for (const auto& core : cores_) {
    active += core->active_provider_count();
  }
  RunResult& result = engine_.result();
  result.duration = end_sim;
  result.remaining_providers = active;
  result.remaining_consumers = engine_.active_consumers().size();
  result.trace_spans = recorder.FinishSpans();
  result.trace_spans_dropped = recorder.DroppedSpans();
  result.metrics = recorder.MergedMetrics();
  report.run = std::move(result);
  return report;
}

ServingReplayResult ReplayServingTrace(
    const SystemConfig& config, std::size_t shards,
    const ServingMediator::MethodFactory& factory, const ServingTrace& trace) {
  SQLB_CHECK(shards >= 1, "replay needs at least one shard");
  ServingReplayResult replay;

  ScenarioEngine engine(config);
  engine.ConfigureObservability(shards);
  std::vector<std::vector<std::uint32_t>> members =
      PartitionProviders(engine, shards);
  obs::FlightRecorder& recorder = engine.recorder();
  std::vector<std::unique_ptr<AllocationMethod>> methods;
  std::vector<std::unique_ptr<MediationCore>> cores;
  for (std::uint32_t s = 0; s < shards; ++s) {
    methods.push_back(factory(s));
    SQLB_CHECK(methods.back() != nullptr, "method factory returned null");
    MediationCore::Shared shared = engine.CoreSharedState();
    shared.trace = recorder.trace_lane(s);
    shared.metrics = recorder.hot_metrics(s);
    shared.decisions = &replay.decisions;
    cores.push_back(std::make_unique<MediationCore>(
        shared, methods.back().get(), std::move(members[s])));
  }
  engine.SetMethodName(methods[0]->name());

  obs::TraceLane* coord_trace =
      recorder.trace_lane(recorder.coordinator_lane());
  std::vector<Query> burst;
  std::vector<MediationCore::Outcome> outcomes;
  SimTime last_flush = 0.0;
  for (const ServingBurst& recorded : trace.bursts) {
    SQLB_CHECK(recorded.first + recorded.count <= trace.queries.size(),
               "burst range out of trace bounds");
    // Advance the DES to the recorded flush time: the completions that
    // fired before this burst in the serving run fire here too, in the
    // same (time, id) order, so provider state matches exactly.
    engine.sim().RunUntil(recorded.flush_time);
    last_flush = recorded.flush_time;
    burst.assign(trace.queries.begin() + recorded.first,
                 trace.queries.begin() + recorded.first + recorded.count);
    for (const Query& query : burst) {
      ++engine.result().queries_issued;
      if (coord_trace != nullptr && coord_trace->SamplesQuery(query.id)) {
        coord_trace->RecordInstant(
            obs::SpanKind::kIntake, query.issue_time, query.id,
            static_cast<double>(query.consumer.index()));
      }
    }
    cores[recorded.shard]->AllocateBatch(engine.sim(), burst, 0.0, &outcomes);
    AppendCallSiteRecords(burst, outcomes, &replay.decisions);
    obs::TraceLane* lane = recorder.trace_lane(recorded.shard);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      if (outcomes[i] != MediationCore::Outcome::kAllocated) {
        ++engine.result().queries_infeasible;
        if (lane != nullptr && lane->SamplesQuery(burst[i].id)) {
          lane->RecordInstant(obs::SpanKind::kReject, recorded.flush_time,
                              burst[i].id,
                              static_cast<double>(outcomes[i]));
        }
      }
    }
  }
  engine.sim().RunAll();

  std::size_t active = 0;
  for (const auto& core : cores) {
    active += core->active_provider_count();
  }
  RunResult& result = engine.result();
  result.duration = last_flush;
  result.remaining_providers = active;
  result.remaining_consumers = engine.active_consumers().size();
  result.trace_spans = recorder.FinishSpans();
  result.trace_spans_dropped = recorder.DroppedSpans();
  result.metrics = recorder.MergedMetrics();
  replay.run = std::move(result);
  return replay;
}

}  // namespace sqlb::runtime
