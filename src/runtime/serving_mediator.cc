#include "runtime/serving_mediator.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "common/status.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace sqlb::runtime {

namespace {

/// Bursts that never reach ApplyDecision (empty candidate set, saturation
/// bounce) still need decision records — appended at the call site, by the
/// recorder and the replayer alike, so the two logs stay comparable.
void AppendCallSiteRecords(const std::vector<Query>& burst,
                           const std::vector<MediationCore::Outcome>& outcomes,
                           DecisionLog* log) {
  if (log == nullptr) return;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (outcomes[i] != MediationCore::Outcome::kNoCandidates &&
        outcomes[i] != MediationCore::Outcome::kSaturated) {
      continue;  // ApplyDecision already recorded it in-core
    }
    DecisionLog::Record record;
    record.query = burst[i].id;
    record.outcome = outcomes[i];
    log->Append(std::move(record));
  }
}

/// Shard membership of the serving partition: provider p -> shard
/// p % shards, initial holdouts excluded. The replayer must build the
/// identical partition, so both go through here.
std::vector<std::vector<std::uint32_t>> PartitionProviders(
    const ScenarioEngine& engine, std::size_t shards) {
  std::vector<std::vector<std::uint32_t>> members(shards);
  const std::vector<ProviderAgent>& providers = engine.providers();
  for (std::uint32_t p = 0; p < providers.size(); ++p) {
    if (engine.held_out()[p]) continue;
    members[p % shards].push_back(p);
  }
  return members;
}

/// Holds in_submit_ non-zero for the duration of one Submit/SubmitMany
/// call, so Stop() can wait out every in-flight producer after closing the
/// intake. seq_cst on the increment pairs with Stop's seq_cst accepting_
/// store: a producer either sees the intake closed, or Stop sees its
/// increment and waits.
class IntakeGuard {
 public:
  explicit IntakeGuard(std::atomic<std::uint64_t>& counter)
      : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_seq_cst);
  }
  ~IntakeGuard() { counter_.fetch_sub(1, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t>& counter_;
};

}  // namespace

void ServingProducer::AwaitMediated(std::uint64_t n) const {
  while (mediated() < n) {
    std::this_thread::yield();
  }
}

ServingMediator::ServingMediator(const SystemConfig& config,
                                 const ServingConfig& serving,
                                 MethodFactory factory)
    : config_(config),
      serving_(serving),
      engine_(config),
      pages_(mem::PagePool::kDefaultPageBytes, 0),
      slab_(&pages_, des::MpscQueue<Intake>::ChunkBytes()) {
  SQLB_CHECK(serving_.shards >= 1, "serving needs at least one shard");
  SQLB_CHECK(serving_.mediator_threads >= 1,
             "serving needs at least one mediator thread");
  SQLB_CHECK(serving_.shards % serving_.mediator_threads == 0,
             "mediator_threads must divide shards evenly (each group owns "
             "shards/mediator_threads contiguous shards)");
  SQLB_CHECK(serving_.time_scale > 0.0, "time_scale must be positive");
  SQLB_CHECK(serving_.max_burst >= 1, "max_burst must be >= 1");
  const DepartureConfig& dep = config_.departures;
  SQLB_CHECK(!dep.consumers_may_leave && !dep.provider_dissatisfaction &&
                 !dep.provider_starvation && !dep.provider_overutilization,
             "serving mode has no departure-check clock; disable departures");
  SQLB_CHECK(config_.provider_churn.events.empty(),
             "serving mode does not script churn");
  SQLB_CHECK(config_.shard_faults.empty(),
             "serving mode does not script shard faults");

  // Cores capture per-lane recorder pointers, so the recorder must be
  // shaped for `shards` lanes before any core exists. Likewise the agent
  // arenas: each shard's providers are homed on that shard's arena, so two
  // group threads never carve chunks from one pool concurrently.
  engine_.ConfigureObservability(serving_.shards);
  engine_.agent_store().ConfigureArenas(serving_.shards);

  shards_per_group_ = serving_.shards / serving_.mediator_threads;
  for (std::uint32_t g = 0; g < serving_.mediator_threads; ++g) {
    auto group = std::make_unique<GroupState>();
    group->index = g;
    group->first_shard = static_cast<std::uint32_t>(g * shards_per_group_);
    group->shard_count = static_cast<std::uint32_t>(shards_per_group_);
    groups_.push_back(std::move(group));
  }

  std::vector<std::vector<std::uint32_t>> members =
      PartitionProviders(engine_, serving_.shards);
  obs::FlightRecorder& recorder = engine_.recorder();
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    GroupState& group = GroupOfShard(s);
    methods_.push_back(factory(s));
    SQLB_CHECK(methods_.back() != nullptr, "method factory returned null");
    MediationCore::Shared shared = engine_.CoreSharedState();
    shared.trace = recorder.trace_lane(s);
    shared.metrics = recorder.hot_metrics(s);
    // Completion accounting sinks straight into the owning group's result
    // and window — group-private, folded in group order at Stop.
    shared.result = &group.result;
    shared.response_window = &group.response_window;
    shared.arena = engine_.agent_store().arena(s);
    if (serving_.record_trace) {
      shared.decisions = &group.trace.decisions;
    }
    cores_.push_back(std::make_unique<MediationCore>(
        shared, methods_.back().get(), std::move(members[s])));
  }
  engine_.SetMethodName(methods_[0]->name());

  // One bounded intake queue per shard. chunks * kNodesPerChunk - 1 live
  // payloads fit (the stub node holds no payload), so size the chunk cap
  // to cover max_queued_per_shard.
  const std::size_t nodes_needed = serving_.max_queued_per_shard + 1;
  const std::size_t max_chunks = std::max<std::size_t>(
      1, (nodes_needed + des::MpscQueue<Intake>::kNodesPerChunk - 1) /
             des::MpscQueue<Intake>::kNodesPerChunk);
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    auto state = std::make_unique<ShardState>(serving_.adaptive_batch);
    state->queue =
        std::make_unique<des::MpscQueue<Intake>>(&slab_, max_chunks);
    shards_.push_back(std::move(state));
  }

  // Observability handles, hoisted once (single writer: the owning group's
  // thread, per shard).
  for (std::uint32_t s = 0; s < serving_.shards; ++s) {
    flush_counters_.push_back(
        &recorder.registry(s).GetCounter(obs::kMetricBatchFlushes));
    batched_query_counters_.push_back(
        &recorder.registry(s).GetCounter(obs::kMetricBatchedQueries));
    obs::MetricsRegistry* hot = recorder.hot_metrics(s);
    batch_wait_hists_.push_back(
        hot != nullptr ? &hot->GetHistogram(obs::kMetricBatchWait) : nullptr);
    shard_trace_.push_back(recorder.trace_lane(s));
  }
}

ServingMediator::~ServingMediator() {
  if (started_ && !stopped_) {
    Stop();
  }
}

ServingProducer* ServingMediator::RegisterProducer() {
  SQLB_CHECK(!started_, "register producers before Start");
  auto producer = std::make_unique<ServingProducer>();
  producer->index_ = static_cast<std::uint32_t>(producers_.size());
  producer->group_wall_.resize(groups_.size());
  producers_.push_back(std::move(producer));
  return producers_.back().get();
}

void ServingMediator::Start() {
  SQLB_CHECK(!started_, "Start may only be called once");
  started_ = true;
  t0_ = Clock::now();
  for (auto& group : groups_) {
    GroupState* g = group.get();
    g->thread = std::thread([this, g] { MediatorLoop(*g); });
  }
}

bool ServingMediator::Submit(ServingProducer* producer,
                             std::uint32_t consumer_index,
                             std::uint32_t class_index) {
  SQLB_CHECK(consumer_index < engine_.population().num_consumers(),
             "consumer index out of range");
  SQLB_CHECK(class_index < engine_.population().num_query_classes(),
             "query class out of range");
  const IntakeGuard guard(in_submit_);
  if (!accepting_.load(std::memory_order_seq_cst)) {
    producer->shed_.fetch_add(1, std::memory_order_release);
    return false;
  }
  const std::uint32_t shard =
      consumer_index % static_cast<std::uint32_t>(shards_.size());
  ShardState& state = *shards_[shard];
  // Exact admission: reserve a slot against max_queued_per_shard before
  // touching the queue, give it back on refusal. The queue's own chunk cap
  // is sized to always cover a successful reservation.
  const std::int64_t prev =
      state.queued.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= static_cast<std::int64_t>(serving_.max_queued_per_shard)) {
    state.queued.fetch_sub(1, std::memory_order_relaxed);
    producer->shed_.fetch_add(1, std::memory_order_release);
    return false;
  }
  Intake item;
  item.consumer = consumer_index;
  item.class_index = class_index;
  item.producer = producer->index_;
  item.enqueue_wall = Clock::now();
  if (!state.queue->Push(item)) {
    state.queued.fetch_sub(1, std::memory_order_relaxed);
    producer->shed_.fetch_add(1, std::memory_order_release);
    return false;
  }
  producer->submitted_.fetch_add(1, std::memory_order_release);
  WakeIfParked(GroupOfShard(shard));
  return true;
}

std::size_t ServingMediator::SubmitRun(ServingProducer* producer,
                                       std::uint32_t shard,
                                       const ServingRequest* requests,
                                       std::size_t count) {
  ShardState& state = *shards_[shard];
  const std::int64_t prev = state.queued.fetch_add(
      static_cast<std::int64_t>(count), std::memory_order_acq_rel);
  const std::int64_t room =
      static_cast<std::int64_t>(serving_.max_queued_per_shard) - prev;
  std::size_t take = 0;
  if (room > 0) {
    take = std::min<std::size_t>(count, static_cast<std::size_t>(room));
  }
  if (take < count) {
    state.queued.fetch_sub(static_cast<std::int64_t>(count - take),
                           std::memory_order_relaxed);
  }
  if (take == 0) return 0;

  // One clock read per run: every request in the run shares the enqueue
  // timestamp (part of the amortization; the drain clamps arrivals
  // monotonically anyway).
  Intake chunk[kSubmitRunCap];
  const Clock::time_point enqueue_wall = Clock::now();
  for (std::size_t i = 0; i < take; ++i) {
    chunk[i].consumer = requests[i].consumer;
    chunk[i].class_index = requests[i].class_index;
    chunk[i].producer = producer->index_;
    chunk[i].enqueue_wall = enqueue_wall;
  }
  const std::size_t pushed = state.queue->PushMany(chunk, take);
  if (pushed < take) {
    state.queued.fetch_sub(static_cast<std::int64_t>(take - pushed),
                           std::memory_order_relaxed);
  }
  if (pushed > 0) {
    producer->submitted_.fetch_add(pushed, std::memory_order_release);
    WakeIfParked(GroupOfShard(shard));
  }
  return pushed;
}

std::size_t ServingMediator::SubmitMany(ServingProducer* producer,
                                        const ServingRequest* requests,
                                        std::size_t count) {
  if (count == 0) return 0;
  const IntakeGuard guard(in_submit_);
  if (!accepting_.load(std::memory_order_seq_cst)) {
    producer->shed_.fetch_add(count, std::memory_order_release);
    return 0;
  }
  const std::uint32_t num_shards = static_cast<std::uint32_t>(shards_.size());
  std::size_t accepted = 0;
  while (accepted < count) {
    const std::uint32_t shard = requests[accepted].consumer % num_shards;
    SQLB_CHECK(requests[accepted].consumer <
                   engine_.population().num_consumers(),
               "consumer index out of range");
    SQLB_CHECK(requests[accepted].class_index <
                   engine_.population().num_query_classes(),
               "query class out of range");
    // Longest same-shard run from here, capped at the stack chunk.
    std::size_t run = 1;
    while (run < kSubmitRunCap && accepted + run < count &&
           requests[accepted + run].consumer % num_shards == shard) {
      ++run;
    }
    const std::size_t got =
        SubmitRun(producer, shard, requests + accepted, run);
    accepted += got;
    if (got < run) break;  // backpressure: shed the rest, keep the prefix
  }
  if (accepted < count) {
    producer->shed_.fetch_add(count - accepted, std::memory_order_release);
  }
  return accepted;
}

void ServingMediator::Drain() {
  for (;;) {
    std::uint64_t submitted = 0;
    for (const auto& producer : producers_) {
      submitted += producer->submitted();
    }
    if (served_.load(std::memory_order_acquire) >= submitted) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

SimTime ServingMediator::SimNowFromWall(Clock::time_point t) const {
  const double elapsed = std::chrono::duration<double>(t - t0_).count();
  return std::max(0.0, elapsed) * serving_.time_scale;
}

bool ServingMediator::GroupQueuesEmpty(const GroupState& group) const {
  for (std::uint32_t s = group.first_shard;
       s < group.first_shard + group.shard_count; ++s) {
    if (!shards_[s]->queue->Empty()) return false;
  }
  return true;
}

void ServingMediator::WakeIfParked(GroupState& group) {
  // Pairs with the parking side's parked-store -> fence -> queue-check:
  // the seq_cst total order puts either our push before its check (it sees
  // the work) or its parked-store before our load (we see the flag and
  // notify). Notifying under the mutex closes the window between the
  // group's predicate re-check and its wait.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (group.parked.load(std::memory_order_relaxed) != 0) {
    std::lock_guard<std::mutex> lk(group.park_mu);
    group.park_cv.notify_one();
  }
}

void ServingMediator::Park(GroupState& group,
                           Clock::time_point next_housekeeping) {
  // The park deadline is the earliest wall time at which this group has
  // work regardless of producers: the housekeeping tick, the group DES's
  // next completion, or a buffered batch whose window expires.
  Clock::time_point deadline = next_housekeeping;
  const auto wall_from_sim = [this](SimTime t) {
    return t0_ + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(t / serving_.time_scale));
  };
  const SimTime next_event = group.sim.NextEventTime();
  if (next_event < kSimTimeInfinity) {
    deadline = std::min(deadline, wall_from_sim(next_event));
  }
  for (std::uint32_t s = group.first_shard;
       s < group.first_shard + group.shard_count; ++s) {
    const ShardState& state = *shards_[s];
    if (!state.buffer.empty()) {
      deadline = std::min(
          deadline, wall_from_sim(state.earliest_arrival + WindowFor(state)));
    }
  }
  if (deadline <= Clock::now()) return;

  group.parked.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!GroupQueuesEmpty(group) || stop_.load(std::memory_order_acquire)) {
    group.parked.store(0, std::memory_order_relaxed);
    return;
  }
  ++group.idle_parks;
  std::unique_lock<std::mutex> lk(group.park_mu);
  while (!stop_.load(std::memory_order_acquire) && GroupQueuesEmpty(group) &&
         Clock::now() < deadline) {
    if (group.park_cv.wait_until(lk, deadline) == std::cv_status::no_timeout &&
        !stop_.load(std::memory_order_acquire) && GroupQueuesEmpty(group)) {
      // Notified, but the queues are already empty again (a submit that
      // raced our own pre-park drain, or a stale notification).
      ++group.spurious_wakes;
    }
  }
  group.parked.store(0, std::memory_order_relaxed);
}

void ServingMediator::MediatorLoop(GroupState& group) {
  auto next_housekeeping =
      t0_ + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(serving_.housekeeping_interval));
  std::size_t idle_passes = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const Clock::time_point wall = Clock::now();
    const SimTime now = SimNowFromWall(wall);
    // Fire every due DES event (provider service, completion accounting):
    // the wall clock passing a completion's sim time is what "completes" it.
    group.sim.RunUntil(now);
    const std::size_t drained = DrainIntake(group, now);
    const std::size_t flushed = FlushDue(group, now, /*force=*/false);
    if (wall >= next_housekeeping) {
      Housekeep(group);
      next_housekeeping += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(serving_.housekeeping_interval));
    }
    if (drained > 0 || flushed > 0) {
      idle_passes = 0;
      continue;
    }
    // Idle ladder: spin flat-out, then spin with yields, then park until a
    // producer submits or a deadline (housekeeping, DES event, pending
    // window) comes due.
    ++idle_passes;
    if (idle_passes <= serving_.idle_spin_passes) continue;
    if (idle_passes <= serving_.idle_spin_passes + serving_.idle_yield_passes) {
      std::this_thread::yield();
      continue;
    }
    Park(group, next_housekeeping);
    idle_passes = 0;
  }
}

std::size_t ServingMediator::DrainIntake(GroupState& group, SimTime now) {
  std::size_t drained = 0;
  for (std::uint32_t s = group.first_shard;
       s < group.first_shard + group.shard_count; ++s) {
    ShardState& state = *shards_[s];
    Intake item;
    // Stop at max_burst: a full buffer flushes before more intake drains,
    // which pushes overload back onto the bounded queue.
    while (state.buffer.size() < serving_.max_burst &&
           state.queue->TryPop(&item)) {
      state.queued.fetch_sub(1, std::memory_order_relaxed);
      SimTime arrival = std::min(SimNowFromWall(item.enqueue_wall), now);
      arrival = std::max(arrival, state.last_arrival);
      state.last_arrival = arrival;
      if (serving_.adaptive_batch.enabled) {
        state.controller.OnArrival(arrival);
      }
      Query query;
      // Per-group id sequence: globally unique, deterministic within the
      // group, and the plain 0,1,2,... of the single-thread tier when
      // there is one group.
      query.id = group.next_local_id++ * groups_.size() + group.index;
      query.consumer = ConsumerId(item.consumer);
      query.n = config_.query_n;
      query.units = engine_.population().QueryUnits(item.class_index);
      query.class_index = item.class_index;
      query.issue_time = arrival;
      if (state.buffer.empty()) {
        state.earliest_arrival = arrival;
      }
      state.buffer.push_back(query);
      state.meta.emplace_back(item.enqueue_wall, item.producer);
      ++drained;
    }
  }
  return drained;
}

double ServingMediator::WindowFor(const ShardState& state) const {
  return serving_.adaptive_batch.enabled ? state.controller.Window()
                                         : serving_.batch_window;
}

std::size_t ServingMediator::FlushDue(GroupState& group, SimTime now,
                                      bool force) {
  std::size_t flushed = 0;
  for (std::uint32_t s = group.first_shard;
       s < group.first_shard + group.shard_count; ++s) {
    const ShardState& state = *shards_[s];
    if (state.buffer.empty()) continue;
    if (force || state.buffer.size() >= serving_.max_burst ||
        now >= state.earliest_arrival + WindowFor(state)) {
      FlushShard(group, s, now);
      ++flushed;
    }
  }
  return flushed;
}

void ServingMediator::FlushShard(GroupState& group, std::uint32_t shard,
                                 SimTime now) {
  ShardState& state = *shards_[shard];
  const Clock::time_point flush_wall = Clock::now();

  // Every query in the burst is issued now, and recorded as an intake
  // trace exactly like the DES pump's arrivals — on the query's own shard
  // lane, so the record stays single-writer under group threading.
  obs::TraceLane* lane = shard_trace_[shard];
  for (const Query& query : state.buffer) {
    ++group.result.queries_issued;
    if (lane != nullptr && lane->SamplesQuery(query.id)) {
      lane->RecordInstant(obs::SpanKind::kIntake, query.issue_time, query.id,
                          static_cast<double>(query.consumer.index()));
    }
  }
  if (serving_.record_trace) {
    ServingBurst burst;
    burst.shard = shard;
    burst.flush_time = now;
    burst.first = group.trace.queries.size();
    burst.count = state.buffer.size();
    group.trace.bursts.push_back(burst);
    group.trace.queries.insert(group.trace.queries.end(),
                               state.buffer.begin(), state.buffer.end());
  }

  cores_[shard]->AllocateBatch(group.sim, state.buffer, 0.0, &state.outcomes);
  AppendCallSiteRecords(
      state.buffer, state.outcomes,
      serving_.record_trace ? &group.trace.decisions : nullptr);

  for (std::size_t i = 0; i < state.buffer.size(); ++i) {
    const Query& query = state.buffer[i];
    if (state.outcomes[i] != MediationCore::Outcome::kAllocated) {
      ++group.result.queries_infeasible;
      if (lane != nullptr && lane->SamplesQuery(query.id)) {
        lane->RecordInstant(obs::SpanKind::kReject, now, query.id,
                            static_cast<double>(state.outcomes[i]));
      }
    }
    if (batch_wait_hists_[shard] != nullptr) {
      batch_wait_hists_[shard]->Record(now - query.issue_time);
    }
    // Per-(producer, group) wall latency + the closed-loop mediated ack.
    ServingProducer& producer = *producers_[state.meta[i].second];
    producer.group_wall_[group.index].Record(
        std::chrono::duration<double>(flush_wall - state.meta[i].first)
            .count());
    producer.mediated_.fetch_add(1, std::memory_order_release);
  }
  flush_counters_[shard]->Inc();
  batched_query_counters_[shard]->Inc(state.buffer.size());
  ++group.bursts_flushed;
  served_.fetch_add(state.buffer.size(), std::memory_order_release);

  state.buffer.clear();
  state.meta.clear();
  state.outcomes.clear();
  state.earliest_arrival = kSimTimeInfinity;
}

void ServingMediator::Housekeep(GroupState& group) {
  obs::FlightRecorder& recorder = engine_.recorder();
  for (std::uint32_t s = group.first_shard;
       s < group.first_shard + group.shard_count; ++s) {
    ShardState& state = *shards_[s];
    state.controller.OnBacklogSample(cores_[s]->MeanBacklogSeconds());
    recorder.registry(s)
        .GetGauge(std::string(obs::kMetricBatchWindowPrefix) +
                  std::to_string(s))
        .Set(WindowFor(state));
  }
}

ServingReport ServingMediator::Stop() {
  SQLB_CHECK(started_ && !stopped_, "Stop requires a started, unstopped run");
  stopped_ = true;
  // Close the intake, then wait out every in-flight Submit/SubmitMany: once
  // in_submit_ reaches zero, no producer holds a queue reference and every
  // later call sheds without touching the queues.
  accepting_.store(false, std::memory_order_seq_cst);
  while (in_submit_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  stop_.store(true, std::memory_order_release);
  for (auto& group : groups_) {
    std::lock_guard<std::mutex> lk(group->park_mu);
    group->park_cv.notify_all();
  }
  for (auto& group : groups_) {
    group->thread.join();
  }

  // Final pass on the calling thread (the group threads are gone), one
  // group at a time in group order: catch the clock up, drain whatever is
  // still queued — repeatedly, since one drain pass stops at max_burst per
  // shard — flush it all, and complete in-flight provider service.
  const Clock::time_point end_wall = Clock::now();
  wall_seconds_ = std::chrono::duration<double>(end_wall - t0_).count();
  const SimTime end_sim = SimNowFromWall(end_wall);
  for (auto& group : groups_) {
    group->sim.RunUntil(end_sim);
    while (DrainIntake(*group, end_sim) > 0 ||
           FlushDue(*group, end_sim, /*force=*/true) > 0) {
    }
    group->sim.RunAll();
  }

  ServingReport report;
  report.served = served_.load(std::memory_order_acquire);
  for (const auto& producer : producers_) {
    report.submitted += producer->submitted();
    report.shed += producer->shed();
    // Fold the per-group latency parts in group order; associative, so the
    // merged histogram is independent of how groups interleaved in time.
    for (const obs::Histogram& part : producer->group_wall_) {
      producer->intake_wall_.Merge(part);
    }
    report.intake_wall.Merge(producer->intake_wall_);
  }
  for (const auto& group : groups_) {
    report.bursts += group->bursts_flushed;
    report.idle_parks += group->idle_parks;
    report.spurious_wakes += group->spurious_wakes;
  }
  report.wall_seconds = wall_seconds_;

  // Merge the per-group trace segments in group order, recording the span
  // boundaries so the replayer can re-drive each group independently.
  for (const auto& group : groups_) {
    ServingGroupSpan span;
    span.first_shard = group->first_shard;
    span.shard_count = group->shard_count;
    span.query_begin = trace_.queries.size();
    span.burst_begin = trace_.bursts.size();
    span.decision_begin = trace_.decisions.size();
    const std::size_t query_base = trace_.queries.size();
    trace_.queries.insert(trace_.queries.end(), group->trace.queries.begin(),
                          group->trace.queries.end());
    for (ServingBurst burst : group->trace.bursts) {
      burst.first += query_base;
      trace_.bursts.push_back(burst);
    }
    trace_.decisions.AppendAll(group->trace.decisions);
    span.query_end = trace_.queries.size();
    span.burst_end = trace_.bursts.size();
    span.decision_end = trace_.decisions.size();
    trace_.groups.push_back(span);
  }

  // Finalization mirrors ScenarioEngine::Run: remaining counts, sealed
  // spans, registries folded in fixed lane order. The per-producer
  // histograms and the idle-parking tallies fold into the coordinator
  // registry first so the merged snapshot carries them under canonical
  // names.
  obs::FlightRecorder& recorder = engine_.recorder();
  obs::MetricsRegistry& coord = recorder.registry(recorder.coordinator_lane());
  coord.GetHistogram(obs::kMetricServingIntakeWall).Merge(report.intake_wall);
  coord.GetCounter(obs::kMetricServingIdleParks).Inc(report.idle_parks);
  coord.GetCounter(obs::kMetricServingSpuriousWakes)
      .Inc(report.spurious_wakes);
  std::size_t active = 0;
  for (const auto& core : cores_) {
    active += core->active_provider_count();
  }
  RunResult& result = engine_.result();
  // Fold the group-local completion sinks, in group order (the counter
  // adds and Welford merges are associative).
  for (const auto& group : groups_) {
    result.queries_issued += group->result.queries_issued;
    result.queries_completed += group->result.queries_completed;
    result.queries_infeasible += group->result.queries_infeasible;
    result.queries_reissued += group->result.queries_reissued;
    result.response_time.Merge(group->result.response_time);
    result.response_time_all.Merge(group->result.response_time_all);
  }
  result.duration = end_sim;
  result.remaining_providers = active;
  result.remaining_consumers = engine_.active_consumers().size();
  result.trace_spans = recorder.FinishSpans();
  result.trace_spans_dropped = recorder.DroppedSpans();
  result.metrics = recorder.MergedMetrics();
  report.run = std::move(result);
  return report;
}

ServingReplayResult ReplayServingTrace(
    const SystemConfig& config, std::size_t shards,
    const ServingMediator::MethodFactory& factory, const ServingTrace& trace) {
  SQLB_CHECK(shards >= 1, "replay needs at least one shard");
  ServingReplayResult replay;

  // Re-drive one group segment at a time. Groups never share providers or
  // consumers (both are shard-affine and shards partition into groups), so
  // each segment replays against a fresh engine exactly as its group
  // evolved in the serving run: same initial agent state, same burst
  // sequence, same DES completion order.
  std::vector<ServingGroupSpan> spans = trace.groups;
  if (spans.empty()) {
    // Hand-built trace with no segmentation: treat it as one group over
    // every shard (the single-thread tier's shape).
    ServingGroupSpan span;
    span.first_shard = 0;
    span.shard_count = static_cast<std::uint32_t>(shards);
    span.query_end = trace.queries.size();
    span.burst_end = trace.bursts.size();
    span.decision_end = trace.decisions.size();
    spans.push_back(span);
  }

  bool first_span = true;
  SimTime duration = 0.0;
  std::size_t remaining_providers = 0;
  for (const ServingGroupSpan& span : spans) {
    SQLB_CHECK(span.first_shard + span.shard_count <= shards,
               "group span exceeds the shard count");
    ScenarioEngine engine(config);
    engine.ConfigureObservability(shards);
    std::vector<std::vector<std::uint32_t>> members =
        PartitionProviders(engine, shards);
    obs::FlightRecorder& recorder = engine.recorder();
    std::vector<std::unique_ptr<AllocationMethod>> methods;
    std::vector<std::unique_ptr<MediationCore>> cores(shards);
    for (std::uint32_t s = span.first_shard;
         s < span.first_shard + span.shard_count; ++s) {
      methods.push_back(factory(s));
      SQLB_CHECK(methods.back() != nullptr, "method factory returned null");
      MediationCore::Shared shared = engine.CoreSharedState();
      shared.trace = recorder.trace_lane(s);
      shared.metrics = recorder.hot_metrics(s);
      shared.decisions = &replay.decisions;
      cores[s] = std::make_unique<MediationCore>(
          shared, methods.back().get(), std::move(members[s]));
    }
    engine.SetMethodName(methods[0]->name());

    std::vector<Query> burst;
    std::vector<MediationCore::Outcome> outcomes;
    SimTime last_flush = 0.0;
    for (std::size_t b = span.burst_begin; b < span.burst_end; ++b) {
      const ServingBurst& recorded = trace.bursts[b];
      SQLB_CHECK(recorded.first + recorded.count <= trace.queries.size(),
                 "burst range out of trace bounds");
      SQLB_CHECK(cores[recorded.shard] != nullptr,
                 "burst shard outside its group span");
      // Advance the DES to the recorded flush time: the completions that
      // fired before this burst in the serving run fire here too, in the
      // same (time, id) order, so provider state matches exactly.
      engine.sim().RunUntil(recorded.flush_time);
      last_flush = recorded.flush_time;
      burst.assign(trace.queries.begin() + recorded.first,
                   trace.queries.begin() + recorded.first + recorded.count);
      obs::TraceLane* lane = recorder.trace_lane(recorded.shard);
      for (const Query& query : burst) {
        ++engine.result().queries_issued;
        if (lane != nullptr && lane->SamplesQuery(query.id)) {
          lane->RecordInstant(obs::SpanKind::kIntake, query.issue_time,
                              query.id,
                              static_cast<double>(query.consumer.index()));
        }
      }
      cores[recorded.shard]->AllocateBatch(engine.sim(), burst, 0.0,
                                           &outcomes);
      AppendCallSiteRecords(burst, outcomes, &replay.decisions);
      for (std::size_t i = 0; i < burst.size(); ++i) {
        if (outcomes[i] != MediationCore::Outcome::kAllocated) {
          ++engine.result().queries_infeasible;
          if (lane != nullptr && lane->SamplesQuery(burst[i].id)) {
            lane->RecordInstant(obs::SpanKind::kReject, recorded.flush_time,
                                burst[i].id,
                                static_cast<double>(outcomes[i]));
          }
        }
      }
    }
    engine.sim().RunAll();

    for (const auto& core : cores) {
      if (core != nullptr) remaining_providers += core->active_provider_count();
    }
    duration = std::max(duration, last_flush);
    RunResult& result = engine.result();
    result.remaining_consumers = engine.active_consumers().size();
    result.trace_spans = recorder.FinishSpans();
    result.trace_spans_dropped = recorder.DroppedSpans();
    result.metrics = recorder.MergedMetrics();
    if (first_span) {
      replay.run = std::move(result);
      first_span = false;
    } else {
      // Group-order fold, mirroring the serve side's Stop().
      replay.run.queries_issued += result.queries_issued;
      replay.run.queries_completed += result.queries_completed;
      replay.run.queries_infeasible += result.queries_infeasible;
      replay.run.queries_reissued += result.queries_reissued;
      replay.run.response_time.Merge(result.response_time);
      replay.run.response_time_all.Merge(result.response_time_all);
      replay.run.metrics.MergeFrom(result.metrics);
      replay.run.trace_spans.insert(
          replay.run.trace_spans.end(),
          std::make_move_iterator(result.trace_spans.begin()),
          std::make_move_iterator(result.trace_spans.end()));
      replay.run.trace_spans_dropped += result.trace_spans_dropped;
    }
  }
  replay.run.duration = duration;
  replay.run.remaining_providers = remaining_providers;
  return replay;
}

}  // namespace sqlb::runtime
