#ifndef SQLB_RUNTIME_SERVING_MEDIATOR_H_
#define SQLB_RUNTIME_SERVING_MEDIATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/allocation.h"
#include "des/mpsc_queue.h"
#include "mem/page_pool.h"
#include "obs/metrics.h"
#include "runtime/batch_window.h"
#include "runtime/mediation_core.h"
#include "runtime/scenario_engine.h"

/// \file
/// The wall-clock serving tier: the same Algorithm-1 pipeline the DES
/// drivers run, fed by real threads instead of the simulated Poisson pump.
///
/// Producer threads submit (consumer, query class) requests into per-shard
/// lock-free MPSC intake queues (des/mpsc_queue.h). Downstream, the shard
/// set is partitioned into ServingConfig::mediator_threads disjoint
/// contiguous *groups*, and each group is owned by one dedicated mediator
/// thread. Routing is consumer-affine (consumer c -> shard c % shards,
/// provider p -> shard p % shards), so a query's shard — and every provider
/// that could serve it — belongs to exactly one group: the mediation path
/// is lock-free across groups by construction, not by synchronization.
///
/// Each group owns the full per-PR9 machinery privately: its own DES event
/// loop (a des::Simulator carrying that group's provider service and
/// completion events), a wall-tracked sim clock (sim_now = wall_elapsed *
/// time_scale, one shared epoch t0 so all groups agree on "now"), the
/// per-shard batch windows (runtime/batch_window.h), group-local RunResult
/// and response-window sinks (MediationCore completion accounting writes
/// them directly, so they must be group-private), and a per-group
/// ServingTrace segment. Stop() folds everything associatively in group
/// order — reports, histograms, counters, traces — so the merged result is
/// deterministic given each group's stream, and mediator_threads = 1
/// reproduces PR 9's single-thread tier bit-for-bit (same query ids, same
/// decision log, same counters).
///
/// Idle behavior is adaptive rather than a fixed sleep: a group thread that
/// finds no work spins for idle_spin_passes loop passes, yields for
/// idle_yield_passes more, then *parks* on a per-group condition variable.
/// Producers wake a parked group on submit (Dekker-style seq_cst fences
/// pair the producer's publish -> parked-flag load with the mediator's
/// parked-flag store -> queue check, so no submit is lost); DES completions
/// and housekeeping are honored by parking only until the earliest of the
/// next housekeeping tick, the group simulator's next event, and the
/// earliest pending batch-window expiry. Parks and empty-handed wakeups are
/// counted (serving.idle_parks / serving.spurious_wakes in the metrics
/// registry).
///
/// Latency is measured in wall time, per (producer, group): group g records
/// each mediated query's enqueue->mediation wall latency into its
/// producer's group-g histogram (single writer), and Stop() folds the
/// per-group histograms associatively in group order (p50/p99/p999 merge
/// exactly).
///
/// Determinism stays a replay-testing tool: every served query, burst and
/// decision is recorded per group, the merged trace carries the group
/// segmentation (ServingTrace::groups), and ReplayServingTrace re-drives
/// each group's segment through its own DES oracle — the replay must
/// reproduce the decision log bit-for-bit per group, hence merged
/// (tests/runtime/serving_replay_test.cc pins this, plus the conservation
/// identity completed + infeasible == issued on both sides).

namespace sqlb::runtime {

/// Serving-mode knobs, on top of the scenario's SystemConfig.
struct ServingConfig {
  /// Logical mediator shards: provider p belongs to shard p % shards,
  /// consumer c routes to shard c % shards (consumer-affine, like the
  /// sharded tier's strict-parity routing).
  std::size_t shards = 1;
  /// Dedicated mediator threads. The shard set is split into this many
  /// disjoint contiguous groups (group g owns shards [g*K, (g+1)*K),
  /// K = shards / mediator_threads — must divide evenly), each owned by
  /// one thread with its own DES loop and trace segment. 1 reproduces the
  /// single-thread tier exactly.
  std::size_t mediator_threads = 1;
  /// Simulated seconds per wall-clock second. The service-time model is
  /// simulated (units / capacity, in sim seconds), so time_scale sets how
  /// fast provider capacity flows relative to real intake: >1 serves a
  /// wall-clock request rate higher than the simulated capacity would
  /// suggest.
  double time_scale = 1.0;
  /// Static coalescing window in sim seconds (0 = flush every loop pass).
  /// Ignored when adaptive_batch.enabled.
  double batch_window = 0.0;
  /// Per-shard adaptive window sizing, exactly as in the sharded DES tier.
  AdaptiveBatchConfig adaptive_batch;
  /// Flush a shard's buffer at this many queries even mid-window, and stop
  /// draining its intake queue past it until the flush (backpressure
  /// toward the bounded queue rather than an unbounded buffer).
  std::size_t max_burst = 64;
  /// Wall seconds between housekeeping ticks (the serving stand-in for the
  /// DES epoch barrier): backlog samples into the adaptive controllers and
  /// per-shard window gauges. Also the park-deadline ceiling — a parked
  /// group wakes at least this often.
  double housekeeping_interval = 0.01;
  /// Bound on queued-but-undrained submissions per shard, enforced exactly
  /// (a per-shard reservation counter, not the queue's chunk-rounded node
  /// budget); Submit returns false (shed) beyond it.
  std::size_t max_queued_per_shard = 65536;
  /// Idle ladder: loop passes to spin flat-out, then passes to spin with a
  /// sched yield between them, before parking on the group condvar until a
  /// producer submits or a deadline (housekeeping tick, next DES event,
  /// pending batch-window expiry) arrives.
  std::size_t idle_spin_passes = 64;
  std::size_t idle_yield_passes = 16;
  /// Record the replay trace (queries, bursts, decisions). Off for
  /// pure-throughput benchmarking.
  bool record_trace = true;
};

/// One coalesced burst of a recorded serving run: `count` queries starting
/// at `first` in ServingTrace::queries, mediated on `shard` at sim time
/// `flush_time`.
struct ServingBurst {
  std::uint32_t shard = 0;
  SimTime flush_time = 0.0;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// One mediator group's segment of the merged trace: which contiguous
/// shard range it owned and which [begin, end) slices of the merged
/// queries/bursts/decisions streams it produced. Burst flush times are
/// monotone *within* a span (each group had its own wall-tracked clock),
/// not across spans — the replayer re-drives each span through its own DES.
struct ServingGroupSpan {
  std::uint32_t first_shard = 0;
  std::uint32_t shard_count = 0;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  std::size_t burst_begin = 0;
  std::size_t burst_end = 0;
  std::size_t decision_begin = 0;
  std::size_t decision_end = 0;
};

/// Everything a replay needs: the served queries verbatim (ids, issue
/// times, units — wall arrival order is baked into them), the burst
/// structure, the decision log the replay must reproduce, and the group
/// segmentation (one span per mediator group, in group order).
struct ServingTrace {
  std::vector<Query> queries;
  std::vector<ServingBurst> bursts;
  DecisionLog decisions;
  std::vector<ServingGroupSpan> groups;
};

/// What a serving run produced: the familiar RunResult (counters, metrics,
/// spans) plus the wall-clock intake accounting.
struct ServingReport {
  RunResult run;
  /// Successful producer submissions (== served once drained).
  std::uint64_t submitted = 0;
  /// Submissions refused by backpressure or by a closed intake (Stop in
  /// progress) — they never entered the system. Every request presented to
  /// Submit/SubmitMany is counted exactly once: submitted + shed == total
  /// presented.
  std::uint64_t shed = 0;
  /// Queries mediated (mirror of run.queries_issued).
  std::uint64_t served = 0;
  /// Bursts flushed across all shards and groups.
  std::uint64_t bursts = 0;
  /// Times a mediator group parked idle / woke to find no work after all.
  std::uint64_t idle_parks = 0;
  std::uint64_t spurious_wakes = 0;
  /// Start() -> Stop() wall duration in seconds.
  double wall_seconds = 0.0;
  /// Enqueue -> mediation wall latency, merged over every producer's
  /// per-group histograms in group order (p50/p99/p999 via Quantile).
  obs::Histogram intake_wall;
};

/// One producer thread's registration. Submission runs through
/// ServingMediator::Submit/SubmitMany; this handle carries the counters a
/// closed-loop generator waits on and the per-thread wall-latency
/// histograms.
class ServingProducer {
 public:
  /// Successful submissions from this producer.
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_acquire);
  }
  /// Submissions refused by backpressure (or a closed intake).
  std::uint64_t shed() const { return shed_.load(std::memory_order_acquire); }
  /// How many of this producer's submissions have been mediated.
  std::uint64_t mediated() const {
    return mediated_.load(std::memory_order_acquire);
  }
  /// Closed-loop wait: spins (yielding) until mediated() >= n.
  void AwaitMediated(std::uint64_t n) const;
  /// This producer's enqueue->mediation wall-latency histogram, folded
  /// over its per-group histograms. Stable only after
  /// ServingMediator::Stop() (the group threads write the parts).
  const obs::Histogram& intake_wall() const { return intake_wall_; }

 private:
  friend class ServingMediator;
  std::uint32_t index_ = 0;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> mediated_{0};
  /// One histogram per mediator group (sized at registration): group g's
  /// thread is the only writer of group_wall_[g]. Stop() folds them into
  /// intake_wall_ in group order.
  std::vector<obs::Histogram> group_wall_;
  obs::Histogram intake_wall_;
};

/// One query request, as presented to SubmitMany.
struct ServingRequest {
  std::uint32_t consumer = 0;
  std::uint32_t class_index = 0;
};

/// The serving-mode mediator. Lifecycle: construct -> RegisterProducer()
/// for each producer thread -> Start() -> producers Submit()/SubmitMany()
/// -> Drain() (optional) -> Stop() -> read the report and trace().
///
/// The scenario SystemConfig must describe a captive, fault-free
/// population: no departures, no churn, no shard faults (serving has no
/// scripted clock to fire them on). sqlb::Config::Validate() reports these
/// as errors; the constructor enforces them, along with mediator_threads
/// dividing the shard count.
class ServingMediator {
 public:
  /// Fresh method instance per shard, as in the sharded tier.
  using MethodFactory =
      std::function<std::unique_ptr<AllocationMethod>(std::uint32_t shard)>;

  ServingMediator(const SystemConfig& config, const ServingConfig& serving,
                  MethodFactory factory);
  ServingMediator(const ServingMediator&) = delete;
  ServingMediator& operator=(const ServingMediator&) = delete;
  ~ServingMediator();

  /// Registers one producer thread. Call before Start(); the handle stays
  /// owned by the mediator and valid for its lifetime.
  ServingProducer* RegisterProducer();

  /// Launches the mediator group threads and starts the wall clock.
  void Start();

  /// Submits one query request from `producer`'s thread: consumer c issues
  /// one query of workload class `class_index` (units drawn from the
  /// population's class table, q.n from the config — exactly how the DES
  /// arrival pump builds queries). Wait-free; false = shed (queue
  /// backpressure, or the intake already closed for Stop — either way the
  /// request never entered the system).
  bool Submit(ServingProducer* producer, std::uint32_t consumer_index,
              std::uint32_t class_index);

  /// Batched submission: presents `requests[0..count)` in order, amortizing
  /// the MPSC enqueue (consecutive same-shard requests share one node-chain
  /// reservation, one tail exchange and one clock read). Returns the number
  /// accepted — always a prefix; the remainder was shed (counted in the
  /// producer's shed tally) because its shard's queue hit
  /// max_queued_per_shard or the intake closed. A retrying caller should
  /// present only the unaccepted suffix again.
  std::size_t SubmitMany(ServingProducer* producer,
                         const ServingRequest* requests, std::size_t count);

  /// Blocks until every successful submission so far has been mediated.
  /// Call only after the producers stopped submitting.
  void Drain();

  /// Stops the mediator groups: closes the intake (concurrent Submit calls
  /// shed from here on; in-flight ones are waited out), joins every group
  /// thread, flushes any remaining intake, drains in-flight provider
  /// service through each group's DES, and finalizes the report — group
  /// results, histograms, counters and trace segments folded associatively
  /// in group order. Call once.
  ServingReport Stop();

  /// The recorded replay trace (merged across groups, with
  /// ServingTrace::groups carrying the segmentation). Stable after Stop().
  const ServingTrace& trace() const { return trace_; }

  std::size_t shards() const { return shards_.size(); }
  std::size_t mediator_threads() const { return groups_.size(); }
  const ScenarioEngine& engine() const { return engine_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Largest same-shard run SubmitMany pushes in one reservation (the
  /// stack-buffer size of the batched enqueue).
  static constexpr std::size_t kSubmitRunCap = 64;

  /// One queued submission, as pushed by a producer thread.
  struct Intake {
    std::uint32_t consumer = 0;
    std::uint32_t class_index = 0;
    std::uint32_t producer = 0;
    Clock::time_point enqueue_wall;
  };

  struct ShardState {
    std::unique_ptr<des::MpscQueue<Intake>> queue;
    /// Accepted-but-undrained submissions; reserves against
    /// max_queued_per_shard exactly, even under concurrent producers.
    std::atomic<std::int64_t> queued{0};
    BatchWindowController controller;
    std::vector<Query> buffer;
    /// Parallel to buffer: (enqueue wall time, producer index) per query.
    std::vector<std::pair<Clock::time_point, std::uint32_t>> meta;
    /// Sim arrival time of the oldest buffered query (+inf when empty).
    SimTime earliest_arrival = kSimTimeInfinity;
    /// Monotone clamp for the controller's OnArrival.
    SimTime last_arrival = 0.0;
    std::vector<MediationCore::Outcome> outcomes;

    explicit ShardState(const AdaptiveBatchConfig& config)
        : controller(config) {}
  };

  /// One mediator group: a contiguous shard range, its own DES, its own
  /// sinks and trace segment, and its own thread + park state.
  struct GroupState {
    std::uint32_t index = 0;
    std::uint32_t first_shard = 0;
    std::uint32_t shard_count = 0;
    /// This group's event loop: completion events for its shards' providers
    /// are scheduled here and fired as the wall clock passes them.
    des::Simulator sim;
    /// Group-local completion sinks (MediationCore writes them directly);
    /// folded into the engine result at Stop.
    RunResult result;
    WindowedMean response_window{500};
    /// Group-local trace segment; concatenated in group order at Stop.
    ServingTrace trace;
    /// Per-group id counter: query id = local * num_groups + group index —
    /// globally unique, deterministic per group, and the plain sequence
    /// 0,1,2,... when there is one group.
    QueryId next_local_id = 0;
    std::uint64_t bursts_flushed = 0;
    std::uint64_t idle_parks = 0;
    std::uint64_t spurious_wakes = 0;
    /// Park/wake state: parked is the producer-visible flag (seq_cst-fence
    /// paired with the queue publish, see MediatorLoop/WakeIfParked).
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<std::uint32_t> parked{0};
    std::thread thread;
  };

  void MediatorLoop(GroupState& group);
  SimTime SimNowFromWall(Clock::time_point t) const;
  /// Pops the group's queues into their shard buffers (bounded by max_burst
  /// per shard). Returns the number of submissions drained.
  std::size_t DrainIntake(GroupState& group, SimTime now);
  /// Flushes the group's shards whose window elapsed (or buffer filled);
  /// `force` flushes everything non-empty. Returns bursts flushed.
  std::size_t FlushDue(GroupState& group, SimTime now, bool force);
  void FlushShard(GroupState& group, std::uint32_t shard, SimTime now);
  double WindowFor(const ShardState& state) const;
  /// Wall-cadence stand-in for the DES epoch barrier, per group.
  void Housekeep(GroupState& group);
  /// Spin/yield exhausted: park until a submit, a deadline, or stop.
  void Park(GroupState& group, Clock::time_point next_housekeeping);
  bool GroupQueuesEmpty(const GroupState& group) const;
  void WakeIfParked(GroupState& group);
  GroupState& GroupOfShard(std::uint32_t shard) {
    return *groups_[shard / shards_per_group_];
  }
  /// One same-shard run of a SubmitMany batch: reserve, push, account.
  /// Returns how many of `count` were accepted.
  std::size_t SubmitRun(ServingProducer* producer, std::uint32_t shard,
                        const ServingRequest* requests, std::size_t count);

  SystemConfig config_;
  ServingConfig serving_;
  ScenarioEngine engine_;
  std::vector<std::unique_ptr<AllocationMethod>> methods_;
  std::vector<std::unique_ptr<MediationCore>> cores_;

  /// Node storage behind every intake queue (chunked MPSC nodes).
  mem::PagePool pages_;
  mem::SlabPool slab_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<GroupState>> groups_;
  std::size_t shards_per_group_ = 1;
  std::vector<std::unique_ptr<ServingProducer>> producers_;

  /// The merged trace (built at Stop from the group segments).
  ServingTrace trace_;

  std::atomic<bool> stop_{false};
  /// Intake gate for Stop(): set false first, then in_submit_ is spun to
  /// zero, so no producer can be mid-push when the groups shut down.
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> in_submit_{0};
  /// Queries mediated so far (Drain's progress signal).
  std::atomic<std::uint64_t> served_{0};
  Clock::time_point t0_;
  bool started_ = false;
  bool stopped_ = false;

  double wall_seconds_ = 0.0;

  // Hoisted observability handles (single-writer: the owning group's
  // thread, per shard).
  std::vector<obs::Counter*> flush_counters_;
  std::vector<obs::Counter*> batched_query_counters_;
  std::vector<obs::Histogram*> batch_wait_hists_;
  std::vector<obs::TraceLane*> shard_trace_;
};

/// What a DES replay of a recorded serving run produced: its own decision
/// log (compare with ServingTrace::decisions via DecisionLog::IdenticalTo)
/// and the full RunResult for the conservation pins (group results folded
/// in group order, mirroring the serve side).
struct ServingReplayResult {
  RunResult run;
  DecisionLog decisions;
};

/// Replays `trace` through the DES, one group segment at a time: for each
/// ServingGroupSpan it reconstructs the population and that group's
/// per-shard cores exactly as ServingMediator did (same SystemConfig seed,
/// same shard count, same method factory), then re-drives the span's
/// recorded bursts at their recorded sim flush times through AllocateBatch
/// on a fresh simulator. Decisions append in span order, so the merged
/// replay log equals the recorded one iff every group's segment matches
/// bit-for-bit. A trace with no spans (hand-built) is treated as one
/// single-group span over all shards.
ServingReplayResult ReplayServingTrace(const SystemConfig& config,
                                       std::size_t shards,
                                       const ServingMediator::MethodFactory& factory,
                                       const ServingTrace& trace);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_SERVING_MEDIATOR_H_
